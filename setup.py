"""Legacy setup shim.

The execution environment has no network and no ``wheel`` package, so the
PEP 660 editable-install path is unavailable; this shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``python setup.py develop``) work offline.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
