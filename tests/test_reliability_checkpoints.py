"""Checkpoint/resume: atomic JSON envelopes and state round-trips."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.streaming import StreamingGeolocator
from repro.errors import CheckpointError
from repro.forum.engine import ForumServer
from repro.forum.monitor import ForumMonitor
from repro.reliability.checkpoint import read_checkpoint, write_checkpoint
from repro.synth.twitter import build_region_crowd

pytestmark = pytest.mark.reliability

DAY = 86400.0
HOUR = 3600.0


class TestCheckpointEnvelope:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "ck.json"
        write_checkpoint(path, "demo", 2, {"a": [1, 2], "b": "x"})
        assert read_checkpoint(path, "demo", 2) == {"a": [1, 2], "b": "x"}

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            read_checkpoint(tmp_path / "absent.json", "demo", 1)

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text('{"kind": "demo", "ver', encoding="utf-8")
        with pytest.raises(CheckpointError):
            read_checkpoint(path, "demo", 1)

    def test_wrong_kind_refused(self, tmp_path):
        path = tmp_path / "ck.json"
        write_checkpoint(path, "monitor", 1, {})
        with pytest.raises(CheckpointError, match="kind"):
            read_checkpoint(path, "scraper", 1)

    def test_wrong_version_refused(self, tmp_path):
        path = tmp_path / "ck.json"
        write_checkpoint(path, "demo", 1, {})
        with pytest.raises(CheckpointError, match="version"):
            read_checkpoint(path, "demo", 2)

    def test_missing_envelope_refused(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"not": "an envelope"}), encoding="utf-8")
        with pytest.raises(CheckpointError):
            read_checkpoint(path, "demo", 1)

    def test_unserialisable_state_refused(self, tmp_path):
        with pytest.raises(CheckpointError):
            write_checkpoint(tmp_path / "ck.json", "demo", 1, {"f": object()})

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "ck.json"
        write_checkpoint(path, "demo", 1, {"a": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["ck.json"]


def _forum_with_live_posts():
    forum = ForumServer("F", "x.onion")
    forum.import_crowd_posts(
        {
            "alice": [day * DAY + 6 * HOUR for day in range(1, 11)],
            "bob": [day * DAY + 18 * HOUR for day in range(1, 11)],
        }
    )
    return forum


class TestMonitorCheckpoint:
    def test_killed_and_resumed_campaign_equals_uninterrupted(self, tmp_path):
        path = tmp_path / "monitor.json"
        forum = _forum_with_live_posts()
        # Uninterrupted baseline on an identical forum.
        baseline = ForumMonitor(_forum_with_live_posts()).run_campaign(
            0.0, 10 * DAY, HOUR
        )
        # Killed at day 5 ...
        ForumMonitor(forum).run_campaign(
            0.0, 5 * DAY, HOUR, checkpoint_path=path
        )
        # ... resumed by a fresh process from the checkpoint.
        resumed_monitor = ForumMonitor.from_checkpoint(forum, path)
        result = resumed_monitor.run_campaign(
            0.0, 10 * DAY, HOUR, checkpoint_path=path
        )
        assert set(result.traces.user_ids()) == set(baseline.traces.user_ids())
        for user in baseline.traces.user_ids():
            assert np.allclose(
                result.traces[user].timestamps,
                baseline.traces[user].timestamps,
            )
        assert result.n_polls == baseline.n_polls

    def test_resume_does_not_restamp_first_poll_backlog(self, tmp_path):
        path = tmp_path / "monitor.json"
        forum = _forum_with_live_posts()
        ForumMonitor(forum).run_campaign(
            5 * DAY, 7 * DAY, HOUR, checkpoint_path=path
        )
        resumed = ForumMonitor.from_checkpoint(forum, path)
        result = resumed.run_campaign(5 * DAY, 10 * DAY, HOUR)
        # The resumed monitor's first executed poll is NOT a "first poll":
        # it must keep stamping rather than swallowing the backlog again.
        ids = [obs.post_id for obs in result.observations]
        assert len(ids) == len(set(ids))
        stamps = result.traces["alice"].timestamps
        assert stamps.min() >= 5 * DAY  # pre-monitoring backlog stays dropped
        assert stamps.max() > 7 * DAY  # post-resume posts were stamped

    def test_checkpoint_every_reduces_write_frequency(self, tmp_path, monkeypatch):
        path = tmp_path / "monitor.json"
        writes = []
        import repro.forum.monitor as monitor_module

        original = monitor_module.write_checkpoint

        def counting(path_, kind, version, state):
            writes.append(state["n_polls"])
            return original(path_, kind, version, state)

        monkeypatch.setattr(monitor_module, "write_checkpoint", counting)
        ForumMonitor(_forum_with_live_posts()).run_campaign(
            0.0, 2 * DAY, HOUR, checkpoint_path=path, checkpoint_every=10
        )
        # 49 polls -> every-10th plus the final flush, not one per poll.
        assert len(writes) < 10

    def test_checkpoint_rejects_foreign_kind(self, tmp_path):
        path = tmp_path / "other.json"
        write_checkpoint(path, "scrape-campaign", 1, {})
        with pytest.raises(CheckpointError):
            ForumMonitor.from_checkpoint(_forum_with_live_posts(), path)


class TestStreamingCheckpoint:
    def test_round_trip_preserves_snapshot(self, references, tmp_path):
        path = tmp_path / "stream.json"
        crowd = build_region_crowd("malaysia", 40, seed=21, n_days=366)
        stream = StreamingGeolocator(references)
        for trace in crowd:
            for timestamp in trace.timestamps:
                stream.observe(trace.user_id, float(timestamp))
        stream.save_checkpoint(path)
        restored = StreamingGeolocator.load_checkpoint(path, references=references)
        assert restored.n_events == stream.n_events
        assert restored.n_users() == stream.n_users()
        before = stream.snapshot()
        after = restored.snapshot()
        assert after.has_verdict() == before.has_verdict()
        assert after.dominant_mean() == pytest.approx(before.dominant_mean())

    def test_restored_stream_keeps_ingesting(self, references, tmp_path):
        path = tmp_path / "stream.json"
        stream = StreamingGeolocator(references, min_posts=3)
        stream.observe("u", 20 * HOUR)
        stream.observe("u", DAY + 20 * HOUR)
        stream.save_checkpoint(path)
        restored = StreamingGeolocator.load_checkpoint(path)
        restored.observe("u", 2 * DAY + 20 * HOUR)
        assert restored.n_events == 3
        assert "u" in restored.active_profiles()

    def test_profiles_survive_round_trip_exactly(self, references, tmp_path):
        path = tmp_path / "stream.json"
        crowd = build_region_crowd("japan", 3, seed=5, n_days=200)
        stream = StreamingGeolocator(references, min_posts=1)
        for trace in crowd:
            for timestamp in trace.timestamps:
                stream.observe(trace.user_id, float(timestamp))
        stream.save_checkpoint(path)
        restored = StreamingGeolocator.load_checkpoint(path)
        assert restored.active_profiles() == stream.active_profiles()

    def test_malformed_state_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "stream.json"
        from repro.core.streaming import (
            STREAM_CHECKPOINT_KIND,
            STREAM_CHECKPOINT_VERSION,
        )

        write_checkpoint(
            path,
            STREAM_CHECKPOINT_KIND,
            STREAM_CHECKPOINT_VERSION,
            {"config": {}, "users": "not-a-mapping"},
        )
        with pytest.raises(CheckpointError):
            StreamingGeolocator.load_checkpoint(path)
