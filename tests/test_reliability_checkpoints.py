"""Checkpoint/resume: atomic JSON envelopes and state round-trips."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.streaming import StreamingGeolocator
from repro.errors import CheckpointError
from repro.forum.engine import ForumServer
from repro.forum.monitor import ForumMonitor
from repro.reliability.checkpoint import read_checkpoint, write_checkpoint
from repro.synth.twitter import build_region_crowd

pytestmark = pytest.mark.reliability

DAY = 86400.0
HOUR = 3600.0


class TestCheckpointEnvelope:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "ck.json"
        write_checkpoint(path, "demo", 2, {"a": [1, 2], "b": "x"})
        assert read_checkpoint(path, "demo", 2) == {"a": [1, 2], "b": "x"}

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            read_checkpoint(tmp_path / "absent.json", "demo", 1)

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text('{"kind": "demo", "ver', encoding="utf-8")
        with pytest.raises(CheckpointError):
            read_checkpoint(path, "demo", 1)

    def test_wrong_kind_refused(self, tmp_path):
        path = tmp_path / "ck.json"
        write_checkpoint(path, "monitor", 1, {})
        with pytest.raises(CheckpointError, match="kind"):
            read_checkpoint(path, "scraper", 1)

    def test_wrong_version_refused(self, tmp_path):
        path = tmp_path / "ck.json"
        write_checkpoint(path, "demo", 1, {})
        with pytest.raises(CheckpointError, match="version"):
            read_checkpoint(path, "demo", 2)

    def test_missing_envelope_refused(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"not": "an envelope"}), encoding="utf-8")
        with pytest.raises(CheckpointError):
            read_checkpoint(path, "demo", 1)

    def test_unserialisable_state_refused(self, tmp_path):
        with pytest.raises(CheckpointError):
            write_checkpoint(tmp_path / "ck.json", "demo", 1, {"f": object()})

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "ck.json"
        write_checkpoint(path, "demo", 1, {"a": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["ck.json"]


def _forum_with_live_posts():
    forum = ForumServer("F", "x.onion")
    forum.import_crowd_posts(
        {
            "alice": [day * DAY + 6 * HOUR for day in range(1, 11)],
            "bob": [day * DAY + 18 * HOUR for day in range(1, 11)],
        }
    )
    return forum


class TestMonitorCheckpoint:
    def test_killed_and_resumed_campaign_equals_uninterrupted(self, tmp_path):
        path = tmp_path / "monitor.json"
        forum = _forum_with_live_posts()
        # Uninterrupted baseline on an identical forum.
        baseline = ForumMonitor(_forum_with_live_posts()).run_campaign(
            0.0, 10 * DAY, HOUR
        )
        # Killed at day 5 ...
        ForumMonitor(forum).run_campaign(
            0.0, 5 * DAY, HOUR, checkpoint_path=path
        )
        # ... resumed by a fresh process from the checkpoint.
        resumed_monitor = ForumMonitor.from_checkpoint(forum, path)
        result = resumed_monitor.run_campaign(
            0.0, 10 * DAY, HOUR, checkpoint_path=path
        )
        assert set(result.traces.user_ids()) == set(baseline.traces.user_ids())
        for user in baseline.traces.user_ids():
            assert np.allclose(
                result.traces[user].timestamps,
                baseline.traces[user].timestamps,
            )
        assert result.n_polls == baseline.n_polls

    def test_resume_does_not_restamp_first_poll_backlog(self, tmp_path):
        path = tmp_path / "monitor.json"
        forum = _forum_with_live_posts()
        ForumMonitor(forum).run_campaign(
            5 * DAY, 7 * DAY, HOUR, checkpoint_path=path
        )
        resumed = ForumMonitor.from_checkpoint(forum, path)
        result = resumed.run_campaign(5 * DAY, 10 * DAY, HOUR)
        # The resumed monitor's first executed poll is NOT a "first poll":
        # it must keep stamping rather than swallowing the backlog again.
        ids = [obs.post_id for obs in result.observations]
        assert len(ids) == len(set(ids))
        stamps = result.traces["alice"].timestamps
        assert stamps.min() >= 5 * DAY  # pre-monitoring backlog stays dropped
        assert stamps.max() > 7 * DAY  # post-resume posts were stamped

    def test_checkpoint_every_reduces_write_frequency(self, tmp_path, monkeypatch):
        path = tmp_path / "monitor.json"
        writes = []
        import repro.forum.monitor as monitor_module

        original = monitor_module.write_checkpoint

        def counting(path_, kind, version, state):
            writes.append(state["n_polls"])
            return original(path_, kind, version, state)

        monkeypatch.setattr(monitor_module, "write_checkpoint", counting)
        ForumMonitor(_forum_with_live_posts()).run_campaign(
            0.0, 2 * DAY, HOUR, checkpoint_path=path, checkpoint_every=10
        )
        # 49 polls -> every-10th plus the final flush, not one per poll.
        assert len(writes) < 10

    def test_checkpoint_rejects_foreign_kind(self, tmp_path):
        path = tmp_path / "other.json"
        write_checkpoint(path, "scrape-campaign", 1, {})
        with pytest.raises(CheckpointError):
            ForumMonitor.from_checkpoint(_forum_with_live_posts(), path)


class TestStreamingCheckpoint:
    def test_round_trip_preserves_snapshot(self, references, tmp_path):
        path = tmp_path / "stream.json"
        crowd = build_region_crowd("malaysia", 40, seed=21, n_days=366)
        stream = StreamingGeolocator(references)
        for trace in crowd:
            for timestamp in trace.timestamps:
                stream.observe(trace.user_id, float(timestamp))
        stream.save_checkpoint(path)
        restored = StreamingGeolocator.load_checkpoint(path, references=references)
        assert restored.n_events == stream.n_events
        assert restored.n_users() == stream.n_users()
        before = stream.snapshot()
        after = restored.snapshot()
        assert after.has_verdict() == before.has_verdict()
        assert after.dominant_mean() == pytest.approx(before.dominant_mean())

    def test_restored_stream_keeps_ingesting(self, references, tmp_path):
        path = tmp_path / "stream.json"
        stream = StreamingGeolocator(references, min_posts=3)
        stream.observe("u", 20 * HOUR)
        stream.observe("u", DAY + 20 * HOUR)
        stream.save_checkpoint(path)
        restored = StreamingGeolocator.load_checkpoint(path)
        restored.observe("u", 2 * DAY + 20 * HOUR)
        assert restored.n_events == 3
        assert "u" in restored.active_profiles()

    def test_profiles_survive_round_trip_exactly(self, references, tmp_path):
        path = tmp_path / "stream.json"
        crowd = build_region_crowd("japan", 3, seed=5, n_days=200)
        stream = StreamingGeolocator(references, min_posts=1)
        for trace in crowd:
            for timestamp in trace.timestamps:
                stream.observe(trace.user_id, float(timestamp))
        stream.save_checkpoint(path)
        restored = StreamingGeolocator.load_checkpoint(path)
        assert restored.active_profiles() == stream.active_profiles()

    def test_malformed_state_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "stream.json"
        from repro.core.streaming import (
            STREAM_CHECKPOINT_KIND,
            STREAM_CHECKPOINT_VERSION,
        )

        write_checkpoint(
            path,
            STREAM_CHECKPOINT_KIND,
            STREAM_CHECKPOINT_VERSION,
            {"config": {}, "users": "not-a-mapping"},
        )
        with pytest.raises(CheckpointError):
            StreamingGeolocator.load_checkpoint(path)


class TestBinaryCheckpointEnvelope:
    def _write(self, path, **overrides):
        from repro.reliability.checkpoint import write_binary_checkpoint

        kwargs = dict(
            kind="demo",
            version=1,
            meta={"alpha": 1.5},
            arrays={"xs": np.arange(5), "ys": np.eye(3)},
        )
        kwargs.update(overrides)
        write_binary_checkpoint(
            path, kwargs["kind"], kwargs["version"], kwargs["meta"], kwargs["arrays"]
        )

    def test_round_trip(self, tmp_path):
        from repro.reliability.checkpoint import read_binary_checkpoint

        path = tmp_path / "ck.npz"
        self._write(path)
        meta, arrays = read_binary_checkpoint(path, "demo", 1)
        assert meta == {"alpha": 1.5}
        np.testing.assert_array_equal(arrays["xs"], np.arange(5))
        np.testing.assert_array_equal(arrays["ys"], np.eye(3))

    def test_format_negotiation(self, tmp_path):
        from repro.reliability.checkpoint import checkpoint_format

        binary = tmp_path / "b.npz"
        self._write(binary)
        assert checkpoint_format(binary) == "binary"
        text = tmp_path / "t.json"
        write_checkpoint(text, "demo", 1, {})
        assert checkpoint_format(text) == "json"

    def test_truncated_zip_raises_checkpoint_error(self, tmp_path):
        from repro.reliability.checkpoint import read_binary_checkpoint

        path = tmp_path / "ck.npz"
        self._write(path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointError):
            read_binary_checkpoint(path, "demo", 1)

    def test_garbage_bytes_raise_checkpoint_error(self, tmp_path):
        from repro.reliability.checkpoint import read_binary_checkpoint

        path = tmp_path / "ck.npz"
        path.write_bytes(b"PK\x03\x04 this is not really a zip archive")
        with pytest.raises(CheckpointError):
            read_binary_checkpoint(path, "demo", 1)

    def test_wrong_kind_and_version_refused(self, tmp_path):
        from repro.reliability.checkpoint import read_binary_checkpoint

        path = tmp_path / "ck.npz"
        self._write(path)
        with pytest.raises(CheckpointError, match="kind"):
            read_binary_checkpoint(path, "other", 1)
        with pytest.raises(CheckpointError, match="version"):
            read_binary_checkpoint(path, "demo", 2)

    def test_reserved_key_refused(self, tmp_path):
        with pytest.raises(CheckpointError, match="reserved"):
            self._write(tmp_path / "ck.npz", arrays={"__meta__": np.arange(2)})

    def test_missing_envelope_refused(self, tmp_path):
        from repro.reliability.checkpoint import read_binary_checkpoint

        path = tmp_path / "ck.npz"
        with path.open("wb") as handle:
            np.savez(handle, xs=np.arange(3))
        with pytest.raises(CheckpointError, match="envelope"):
            read_binary_checkpoint(path, "demo", 1)

    def test_atomic_no_tmp_left_behind(self, tmp_path):
        path = tmp_path / "ck.npz"
        self._write(path)
        assert [p.name for p in tmp_path.iterdir()] == ["ck.npz"]


class TestStreamingBinaryCheckpoint:
    def _stream(self, references):
        crowd = build_region_crowd("malaysia", 30, seed=21, n_days=366)
        stream = StreamingGeolocator(references)
        for trace in crowd:
            for timestamp in trace.timestamps:
                stream.observe(trace.user_id, float(timestamp))
        return stream

    def test_npz_suffix_selects_binary_format(self, references, tmp_path):
        from repro.reliability.checkpoint import checkpoint_format

        stream = self._stream(references)
        binary = tmp_path / "s.npz"
        stream.save_checkpoint(binary)
        assert checkpoint_format(binary) == "binary"
        text = tmp_path / "s.json"
        stream.save_checkpoint(text)
        assert checkpoint_format(text) == "json"

    def test_binary_round_trip_preserves_placements(self, references, tmp_path):
        stream = self._stream(references)
        path = tmp_path / "s.npz"
        stream.save_checkpoint(path)
        restored = StreamingGeolocator.load_checkpoint(path, references=references)
        before, after = stream.snapshot(), restored.snapshot()
        assert after.n_users_active == before.n_users_active
        assert after.placement == before.placement
        assert restored.active_profiles() == stream.active_profiles()

    def test_binary_and_json_checkpoints_restore_identically(
        self, references, tmp_path
    ):
        stream = self._stream(references)
        stream.save_checkpoint(tmp_path / "s.npz")
        stream.save_checkpoint(tmp_path / "s.json")
        via_npz = StreamingGeolocator.load_checkpoint(tmp_path / "s.npz")
        via_json = StreamingGeolocator.load_checkpoint(tmp_path / "s.json")
        assert via_npz.n_events == via_json.n_events
        assert via_npz.snapshot().placement == via_json.snapshot().placement
        assert via_npz.state_dict() == via_json.state_dict()

    def test_json_checkpoint_from_earlier_release_still_loads(
        self, references, tmp_path
    ):
        """A PR2-era JSON checkpoint loads into the binary-capable class."""
        from repro.core.streaming import (
            STREAM_CHECKPOINT_KIND,
            STREAM_CHECKPOINT_VERSION,
        )

        stream = self._stream(references)
        path = tmp_path / "legacy.checkpoint"
        # Written through the plain JSON envelope, as PR2 always did.
        write_checkpoint(
            path,
            STREAM_CHECKPOINT_KIND,
            STREAM_CHECKPOINT_VERSION,
            stream.state_dict(),
        )
        restored = StreamingGeolocator.load_checkpoint(path, references=references)
        assert restored.n_events == stream.n_events
        assert restored.snapshot().placement == stream.snapshot().placement

    def test_corrupt_npz_surfaces_checkpoint_error(self, references, tmp_path):
        stream = self._stream(references)
        path = tmp_path / "s.npz"
        stream.save_checkpoint(path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - len(raw) // 3])
        with pytest.raises(CheckpointError):
            StreamingGeolocator.load_checkpoint(path)

    def test_unsorted_cells_refused(self, references, tmp_path):
        from repro.core.streaming import (
            STREAM_CHECKPOINT_KIND,
            STREAM_CHECKPOINT_VERSION,
        )
        from repro.reliability.checkpoint import write_binary_checkpoint

        stream = StreamingGeolocator(references, min_posts=1)
        stream.observe("u", 20 * HOUR)
        meta, arrays = stream.binary_state()
        arrays["cells"] = np.array([5, 5], dtype=np.int64)
        arrays["cell_offsets"] = np.array([0, 2], dtype=np.int64)
        path = tmp_path / "bad.npz"
        write_binary_checkpoint(
            path, STREAM_CHECKPOINT_KIND, STREAM_CHECKPOINT_VERSION, meta, arrays
        )
        with pytest.raises(CheckpointError, match="unsorted|duplicate"):
            StreamingGeolocator.load_checkpoint(path)

    def test_unknown_format_name_refused(self, references, tmp_path):
        stream = StreamingGeolocator(references)
        with pytest.raises(CheckpointError, match="format"):
            stream.save_checkpoint(tmp_path / "s.bin", format="parquet")
