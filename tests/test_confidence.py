"""Bootstrap confidence intervals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.confidence import bootstrap_mixture
from repro.core.em import fit_mixture
from repro.core.placement import placement_distribution
from repro.errors import FitError


def _assignments(rng, centers_weights, n):
    offsets = []
    for center, weight in centers_weights:
        count = int(round(n * weight))
        draws = np.clip(
            np.rint(rng.normal(center, 1.5, size=count)), -11, 12
        ).astype(int)
        offsets.extend(draws.tolist())
    return offsets


class TestBootstrap:
    def test_interval_contains_estimate(self, rng):
        offsets = _assignments(rng, [(1, 1.0)], 150)
        placement = placement_distribution(offsets)
        mixture = fit_mixture(placement, 1)
        result = bootstrap_mixture(offsets, mixture, n_resamples=80, seed=2)
        interval = result.intervals[0]
        assert interval.mean_low <= interval.mean_estimate <= interval.mean_high
        assert interval.weight_low <= 1.0 <= interval.weight_high + 1e-9

    def test_more_users_tighter_interval(self, rng):
        small_offsets = _assignments(rng, [(3, 1.0)], 25)
        large_offsets = _assignments(rng, [(3, 1.0)], 400)
        small = bootstrap_mixture(
            small_offsets,
            fit_mixture(placement_distribution(small_offsets), 1),
            n_resamples=80,
            seed=3,
        )
        large = bootstrap_mixture(
            large_offsets,
            fit_mixture(placement_distribution(large_offsets), 1),
            n_resamples=80,
            seed=3,
        )
        assert large.widest_mean_interval() < small.widest_mean_interval()

    def test_two_components_matched(self, rng):
        offsets = _assignments(rng, [(-6, 0.5), (4, 0.5)], 300)
        placement = placement_distribution(offsets)
        mixture = fit_mixture(placement, 2)
        result = bootstrap_mixture(offsets, mixture, n_resamples=60, seed=4)
        assert len(result.intervals) == 2
        assert result.k_stability > 0.8
        means = sorted(interval.mean_estimate for interval in result.intervals)
        assert means[0] < 0 < means[1]

    def test_accepts_dict_assignments(self, rng):
        offsets = _assignments(rng, [(0, 1.0)], 60)
        assignments = {f"u{i}": offset for i, offset in enumerate(offsets)}
        placement = placement_distribution(offsets)
        mixture = fit_mixture(placement, 1)
        result = bootstrap_mixture(assignments, mixture, n_resamples=40, seed=5)
        assert result.n_users == 60

    def test_empty_rejected(self, rng):
        offsets = _assignments(rng, [(0, 1.0)], 40)
        mixture = fit_mixture(placement_distribution(offsets), 1)
        with pytest.raises(FitError):
            bootstrap_mixture([], mixture)

    def test_bad_confidence_rejected(self, rng):
        offsets = _assignments(rng, [(0, 1.0)], 40)
        mixture = fit_mixture(placement_distribution(offsets), 1)
        with pytest.raises(FitError):
            bootstrap_mixture(offsets, mixture, confidence=1.5)

    def test_coverage_of_true_center(self):
        """90% intervals should cover the true centre in most replicas."""
        covered = 0
        replicas = 20
        for replica in range(replicas):
            rng = np.random.default_rng(1000 + replica)
            offsets = _assignments(rng, [(2, 1.0)], 120)
            placement = placement_distribution(offsets)
            mixture = fit_mixture(placement, 1)
            result = bootstrap_mixture(
                offsets, mixture, n_resamples=60, seed=replica
            )
            interval = result.intervals[0]
            if interval.mean_low - 0.2 <= 2.0 <= interval.mean_high + 0.2:
                covered += 1
        assert covered >= 15
