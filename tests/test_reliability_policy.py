"""Retry/backoff and circuit-breaker policy primitives."""

from __future__ import annotations

import pytest

from repro.errors import (
    CircuitOpenError,
    ForumError,
    RetryExhaustedError,
    TransientForumError,
)
from repro.reliability import (
    CircuitBreaker,
    CircuitState,
    ManualClock,
    RetryPolicy,
)

pytestmark = pytest.mark.reliability


class _FailsNTimes:
    """A callable that raises *n* transient errors before succeeding."""

    def __init__(self, n, result="ok", error=TransientForumError):
        self.remaining = n
        self.result = result
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise self.error("boom")
        return self.result


class TestManualClock:
    def test_sleep_advances(self):
        clock = ManualClock(start=10.0)
        clock.sleep(5.0)
        assert clock.now() == 15.0
        assert clock.sleeps == [5.0]

    def test_advance_does_not_record_sleep(self):
        clock = ManualClock()
        clock.advance(3.0)
        assert clock.now() == 3.0
        assert clock.sleeps == []

    def test_negative_rejected(self):
        clock = ManualClock()
        with pytest.raises(ValueError):
            clock.sleep(-1.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestRetryPolicy:
    def test_success_first_try_no_sleep(self):
        clock = ManualClock()
        policy = RetryPolicy(max_attempts=5)
        assert policy.execute(lambda: 42, clock=clock) == 42
        assert clock.sleeps == []

    def test_retries_until_success(self):
        clock = ManualClock()
        fn = _FailsNTimes(3)
        policy = RetryPolicy(max_attempts=5, base_delay=1.0, jitter=0.0)
        assert policy.execute(fn, clock=clock) == "ok"
        assert fn.calls == 4
        assert clock.sleeps == [1.0, 2.0, 4.0]  # exponential, no jitter

    def test_max_delay_caps_backoff(self):
        clock = ManualClock()
        fn = _FailsNTimes(4)
        policy = RetryPolicy(max_attempts=6, base_delay=1.0, max_delay=2.0, jitter=0.0)
        policy.execute(fn, clock=clock)
        assert clock.sleeps == [1.0, 2.0, 2.0, 2.0]

    def test_exhaustion_raises_with_cause(self):
        clock = ManualClock()
        fn = _FailsNTimes(99)
        policy = RetryPolicy(max_attempts=3, base_delay=1.0, jitter=0.0)
        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.execute(fn, clock=clock)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, TransientForumError)
        assert fn.calls == 3

    def test_non_retryable_error_propagates_immediately(self):
        clock = ManualClock()
        fn = _FailsNTimes(5, error=ForumError)
        policy = RetryPolicy(max_attempts=5)
        with pytest.raises(ForumError):
            policy.execute(fn, clock=clock)
        assert fn.calls == 1

    def test_jitter_is_deterministic_per_seed(self):
        a = RetryPolicy(max_attempts=5, base_delay=1.0, jitter=0.5, seed=7)
        b = RetryPolicy(max_attempts=5, base_delay=1.0, jitter=0.5, seed=7)
        c = RetryPolicy(max_attempts=5, base_delay=1.0, jitter=0.5, seed=8)
        assert a.delays() == b.delays()
        assert a.delays() != c.delays()

    def test_jitter_bounded(self):
        policy = RetryPolicy(max_attempts=20, base_delay=1.0, multiplier=1.0, jitter=0.25, seed=3)
        for delay in policy.delays():
            assert 0.75 <= delay <= 1.25

    def test_deadline_stops_early(self):
        clock = ManualClock()
        fn = _FailsNTimes(99)
        policy = RetryPolicy(
            max_attempts=10, base_delay=10.0, jitter=0.0, deadline=25.0
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.execute(fn, clock=clock)
        # 10s + 20s sleeps fit; the third 40s sleep would blow the budget.
        assert excinfo.value.attempts < 10
        assert clock.now() <= 31.0

    def test_on_retry_callback_counts(self):
        clock = ManualClock()
        fn = _FailsNTimes(2)
        seen = []
        policy = RetryPolicy(max_attempts=5, base_delay=0.0, jitter=0.0)
        policy.execute(fn, clock=clock, on_retry=lambda n, exc: seen.append(n))
        assert seen == [1, 2]

    def test_no_retry_policy(self):
        policy = RetryPolicy.no_retry()
        fn = _FailsNTimes(1)
        with pytest.raises(RetryExhaustedError):
            policy.execute(fn, clock=ManualClock())

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=0.0)


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = ManualClock()
        defaults = dict(failure_threshold=3, recovery_timeout=60.0, clock=clock)
        defaults.update(kwargs)
        return CircuitBreaker(**defaults), clock

    def test_stays_closed_on_success(self):
        breaker, _ = self._breaker()
        for _ in range(10):
            assert breaker.call(lambda: 1) == 1
        assert breaker.state is CircuitState.CLOSED

    def test_opens_after_threshold(self):
        breaker, _ = self._breaker()
        fn = _FailsNTimes(99)
        for _ in range(3):
            with pytest.raises(TransientForumError):
                breaker.call(fn)
        assert breaker.state is CircuitState.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.call(fn)
        assert fn.calls == 3  # the open circuit never touched the callable

    def test_half_open_probe_success_closes(self):
        breaker, clock = self._breaker()
        fn = _FailsNTimes(3)
        for _ in range(3):
            with pytest.raises(TransientForumError):
                breaker.call(fn)
        clock.advance(60.0)
        assert breaker.state is CircuitState.HALF_OPEN
        assert breaker.call(fn) == "ok"
        assert breaker.state is CircuitState.CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = self._breaker()
        fn = _FailsNTimes(99)
        for _ in range(3):
            with pytest.raises(TransientForumError):
                breaker.call(fn)
        clock.advance(60.0)
        with pytest.raises(TransientForumError):
            breaker.call(fn)  # the half-open probe
        assert breaker.state is CircuitState.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.call(fn)

    def test_success_resets_failure_count(self):
        breaker, _ = self._breaker()
        fn = _FailsNTimes(99)
        for _ in range(2):
            with pytest.raises(TransientForumError):
                breaker.call(fn)
        breaker.call(lambda: 1)  # resets the consecutive-failure streak
        for _ in range(2):
            with pytest.raises(TransientForumError):
                breaker.call(fn)
        assert breaker.state is CircuitState.CLOSED

    def test_non_tripping_error_does_not_open(self):
        breaker, _ = self._breaker()
        for _ in range(5):
            with pytest.raises(ForumError):
                breaker.call(_FailsNTimes(1, error=ForumError))
        assert breaker.state is CircuitState.CLOSED
