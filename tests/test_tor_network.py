"""Relays, circuits, directories and the network builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CircuitError, DescriptorError
from repro.tor.circuit import Circuit
from repro.tor.directory import (
    Consensus,
    HiddenServiceDirectory,
    ServiceDescriptor,
    onion_address,
    responsible_directories,
)
from repro.tor.network import build_network
from repro.tor.relay import Relay, RelayFlag


def _relay(index, flags=RelayFlag.FAST | RelayFlag.GUARD | RelayFlag.EXIT):
    return Relay(
        relay_id=f"r{index}",
        nickname=f"nick{index}",
        bandwidth=10.0,
        flags=flags,
        latency_ms=10.0,
    )


class TestRelay:
    def test_flags(self):
        relay = _relay(0, RelayFlag.GUARD | RelayFlag.FAST)
        assert relay.can_serve(RelayFlag.GUARD)
        assert not relay.can_serve(RelayFlag.EXIT)

    def test_key_negotiation_deterministic(self):
        relay = _relay(0)
        assert relay.negotiate_key(7) == relay.negotiate_key(7)
        assert relay.negotiate_key(7) != relay.negotiate_key(8)

    def test_peel_without_key(self):
        relay = _relay(0)
        with pytest.raises(CircuitError):
            relay.peel(99, b"data")

    def test_drop_circuit(self):
        relay = _relay(0)
        relay.negotiate_key(1)
        relay.drop_circuit(1)
        with pytest.raises(CircuitError):
            relay.peel(1, b"data")

    def test_identity_digest_stable(self):
        relay = _relay(0)
        assert relay.identity_digest() == relay.identity_digest()
        assert len(relay.identity_digest()) == 20


class TestCircuit:
    def test_needs_three_distinct_hops(self):
        with pytest.raises(CircuitError):
            Circuit([_relay(0), _relay(1)])
        duplicate = _relay(0)
        with pytest.raises(CircuitError):
            Circuit([duplicate, duplicate, _relay(1)])

    def test_forward_backward_roundtrip(self):
        circuit = Circuit([_relay(0), _relay(1), _relay(2)])
        payload = b"fetch the welcome thread"
        at_exit = circuit.send_forward(payload)
        assert at_exit == payload  # all layers peeled at the exit
        back = circuit.receive_backward(b"response body")
        assert back == b"response body"

    def test_payload_obscured_in_flight(self):
        guard, middle, exit_relay = _relay(0), _relay(1), _relay(2)
        circuit = Circuit([guard, middle, exit_relay])
        payload = b"a secret request payload!!"
        from repro.tor.cells import layer_encrypt

        wrapped = layer_encrypt(circuit._keys, payload)
        assert wrapped != payload
        after_guard = guard.peel(circuit.circuit_id, wrapped)
        assert after_guard != payload  # still two layers on

    def test_cell_counters(self):
        circuit = Circuit([_relay(0), _relay(1), _relay(2)])
        circuit.send_forward(b"x")
        circuit.receive_backward(b"y")
        assert circuit.cells_forward == 3
        assert circuit.cells_backward == 3

    def test_latency_sum(self):
        circuit = Circuit([_relay(0), _relay(1), _relay(2)])
        assert circuit.latency_ms() == pytest.approx(30.0)

    def test_round_trip_helper(self):
        circuit = Circuit([_relay(0), _relay(1), _relay(2)])
        reply, latency = circuit.round_trip(b"ping", lambda req: b"pong:" + req)
        assert reply == b"pong:ping"
        assert latency == pytest.approx(60.0)

    def test_closed_circuit_unusable(self):
        circuit = Circuit([_relay(0), _relay(1), _relay(2)])
        circuit.close()
        with pytest.raises(CircuitError):
            circuit.send_forward(b"x")

    def test_build_selects_roles(self):
        relays = [_relay(i) for i in range(10)]
        consensus = Consensus(relays)
        rng = np.random.default_rng(0)
        circuit = Circuit.build(consensus, rng)
        assert circuit.guard.can_serve(RelayFlag.GUARD)
        assert circuit.exit.can_serve(RelayFlag.EXIT)
        assert len({relay.relay_id for relay in circuit.hops}) == 3

    def test_build_fails_without_guards(self):
        relays = [_relay(i, RelayFlag.FAST | RelayFlag.EXIT) for i in range(5)]
        consensus = Consensus(relays)
        with pytest.raises(CircuitError):
            Circuit.build(consensus, np.random.default_rng(0))


class TestDirectory:
    def test_onion_derivation(self):
        onion = onion_address("my-public-key")
        assert onion.endswith(".onion")
        assert len(onion) == 16 + 6

    def test_descriptor_verification(self):
        good = ServiceDescriptor(
            onion=onion_address("pk"), public_key="pk", intro_point_ids=("r1",)
        )
        bad = ServiceDescriptor(
            onion="0000000000000000.onion", public_key="pk", intro_point_ids=("r1",)
        )
        assert good.verify()
        assert not bad.verify()

    def test_hsdir_requires_flag(self):
        with pytest.raises(DescriptorError):
            HiddenServiceDirectory(_relay(0, RelayFlag.FAST))

    def test_publish_and_fetch(self):
        directory = HiddenServiceDirectory(_relay(0, RelayFlag.HSDIR))
        descriptor = ServiceDescriptor(
            onion=onion_address("pk"), public_key="pk", intro_point_ids=("r1",)
        )
        directory.publish(descriptor)
        assert directory.knows(descriptor.onion)
        assert directory.fetch(descriptor.onion) == descriptor

    def test_publish_rejects_bad_descriptor(self):
        directory = HiddenServiceDirectory(_relay(0, RelayFlag.HSDIR))
        bad = ServiceDescriptor(
            onion="0000000000000000.onion", public_key="pk", intro_point_ids=()
        )
        with pytest.raises(DescriptorError):
            directory.publish(bad)

    def test_fetch_unknown(self):
        directory = HiddenServiceDirectory(_relay(0, RelayFlag.HSDIR))
        with pytest.raises(DescriptorError):
            directory.fetch("whatever.onion")

    def test_responsible_directories_deterministic(self):
        directories = [
            HiddenServiceDirectory(_relay(i, RelayFlag.HSDIR)) for i in range(6)
        ]
        first = responsible_directories("x.onion", directories)
        second = responsible_directories("x.onion", directories)
        assert [d.relay.relay_id for d in first] == [
            d.relay.relay_id for d in second
        ]
        assert len(first) == 2

    def test_no_directories(self):
        with pytest.raises(DescriptorError):
            responsible_directories("x.onion", [])

    def test_consensus_lookup(self):
        consensus = Consensus([_relay(0)])
        assert consensus.relay("r0").nickname == "nick0"
        with pytest.raises(DescriptorError):
            consensus.relay("missing")


class TestBuildNetwork:
    def test_roles_guaranteed(self):
        network = build_network(n_relays=8, seed=1)
        assert network.consensus.relays_with(RelayFlag.GUARD)
        assert network.consensus.relays_with(RelayFlag.EXIT)
        assert network.hs_directories

    def test_descriptor_publication_roundtrip(self):
        network = build_network(seed=2)
        descriptor = ServiceDescriptor(
            onion=onion_address("key"), public_key="key", intro_point_ids=("relay-0001",)
        )
        replicas = network.publish_descriptor(descriptor)
        assert replicas == 2
        assert network.fetch_descriptor(descriptor.onion) == descriptor

    def test_fetch_unknown_service(self):
        network = build_network(seed=2)
        with pytest.raises(DescriptorError):
            network.fetch_descriptor("ffffffffffffffff.onion")

    def test_relay_count(self):
        network = build_network(n_relays=25, seed=3)
        assert len(network.consensus) == 25
