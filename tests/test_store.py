"""Columnar trace store: layout, round-trips, sharded out-of-core reads."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.batch import ProfileMatrix
from repro.core.events import ActivityTrace, TraceSet
from repro.core.geolocate import CrowdGeolocator
from repro.datasets.store import (
    DEFAULT_SHARD_USERS,
    TraceStore,
    convert_jsonl,
)
from repro.datasets.traces import save_trace_set
from repro.errors import DatasetError, EmptyTraceError


def _crowd(n_users: int = 40, seed: int = 9, posts: int = 50) -> TraceSet:
    rng = np.random.default_rng(seed)
    traces = []
    for i in range(n_users):
        zone = int(rng.integers(-11, 13))
        days = rng.integers(0, 60, size=posts)
        hours = rng.normal(14.0 - zone, 2.5, size=posts) % 24
        traces.append(
            ActivityTrace(f"user{i:03d}", days * 86400.0 + hours * 3600.0)
        )
    return TraceSet(traces)


class TestStoreRoundTrip:
    def test_write_open_preserves_traces(self, tmp_path):
        crowd = _crowd(12)
        store = TraceStore.write(crowd, tmp_path / "crowd.store")
        reopened = TraceStore.open(tmp_path / "crowd.store")
        assert len(reopened) == len(crowd)
        assert reopened.total_posts() == crowd.total_posts()
        for trace in crowd:
            np.testing.assert_array_equal(
                reopened.stamps_of(trace.user_id), trace.timestamps
            )
        assert "user000" in reopened
        assert "ghost" not in reopened
        del store

    def test_to_trace_set_is_the_inverse(self, tmp_path):
        crowd = _crowd(8)
        TraceStore.write(crowd, tmp_path / "s")
        back = TraceStore.open(tmp_path / "s").to_trace_set()
        assert set(back.user_ids()) == set(crowd.user_ids())
        for trace in crowd:
            np.testing.assert_array_equal(
                back[trace.user_id].timestamps, trace.timestamps
            )

    def test_empty_crowd_round_trips(self, tmp_path):
        TraceStore.write(TraceSet(), tmp_path / "empty")
        store = TraceStore.open(tmp_path / "empty")
        assert len(store) == 0
        assert store.total_posts() == 0
        assert list(store.iter_shards()) == []

    def test_zero_post_user_round_trips(self, tmp_path):
        crowd = TraceSet(
            [ActivityTrace("posts", [100.0, 200.0]), ActivityTrace("silent")]
        )
        TraceStore.write(crowd, tmp_path / "s")
        store = TraceStore.open(tmp_path / "s")
        assert store.stamps_of("silent").size == 0
        assert store.lengths().tolist() == [2, 0]

    def test_duplicate_user_ids_refused(self, tmp_path):
        duplicated = [
            ActivityTrace("u", [1.0]),
            ActivityTrace("u", [2.0]),
        ]
        with pytest.raises(DatasetError, match="duplicate"):
            TraceStore.write(iter(duplicated), tmp_path / "s")

    def test_unknown_store_version_refused(self, tmp_path):
        TraceStore.write(_crowd(2), tmp_path / "s")
        meta_path = tmp_path / "s" / "meta.json"
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        meta["version"] = 999
        meta_path.write_text(json.dumps(meta), encoding="utf-8")
        with pytest.raises(DatasetError, match="version"):
            TraceStore.open(tmp_path / "s")

    def test_missing_directory_refused(self, tmp_path):
        with pytest.raises(DatasetError):
            TraceStore.open(tmp_path / "absent")


class TestShardedReads:
    def test_shards_tile_the_store(self, tmp_path):
        crowd = _crowd(23)
        TraceStore.write(crowd, tmp_path / "s")
        store = TraceStore.open(tmp_path / "s")
        shards = list(store.iter_shards(max_users=5))
        assert [len(shard) for shard in shards] == [5, 5, 5, 5, 3]
        assert sum(shard.n_posts() for shard in shards) == store.total_posts()
        seen = [user_id for shard in shards for user_id in shard.user_ids]
        assert seen == store.user_ids()

    def test_default_shard_size_is_bounded(self, tmp_path):
        TraceStore.write(_crowd(6), tmp_path / "s")
        store = TraceStore.open(tmp_path / "s")
        (shard,) = store.iter_shards(DEFAULT_SHARD_USERS)
        assert len(shard) == 6

    def test_from_store_equals_from_trace_set(self, tmp_path):
        crowd = _crowd(30)
        TraceStore.write(crowd, tmp_path / "s")
        store = TraceStore.open(tmp_path / "s")
        via_store = ProfileMatrix.from_store(store)
        via_traces = ProfileMatrix.from_trace_set(crowd)
        assert via_store.user_ids == via_traces.user_ids
        np.testing.assert_array_equal(via_store.matrix, via_traces.matrix)

    def test_from_store_sharding_does_not_change_profiles(self, tmp_path):
        crowd = _crowd(30)
        TraceStore.write(crowd, tmp_path / "s")
        store = TraceStore.open(tmp_path / "s")
        whole = ProfileMatrix.from_store(store)
        sharded = ProfileMatrix.from_store(store, max_users_per_shard=7)
        assert sharded.user_ids == whole.user_ids
        np.testing.assert_array_equal(sharded.matrix, whole.matrix)

    def test_from_store_min_posts_matches_with_min_posts(self, tmp_path):
        rng = np.random.default_rng(3)
        crowd = TraceSet(
            ActivityTrace(
                f"u{i}", rng.uniform(0, 50 * 86400.0, size=int(rng.integers(1, 60)))
            )
            for i in range(25)
        )
        TraceStore.write(crowd, tmp_path / "s")
        store = TraceStore.open(tmp_path / "s")
        via_store = ProfileMatrix.from_store(store, min_posts=30)
        via_traces = ProfileMatrix.from_trace_set(crowd.with_min_posts(30))
        assert via_store.user_ids == via_traces.user_ids
        np.testing.assert_array_equal(via_store.matrix, via_traces.matrix)


class TestColumnChunks:
    def test_chunks_tile_the_columns_exactly(self, tmp_path):
        store = TraceStore.write(_crowd(n_users=23, posts=17), tmp_path / "s")
        ids: list[str] = []
        lengths: list[int] = []
        stamps: list[np.ndarray] = []
        for chunk_ids, chunk_lengths, chunk_stamps in store.iter_column_chunks(
            max_posts=100
        ):
            assert len(chunk_ids) == chunk_lengths.size
            assert int(chunk_lengths.sum()) == chunk_stamps.size
            ids.extend(chunk_ids)
            lengths.extend(int(n) for n in chunk_lengths)
            stamps.append(chunk_stamps)
        assert ids == list(store.user_ids())
        assert lengths == [len(store.trace(u)) for u in ids]
        np.testing.assert_array_equal(
            np.concatenate(stamps),
            np.concatenate([store.trace(u).timestamps for u in ids]),
        )

    def test_chunk_boundaries_never_split_a_user(self, tmp_path):
        store = TraceStore.write(_crowd(n_users=9, posts=40), tmp_path / "s")
        # 100 events is 2.5 users' worth: chunks hold whole users only.
        sizes = [
            len(chunk_ids)
            for chunk_ids, _, _ in store.iter_column_chunks(max_posts=100)
        ]
        assert sum(sizes) == 9
        assert all(size >= 1 for size in sizes)

    def test_oversized_user_gets_own_chunk(self, tmp_path):
        store = TraceStore.write(_crowd(n_users=4, posts=50), tmp_path / "s")
        chunks = list(store.iter_column_chunks(max_posts=1))
        assert [chunk_ids for chunk_ids, _, _ in chunks] == [
            [user_id] for user_id in store.user_ids()
        ]

    def test_single_chunk_when_budget_covers_the_crowd(self, tmp_path):
        store = TraceStore.write(_crowd(n_users=6, posts=10), tmp_path / "s")
        chunks = list(store.iter_column_chunks(max_posts=10_000))
        assert len(chunks) == 1
        assert chunks[0][2].size == store.total_posts()

    def test_nonpositive_budget_refused(self, tmp_path):
        store = TraceStore.write(_crowd(n_users=2, posts=5), tmp_path / "s")
        with pytest.raises(DatasetError, match="max_posts"):
            next(store.iter_column_chunks(max_posts=0))

    def test_empty_store_yields_nothing(self, tmp_path):
        store = TraceStore.write([], tmp_path / "s")
        assert list(store.iter_column_chunks(max_posts=10)) == []


class TestWriteColumns:
    def _chunks(self, crowd: TraceSet, chunk_users: int):
        traces = list(crowd)
        for start in range(0, len(traces), chunk_users):
            block = traces[start : start + chunk_users]
            yield (
                [trace.user_id for trace in block],
                np.array([len(trace) for trace in block], dtype=np.int64),
                np.concatenate(
                    [trace.timestamps for trace in block]
                )
                if block
                else np.zeros(0),
            )

    def test_equivalent_to_write(self, tmp_path):
        crowd = _crowd(17, seed=11)
        via_traces = TraceStore.write(crowd, tmp_path / "a")
        via_columns = TraceStore.write_columns(
            self._chunks(crowd, chunk_users=5), tmp_path / "b"
        )
        assert via_columns.user_ids() == via_traces.user_ids()
        np.testing.assert_array_equal(
            via_columns.lengths(), via_traces.lengths()
        )
        for trace in crowd:
            np.testing.assert_array_equal(
                via_columns.stamps_of(trace.user_id),
                via_traces.stamps_of(trace.user_id),
            )

    def test_empty_chunk_stream(self, tmp_path):
        store = TraceStore.write_columns(iter(()), tmp_path / "e")
        assert len(store) == 0
        assert store.total_posts() == 0

    def test_mismatched_lengths_refused(self, tmp_path):
        bad = [(["a", "b"], np.array([1], dtype=np.int64), np.array([1.0]))]
        with pytest.raises(DatasetError, match="lengths"):
            TraceStore.write_columns(iter(bad), tmp_path / "bad")
        assert not (tmp_path / "bad").exists()

    def test_lengths_stamps_desync_refused(self, tmp_path):
        bad = [(["a"], np.array([3], dtype=np.int64), np.array([1.0, 2.0]))]
        with pytest.raises(DatasetError, match="stamps"):
            TraceStore.write_columns(iter(bad), tmp_path / "bad")

    def test_duplicate_ids_across_chunks_refused(self, tmp_path):
        bad = [
            (["a"], np.array([1], dtype=np.int64), np.array([1.0])),
            (["a"], np.array([1], dtype=np.int64), np.array([2.0])),
        ]
        with pytest.raises(DatasetError, match="duplicate"):
            TraceStore.write_columns(iter(bad), tmp_path / "bad")


class TestShardBoundsAndRanges:
    def test_shard_matches_iter_shards(self, tmp_path):
        TraceStore.write(_crowd(23), tmp_path / "s")
        store = TraceStore.open(tmp_path / "s")
        walked = list(store.iter_shards(max_users=5))
        for shard in walked:
            direct = store.shard(
                shard.start_index, shard.start_index + len(shard)
            )
            assert direct.user_ids == shard.user_ids
            np.testing.assert_array_equal(direct.stamps, shard.stamps)
            np.testing.assert_array_equal(direct.lengths, shard.lengths)

    def test_bounds_on_empty_store(self, tmp_path):
        TraceStore.write(TraceSet(), tmp_path / "s")
        store = TraceStore.open(tmp_path / "s")
        assert store.shard_bounds(4) == []


class TestConvertJsonl:
    def test_convert_preserves_every_trace(self, tmp_path):
        crowd = _crowd(15)
        jsonl = tmp_path / "crowd.jsonl"
        save_trace_set(crowd, jsonl)
        store = convert_jsonl(jsonl, tmp_path / "crowd.store")
        assert len(store) == len(crowd)
        for trace in crowd:
            np.testing.assert_array_equal(
                store.stamps_of(trace.user_id), trace.timestamps
            )

    def test_corrupt_line_names_file_and_line(self, tmp_path):
        jsonl = tmp_path / "bad.jsonl"
        jsonl.write_text(
            '{"user": "a", "timestamps": [1.0]}\nnot json\n',
            encoding="utf-8",
        )
        with pytest.raises(DatasetError, match="bad.jsonl:2"):
            convert_jsonl(jsonl, tmp_path / "bad.store")


class TestStorePipeline:
    def test_store_and_jsonl_yield_identical_placements(
        self, tmp_path, references
    ):
        crowd = _crowd(60, seed=4, posts=60)
        jsonl = tmp_path / "crowd.jsonl"
        save_trace_set(crowd, jsonl)
        store = convert_jsonl(jsonl, tmp_path / "crowd.store")
        locator = CrowdGeolocator(references)
        via_store = locator.geolocate_store(store, crowd_name="c")
        via_traces = locator.geolocate(crowd, crowd_name="c")
        assert via_store.user_zones == via_traces.user_zones
        assert via_store.placement.fractions == via_traces.placement.fractions
        assert via_store.n_users == via_traces.n_users
        assert via_store.n_posts == via_traces.n_posts
        assert via_store.n_removed_flat == via_traces.n_removed_flat
        assert via_store.mixture.zone_offsets() == via_traces.mixture.zone_offsets()

    def test_geolocate_store_empty_raises(self, tmp_path, references):
        TraceStore.write(TraceSet(), tmp_path / "s")
        store = TraceStore.open(tmp_path / "s")
        with pytest.raises(EmptyTraceError):
            CrowdGeolocator(references).geolocate_store(store)
