"""Cross-module integration: the full paper pipeline, end to end.

These tests exercise the complete story at a reduced scale:
synthetic crowd -> hidden-service forum (skewed clock) -> Tor rendezvous
scrape -> polishing -> EMD placement -> GMM decomposition -> verdicts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geolocate import CrowdGeolocator
from repro.forum.engine import ForumServer
from repro.forum.scraper import ForumScraper
from repro.forum.storage import TraceStore
from repro.synth.forums import FORUM_SPECS, build_forum_crowd
from repro.synth.twitter import build_twitter_dataset
from repro.tor.hidden_service import HiddenServiceHost, TorClient
from repro.tor.network import build_network


@pytest.fixture(scope="module")
def idc_stack():
    """A populated IDC-like hidden service plus its connected client."""
    spec = FORUM_SPECS["idc"]
    crowd = build_forum_crowd(spec, seed=5, scale=0.8, n_days=366)
    forum = ForumServer(
        spec.name, spec.onion, server_offset_hours=spec.server_offset_hours
    )
    forum.import_crowd_posts(
        {
            trace.user_id: [float(ts) for ts in trace.timestamps]
            for trace in crowd.traces
        }
    )
    network = build_network(seed=5)
    host = HiddenServiceHost(
        network=network,
        application=forum,
        private_key="idc-key",
        rng=np.random.default_rng(5),
    )
    descriptor = host.setup()
    client = TorClient(network, seed=6)
    remote = client.connect(descriptor.onion, {descriptor.onion: host})
    return crowd, forum, remote, client


class TestFullPath:
    def test_scrape_recovers_true_utc(self, idc_stack):
        crowd, _, remote, _ = idc_stack
        scrape = ForumScraper(remote).scrape(float(370 * 86400))
        assert scrape.server_offset_hours == pytest.approx(1.0)
        # Pick any original user and compare recovered timestamps exactly.
        user = crowd.traces.user_ids()[0]
        assert np.allclose(
            scrape.traces[user].timestamps, crowd.traces[user].timestamps
        )

    def test_geolocation_after_scrape(self, idc_stack, references):
        _, _, remote, _ = idc_stack
        scrape = ForumScraper(remote).scrape(float(370 * 86400))
        report = CrowdGeolocator(references).geolocate(
            scrape.traces, crowd_name="IDC"
        )
        # At this reduced crowd size a small spurious secondary component
        # can survive selection; the dominant one must carry the crowd.
        dominant = report.mixture.dominant()
        assert report.mixture.k <= 2
        assert dominant.weight >= 0.75
        assert 0.3 <= dominant.mean <= 2.9

    def test_tor_client_accounting(self, idc_stack):
        _, _, _, client = idc_stack
        assert client.rpc_count >= 1
        assert client.total_latency_ms > 0.0


class TestEthicsChain:
    def test_scrape_store_reload_geolocate(self, idc_stack, references):
        """The Sec. VIII workflow: store only pseudonymised pairs, reload,
        and verify the analysis result is unchanged."""
        _, _, remote, _ = idc_stack
        scrape = ForumScraper(remote).scrape(float(370 * 86400))
        direct_report = CrowdGeolocator(references).geolocate(scrape.traces)

        store = TraceStore(b"longenoughkey-123")
        store.put("idc", scrape.traces, stored_at=0.0)
        reloaded = store.get("idc", b"longenoughkey-123", read_at=10.0)
        stored_report = CrowdGeolocator(references).geolocate(reloaded)

        assert stored_report.placement.fractions == direct_report.placement.fractions
        assert stored_report.n_users == direct_report.n_users


class TestKnownOriginValidation:
    def test_validation_forums_recover_their_countries(self, references):
        """The paper's validation logic: CRD -> Russian zones, with the
        crowd's Pearson vs the generic profile high (paper: 0.93)."""
        crowd = build_forum_crowd(FORUM_SPECS["crd_club"], seed=3, scale=0.5)
        report = CrowdGeolocator(references).geolocate(
            crowd.traces, crowd_name="CRD"
        )
        assert report.mixture.k == 1
        assert 2.4 <= report.mixture.dominant().mean <= 4.6
        assert report.pearson_vs_generic > 0.8


class TestDatasetToReferences:
    def test_references_from_scratch_place_foreign_crowd(self):
        """Build references from one dataset, place a crowd generated
        from a different seed: the method must transfer."""
        dataset = build_twitter_dataset(seed=77, scale=0.015).with_min_posts(30)
        references = dataset.reference_profiles()
        crowd = build_forum_crowd(FORUM_SPECS["idc"], seed=99, scale=0.8)
        report = CrowdGeolocator(references).geolocate(crowd.traces)
        assert 0.0 <= report.mixture.dominant().mean <= 3.0
