"""The darkcrowd command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.errors import DatasetError


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig_number(self):
        args = build_parser().parse_args(["fig", "3"])
        assert args.command == "fig"
        assert args.number == 3

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.scale == 0.04
        assert args.forum_scale == 1.0
        assert not args.no_tor

    def test_fast_flag(self):
        args = build_parser().parse_args(["--fast", "table1"])
        assert args.fast


class TestCommands:
    def test_table1(self, capsys):
        assert main(["--scale", "0.02", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Brazil" in out
        assert "3763" in out

    def test_fig1(self, capsys):
        assert main(["--scale", "0.02", "fig", "1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out

    def test_fig2(self, capsys):
        assert main(["--scale", "0.02", "fig", "2"]) == 0
        out = capsys.readouterr().out
        assert "Pearson" in out

    def test_fig7(self, capsys):
        assert main(["--scale", "0.02", "fig", "7"]) == 0
        out = capsys.readouterr().out
        assert "flat" in out

    def test_unknown_fig(self):
        with pytest.raises(SystemExit):
            main(["--scale", "0.02", "fig", "99"])

    def test_fig10_fast_forum(self, capsys):
        assert (
            main(
                ["--scale", "0.02", "--forum-scale", "0.4", "--no-tor", "fig", "10"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Italian DarkNet Community" in out
        assert "recovered" in out


def _monitor_args(*extra):
    return [
        "--scale",
        "0.02",
        "--forum-scale",
        "0.2",
        "monitor",
        "--poll-hours",
        "2",
        "--days",
        "2",
        *extra,
    ]


class TestMonitorCommand:
    def test_parser_flags(self):
        args = build_parser().parse_args(
            ["monitor", "--fault-rate", "0.2", "--resume", "ck.json"]
        )
        assert args.fault_rate == 0.2
        assert args.resume == "ck.json"
        assert args.checkpoint_every == 24

    def test_monitor_smoke(self, capsys):
        assert main(_monitor_args()) == 0
        out = capsys.readouterr().out
        assert "polls" in out

    def test_monitor_checkpoint_then_resume(self, capsys, tmp_path):
        checkpoint = str(tmp_path / "campaign.json")
        assert main(_monitor_args("--checkpoint", checkpoint)) == 0
        assert (tmp_path / "campaign.json").exists()
        first_out = capsys.readouterr().out
        assert "checkpoint saved" in first_out

        # A fresh invocation resumes from the checkpoint and keeps going.
        assert (
            main(
                [
                    "--scale",
                    "0.02",
                    "--forum-scale",
                    "0.2",
                    "monitor",
                    "--poll-hours",
                    "2",
                    "--days",
                    "4",
                    "--resume",
                    checkpoint,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "polls" in out

    def test_monitor_with_faults(self, capsys):
        assert main(_monitor_args("--fault-rate", "0.2")) == 0
        out = capsys.readouterr().out
        assert "polls" in out

    def test_parser_drift_flags(self):
        args = build_parser().parse_args(
            [
                "monitor",
                "--drift-window",
                "30",
                "--confidence-threshold",
                "0.4",
                "--migrations-out",
                "migrations.jsonl",
            ]
        )
        assert args.drift_window == 30
        assert args.confidence_threshold == 0.4
        assert args.migrations_out == "migrations.jsonl"

    def test_monitor_drift_replay(self, capsys, tmp_path):
        import json as json_module

        out_path = tmp_path / "migrations.jsonl"
        assert (
            main(
                _monitor_args(
                    "--drift-window", "30", "--migrations-out", str(out_path)
                )
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "zone migrations" in out
        assert f"migration events written to {out_path}" in out
        assert out_path.exists()
        for line in out_path.read_text().splitlines():
            event = json_module.loads(line)
            assert {"user_id", "new_offset", "reason"} <= set(event)


class TestGeolocateCommand:
    def _write_traces(self, path, corrupt=False):
        lines = []
        for index in range(10):
            user_hour = 19 + index % 3
            stamps = [
                day * 86400.0 + user_hour * 3600.0 for day in range(40)
            ]
            lines.append(
                json.dumps({"user": f"u{index:02d}", "timestamps": stamps})
            )
        if corrupt:
            lines.append('{"user": "mangled", "timestamps": [NaN]}')
            lines.append('{"user": "hollow", "timestamps": []}')
            lines.append("definitely not json")
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    def test_geolocate_clean_file(self, capsys, tmp_path):
        path = tmp_path / "traces.jsonl"
        self._write_traces(path)
        assert main(["--scale", "0.02", "geolocate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "placement" in out
        assert "users" in out

    def test_geolocate_strict_fails_on_corrupt_file(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        self._write_traces(path, corrupt=True)
        with pytest.raises(DatasetError):
            main(["--scale", "0.02", "geolocate", str(path)])

    def test_geolocate_quarantine_names_bad_users(self, capsys, tmp_path):
        path = tmp_path / "traces.jsonl"
        self._write_traces(path, corrupt=True)
        assert (
            main(["--scale", "0.02", "geolocate", str(path), "--quarantine"])
            == 0
        )
        out = capsys.readouterr().out
        assert "placement" in out
        assert "mangled" in out  # named in the load report's quarantine list
        assert "quarantined hollow: empty-trace" in out


class TestReplayCommand:
    def _write_traces(self, path):
        lines = []
        for index in range(10):
            user_hour = 19 + index % 3
            stamps = [day * 86400.0 + user_hour * 3600.0 for day in range(40)]
            lines.append(
                json.dumps({"user": f"u{index:02d}", "timestamps": stamps})
            )
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    def test_parser_flags(self):
        args = build_parser().parse_args(
            ["replay", "traces.store", "--store", "--batch-size", "4096"]
        )
        assert args.traces == "traces.store"
        assert args.store
        assert args.batch_size == 4096
        assert args.drift_window is None
        defaults = build_parser().parse_args(["replay", "t.jsonl"])
        assert defaults.batch_size == 8192
        assert not defaults.store

    def test_monitor_batch_size_flag(self):
        args = build_parser().parse_args(["monitor", "--batch-size", "1024"])
        assert args.batch_size == 1024
        assert build_parser().parse_args(["monitor"]).batch_size == 8192

    def test_replay_jsonl(self, capsys, tmp_path):
        path = tmp_path / "traces.jsonl"
        self._write_traces(path)
        assert main(["--scale", "0.02", "replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ingested 400 events" in out
        assert "events/s" in out
        assert "streamed 400 events" in out
        assert "placement" in out

    def test_replay_store_matches_jsonl(self, capsys, tmp_path):
        jsonl = tmp_path / "traces.jsonl"
        self._write_traces(jsonl)
        store = tmp_path / "traces.store"
        assert main(["--scale", "0.02", "convert", str(jsonl), str(store)]) == 0
        capsys.readouterr()
        assert main(["--scale", "0.02", "replay", str(store), "--store"]) == 0
        out = capsys.readouterr().out
        assert "ingested 400 events" in out
        assert "placement" in out

    def test_replay_drift_writes_migrations(self, capsys, tmp_path):
        path = tmp_path / "traces.jsonl"
        self._write_traces(path)
        out_path = tmp_path / "migrations.jsonl"
        assert (
            main(
                [
                    "--scale",
                    "0.02",
                    "replay",
                    str(path),
                    "--drift-window",
                    "30",
                    "--migrations-out",
                    str(out_path),
                    "--batch-size",
                    "97",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "zone migrations" in out
        assert out_path.exists()

    def test_migrations_out_requires_drift_window(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        self._write_traces(path)
        with pytest.raises(SystemExit, match="drift-window"):
            main(
                [
                    "--scale",
                    "0.02",
                    "replay",
                    str(path),
                    "--migrations-out",
                    str(tmp_path / "m.jsonl"),
                ]
            )


class TestObservatoryCli:
    """--series-out/--health-out/--profile-out, stats on them, dashboard."""

    def _write_traces(self, path):
        lines = []
        for index in range(10):
            user_hour = 19 + index % 3
            stamps = [day * 86400.0 + user_hour * 3600.0 for day in range(40)]
            lines.append(
                json.dumps({"user": f"u{index:02d}", "timestamps": stamps})
            )
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    def _replay_with_observatory(self, tmp_path, capsys):
        traces = tmp_path / "traces.jsonl"
        self._write_traces(traces)
        series = tmp_path / "series.jsonl"
        health = tmp_path / "health.jsonl"
        assert (
            main(
                [
                    "--scale",
                    "0.02",
                    "replay",
                    str(traces),
                    "--batch-size",
                    "97",
                    "--series-out",
                    str(series),
                    "--health-out",
                    str(health),
                ]
            )
            == 0
        )
        return series, health, capsys.readouterr().out

    def test_parser_observatory_flags(self):
        args = build_parser().parse_args(
            [
                "replay",
                "t.jsonl",
                "--series-out",
                "s.jsonl",
                "--health-out",
                "h.jsonl",
                "--profile-out",
                "p.json",
            ]
        )
        assert args.series_out == "s.jsonl"
        assert args.health_out == "h.jsonl"
        assert args.profile_out == "p.json"
        monitor = build_parser().parse_args(["monitor", "--series-out", "s.jsonl"])
        assert monitor.series_out == "s.jsonl"
        dash = build_parser().parse_args(["dashboard", "--series", "s.jsonl"])
        assert dash.out == "dashboard.html"
        assert not dash.ansi

    def test_replay_writes_series_and_health(self, capsys, tmp_path):
        from repro.obs.health import load_health_jsonl
        from repro.obs.timeseries import load_series_jsonl

        series, health, out = self._replay_with_observatory(tmp_path, capsys)
        assert "series written to" in out
        assert "health events written to" in out
        frame = load_series_jsonl(series)
        assert len(frame) >= 2  # several chunks crossed the 6 h interval
        assert "stream_events_total" in frame.names()
        times, values = frame.series("stream_events_total")
        assert list(values) == sorted(values)  # a counter never decreases
        header, events = load_health_jsonl(health)
        assert "migration_rate_spike" in header["rules"]
        assert events == []  # stationary crowd: nothing ever trips
        assert "overall ok" in out

    def test_replay_store_observatory_prints_caveat(self, capsys, tmp_path):
        traces = tmp_path / "traces.jsonl"
        self._write_traces(traces)
        store = tmp_path / "traces.store"
        assert main(["--scale", "0.02", "convert", str(traces), str(store)]) == 0
        capsys.readouterr()
        assert (
            main(
                [
                    "--scale",
                    "0.02",
                    "replay",
                    str(store),
                    "--store",
                    "--series-out",
                    str(tmp_path / "s.jsonl"),
                ]
            )
            == 0
        )
        assert "user-ordered columns" in capsys.readouterr().out

    def test_profile_out_writes_profile(self, capsys, tmp_path):
        from repro.obs.profiler import load_profile

        traces = tmp_path / "traces.jsonl"
        self._write_traces(traces)
        profile = tmp_path / "run.profile.json"
        assert (
            main(
                [
                    "--scale",
                    "0.02",
                    "replay",
                    str(traces),
                    "--profile-out",
                    str(profile),
                ]
            )
            == 0
        )
        assert "profile written to" in capsys.readouterr().out
        payload = load_profile(profile)
        assert payload["kind"] == "repro-profile"
        assert payload["n_samples"] >= 0

    def test_stats_renders_observatory_artifacts(self, capsys, tmp_path):
        series, health, _ = self._replay_with_observatory(tmp_path, capsys)
        assert main(["stats", str(series)]) == 0
        out = capsys.readouterr().out
        assert "stream_events_total" in out
        assert "samples" in out
        assert main(["stats", str(health)]) == 0
        out = capsys.readouterr().out
        assert "migration_rate_spike" in out
        assert "no health transitions recorded" in out

    def test_stats_renders_profile(self, capsys, tmp_path):
        from repro.obs.profiler import SamplingProfiler

        profiler = SamplingProfiler()
        profiler._counts[("main", "ingest")] = 5
        profiler._n_samples = 5
        path = profiler.write(tmp_path / "p.json")
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ingest" in out
        assert "5" in out

    def test_dashboard_writes_html(self, capsys, tmp_path):
        series, health, _ = self._replay_with_observatory(tmp_path, capsys)
        out_path = tmp_path / "dash.html"
        assert (
            main(
                [
                    "dashboard",
                    "--series",
                    str(series),
                    "--health",
                    str(health),
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        assert "dashboard written to" in capsys.readouterr().out
        html = out_path.read_text(encoding="utf-8")
        assert html.lstrip().startswith("<!DOCTYPE html>")
        assert "stream_events_total" in html
        assert "src=" not in html  # self-contained: no external fetches

    def test_dashboard_ansi_prints_inline(self, capsys, tmp_path):
        series, _, _ = self._replay_with_observatory(tmp_path, capsys)
        assert main(["dashboard", "--series", str(series), "--ansi"]) == 0
        out = capsys.readouterr().out
        assert "stream_events_total" in out

    def test_dashboard_requires_an_artifact(self):
        with pytest.raises(SystemExit, match="at least one"):
            main(["dashboard"])

    def test_dashboard_rejects_corrupt_artifact(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["dashboard", "--series", str(bad)])
