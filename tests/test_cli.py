"""The darkcrowd command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig_number(self):
        args = build_parser().parse_args(["fig", "3"])
        assert args.command == "fig"
        assert args.number == 3

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.scale == 0.04
        assert args.forum_scale == 1.0
        assert not args.no_tor

    def test_fast_flag(self):
        args = build_parser().parse_args(["--fast", "table1"])
        assert args.fast


class TestCommands:
    def test_table1(self, capsys):
        assert main(["--scale", "0.02", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Brazil" in out
        assert "3763" in out

    def test_fig1(self, capsys):
        assert main(["--scale", "0.02", "fig", "1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out

    def test_fig2(self, capsys):
        assert main(["--scale", "0.02", "fig", "2"]) == 0
        out = capsys.readouterr().out
        assert "Pearson" in out

    def test_fig7(self, capsys):
        assert main(["--scale", "0.02", "fig", "7"]) == 0
        out = capsys.readouterr().out
        assert "flat" in out

    def test_unknown_fig(self):
        with pytest.raises(SystemExit):
            main(["--scale", "0.02", "fig", "99"])

    def test_fig10_fast_forum(self, capsys):
        assert (
            main(
                ["--scale", "0.02", "--forum-scale", "0.4", "--no-tor", "fig", "10"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Italian DarkNet Community" in out
        assert "recovered" in out
