"""DST rule engine: boundaries and hemisphere conventions."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.timebase.clock import CivilDate, civil_to_ordinal
from repro.timebase.dst import (
    AU_RULE,
    BR_RULE,
    EU_RULE,
    NO_DST,
    RULES,
    US_RULE,
    DstObservance,
)


def _ordinal(year, month, day):
    return civil_to_ordinal(CivilDate(year, month, day))


class TestEuRule:
    def test_starts_last_sunday_of_march(self):
        assert not EU_RULE.is_dst(_ordinal(2016, 3, 26))
        assert EU_RULE.is_dst(_ordinal(2016, 3, 27))

    def test_ends_last_sunday_of_october(self):
        assert EU_RULE.is_dst(_ordinal(2016, 10, 29))
        assert not EU_RULE.is_dst(_ordinal(2016, 10, 30))

    def test_midsummer(self):
        assert EU_RULE.is_dst(_ordinal(2016, 7, 1))

    def test_midwinter(self):
        assert not EU_RULE.is_dst(_ordinal(2016, 1, 15))

    def test_offset_adjustment(self):
        assert EU_RULE.offset_adjustment(_ordinal(2016, 7, 1)) == 1
        assert EU_RULE.offset_adjustment(_ordinal(2016, 1, 1)) == 0


class TestUsRule:
    def test_starts_second_sunday_of_march(self):
        assert not US_RULE.is_dst(_ordinal(2016, 3, 12))
        assert US_RULE.is_dst(_ordinal(2016, 3, 13))

    def test_ends_first_sunday_of_november(self):
        assert US_RULE.is_dst(_ordinal(2016, 11, 5))
        assert not US_RULE.is_dst(_ordinal(2016, 11, 6))


class TestSouthernRules:
    def test_au_summer_wraps_new_year(self):
        assert AU_RULE.is_dst(_ordinal(2016, 12, 25))
        assert AU_RULE.is_dst(_ordinal(2017, 1, 15))
        assert not AU_RULE.is_dst(_ordinal(2016, 7, 1))

    def test_au_boundaries_2016(self):
        # First Sunday of October 2016: Oct 2; of April: Apr 3.
        assert not AU_RULE.is_dst(_ordinal(2016, 10, 1))
        assert AU_RULE.is_dst(_ordinal(2016, 10, 2))
        assert AU_RULE.is_dst(_ordinal(2016, 4, 2))
        assert not AU_RULE.is_dst(_ordinal(2016, 4, 3))

    def test_br_boundaries_2016(self):
        # Third Sunday of October 2016: Oct 16; of February: Feb 21.
        assert not BR_RULE.is_dst(_ordinal(2016, 10, 15))
        assert BR_RULE.is_dst(_ordinal(2016, 10, 16))
        assert BR_RULE.is_dst(_ordinal(2016, 2, 20))
        assert not BR_RULE.is_dst(_ordinal(2016, 2, 21))


class TestNoDst:
    @given(st.integers(-2000, 2000))
    def test_never_dst(self, ordinal):
        assert not NO_DST.is_dst(ordinal)
        assert NO_DST.offset_adjustment(ordinal) == 0


class TestRuleInvariants:
    @pytest.mark.parametrize("rule", [EU_RULE, US_RULE])
    @given(year=st.integers(2000, 2050))
    def test_northern_january_standard_july_dst(self, rule, year):
        assert not rule.is_dst(_ordinal(year, 1, 10))
        assert rule.is_dst(_ordinal(year, 7, 10))

    @pytest.mark.parametrize("rule", [AU_RULE, BR_RULE])
    @given(year=st.integers(2000, 2050))
    def test_southern_january_dst_july_standard(self, rule, year):
        assert rule.is_dst(_ordinal(year, 1, 10))
        assert not rule.is_dst(_ordinal(year, 7, 10))

    def test_registry_contains_all_rules(self):
        assert set(RULES) == {"none", "eu", "us", "au", "br"}

    @pytest.mark.parametrize("rule", [EU_RULE, US_RULE, AU_RULE, BR_RULE])
    def test_dst_days_per_year_plausible(self, rule):
        days = sum(
            1
            for ordinal in range(_ordinal(2017, 1, 1), _ordinal(2018, 1, 1))
            if rule.is_dst(ordinal)
        )
        if rule.observance is DstObservance.NORTHERN:
            assert 200 <= days <= 250
        else:
            assert 120 <= days <= 190
