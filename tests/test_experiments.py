"""Smoke + shape tests of every experiment driver (small scales)."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    run_fig1_user_profile,
    run_fig2_profiles,
    run_fig6_mixture,
    run_fig7_flat,
    run_forum_case_study,
    run_hemisphere_validation,
    run_single_country_placement,
    run_table1,
    run_table2,
)
from repro.core.hemisphere import HemisphereVerdict
from repro.timebase.zones import Hemisphere


class TestTable1:
    def test_rows_and_counts(self, context):
        rows = run_table1(context)
        assert len(rows) == 14
        by_name = {name: (paper, ours) for name, paper, ours in rows}
        assert by_name["Brazil"][0] == 3763
        assert all(ours > 0 for _, _, ours in rows)


class TestFig1:
    def test_user_profile_shape(self, context):
        result = run_fig1_user_profile(context)
        profile = result.profile
        # Night trough must be far below the day/evening activity.
        night = sum(profile[h] for h in range(2, 6))
        evening = sum(profile[h] for h in range(18, 23))
        assert evening > 2 * night


class TestFig2:
    def test_profiles_agree(self, context):
        result = run_fig2_profiles(context)
        assert result.pearson_regional_vs_generic > 0.75
        assert result.average_pairwise_pearson > 0.8


class TestSingleCountry:
    @pytest.mark.parametrize(
        "region_key", ["germany", "france", "malaysia"]
    )
    def test_center_recovered(self, context, region_key):
        result = run_single_country_placement(region_key, context, n_users=120)
        assert result.center_error() <= 1.0
        assert 0.5 <= result.fit.sigma <= 4.0

    def test_fit_metrics_small(self, context):
        result = run_single_country_placement("malaysia", context, n_users=120)
        assert result.fit_metrics.average < 0.03


class TestFig6:
    def test_relocated_recovers_three_zones(self, context):
        result = run_fig6_mixture("relocated", context, users_per_component=60)
        assert result.mixture.k == 3
        assert result.max_center_error() <= 1.2

    def test_merged_recovers_three_zones(self, context):
        result = run_fig6_mixture("merged", context, users_per_component=60)
        assert result.mixture.k == 3
        assert result.max_center_error() <= 1.2

    def test_unknown_variant(self, context):
        with pytest.raises(ValueError):
            run_fig6_mixture("bogus", context)


class TestFig7:
    def test_bots_flat_and_removed(self, context):
        result = run_fig7_flat(context, n_humans=50, n_bots=8)
        assert result.bot_is_flat
        assert result.n_removed >= 6
        assert result.removed_are_bots >= 0.9
        assert result.bot_profile.flatness() < 0.2


class TestForumCaseStudies:
    def test_idc_end_to_end_over_tor(self, context):
        study = run_forum_case_study("idc", context, scale=1.0, via_tor=True)
        assert study.scrape.server_offset_hours == pytest.approx(1.0)
        assert study.report.mixture.k == 1
        assert 0.5 <= study.report.mixture.dominant().mean <= 2.8

    def test_dream_market_two_components(self, context):
        study = run_forum_case_study(
            "dream_market", context, scale=0.5, via_tor=False
        )
        assert study.report.mixture.k == 2
        zones = sorted(study.report.zone_offsets())
        assert abs(zones[0] - (-6)) <= 1
        assert abs(zones[1] - 1) <= 1

    def test_tor_and_direct_agree(self, context):
        direct = run_forum_case_study("idc", context, scale=0.5, via_tor=False)
        tor = run_forum_case_study("idc", context, scale=0.5, via_tor=True)
        assert direct.report.n_users == tor.report.n_users
        assert direct.report.placement.fractions == tor.report.placement.fractions


class TestTable2:
    def test_baseline_dominates(self, context):
        rows = run_table2(context, forum_scale=0.35, via_tor=False)
        labels = [row.dataset for row in rows]
        assert labels[0] == "Malaysian Twitter"
        assert labels[-1] == "Baseline"
        assert len(rows) == 11
        baseline = rows[-1]
        fits = rows[:-1]
        # The paper's point: every real fit beats the shifted baseline.
        assert all(row.average < baseline.average for row in fits)


class TestHemisphereValidation:
    def test_mostly_correct(self, context):
        validations = run_hemisphere_validation(context, crowd_size=60)
        total = sum(len(v.results) for v in validations)
        correct = sum(v.n_correct() for v in validations)
        assert correct / total >= 0.7
        brazil = next(v for v in validations if v.region_key == "brazil")
        assert brazil.expected is Hemisphere.SOUTHERN
        southern = sum(
            1
            for result in brazil.results
            if result.verdict is HemisphereVerdict.SOUTHERN
        )
        assert southern >= 3
