"""Bit-identity of the bulk-ingest pipeline against the per-event loop.

The contract of the vectorised intake path (``observe_batch``,
``observe_events`` routing, ``ingest_store``): for the same event order
the engine lands in *exactly* the state the per-event ``observe()`` loop
produces -- same counts, same dirty set, same ``min_posts`` promotions,
same drift migrations in the same order, same snapshots and checkpoints.
The property tests here drive random interleavings of all the intake
APIs, with snapshots and checkpoint round-trips mixed in, against a
per-event oracle; the deterministic tests replay the relocation drift
scenario under several chunkings.

Timestamps stay non-negative: the kernels clip the hour bin to 23 where
``_UserState.add`` relies on ``ts % 86400`` landing in range, and the
two disagree only for a timestamp within one float64 ulp below a
*negative* day boundary -- a pathology real traces cannot produce.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.drift import DriftConfig
from repro.core.events import ActivityTrace, PostEvent
from repro.core.streaming import BATCH_OBSERVE_THRESHOLD, StreamingGeolocator
from repro.datasets.store import TraceStore
from repro.synth.drift import build_relocation_scenario

#: Migration events stamp ``wall_time`` from the injectable clock seam;
#: freezing it makes event logs comparable across engines.
FROZEN_WALL = 1.7e9

#: Small thresholds so the drift lifecycle actually fires on the few
#: hundred events a property-test example feeds.
SMALL_DRIFT = DriftConfig(
    window_days=12,
    check_interval_days=2,
    min_window_cells=4,
    min_reestimate_cells=6,
    min_history_cells=8,
)


def make_engine(drift: DriftConfig | None) -> StreamingGeolocator:
    return StreamingGeolocator(
        min_posts=3, drift=drift, wall_clock=lambda: FROZEN_WALL
    )


def feed_per_event(engine: StreamingGeolocator, segment) -> None:
    for user_id, timestamp in segment:
        engine.observe(user_id, timestamp)


def assert_identical(
    oracle: StreamingGeolocator, engine: StreamingGeolocator
) -> None:
    """Full-state equality, including what snapshot() would drain."""
    assert set(engine._dirty) == set(oracle._dirty)
    assert set(engine._pending_refine) == set(oracle._pending_refine)
    assert engine._stream_day == oracle._stream_day
    assert engine.state_dict() == oracle.state_dict()
    meta_a, arrays_a = oracle.binary_state()
    meta_b, arrays_b = engine.binary_state()
    assert meta_b == meta_a
    assert set(arrays_b) == set(arrays_a)
    for key in arrays_a:
        assert np.array_equal(arrays_b[key], arrays_a[key]), key
    assert [event.to_dict() for event in engine.migrations] == [
        event.to_dict() for event in oracle.migrations
    ]
    expected = oracle.snapshot()
    actual = engine.snapshot()
    assert actual.n_events_seen == expected.n_events_seen
    assert actual.n_users_seen == expected.n_users_seen
    assert actual.n_users_active == expected.n_users_active
    assert actual.mixture == expected.mixture
    assert actual.placement == expected.placement
    assert (actual.confidence is None) == (expected.confidence is None)
    if expected.confidence is not None:
        for field in ("n_tracked", "n_stale", "threshold", "mean", "minimum"):
            left = getattr(actual.confidence, field)
            right = getattr(expected.confidence, field)
            # NaN summaries (no tracked users yet) must still compare equal.
            assert left == right or (np.isnan(left) and np.isnan(right))


@st.composite
def ingest_plans(draw):
    """A random event sequence cut into segments with a method each.

    Every segment is fed to the oracle per event and to the engine via
    the segment's API; between segments both sides may snapshot or
    round-trip through a checkpoint.
    """
    n_users = draw(st.integers(min_value=1, max_value=5))
    n_events = draw(st.integers(min_value=0, max_value=140))
    events = [
        (
            f"u{draw(st.integers(min_value=0, max_value=n_users - 1))}",
            float(
                draw(st.integers(min_value=0, max_value=40)) * 86400
                + draw(st.integers(min_value=0, max_value=86399))
            ),
        )
        for _ in range(n_events)
    ]
    plan = []
    cursor = 0
    while cursor < len(events):
        length = draw(st.integers(min_value=1, max_value=40))
        segment = events[cursor : cursor + length]
        cursor += length
        method = draw(
            st.sampled_from(["observe", "events", "batch", "batch_ndarray"])
        )
        plan.append((method, segment))
        between = draw(st.sampled_from(["none", "snapshot", "roundtrip"]))
        if between != "none":
            plan.append((between, ()))
    return plan


def apply_bulk(engine: StreamingGeolocator, op: str, segment):
    """Run one plan op through the engine's bulk-facing surface."""
    if op == "observe":
        feed_per_event(engine, segment)
    elif op == "events":
        engine.observe_events(
            [PostEvent(timestamp, user_id) for user_id, timestamp in segment]
        )
    elif op == "batch":
        engine.observe_batch(
            [user_id for user_id, _ in segment],
            [timestamp for _, timestamp in segment],
        )
    elif op == "batch_ndarray":
        engine.observe_batch(
            np.asarray([user_id for user_id, _ in segment]),
            np.asarray([timestamp for _, timestamp in segment]),
        )
    elif op == "snapshot":
        engine.snapshot()
    elif op == "roundtrip":
        engine = StreamingGeolocator.from_state_dict(engine.state_dict())
        engine._wall_now = lambda: FROZEN_WALL
    else:  # pragma: no cover - strategy bug
        raise AssertionError(op)
    return engine


class TestObserveBatchProperty:
    @pytest.mark.parametrize("drift", [None, SMALL_DRIFT], ids=["plain", "drift"])
    @settings(max_examples=30, deadline=None)
    @given(plan=ingest_plans())
    def test_interleaved_apis_match_per_event_oracle(self, drift, plan):
        oracle = make_engine(drift)
        engine = make_engine(drift)
        for op, segment in plan:
            if op in ("snapshot", "roundtrip"):
                oracle = apply_bulk(oracle, op, segment)
            else:
                feed_per_event(oracle, segment)
            engine = apply_bulk(engine, op, segment)
        assert_identical(oracle, engine)

    @settings(max_examples=15, deadline=None)
    @given(
        posts=st.lists(
            st.integers(min_value=0, max_value=30), min_size=1, max_size=5
        ),
        max_posts=st.integers(min_value=1, max_value=80),
        use_drift=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_ingest_store_matches_store_order_oracle(
        self, posts, max_posts, use_drift, seed
    ):
        rng = np.random.default_rng(seed)
        traces = [
            ActivityTrace(
                f"u{index}",
                np.sort(rng.uniform(0.0, 40 * 86400.0, size=count)),
            )
            for index, count in enumerate(posts)
            if count
        ]
        if not traces:
            return
        drift = SMALL_DRIFT if use_drift else None
        tmp = Path(tempfile.mkdtemp(prefix="ingest-store-"))
        try:
            store = TraceStore.write(traces, tmp / "crowd.store")
            oracle = make_engine(drift)
            for ids, lengths, stamps in store.iter_column_chunks(
                max_posts=max_posts
            ):
                cursor = 0
                for user_id, count in zip(ids, lengths):
                    for timestamp in stamps[cursor : cursor + int(count)]:
                        oracle.observe(user_id, timestamp)
                    cursor += int(count)
            engine = make_engine(drift)
            n = engine.ingest_store(store, max_posts=max_posts)
            assert n == sum(len(trace) for trace in traces)
            assert_identical(oracle, engine)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)


@pytest.mark.drift
class TestRelocationChunked:
    """The acceptance scenario, bit-identical under every chunking."""

    def test_chunked_replay_matches_per_event(self):
        scenario = build_relocation_scenario(seed=42)
        events = scenario.sorted_events()
        oracle = StreamingGeolocator(
            drift=DriftConfig(), wall_clock=lambda: FROZEN_WALL
        )
        for timestamp, user_id in events:
            oracle.observe(user_id, timestamp)
        assert oracle.migrations, "scenario must actually fire migrations"
        reference_state = oracle.state_dict()
        reference_log = [event.to_dict() for event in oracle.migrations]
        for chunk in (13, 4096, len(events)):
            engine = StreamingGeolocator(
                drift=DriftConfig(), wall_clock=lambda: FROZEN_WALL
            )
            for low in range(0, len(events), chunk):
                segment = events[low : low + chunk]
                engine.observe_batch(
                    [user_id for _, user_id in segment],
                    [timestamp for timestamp, _ in segment],
                )
            assert [e.to_dict() for e in engine.migrations] == reference_log
            assert engine.state_dict() == reference_state


class TestBatchSurface:
    def test_observe_events_routes_sized_inputs_through_batch(self):
        engine = StreamingGeolocator(min_posts=3)
        calls = []
        bulk = engine.observe_batch

        def spy(user_ids, timestamps):
            calls.append(len(user_ids))
            return bulk(user_ids, timestamps)

        engine.observe_batch = spy
        events = [
            PostEvent(float(i) * 3600.0, f"u{i % 7}")
            for i in range(BATCH_OBSERVE_THRESHOLD)
        ]
        engine.observe_events(events)
        assert calls == [BATCH_OBSERVE_THRESHOLD]
        # Generators have no len() and keep the serial loop.
        engine.observe_events(iter(events))
        assert calls == [BATCH_OBSERVE_THRESHOLD]
        # Small sized inputs stay serial too.
        engine.observe_events(events[:8])
        assert calls == [BATCH_OBSERVE_THRESHOLD]
        assert engine.n_events == 2 * len(events) + 8

    def test_serial_and_batch_routes_agree(self):
        events = [
            PostEvent(float(i) * 7013.0, f"u{i % 5}")
            for i in range(BATCH_OBSERVE_THRESHOLD + 17)
        ]
        serial = StreamingGeolocator(min_posts=3)
        for event in events:
            serial.observe(event.user_id, event.timestamp)
        routed = StreamingGeolocator(min_posts=3)
        routed.observe_events(events)
        assert routed.state_dict() == serial.state_dict()

    def test_empty_batch_is_a_noop(self):
        engine = StreamingGeolocator()
        assert engine.observe_batch([], []) == 0
        assert engine.n_events == 0
        assert engine.n_users() == 0

    def test_length_mismatch_rejected(self):
        engine = StreamingGeolocator()
        with pytest.raises(ValueError, match="disagree"):
            engine.observe_batch(["a", "b"], [1.0])

    def test_non_1d_timestamps_rejected(self):
        engine = StreamingGeolocator()
        with pytest.raises(ValueError, match="1-D"):
            engine.observe_batch(["a"], np.zeros((1, 1)))

    def test_ndarray_ids_match_list_ids(self):
        user_ids = ["zeta", "alpha", "zeta", "mid", "alpha", "zeta"]
        stamps = [3600.0 * i for i in range(6)]
        from_list = StreamingGeolocator(min_posts=2)
        from_list.observe_batch(user_ids, stamps)
        from_array = StreamingGeolocator(min_posts=2)
        from_array.observe_batch(np.asarray(user_ids), np.asarray(stamps))
        assert from_array.state_dict() == from_list.state_dict()
        # First-appearance order, not lexicographic order.
        assert list(from_array._users) == ["zeta", "alpha", "mid"]
