"""Cross-module property-based tests: the invariants that make the
method sound.

These go beyond per-module unit tests: they pin down the *algebra* of
the pipeline (shift equivariance of placement, idempotence of polishing,
calibration invariance of scraping) that the paper's correctness rests
on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.emd import emd_circular, emd_linear
from repro.core.events import ActivityTrace
from repro.core.flatness import polish_trace_set
from repro.core.placement import place_users
from repro.core.profiles import HOURS, Profile, build_user_profile
from repro.core.reference import ReferenceProfiles
from repro.forum.engine import ForumServer
from repro.forum.scraper import ForumScraper
from repro.timebase.zones import normalize_offset

mass = st.lists(st.floats(0.01, 5.0, allow_nan=False), min_size=HOURS, max_size=HOURS)


class TestShiftEquivariance:
    @given(st.integers(-11, 12), st.integers(-6, 6))
    @settings(max_examples=40, deadline=None)
    def test_placement_shift_equivariance(self, base_zone, shift):
        """Shifting a user's clock by -s hours moves their zone by +s.

        This is the core soundness property: the EMD placement commutes
        with time translation (modulo the 24-zone wrap).
        """
        references = ReferenceProfiles.canonical()
        profile = references.for_zone(base_zone)
        shifted_profile = profile.shifted(-shift)
        placed = place_users({"u": shifted_profile}, references)["u"]
        assert placed == normalize_offset(base_zone + shift)

    @given(mass, st.integers(0, 23))
    @settings(max_examples=40)
    def test_circular_emd_shift_invariant_linear_not_necessarily(self, p, shift):
        profile = Profile(p)
        other = Profile(np.roll(np.asarray(p), 5) + 0.001)
        circular_before = emd_circular(profile, other)
        circular_after = emd_circular(profile.shifted(shift), other.shifted(shift))
        assert circular_before == pytest.approx(circular_after, abs=1e-9)


class TestTraceAlgebra:
    @given(
        st.lists(st.floats(0, 1e7, allow_nan=False), min_size=1, max_size=30),
        st.lists(st.floats(0, 1e7, allow_nan=False), min_size=1, max_size=30),
    )
    @settings(max_examples=30)
    def test_merge_commutative(self, a, b):
        left = ActivityTrace("u", a).merged_with(ActivityTrace("u", b))
        right = ActivityTrace("u", b).merged_with(ActivityTrace("u", a))
        assert np.allclose(left.timestamps, right.timestamps)

    @given(
        st.lists(st.floats(0, 1e7, allow_nan=False), min_size=1, max_size=30),
        st.floats(-24.0, 24.0, allow_nan=False),
    )
    @settings(max_examples=30)
    def test_shift_roundtrip(self, stamps, hours):
        trace = ActivityTrace("u", stamps)
        back = trace.shifted(hours).shifted(-hours)
        assert np.allclose(back.timestamps, trace.timestamps)

    @given(st.lists(st.floats(0, 1e7, allow_nan=False), min_size=1, max_size=40))
    @settings(max_examples=30)
    def test_profile_invariant_under_whole_day_shifts(self, stamps):
        """Moving a trace by exactly k days leaves its profile unchanged."""
        trace = ActivityTrace("u", stamps)
        moved = trace.shifted(48.0)  # two days
        assert build_user_profile(trace) == build_user_profile(moved)


class TestPolishIdempotence:
    def test_polish_twice_is_polish_once(self, references, rng):
        from repro.synth.bots import generate_bot_trace
        from repro.synth.twitter import build_region_crowd

        crowd = build_region_crowd("france", 30, seed=3, n_days=200)
        for index in range(4):
            crowd.add(generate_bot_trace(f"bot{index}", rng, n_days=200))
        once = polish_trace_set(crowd, references, min_posts=30)
        twice = polish_trace_set(once.polished, references, min_posts=30)
        assert twice.n_removed == 0
        assert set(twice.polished.user_ids()) == set(once.polished.user_ids())


class TestScrapeInvariance:
    @given(st.integers(-11, 12))
    @settings(max_examples=20, deadline=None)
    def test_recovered_times_independent_of_server_offset(self, offset):
        stamps = [1000.0, 5000.0, 25_000.0]
        forum = ForumServer("F", "x.onion", server_offset_hours=offset)
        forum.import_crowd_posts({"user": stamps})
        result = ForumScraper(forum).scrape(100_000.0)
        assert np.allclose(result.traces["user"].timestamps, stamps)

    @given(st.integers(-11, 12), st.integers(-11, 12))
    @settings(max_examples=15, deadline=None)
    def test_two_forums_same_crowd_same_traces(self, offset_a, offset_b):
        stamps = [86_400.0 * i + 3600.0 for i in range(5)]
        results = []
        for offset in (offset_a, offset_b):
            forum = ForumServer("F", "x.onion", server_offset_hours=offset)
            forum.import_crowd_posts({"user": stamps})
            results.append(ForumScraper(forum).scrape(10**6))
        assert np.allclose(
            results[0].traces["user"].timestamps,
            results[1].traces["user"].timestamps,
        )


class TestEmdBounds:
    @given(mass, mass)
    @settings(max_examples=40)
    def test_linear_emd_bounded_by_support_diameter(self, p, q):
        # No transport plan on 24 bins can move mass farther than 23.
        assert 0.0 <= emd_linear(np.asarray(p), np.asarray(q)) <= 23.0

    @given(mass, mass)
    @settings(max_examples=40)
    def test_circular_emd_bounded_by_half_circle(self, p, q):
        assert 0.0 <= emd_circular(np.asarray(p), np.asarray(q)) <= 12.0
