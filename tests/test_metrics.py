"""Pearson and Table II fit-distance metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gaussian import GaussianComponent, mixture_pdf
from repro.core.metrics import (
    baseline_metrics,
    fit_distance_metrics,
    pearson,
)
from repro.core.placement import PlacementDistribution
from repro.core.profiles import Profile
from repro.timebase.zones import ZONE_OFFSETS


def _placement(components, n_users=300):
    offsets = np.asarray(ZONE_OFFSETS, dtype=float)
    density = np.asarray(mixture_pdf(components, offsets))
    fractions = density / density.sum()
    return PlacementDistribution(tuple(fractions.tolist()), n_users=n_users)


class TestPearson:
    def test_perfect_correlation(self):
        a = Profile(np.arange(1.0, 25.0))
        b = Profile(2.0 * np.arange(1.0, 25.0))
        assert pearson(a, b) == pytest.approx(1.0)

    def test_anti_correlation(self):
        a = Profile(np.arange(1.0, 25.0))
        b = Profile(np.arange(24.0, 0.0, -1.0))
        assert pearson(a, b) == pytest.approx(-1.0)

    def test_matches_numpy(self):
        rng = np.random.default_rng(3)
        x = rng.random(24) + 0.01
        y = rng.random(24) + 0.01
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson(np.ones(24), np.ones(23))

    def test_accepts_profiles_and_arrays(self):
        profile = Profile(np.arange(1.0, 25.0))
        assert pearson(profile, profile.mass) == pytest.approx(1.0)


class TestFitDistanceMetrics:
    def test_good_fit_small_metrics(self):
        truth = GaussianComponent(mean=1.0, sigma=2.0, weight=1.0)
        placement = _placement([truth])
        # Rescale weight to account for the renormalisation of fractions.
        offsets = np.asarray(ZONE_OFFSETS, dtype=float)
        scale = float(np.asarray(truth.pdf(offsets)).sum())
        fitted = GaussianComponent(mean=1.0, sigma=2.0, weight=1.0 / scale)
        metrics = fit_distance_metrics(placement, [fitted])
        assert metrics.average < 1e-9
        assert metrics.standard_deviation < 1e-9

    def test_shift_degrades_metrics(self):
        truth = GaussianComponent(mean=1.0, sigma=2.0, weight=1.0)
        placement = _placement([truth])
        aligned = fit_distance_metrics(placement, [truth])
        shifted = fit_distance_metrics(placement, [truth], shift_hours=12.0)
        assert shifted.average > aligned.average

    def test_baseline_is_12h_shift(self):
        truth = GaussianComponent(mean=1.0, sigma=2.0, weight=1.0)
        placement = _placement([truth])
        assert baseline_metrics(placement, [truth]) == fit_distance_metrics(
            placement, [truth], shift_hours=12.0
        )

    def test_as_row(self):
        truth = GaussianComponent(mean=1.0, sigma=2.0, weight=1.0)
        placement = _placement([truth])
        metrics = fit_distance_metrics(placement, [truth])
        label, avg, std = metrics.as_row("German Twitter")
        assert label == "German Twitter"
        assert avg == metrics.average
        assert std == metrics.standard_deviation

    def test_paper_shape_baseline_much_worse(self):
        # Table II's point: baseline (shifted) metrics dwarf real fits.
        truth = GaussianComponent(mean=8.0, sigma=2.0, weight=1.0)
        placement = _placement([truth])
        offsets = np.asarray(ZONE_OFFSETS, dtype=float)
        scale = float(np.asarray(truth.pdf(offsets)).sum())
        fitted = GaussianComponent(mean=8.0, sigma=2.0, weight=1.0 / scale)
        good = fit_distance_metrics(placement, [fitted])
        bad = baseline_metrics(placement, [fitted])
        assert bad.average > 5 * max(good.average, 1e-6)
