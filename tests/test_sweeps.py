"""Sensitivity sweeps."""

from __future__ import annotations

import math

from repro.analysis.sweeps import run_activity_sweep, run_crowd_size_sweep


class TestCrowdSizeSweep:
    def test_ci_shrinks_with_crowd(self, context):
        rows = run_crowd_size_sweep(
            context, crowd_sizes=(15, 120), n_resamples=40
        )
        assert rows[0].ci_width > rows[-1].ci_width

    def test_large_crowd_recovers_center(self, context):
        rows = run_crowd_size_sweep(
            context, crowd_sizes=(120,), n_resamples=40
        )
        assert rows[0].center_error <= 1.2
        assert rows[0].k_recovered == 1

    def test_row_bookkeeping(self, context):
        rows = run_crowd_size_sweep(context, crowd_sizes=(20,), n_resamples=30)
        assert rows[0].n_users_requested == 20
        assert 0 < rows[0].n_users_placed <= 20


class TestActivitySweep:
    def test_low_rate_loses_users(self, context):
        rows = run_activity_sweep(
            context, rates=(0.1, 3.0), users_per_region=50
        )
        assert rows[0].n_users_placed < rows[1].n_users_placed
        assert rows[0].median_posts_per_user < rows[1].median_posts_per_user

    def test_high_rate_recovers_both_zones(self, context):
        rows = run_activity_sweep(
            context, rates=(3.0,), users_per_region=60
        )
        row = rows[0]
        assert row.k_recovered == 2
        assert not math.isnan(row.max_center_error)
        assert row.max_center_error <= 1.5
