"""Gaussian components, mixtures and least-squares fits."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.stats import norm

from repro.core.gaussian import (
    PAPER_SIGMA,
    GaussianComponent,
    evaluate_on_zones,
    fit_gaussian,
    gaussian_residual_stats,
    mixture_pdf,
)
from repro.core.placement import PlacementDistribution
from repro.errors import FitError
from repro.timebase.zones import ZONE_OFFSETS


def _placement_from(components, n_users=400):
    offsets = np.asarray(ZONE_OFFSETS, dtype=float)
    density = np.asarray(mixture_pdf(components, offsets))
    fractions = density / density.sum()
    return PlacementDistribution(tuple(fractions.tolist()), n_users=n_users)


class TestGaussianComponent:
    def test_pdf_matches_scipy(self):
        component = GaussianComponent(mean=1.5, sigma=2.0, weight=0.7)
        xs = np.linspace(-11, 12, 47)
        expected = 0.7 * norm.pdf(xs, loc=1.5, scale=2.0)
        assert np.allclose(component.pdf(xs), expected)

    def test_scalar_input_returns_float(self):
        component = GaussianComponent(mean=0.0, sigma=1.0)
        assert isinstance(component.pdf(0.0), float)

    def test_invalid_sigma(self):
        with pytest.raises(FitError):
            GaussianComponent(mean=0.0, sigma=0.0)

    def test_negative_weight(self):
        with pytest.raises(FitError):
            GaussianComponent(mean=0.0, sigma=1.0, weight=-0.1)

    @given(st.floats(-11.4, 12.4))
    def test_nearest_zone_in_range(self, mean):
        component = GaussianComponent(mean=mean, sigma=1.0)
        assert component.nearest_zone() in ZONE_OFFSETS

    def test_nearest_zone_rounds(self):
        assert GaussianComponent(mean=3.4, sigma=1.0).nearest_zone() == 3
        assert GaussianComponent(mean=3.6, sigma=1.0).nearest_zone() == 4


class TestMixturePdf:
    def test_sum_of_components(self):
        a = GaussianComponent(mean=-5.0, sigma=1.0, weight=0.5)
        b = GaussianComponent(mean=5.0, sigma=1.0, weight=0.5)
        xs = np.array([0.0, 5.0])
        assert np.allclose(mixture_pdf([a, b], xs), a.pdf(xs) + b.pdf(xs))

    def test_empty_mixture_is_zero(self):
        assert mixture_pdf([], 0.0) == 0.0

    def test_evaluate_on_zones_shape(self):
        values = evaluate_on_zones([GaussianComponent(mean=0.0, sigma=2.0)])
        assert values.shape == (24,)


class TestFitGaussian:
    @given(
        mean=st.floats(-8.0, 9.0),
        sigma=st.floats(1.0, 3.5),
    )
    @settings(max_examples=25, deadline=None)
    def test_recovers_parameters(self, mean, sigma):
        truth = GaussianComponent(mean=mean, sigma=sigma, weight=1.0)
        placement = _placement_from([truth])
        fit = fit_gaussian(placement)
        assert fit.mean == pytest.approx(mean, abs=0.15)
        assert fit.sigma == pytest.approx(sigma, abs=0.25)

    def test_paper_sigma_default(self):
        assert PAPER_SIGMA == 2.5

    def test_accepts_raw_array(self):
        truth = GaussianComponent(mean=2.0, sigma=2.0, weight=1.0)
        placement = _placement_from([truth])
        fit = fit_gaussian(placement.as_array())
        assert fit.mean == pytest.approx(2.0, abs=0.2)

    def test_wrong_length_rejected(self):
        with pytest.raises(FitError):
            fit_gaussian(np.ones(10))

    def test_point_mass_fit_centres_correctly(self):
        fractions = [0.0] * 24
        fractions[ZONE_OFFSETS.index(4)] = 1.0
        placement = PlacementDistribution(tuple(fractions), n_users=50)
        fit = fit_gaussian(placement)
        assert fit.mean == pytest.approx(4.0, abs=0.3)


class TestResidualStats:
    def test_perfect_fit_zero_mean_residual(self):
        truth = GaussianComponent(mean=0.0, sigma=2.0, weight=1.0)
        placement = _placement_from([truth])
        # The placement was renormalised, so scale the component to match.
        density_sum = float(np.asarray(evaluate_on_zones([truth])).sum())
        scaled = GaussianComponent(mean=0.0, sigma=2.0, weight=1.0 / density_sum)
        avg, std = gaussian_residual_stats(placement, [scaled])
        assert avg == pytest.approx(0.0, abs=1e-9)
        assert std == pytest.approx(0.0, abs=1e-9)

    def test_shifted_fit_large_residual(self):
        truth = GaussianComponent(mean=0.0, sigma=2.0, weight=1.0)
        placement = _placement_from([truth])
        shifted = GaussianComponent(mean=12.0, sigma=2.0, weight=1.0)
        avg, _ = gaussian_residual_stats(placement, [shifted])
        assert avg > 0.01
