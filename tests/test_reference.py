"""Generic profile and zone references."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.reference import (
    ReferenceProfiles,
    canonical_rate,
    parametric_generic_profile,
)
from repro.errors import ProfileError
from repro.timebase.zones import ZONE_OFFSETS


class TestParametricGeneric:
    def test_shape_matches_paper(self):
        generic = parametric_generic_profile()
        assert generic.peak_hour() == 21
        assert generic.trough_hour() == 4

    def test_evening_heavier_than_morning(self):
        generic = parametric_generic_profile()
        assert generic[21] > generic[9] > generic[4]

    def test_lunch_dip(self):
        generic = parametric_generic_profile()
        assert generic[13] < generic[12]
        assert generic[13] < generic[14]

    def test_normalised(self):
        assert np.isclose(parametric_generic_profile().mass.sum(), 1.0)


class TestCanonicalRate:
    def test_integer_hours_match_weights(self):
        generic = parametric_generic_profile()
        # canonical_rate returns the unnormalised weight; ratios must agree.
        assert canonical_rate(21) / canonical_rate(4) == pytest.approx(
            generic[21] / generic[4]
        )

    @given(st.floats(-48.0, 48.0, allow_nan=False))
    def test_periodic(self, hour):
        assert canonical_rate(hour) == pytest.approx(canonical_rate(hour + 24))

    @given(st.floats(0.0, 23.999, allow_nan=False))
    def test_interpolation_bounded_by_neighbours(self, hour):
        low = canonical_rate(float(int(hour)))
        high = canonical_rate(float((int(hour) + 1) % 24))
        value = canonical_rate(hour)
        assert min(low, high) - 1e-12 <= value <= max(low, high) + 1e-12


class TestReferenceProfiles:
    def test_zone_zero_is_generic(self, canonical_references):
        assert canonical_references.for_zone(0) == canonical_references.generic

    @pytest.mark.parametrize("offset", ZONE_OFFSETS)
    def test_nearest_zone_roundtrip(self, canonical_references, offset):
        reference = canonical_references.for_zone(offset)
        assert canonical_references.nearest_zone(reference) == offset

    def test_zone_peak_moves_west_with_offset(self, canonical_references):
        # Higher offsets (east) see their evening peak earlier in UTC.
        east = canonical_references.for_zone(8).peak_hour()
        utc = canonical_references.for_zone(0).peak_hour()
        assert (utc - east) % 24 == 8

    def test_offsets_order(self, canonical_references):
        assert canonical_references.offsets() == tuple(range(-11, 13))

    def test_as_list_length(self, canonical_references):
        assert len(canonical_references.as_list()) == 24

    def test_distance_to_zone_zero_for_own_reference(self, canonical_references):
        reference = canonical_references.for_zone(5)
        assert canonical_references.distance_to_zone(reference, 5) == pytest.approx(0.0)

    def test_for_zone_normalizes(self, canonical_references):
        assert canonical_references.for_zone(13) == canonical_references.for_zone(-11)


class TestFromRegionalCrowds:
    def test_empty_rejected(self):
        with pytest.raises(ProfileError):
            ReferenceProfiles.from_regional_crowds({})

    def test_single_region_recovers_generic(self):
        generic = parametric_generic_profile()
        # A UTC+3 crowd's UTC-clock profile is generic shifted by -3.
        crowd_utc_profile = generic.shifted(-3)
        references = ReferenceProfiles.from_regional_crowds({3: crowd_utc_profile})
        assert references.generic == generic

    def test_multiple_aligned_regions_average(self):
        generic = parametric_generic_profile()
        references = ReferenceProfiles.from_regional_crowds(
            {offset: generic.shifted(-offset) for offset in (-5, 0, 8)}
        )
        assert references.generic == generic

    def test_data_driven_references_place_own_zones(self, references):
        # The session dataset's references must self-identify per zone.
        for offset in (-8, -3, 0, 1, 8, 9):
            assert references.nearest_zone(references.for_zone(offset)) == offset
