"""Countermeasure experiments (paper Sec. VII)."""

from __future__ import annotations


from repro.analysis.countermeasures import (
    run_coordination_experiment,
    run_delay_experiment,
    run_hidden_sections_experiment,
    run_monitor_experiment,
)
from repro.forum.engine import ForumServer


class TestTimestampJitter:
    def test_zero_jitter_exact(self):
        forum = ForumServer("F", "x.onion", server_offset_hours=2)
        forum.register("u")
        thread = forum.thread_by_title("Welcome")
        post = forum.submit_post("u", thread.thread_id, 1000.0)
        assert post.server_time == 1000.0 + 7200.0

    def test_jitter_delays_within_bound(self):
        forum = ForumServer(
            "F", "x.onion", timestamp_jitter_seconds=3600.0, jitter_seed=5
        )
        forum.register("u")
        thread = forum.thread_by_title("Welcome")
        for index in range(50):
            post = forum.submit_post("u", thread.thread_id, float(index))
            delay = post.server_time - float(index)
            assert 0.0 <= delay <= 3600.0

    def test_jitter_varies_per_post(self):
        forum = ForumServer(
            "F", "x.onion", timestamp_jitter_seconds=3600.0, jitter_seed=5
        )
        forum.register("u")
        thread = forum.thread_by_title("Welcome")
        delays = {
            forum.submit_post("u", thread.thread_id, 0.0).server_time
            for _ in range(10)
        }
        assert len(delays) > 1


class TestMonitorExperiment:
    def test_fine_polling_matches_scrape(self, context):
        rows = run_monitor_experiment(
            context, poll_intervals_hours=(0.5, 4.0), scale=1.0
        )
        fine, coarse = rows[0], rows[1]
        # Sub-hour polling reproduces the scraped verdict almost exactly
        # (the paper's "it is enough to monitor the forum").
        assert fine.center_drift < 0.3
        assert fine.center_drift <= coarse.center_drift + 0.1
        assert fine.n_polls > coarse.n_polls


class TestDelayExperiment:
    def test_few_hours_needed_to_break(self, context):
        rows = run_delay_experiment(
            context, jitter_hours=(0.0, 1.0, 8.0), scale=0.5
        )
        by_jitter = {row.jitter_hours: row for row in rows}
        assert by_jitter[0.0].center_error == 0.0
        # One hour of jitter barely moves the verdict...
        assert by_jitter[1.0].center_error < 0.8
        # ...but "at least a few hours" (8h) visibly degrades it.
        assert by_jitter[8.0].center_error > by_jitter[1.0].center_error
        assert by_jitter[8.0].center_error > 0.6


class TestHiddenSections:
    def test_partial_visibility_barely_moves_verdict(self, context):
        rows = run_hidden_sections_experiment(
            context, hidden_fractions=(0.0, 0.5), scale=0.4
        )
        assert rows[0].n_users_visible > rows[1].n_users_visible
        assert rows[1].center_drift < 0.8


class TestRobustCalibration:
    def test_min_probe_beats_single_probe_under_jitter(self):
        single_errors = []
        robust_errors = []
        for seed in range(5):
            forum = ForumServer(
                "F",
                "x.onion",
                server_offset_hours=3,
                timestamp_jitter_seconds=6 * 3600.0,
                jitter_seed=seed,
            )
            from repro.forum.scraper import ForumScraper

            single = ForumScraper(forum, username=f"s{seed}")
            robust = ForumScraper(forum, username=f"r{seed}")
            single_errors.append(abs(single.calibrate_offset(0.0) - 3.0))
            robust_errors.append(
                abs(robust.calibrate_offset_robust(0.0, n_probes=8) - 3.0)
            )
        assert sum(robust_errors) < sum(single_errors)

    def test_robust_equals_plain_without_jitter(self):
        from repro.forum.scraper import ForumScraper

        forum = ForumServer("F", "x.onion", server_offset_hours=-5)
        scraper = ForumScraper(forum)
        assert scraper.calibrate_offset_robust(0.0) == -5.0


class TestCoordinationExperiment:
    def test_minority_decoy_is_visible_not_dominant(self, context):
        rows = run_coordination_experiment(
            context, decoy_fractions=(0.0, 0.25, 0.75), crowd_size=100
        )
        by_fraction = {row.decoy_fraction: row for row in rows}
        # No decoys: the honest zone carries everything.
        assert by_fraction[0.0].honest_zone_weight > 0.9
        assert by_fraction[0.0].decoy_zone_weight < 0.1
        # A 25% coordinated minority appears as its own component but the
        # honest crowd stays dominant.
        assert by_fraction[0.25].honest_zone_weight > 0.5
        # Only a coordinated majority flips the verdict.
        assert (
            by_fraction[0.75].decoy_zone_weight
            > by_fraction[0.75].honest_zone_weight
        )
