"""Onion layering and the RPC encoding."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.tor.cells import (
    Cell,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    layer_decrypt,
    layer_encrypt,
    xor_cipher,
)

keys = st.lists(st.binary(min_size=8, max_size=32), min_size=1, max_size=4)
payloads = st.binary(min_size=0, max_size=400)


class TestXorCipher:
    @given(st.binary(min_size=8, max_size=32), payloads)
    @settings(max_examples=40)
    def test_involution(self, key, payload):
        assert xor_cipher(key, xor_cipher(key, payload)) == payload

    def test_different_keys_differ(self):
        payload = b"hello dark web forum"
        assert xor_cipher(b"key-one-", payload) != xor_cipher(b"key-two-", payload)

    def test_ciphertext_differs_from_plaintext(self):
        payload = b"some meaningful plaintext content"
        assert xor_cipher(b"key-one-", payload) != payload


class TestOnionLayers:
    @given(keys, payloads)
    @settings(max_examples=40)
    def test_peel_in_hop_order_recovers(self, key_list, payload):
        wrapped = layer_encrypt(key_list, payload)
        for key in key_list:  # guard first
            wrapped = layer_decrypt(key, wrapped)
        assert wrapped == payload

    def test_single_relay_cannot_read(self):
        key_list = [b"guardkey", b"midkey__", b"exitkey_"]
        payload = b"GET /forum/posts"
        wrapped = layer_encrypt(key_list, payload)
        # Peeling only the middle layer (out of order) must not reveal it.
        partially = layer_decrypt(b"midkey__", wrapped)
        assert partially != payload

    def test_wrong_order_fails(self):
        key_list = [b"guardkey", b"midkey__", b"exitkey_"]
        payload = b"GET /forum/posts"
        wrapped = layer_encrypt(key_list, payload)
        out = wrapped
        for key in reversed(key_list):
            out = layer_decrypt(key, out)
        # XOR layers commute mathematically; the structural protection is
        # that each relay only ever holds its own key.  Full unwrap with
        # all three keys still succeeds regardless of order:
        assert out == payload


class TestCell:
    def test_sized(self):
        assert Cell(1, "relay", b"abc").sized() == 3


class TestRpcEncoding:
    def test_request_roundtrip(self):
        payload = encode_request("submit_post", ("alice", 3, 100.0), {"body": "hi"})
        method, args, kwargs = decode_request(payload)
        assert method == "submit_post"
        assert args == ["alice", 3, 100.0]
        assert kwargs == {"body": "hi"}

    def test_response_roundtrip(self):
        payload = encode_response({"value": [1, 2, 3]})
        assert decode_response(payload) == {"value": [1, 2, 3]}

    def test_response_with_object(self):
        class Record:
            def __init__(self):
                self.author = "alice"
                self.server_time = 9.0

        decoded = decode_response(encode_response(Record()))
        assert decoded["author"] == "alice"
        assert decoded["__type__"] == "Record"

    def test_unserialisable_rejected(self):
        with pytest.raises(TypeError):
            encode_response(object())
