"""The encrypted, retention-limited trace store (Sec. VIII)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.events import ActivityTrace, TraceSet
from repro.errors import StorageError
from repro.forum.storage import TraceStore, pseudonymize


def _traces():
    return TraceSet(
        [ActivityTrace("alice", [1.0, 2.0]), ActivityTrace("bob", [3.0])]
    )


class TestPseudonymization:
    def test_stable(self):
        assert pseudonymize("alice", "salt") == pseudonymize("alice", "salt")

    def test_salt_matters(self):
        assert pseudonymize("alice", "a") != pseudonymize("alice", "b")

    def test_not_reversible_trivially(self):
        assert "alice" not in pseudonymize("alice", "salt")

    @given(st.text(min_size=1, max_size=30))
    @settings(max_examples=30)
    def test_fixed_length(self, author):
        assert len(pseudonymize(author, "s")) == 12


class TestTraceStore:
    def test_short_key_rejected(self):
        with pytest.raises(StorageError):
            TraceStore(b"short")

    def test_roundtrip(self):
        store = TraceStore(b"supersecretkey01")
        store.put("crd", _traces(), stored_at=0.0)
        loaded = store.get("crd", b"supersecretkey01", read_at=10.0)
        assert len(loaded) == 2
        assert loaded.total_posts() == 3

    def test_author_ids_pseudonymized(self):
        store = TraceStore(b"supersecretkey01")
        store.put("crd", _traces(), stored_at=0.0)
        loaded = store.get("crd", b"supersecretkey01", read_at=10.0)
        assert "alice" not in loaded
        assert pseudonymize("alice", "repro") in loaded

    def test_wrong_key_fails(self):
        store = TraceStore(b"supersecretkey01")
        store.put("crd", _traces(), stored_at=0.0)
        with pytest.raises(StorageError):
            store.get("crd", b"wrongkey_wrongkey", read_at=10.0)

    def test_missing_dataset(self):
        store = TraceStore(b"supersecretkey01")
        with pytest.raises(StorageError):
            store.get("nothing", b"supersecretkey01", read_at=0.0)

    def test_retention_enforced(self):
        store = TraceStore(b"supersecretkey01", retention_seconds=100.0)
        store.put("crd", _traces(), stored_at=0.0)
        with pytest.raises(StorageError):
            store.get("crd", b"supersecretkey01", read_at=200.0)
        # Expired data is also physically dropped.
        assert len(store) == 0

    def test_purge_expired(self):
        store = TraceStore(b"supersecretkey01", retention_seconds=100.0)
        store.put("old", _traces(), stored_at=0.0)
        store.put("new", _traces(), stored_at=500.0)
        assert store.purge_expired(now=300.0) == 1
        assert len(store) == 1

    def test_timestamps_preserved_exactly(self):
        store = TraceStore(b"supersecretkey01")
        store.put("d", _traces(), stored_at=0.0)
        loaded = store.get("d", b"supersecretkey01", read_at=1.0)
        pseudonym = pseudonymize("alice", "repro")
        assert list(loaded[pseudonym].timestamps) == [1.0, 2.0]
