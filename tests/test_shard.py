"""The shard algebra and the sharded engine's bit-identity to the oracle.

``ShardPartial`` must behave as a commutative monoid (Hypothesis pins
associativity, commutativity and the empty-shard identity), the shard
bounds must tile the store exactly, and
``CrowdGeolocator.geolocate_store_sharded`` must reproduce the
single-shard oracle bit for bit, for any shard and worker count.
"""

from __future__ import annotations

import concurrent.futures

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.events import ActivityTrace, TraceSet
from repro.core.geolocate import CrowdGeolocator, GeolocationReport
from repro.core.reference import ReferenceProfiles
from repro.core.shard import (
    ShardPartial,
    compute_partials,
    compute_shard_partial,
    merge_partials,
)
from repro.datasets.store import TraceStore
from repro.errors import DatasetError, EmptyTraceError

MIN_POSTS = 10


def _crowd(n_users: int, seed: int) -> TraceSet:
    """Mixed crowd: zoned users, flat (bot-like) users, low-activity users."""
    rng = np.random.default_rng(seed)
    traces = []
    for i in range(n_users):
        kind = i % 7
        if kind == 5:  # uniform poster: should be polished away
            stamps = np.sort(rng.uniform(0, 60 * 86400.0, size=120))
        elif kind == 6:  # below the activity threshold: dropped pre-polish
            stamps = np.sort(rng.uniform(0, 60 * 86400.0, size=3))
        else:
            zone = int(rng.integers(-11, 13))
            n = int(rng.integers(MIN_POSTS, 90))
            days = rng.integers(0, 60, size=n)
            hours = rng.normal(14.0 - zone, 2.5, size=n) % 24
            stamps = np.sort(days * 86400.0 + hours * 3600.0)
        traces.append(ActivityTrace(f"user{i:04d}", stamps))
    return TraceSet(traces)


@pytest.fixture(scope="module")
def shard_store(tmp_path_factory) -> TraceStore:
    path = tmp_path_factory.mktemp("shard") / "crowd.store"
    TraceStore.write(_crowd(61, seed=5), path)
    return TraceStore.open(path)


@pytest.fixture(scope="module")
def refs() -> ReferenceProfiles:
    return ReferenceProfiles.canonical()


@pytest.fixture(scope="module")
def partials(shard_store, refs) -> list[ShardPartial]:
    return [
        compute_shard_partial(
            shard_store.shard(start, stop), refs, min_posts=MIN_POSTS
        )
        for start, stop in shard_store.shard_bounds(6)
    ]


def _assert_partials_equal(a: ShardPartial, b: ShardPartial) -> None:
    np.testing.assert_array_equal(a.rows, b.rows)
    assert a.user_ids == b.user_ids
    np.testing.assert_array_equal(a.counts, b.counts)
    np.testing.assert_array_equal(a.lengths, b.lengths)
    np.testing.assert_array_equal(a.flat_mask, b.flat_mask)
    np.testing.assert_array_equal(a.zone_indices, b.zone_indices)
    np.testing.assert_array_equal(a.placement_counts, b.placement_counts)
    assert a.n_users_seen == b.n_users_seen


class TestShardAlgebra:
    @given(order=st.permutations(list(range(6))))
    @settings(max_examples=40, deadline=None)
    def test_merge_is_commutative_under_any_order(self, partials, order):
        """Any fold order over the same partials yields the canonical value."""
        canonical = merge_partials(list(partials))
        permuted = merge_partials([partials[i] for i in order])
        _assert_partials_equal(canonical, permuted)

    @given(i=st.integers(0, 5), j=st.integers(0, 5), k=st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_merge_is_associative(self, partials, i, j, k):
        distinct = sorted({i, j, k})
        if len(distinct) < 3:
            return
        a, b, c = (partials[n] for n in distinct)
        _assert_partials_equal(a.merge(b).merge(c), a.merge(b.merge(c)))

    def test_empty_shard_is_the_identity(self, partials):
        empty = ShardPartial.identity()
        for partial in partials:
            _assert_partials_equal(empty.merge(partial), partial)
            _assert_partials_equal(partial.merge(empty), partial)
        _assert_partials_equal(empty.merge(empty), empty)

    def test_overlapping_partials_refused(self, partials):
        with pytest.raises(DatasetError, match="overlapping"):
            partials[0].merge(partials[0])

    def test_placement_histogram_merges_by_addition(self, partials):
        merged = merge_partials(list(partials))
        np.testing.assert_array_equal(
            merged.placement_counts,
            np.sum([p.placement_counts for p in partials], axis=0),
        )
        np.testing.assert_array_equal(
            merged.placement_counts,
            np.bincount(
                merged.zone_indices[~merged.flat_mask], minlength=24
            ),
        )

    def test_merged_covers_every_user_once(self, shard_store, partials):
        merged = merge_partials(list(partials))
        assert merged.n_users_seen == len(shard_store)
        assert np.all(np.diff(merged.rows) > 0)
        assert len(set(merged.user_ids)) == len(merged.user_ids)

    def test_invariant_violations_refused(self):
        good = ShardPartial.identity()
        with pytest.raises(DatasetError, match="user ids"):
            ShardPartial(
                rows=np.array([0], dtype=np.int64),
                user_ids=(),
                counts=np.zeros((1, 24)),
                lengths=np.array([5], dtype=np.int64),
                flat_mask=np.zeros(1, dtype=bool),
                zone_indices=np.zeros(1, dtype=np.int64),
                placement_counts=np.zeros(24, dtype=np.int64),
                n_users_seen=1,
            )
        with pytest.raises(DatasetError, match="strictly increasing"):
            ShardPartial(
                rows=np.array([3, 3], dtype=np.int64),
                user_ids=("a", "b"),
                counts=np.zeros((2, 24)),
                lengths=np.array([5, 5], dtype=np.int64),
                flat_mask=np.zeros(2, dtype=bool),
                zone_indices=np.zeros(2, dtype=np.int64),
                placement_counts=np.zeros(24, dtype=np.int64),
                n_users_seen=2,
            )
        assert len(good) == 0


class TestShardBounds:
    @given(n_shards=st.integers(1, 80))
    @settings(max_examples=60, deadline=None)
    def test_bounds_tile_the_store_exactly(self, shard_store, n_shards):
        """Every user (including boundary users) lands in exactly one shard."""
        bounds = shard_store.shard_bounds(n_shards)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == len(shard_store)
        for (_, stop), (start, _) in zip(bounds[:-1], bounds[1:]):
            assert stop == start
        sizes = [stop - start for start, stop in bounds]
        assert all(size > 0 for size in sizes)
        assert max(sizes) - min(sizes) <= 1
        covered = [
            i for start, stop in bounds for i in range(start, stop)
        ]
        assert covered == list(range(len(shard_store)))

    def test_more_shards_than_users(self, shard_store):
        bounds = shard_store.shard_bounds(10 * len(shard_store))
        assert len(bounds) == len(shard_store)

    def test_invalid_counts_refused(self, shard_store):
        with pytest.raises(DatasetError, match="positive"):
            shard_store.shard_bounds(0)
        with pytest.raises(DatasetError, match="outside"):
            shard_store.shard(0, len(shard_store) + 1)


def _assert_reports_identical(
    a: GeolocationReport, b: GeolocationReport
) -> None:
    assert a.user_zones == b.user_zones
    assert a.placement.fractions == b.placement.fractions
    assert a.placement.n_users == b.placement.n_users
    np.testing.assert_array_equal(a.crowd_profile.mass, b.crowd_profile.mass)
    assert a.n_users == b.n_users
    assert a.n_posts == b.n_posts
    assert a.n_removed_flat == b.n_removed_flat
    assert a.mixture == b.mixture
    assert a.pearson_vs_generic == b.pearson_vs_generic
    assert a.fit_metrics == b.fit_metrics


class TestShardedOracle:
    @pytest.mark.parametrize("n_shards", [1, 2, 8])
    def test_bit_identical_to_geolocate_store(self, shard_store, n_shards):
        locator = CrowdGeolocator(min_posts=MIN_POSTS)
        oracle = locator.geolocate_store(shard_store, crowd_name="c")
        sharded = locator.geolocate_store_sharded(
            shard_store, crowd_name="c", n_shards=n_shards, max_workers=1
        )
        _assert_reports_identical(oracle, sharded)
        assert oracle.n_removed_flat > 0  # the polish path is exercised

    def test_bit_identical_without_polish(self, shard_store):
        locator = CrowdGeolocator(min_posts=MIN_POSTS)
        oracle = locator.geolocate_store(
            shard_store, crowd_name="c", polish=False
        )
        sharded = locator.geolocate_store_sharded(
            shard_store, crowd_name="c", polish=False, n_shards=3
        )
        _assert_reports_identical(oracle, sharded)

    def test_bit_identical_across_worker_pool(self, shard_store):
        locator = CrowdGeolocator(min_posts=MIN_POSTS)
        oracle = locator.geolocate_store(shard_store, crowd_name="c")
        pooled = locator.geolocate_store_sharded(
            shard_store, crowd_name="c", n_shards=4, max_workers=2
        )
        _assert_reports_identical(oracle, pooled)

    def test_all_users_below_threshold_raises(self, tmp_path):
        sparse = TraceSet(
            ActivityTrace(f"u{i}", [float(i * 3600), float(i * 7200 + 60)])
            for i in range(8)
        )
        store = TraceStore.write(sparse, tmp_path / "sparse.store")
        locator = CrowdGeolocator(min_posts=MIN_POSTS)
        with pytest.raises(EmptyTraceError):
            locator.geolocate_store(store, crowd_name="c")
        with pytest.raises(EmptyTraceError):
            locator.geolocate_store_sharded(
                store, crowd_name="c", n_shards=3
            )

    def test_broken_pool_degrades_to_inline(self, shard_store, monkeypatch):
        locator = CrowdGeolocator(min_posts=MIN_POSTS)
        oracle = locator.geolocate_store(shard_store, crowd_name="c")

        def _broken_pool(*args, **kwargs):
            raise OSError("no process pool in this sandbox")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _broken_pool
        )
        with pytest.warns(RuntimeWarning, match="computing shards inline"):
            fallback = locator.geolocate_store_sharded(
                shard_store, crowd_name="c", n_shards=4, max_workers=2
            )
        _assert_reports_identical(oracle, fallback)


class TestComputePartials:
    def test_inline_and_pool_partials_identical(self, shard_store, refs):
        inline = compute_partials(
            shard_store, refs, min_posts=MIN_POSTS, n_shards=5, max_workers=1
        )
        pooled = compute_partials(
            shard_store, refs, min_posts=MIN_POSTS, n_shards=5, max_workers=2
        )
        assert len(inline) == len(pooled) == 5
        for a, b in zip(inline, pooled):
            _assert_partials_equal(a, b)

    def test_single_shard_partial_is_the_whole_crowd(self, shard_store, refs):
        (only,) = compute_partials(
            shard_store, refs, min_posts=MIN_POSTS, n_shards=1
        )
        merged = merge_partials(
            compute_partials(
                shard_store, refs, min_posts=MIN_POSTS, n_shards=7
            )
        )
        _assert_partials_equal(only, merged)
