"""Fault injection and the resilient collection pipeline.

Includes the PR's acceptance scenario: a scrape campaign against a forum
with >= 20 % transient failures, a mid-campaign server clock step,
duplicated listings and a mid-campaign collector kill must recover
exactly the same crowd as the fault-free run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TransientForumError
from repro.forum.engine import ForumServer
from repro.forum.monitor import ForumMonitor
from repro.forum.scraper import ForumScraper
from repro.reliability import (
    FaultSpec,
    FlakyForumProxy,
    ManualClock,
    RetryPolicy,
)

pytestmark = pytest.mark.reliability

DAY = 86400.0
HOUR = 3600.0


def _crowd_posts():
    """Posts at hours 2/9/14 on days 1..8 -- never adjacent to a poll hour."""
    return {
        author: [
            day * DAY + hour * HOUR
            for day in range(1, 9)
            for hour in (2, 9, 14)
        ]
        for author in ("alice", "bob", "carol", "dave", "erin", "frank")
    }


def _forum(offset_hours=0.0):
    forum = ForumServer("F", "x.onion", server_offset_hours=offset_hours)
    forum.import_crowd_posts(_crowd_posts())
    return forum


def _retry_policy(**kwargs):
    defaults = dict(max_attempts=8, base_delay=0.01, jitter=0.0, seed=0)
    defaults.update(kwargs)
    return RetryPolicy(**defaults)


class TestFaultSpec:
    def test_defaults_are_benign(self):
        spec = FaultSpec()
        assert spec.failure_rate == 0.0
        assert spec.skew_at(1e9) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(failure_rate=1.0)
        with pytest.raises(ValueError):
            FaultSpec(duplicate_rate=-0.1)
        with pytest.raises(ValueError):
            FaultSpec(replay_rate=1.5)

    def test_skew_schedule_piecewise(self):
        spec = FaultSpec(skew_schedule=((100.0, 1.0), (200.0, -2.0)))
        assert spec.skew_at(0.0) == 0.0
        assert spec.skew_at(100.0) == 1.0
        assert spec.skew_at(199.9) == 1.0
        assert spec.skew_at(200.0) == -2.0
        assert spec.skew_at(1e9) == -2.0

    def test_schedule_sorted_regardless_of_input_order(self):
        spec = FaultSpec(skew_schedule=((200.0, -2.0), (100.0, 1.0)))
        assert spec.skew_at(150.0) == 1.0


class TestFlakyForumProxy:
    def test_transient_failures_injected_at_spec_rate(self):
        forum = _forum()
        proxy = FlakyForumProxy(forum, FaultSpec(failure_rate=0.5, seed=1))
        failures = 0
        for _ in range(200):
            try:
                proxy.total_posts(), proxy.is_member("nobody")
            except TransientForumError:
                failures += 1
        assert failures > 0
        assert proxy.n_failures_injected == failures
        # Roughly half of the is_member calls should have failed.
        assert 0.3 < failures / 200 < 0.7

    def test_failure_precedes_delegation(self):
        # A failed register must not leave the user registered.
        forum = _forum()
        proxy = FlakyForumProxy(forum, FaultSpec(failure_rate=0.99, seed=2))
        with pytest.raises(TransientForumError):
            proxy.register("ghost")
        assert not forum.is_member("ghost")

    def test_skew_applied_to_displayed_posts_only(self):
        forum = _forum(offset_hours=0.0)
        forum.register("viewer")
        proxy = FlakyForumProxy(forum, FaultSpec(skew_schedule=((0.0, 1.0),)))
        displayed = proxy.visible_posts("viewer", 20 * DAY)
        raw = forum.visible_posts("viewer", 20 * DAY)
        assert all(
            d.server_time == pytest.approx(r.server_time + HOUR)
            for d, r in zip(displayed, raw)
        )
        # The wrapped forum's stored state is untouched.
        again = forum.visible_posts("viewer", 20 * DAY)
        assert [p.server_time for p in again] == [p.server_time for p in raw]

    def test_duplicate_listings(self):
        forum = _forum()
        forum.register("viewer")
        proxy = FlakyForumProxy(forum, FaultSpec(duplicate_rate=0.6, seed=3))
        listing = proxy.visible_posts("viewer", 20 * DAY)
        ids = [post.post_id for post in listing]
        assert len(ids) > len(set(ids))
        assert proxy.n_duplicates_injected == len(ids) - len(set(ids))

    def test_shuffle_breaks_id_order(self):
        forum = _forum()
        forum.register("viewer")
        proxy = FlakyForumProxy(forum, FaultSpec(shuffle=True, seed=4))
        ids = [post.post_id for post in proxy.visible_posts("viewer", 20 * DAY)]
        assert ids != sorted(ids)
        assert sorted(ids) == sorted(
            post.post_id for post in forum.visible_posts("viewer", 20 * DAY)
        )

    def test_cross_window_replay(self):
        forum = _forum()
        forum.register("viewer")
        proxy = FlakyForumProxy(forum, FaultSpec(replay_rate=1.0, seed=5))
        first = proxy.newly_visible_posts("viewer", 0.0, 2 * DAY)
        second = proxy.newly_visible_posts("viewer", 2 * DAY, 4 * DAY)
        assert proxy.n_replays_injected > 0
        first_ids = {post.post_id for post in first}
        assert any(post.post_id in first_ids for post in second)

    def test_probe_post_sees_skew(self):
        forum = _forum(offset_hours=3.0)
        proxy = FlakyForumProxy(forum, FaultSpec(skew_schedule=((0.0, 2.0),)))
        scraper = ForumScraper(proxy)
        assert scraper.calibrate_offset(10 * DAY) == pytest.approx(5.0)


class TestResilientScraper:
    def test_retrying_scrape_equals_fault_free(self):
        spec = FaultSpec(
            failure_rate=0.3, duplicate_rate=0.4, shuffle=True, seed=6
        )
        proxy = FlakyForumProxy(_forum(offset_hours=3.0), spec)
        clock = ManualClock()
        faulty = ForumScraper(
            proxy, retry_policy=_retry_policy(), clock=clock
        ).scrape(20 * DAY)
        clean = ForumScraper(_forum(offset_hours=3.0)).scrape(20 * DAY)
        assert proxy.n_failures_injected > 0
        assert proxy.n_duplicates_injected > 0
        assert set(faulty.traces.user_ids()) == set(clean.traces.user_ids())
        assert faulty.n_posts == clean.n_posts
        for user in clean.traces.user_ids():
            assert np.allclose(
                faulty.traces[user].timestamps, clean.traces[user].timestamps
            )
        assert clock.sleeps  # backoff actually ran (on the injected clock)

    def test_unretried_campaign_skips_failed_polls(self):
        spec = FaultSpec(failure_rate=0.2, seed=7)
        proxy = FlakyForumProxy(_forum(), spec)
        # No retry policy: a single injected failure sinks its whole poll,
        # so the campaign runs long enough that at least one poll after the
        # final crowd post succeeds (each dump is full, so one is enough).
        result = ForumScraper(proxy).scrape_campaign(DAY, 12 * DAY, 6 * HOUR)
        assert result.n_failed_polls > 0
        assert set(result.traces.user_ids()) == set(_crowd_posts())

    def test_retry_exhaustion_counts_as_failed_poll(self):
        spec = FaultSpec(failure_rate=0.9, seed=8)
        proxy = FlakyForumProxy(_forum(), spec)
        policy = _retry_policy(max_attempts=2)
        result = ForumScraper(
            proxy, retry_policy=policy, clock=ManualClock()
        ).scrape_campaign(DAY, 3 * DAY, 6 * HOUR)
        assert result.n_failed_polls > 0


class TestResilientMonitor:
    def test_monitor_under_faults_equals_fault_free(self):
        spec = FaultSpec(
            failure_rate=0.25, replay_rate=0.8, shuffle=True, seed=9
        )
        proxy = FlakyForumProxy(_forum(), spec)
        faulty = ForumMonitor(
            proxy, retry_policy=_retry_policy(), clock=ManualClock()
        ).run_campaign(0.0, 10 * DAY, HOUR)
        clean = ForumMonitor(_forum()).run_campaign(0.0, 10 * DAY, HOUR)
        assert proxy.n_failures_injected > 0
        assert faulty.n_failed_polls == 0  # retries absorbed every fault
        assert set(faulty.traces.user_ids()) == set(clean.traces.user_ids())
        for user in clean.traces.user_ids():
            assert np.allclose(
                faulty.traces[user].timestamps, clean.traces[user].timestamps
            )

    def test_replayed_posts_stamped_once(self):
        spec = FaultSpec(replay_rate=1.0, seed=10)
        proxy = FlakyForumProxy(_forum(), spec)
        result = ForumMonitor(proxy).run_campaign(0.0, 10 * DAY, HOUR)
        ids = [obs.post_id for obs in result.observations]
        assert len(ids) == len(set(ids))

    def test_failed_poll_folds_into_next_window(self):
        forum = _forum()

        class _OneFailure:
            """Fail the poll that would capture alice's day-2 02:00 post."""

            def __init__(self, forum):
                self.forum = forum
                self.fail_at = 2 * DAY + 2 * HOUR

            def __getattr__(self, name):
                return getattr(self.forum, name)

            def newly_visible_posts(self, viewer, since, until):
                if until == self.fail_at:
                    raise TransientForumError("injected")
                return self.forum.newly_visible_posts(viewer, since, until)

        result = ForumMonitor(_OneFailure(forum)).run_campaign(
            0.0, 3 * DAY, HOUR
        )
        assert result.n_failed_polls == 1
        # The post (at exactly 02:00, captured by the 02:00 poll when it
        # succeeds) folds into the 01:00->03:00 double window instead, so
        # it is stamped with that window's midpoint, 02:00.
        stamps = result.traces["alice"].timestamps
        day2 = stamps[(stamps >= 2 * DAY) & (stamps < 2 * DAY + 6 * HOUR)]
        assert day2.size == 1
        assert day2[0] == pytest.approx(2 * DAY + 2 * HOUR)


class TestAcceptanceScenario:
    """The ISSUE's scripted end-to-end fault-recovery scenario."""

    START, END, KILL_AT = DAY, 9 * DAY, 4 * DAY
    POLL = 6 * HOUR
    BASE_OFFSET = 3.0
    SPEC = dict(
        failure_rate=0.25,  # >= 20 % of calls time out
        duplicate_rate=0.3,
        shuffle=True,
        skew_schedule=((5 * DAY, 2.0),),  # server clock stepped +2h on day 5
    )

    def _fault_free(self):
        return ForumScraper(_forum(self.BASE_OFFSET)).scrape_campaign(
            self.START, self.END, self.POLL
        )

    def test_faulty_killed_resumed_campaign_recovers_exact_crowd(self, tmp_path):
        checkpoint = tmp_path / "campaign.json"
        forum = _forum(self.BASE_OFFSET)

        # Phase 1: collect under faults until the process is "killed" at
        # day 4 (the campaign simply stops; the checkpoint survives).
        proxy = FlakyForumProxy(forum, FaultSpec(seed=11, **self.SPEC))
        ForumScraper(
            proxy, retry_policy=_retry_policy(), clock=ManualClock()
        ).scrape_campaign(
            self.START, self.KILL_AT, self.POLL, checkpoint_path=checkpoint
        )
        assert checkpoint.exists()

        # Phase 2: a fresh process (new scraper, new proxy RNG) resumes
        # from the checkpoint and runs the campaign to completion.
        proxy2 = FlakyForumProxy(forum, FaultSpec(seed=12, **self.SPEC))
        result = ForumScraper(
            proxy2, retry_policy=_retry_policy(), clock=ManualClock()
        ).scrape_campaign(
            self.START,
            self.END,
            self.POLL,
            checkpoint_path=checkpoint,
            resume=True,
        )

        # The faults demonstrably fired ...
        assert proxy.n_failures_injected + proxy2.n_failures_injected > 10
        assert proxy.n_duplicates_injected + proxy2.n_duplicates_injected > 0
        assert result.resumed
        assert result.n_failed_polls == 0  # the retry policy absorbed them
        assert result.n_skew_corrections == 1  # the day-5 clock step, caught

        # ... and the recovered TraceSet equals the fault-free run's: same
        # authors, same deduplicated UTC timestamps.
        clean = self._fault_free()
        assert set(result.traces.user_ids()) == set(clean.traces.user_ids())
        assert result.n_posts == clean.n_posts
        for user in clean.traces.user_ids():
            assert np.allclose(
                result.traces[user].timestamps,
                clean.traces[user].timestamps,
                atol=1e-6,
            )

    def test_fault_free_campaign_recovers_input_crowd(self):
        result = self._fault_free()
        expected = _crowd_posts()
        assert set(result.traces.user_ids()) == set(expected)
        for user, stamps in expected.items():
            assert np.allclose(result.traces[user].timestamps, sorted(stamps))

    def test_resume_skips_completed_polls(self, tmp_path):
        checkpoint = tmp_path / "campaign.json"
        forum = _forum(self.BASE_OFFSET)
        scraper = ForumScraper(forum)
        first = scraper.scrape_campaign(
            self.START, self.KILL_AT, self.POLL, checkpoint_path=checkpoint
        )
        resumed = ForumScraper(forum).scrape_campaign(
            self.START,
            self.END,
            self.POLL,
            checkpoint_path=checkpoint,
            resume=True,
        )
        total_polls = int((self.END - self.START) / self.POLL) + 1
        assert first.n_polls < total_polls
        assert resumed.resumed
        assert resumed.n_polls == total_polls
