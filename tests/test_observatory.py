"""The health observatory: time-series, SLO rules, profiler, dashboard.

Everything here runs on explicit, injected time -- samplers tick on
numbers the test supplies and the profiler is fed synthetic frames, so
there is not a single ``sleep`` (and no timing flake) in the suite.
"""

from __future__ import annotations

import json
import sys

import numpy as np
import pytest

from repro.obs.health import (
    CRIT,
    OK,
    WARN,
    HealthEvent,
    HealthMonitor,
    HealthRule,
    Observatory,
    default_streaming_rules,
    health_timeline,
    load_health_jsonl,
    severity,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import (
    SamplingProfiler,
    collapse_frame,
    load_profile,
)
from repro.obs.timeseries import (
    SeriesBuffer,
    SeriesSampler,
    load_series_jsonl,
)


class _Source:
    """Minimal ``series()`` surface for driving a HealthMonitor directly."""

    def __init__(self):
        self.data: dict[str, list[tuple[float, float]]] = {}

    def push(self, name: str, t: float, value: float) -> None:
        self.data.setdefault(name, []).append((t, value))

    def series(self, name: str):
        pairs = self.data.get(name, [])
        ts = np.array([p[0] for p in pairs], dtype=np.float64)
        vs = np.array([p[1] for p in pairs], dtype=np.float64)
        return ts, vs


class TestSeriesBuffer:
    def test_ring_evicts_oldest_first(self):
        buf = SeriesBuffer("s", capacity=4)
        for i in range(6):
            buf.push(float(i), float(10 * i))
        assert len(buf) == 4
        times, values = buf.arrays()
        assert times.tolist() == [2.0, 3.0, 4.0, 5.0]
        assert values.tolist() == [20.0, 30.0, 40.0, 50.0]
        assert buf.last() == (5.0, 50.0)

    def test_window_filters_by_time(self):
        buf = SeriesBuffer("s", capacity=8)
        for i in range(5):
            buf.push(float(i), float(i))
        times, values = buf.window(since=3.0)
        assert times.tolist() == [3.0, 4.0]
        assert values.tolist() == [3.0, 4.0]

    def test_empty_buffer(self):
        buf = SeriesBuffer("s", capacity=2)
        assert len(buf) == 0
        assert buf.last() is None
        times, values = buf.arrays()
        assert times.size == 0 and values.size == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            SeriesBuffer("s", capacity=0)


class TestSeriesSampler:
    def test_tick_honours_interval_on_injected_time(self):
        sampler = SeriesSampler(interval_s=10.0)
        sampler.add_gauge("g", lambda: 1.0)
        assert sampler.tick(100.0)  # first tick always samples
        assert not sampler.tick(105.0)  # inside the interval
        assert not sampler.tick(109.9)
        assert sampler.tick(110.0)  # exactly one interval later
        assert sampler.n_samples == 2

    def test_counter_derives_rate_one_sample_late(self):
        sampler = SeriesSampler(interval_s=1.0)
        state = {"v": 0.0}
        sampler.add_counter("c", lambda: state["v"])
        sampler.sample(0.0)
        assert sampler.series("c_rate")[0].size == 0  # no predecessor yet
        state["v"] = 50.0
        sampler.sample(10.0)
        times, values = sampler.series("c_rate")
        assert times.tolist() == [10.0]
        assert values.tolist() == [5.0]  # 50 units over 10 seconds

    def test_raising_source_is_dropped_for_that_sample(self):
        sampler = SeriesSampler(interval_s=1.0)
        sampler.add_gauge("good", lambda: 7.0)
        sampler.add_gauge("bad", lambda: 1 / 0)
        row = sampler.sample(0.0)
        assert row == {"good": 7.0}

    def test_non_finite_values_are_skipped(self):
        sampler = SeriesSampler(interval_s=1.0)
        sampler.add_gauge("nan", lambda: float("nan"))
        sampler.add_gauge("inf", lambda: float("inf"))
        sampler.add_gauge("ok", lambda: 3.0)
        assert sampler.sample(0.0) == {"ok": 3.0}

    def test_bind_streaming_engine_prefixes_and_derives(self):
        class FakeEngine:
            def __init__(self):
                self.beats = 0

            def heartbeat(self):
                self.beats += 1
                return {"events_total": 100.0 * self.beats, "dirty_users": 5.0}

        engine = FakeEngine()
        sampler = SeriesSampler(interval_s=1.0)
        sampler.bind_streaming_engine(engine)
        sampler.sample(0.0)
        sampler.sample(10.0)
        assert engine.beats == 2  # one heartbeat() per sample, not per series
        assert sampler.last("stream_events_total") == (10.0, 200.0)
        assert sampler.last("stream_dirty_users") == (10.0, 5.0)
        times, values = sampler.series("stream_events_total_rate")
        assert values.tolist() == [10.0]

    def test_bind_registry_names_labelled_series(self):
        registry = MetricsRegistry()
        registry.gauge("repro_test_dirty_users").set(4)
        registry.counter("repro_test_polls_total", forum="idc").inc(8)
        sampler = SeriesSampler(interval_s=1.0)
        sampler.bind_registry(registry)
        sampler.sample(0.0)
        registry.counter("repro_test_polls_total", forum="idc").inc(4)
        sampler.sample(2.0)
        assert sampler.last("repro_test_dirty_users") == (2.0, 4.0)
        assert sampler.last("repro_test_polls_total{forum=idc}") == (2.0, 12.0)
        _, rates = sampler.series("repro_test_polls_total{forum=idc}_rate")
        assert rates.tolist() == [2.0]  # 4 increments over 2 seconds

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="interval_s"):
            SeriesSampler(interval_s=0.0)


class TestSeriesPersistence:
    def _sampled(self, tmp_path, via_sink: bool):
        sampler = SeriesSampler(interval_s=5.0, capacity=16)
        state = {"v": 0.0}
        sampler.add_counter("c", lambda: state["v"])
        sampler.add_gauge("g", lambda: state["v"] / 2.0)
        path = tmp_path / "series.jsonl"
        if via_sink:
            sampler.attach_sink(path)
        for i in range(4):
            state["v"] = float(10 * i)
            sampler.sample(float(100 + 5 * i))
        if via_sink:
            sampler.close()
        else:
            sampler.write_jsonl(path)
        return sampler, path

    @pytest.mark.parametrize("via_sink", [True, False])
    def test_round_trip_matches_sampler(self, tmp_path, via_sink):
        sampler, path = self._sampled(tmp_path, via_sink)
        frame = load_series_jsonl(path)
        assert len(frame) == 4
        assert frame.interval_s == 5.0
        assert frame.names() == sampler.names()
        for name in sampler.names():
            live_t, live_v = sampler.series(name)
            loaded_t, loaded_v = frame.series(name)
            np.testing.assert_array_equal(live_t, loaded_t)
            np.testing.assert_array_equal(live_v, loaded_v)
        assert frame.last("c") == sampler.last("c")
        assert frame.series("missing")[0].size == 0
        assert frame.last("missing") is None

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "other"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="expected kind"):
            load_series_jsonl(path)

    def test_double_sink_rejected(self, tmp_path):
        sampler = SeriesSampler()
        sampler.attach_sink(tmp_path / "a.jsonl")
        with pytest.raises(RuntimeError, match="already attached"):
            sampler.attach_sink(tmp_path / "b.jsonl")
        sampler.close()
        sampler.close()  # idempotent


class TestHealthRule:
    def test_classify_ceiling(self):
        rule = HealthRule("r", "s", window_s=10.0, warn_above=1.0, crit_above=5.0)
        assert rule.classify(0.5) == OK
        assert rule.classify(1.5) == WARN
        assert rule.classify(6.0) == CRIT

    def test_classify_floor(self):
        rule = HealthRule("r", "s", window_s=10.0, warn_below=10.0, crit_below=2.0)
        assert rule.classify(50.0) == OK
        assert rule.classify(5.0) == WARN
        assert rule.classify(1.0) == CRIT

    def test_mixed_directions_rejected(self):
        with pytest.raises(ValueError, match="mixes"):
            HealthRule("r", "s", window_s=10.0, warn_above=1.0, warn_below=0.1)

    def test_no_thresholds_rejected(self):
        with pytest.raises(ValueError, match="no thresholds"):
            HealthRule("r", "s", window_s=10.0)

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(ValueError, match="aggregate"):
            HealthRule("r", "s", window_s=10.0, aggregate="p99", warn_above=1.0)

    def test_severity_ranks(self):
        assert severity(OK) < severity(WARN) < severity(CRIT)


class TestHealthHysteresis:
    def _monitor(self, **kwargs):
        rule = HealthRule(
            "spike", "s", window_s=100.0, aggregate="last", warn_above=1.0, **kwargs
        )
        return rule, HealthMonitor([rule])

    def test_trip_ticks_debounce_escalation(self):
        _, monitor = self._monitor(trip_ticks=2, clear_ticks=1)
        source = _Source()
        source.push("s", 0.0, 5.0)
        assert monitor.evaluate(source, 0.0) == []  # 1st breach: candidate only
        assert monitor.state("spike") == OK
        source.push("s", 1.0, 5.0)
        events = monitor.evaluate(source, 1.0)  # 2nd consecutive breach: trips
        assert [e.new_state for e in events] == [WARN]
        assert monitor.state("spike") == WARN

    def test_interrupted_streak_resets(self):
        _, monitor = self._monitor(trip_ticks=2, clear_ticks=1)
        source = _Source()
        for t, value in ((0.0, 5.0), (1.0, 0.5), (2.0, 5.0)):
            source.push("s", t, value)
            assert monitor.evaluate(source, t) == []
        assert monitor.state("spike") == OK  # breaches never consecutive

    def test_clear_ticks_debounce_recovery(self):
        _, monitor = self._monitor(trip_ticks=1, clear_ticks=2)
        source = _Source()
        source.push("s", 0.0, 5.0)
        monitor.evaluate(source, 0.0)
        assert monitor.state("spike") == WARN
        source.push("s", 1.0, 0.5)
        assert monitor.evaluate(source, 1.0) == []  # one calm eval: not enough
        assert monitor.state("spike") == WARN
        source.push("s", 2.0, 0.5)
        events = monitor.evaluate(source, 2.0)
        assert [e.new_state for e in events] == [OK]

    def test_missing_series_keeps_previous_state(self):
        _, monitor = self._monitor(trip_ticks=1, clear_ticks=1)
        source = _Source()
        source.push("s", 0.0, 5.0)
        monitor.evaluate(source, 0.0)
        assert monitor.state("spike") == WARN
        # later evaluations find no samples inside the window: state holds
        empty = _Source()
        assert monitor.evaluate(empty, 1000.0) == []
        assert monitor.state("spike") == WARN
        assert monitor.evaluate(source, 1e6) == []  # window excludes everything
        assert monitor.state("spike") == WARN

    def test_window_aggregation(self):
        rule = HealthRule(
            "mean_rule", "s", window_s=10.0, aggregate="mean", warn_above=2.0
        )
        monitor = HealthMonitor([rule])
        source = _Source()
        source.push("s", 0.0, 100.0)  # far outside the window at t=100
        source.push("s", 95.0, 1.0)
        source.push("s", 100.0, 2.0)
        monitor.evaluate(source, 100.0)
        assert monitor.state("mean_rule") == OK  # mean(1, 2) = 1.5, not 34.3

    def test_overall_is_worst_state(self):
        rules = [
            HealthRule("a", "s", window_s=10.0, aggregate="last", warn_above=1.0),
            HealthRule("b", "s", window_s=10.0, aggregate="last", crit_above=10.0),
        ]
        monitor = HealthMonitor(rules)
        source = _Source()
        source.push("s", 0.0, 50.0)
        monitor.evaluate(source, 0.0)
        assert monitor.states() == {"a": WARN, "b": CRIT}
        assert monitor.overall() == CRIT

    def test_duplicate_rule_names_rejected(self):
        rule = HealthRule("dup", "s", window_s=1.0, warn_above=1.0)
        with pytest.raises(ValueError, match="duplicate"):
            HealthMonitor([rule, rule])


class TestHealthPersistence:
    def test_sink_round_trip(self, tmp_path):
        rule = HealthRule(
            "spike", "s", window_s=100.0, aggregate="last", warn_above=1.0
        )
        monitor = HealthMonitor([rule])
        seen: list[HealthEvent] = []
        monitor.on_event(seen.append)
        path = tmp_path / "health.jsonl"
        monitor.attach_sink(path)
        source = _Source()
        for t, value in ((0.0, 5.0), (1.0, 0.1), (2.0, 0.1)):
            source.push("s", t, value)
            monitor.evaluate(source, t)
        monitor.close()
        header, events = load_health_jsonl(path)
        assert header["rules"] == {"spike": rule.describe()}
        assert [(e.rule, e.old_state, e.new_state) for e in events] == [
            ("spike", OK, WARN),
            ("spike", WARN, OK),
        ]
        assert events == monitor.events == seen

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "repro-series"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="expected kind"):
            load_health_jsonl(path)

    def test_health_timeline_reconstruction(self):
        events = [
            HealthEvent(5.0, "a", OK, WARN, 2.0, ""),
            HealthEvent(9.0, "a", WARN, OK, 0.5, ""),
        ]
        timeline = health_timeline(events, ["a", "b"])
        assert timeline["a"] == [(float("-inf"), OK), (5.0, WARN), (9.0, OK)]
        assert timeline["b"] == [(float("-inf"), OK)]


class TestDefaultStreamingRules:
    def test_migration_spike_fires_on_burst(self):
        rules = default_streaming_rules(interval_s=3600.0)
        monitor = HealthMonitor(rules)
        sampler = SeriesSampler(interval_s=3600.0)
        state = {"migrations": 0.0}
        sampler.add_counter("stream_migrations_total", lambda: state["migrations"])
        day = 86400.0
        # quiet day, then a 10-migration burst in one hour, then quiet again
        now = 0.0
        for _ in range(24):
            now += 3600.0
            sampler.sample(now)
            monitor.evaluate(sampler, now)
        assert monitor.state("migration_rate_spike") == OK
        state["migrations"] = 10.0
        now += 3600.0
        sampler.sample(now)
        monitor.evaluate(sampler, now)
        assert monitor.state("migration_rate_spike") in (WARN, CRIT)
        for _ in range(3 * 24):  # burst rolls out of the one-day window
            now += 3600.0
            sampler.sample(now)
            monitor.evaluate(sampler, now)
        assert monitor.state("migration_rate_spike") == OK
        assert now < 5 * day

    def test_optional_rules_only_with_thresholds(self):
        names = {rule.name for rule in default_streaming_rules()}
        assert "ingest_throughput_floor" not in names
        assert "snapshot_staleness_ceiling" not in names
        full = {
            rule.name
            for rule in default_streaming_rules(
                throughput_floor_per_day=1000.0,
                snapshot_lag_warn_events=1e6,
                checkpoint_lag_warn_events=1e6,
            )
        }
        assert {
            "migration_rate_spike",
            "stale_ratio_ceiling",
            "circuit_open",
            "ingest_throughput_floor",
            "snapshot_staleness_ceiling",
            "checkpoint_lag_ceiling",
        } <= full

    def test_rules_for_absent_subsystems_stay_ok(self):
        monitor = HealthMonitor(default_streaming_rules())
        sampler = SeriesSampler(interval_s=1.0)
        sampler.add_gauge("unrelated", lambda: 1.0)
        sampler.sample(0.0)
        assert monitor.evaluate(sampler, 0.0) == []
        assert monitor.overall() == OK


class TestObservatory:
    def test_tick_samples_then_evaluates(self):
        sampler = SeriesSampler(interval_s=10.0)
        state = {"v": 0.0}
        sampler.add_gauge("s", lambda: state["v"])
        rule = HealthRule(
            "spike", "s", window_s=100.0, aggregate="last", warn_above=1.0
        )
        observatory = Observatory(sampler=sampler, health=HealthMonitor([rule]))
        assert observatory.tick(0.0) == []
        state["v"] = 5.0
        assert observatory.tick(5.0) == []  # not due: no sample, no evaluation
        events = observatory.tick(10.0)
        assert [e.new_state for e in events] == [WARN]
        assert observatory.events == events

    def test_health_is_optional(self):
        sampler = SeriesSampler(interval_s=10.0)
        sampler.add_gauge("s", lambda: 1.0)
        observatory = Observatory(sampler=sampler)
        assert observatory.tick(0.0) == []
        assert sampler.n_samples == 1
        observatory.close()


def _grab_frame():
    """A frame whose stack ends ...test_observatory._grab_frame."""
    return sys._getframe()


class TestProfiler:
    def test_collapse_frame_is_root_first(self):
        stack = collapse_frame(_grab_frame())
        assert stack[-1] == "test_observatory._grab_frame"
        assert len(stack) > 1

    def test_max_depth_truncates(self):
        stack = collapse_frame(_grab_frame(), max_depth=2)
        assert len(stack) == 2

    def test_sample_once_tallies_synthetic_frames(self):
        profiler = SamplingProfiler(interval_s=1.0)
        for _ in range(3):
            assert profiler.sample_once(_grab_frame())
        assert profiler.n_samples == 3
        collapsed = profiler.collapsed()
        (stack_key,) = collapsed
        assert stack_key.endswith("test_observatory._grab_frame")
        assert collapsed[stack_key] == 3

    def test_sample_once_without_target_returns_false(self):
        assert not SamplingProfiler().sample_once()

    def test_hotspots_rank_by_self_samples(self):
        profiler = SamplingProfiler()
        profiler._counts[("main", "outer", "hot")] = 8
        profiler._counts[("main", "outer")] = 2
        profiler._n_samples = 10
        ranked = profiler.hotspots(n=3)
        assert ranked[0]["frame"] == "hot"
        assert ranked[0]["self_samples"] == 8
        assert ranked[0]["total_samples"] == 8
        assert ranked[0]["self_fraction"] == pytest.approx(0.8)
        by_name = {entry["frame"]: entry for entry in ranked}
        assert by_name["outer"]["self_samples"] == 2
        assert by_name["outer"]["total_samples"] == 10
        assert by_name["main"]["self_samples"] == 0

    def test_write_and_load_json(self, tmp_path):
        profiler = SamplingProfiler(interval_s=0.5)
        profiler.sample_once(_grab_frame())
        path = profiler.write(tmp_path / "run.profile.json")
        payload = load_profile(path)
        assert payload["kind"] == "repro-profile"
        assert payload["n_samples"] == 1
        assert payload["interval_s"] == 0.5
        assert payload["hotspots"][0]["frame"] == "test_observatory._grab_frame"

    def test_write_collapsed_text(self, tmp_path):
        profiler = SamplingProfiler()
        profiler.sample_once(_grab_frame())
        path = profiler.write(tmp_path / "run.collapsed")
        text = path.read_text(encoding="utf-8")
        assert text.endswith(" 1\n")
        assert ";" in text

    def test_load_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"kind": "repro-metrics"}), encoding="utf-8")
        with pytest.raises(ValueError, match="expected kind"):
            load_profile(path)

    def test_lifecycle_start_stop(self):
        profiler = SamplingProfiler(interval_s=60.0)  # never fires in-test
        profiler.start()
        with pytest.raises(RuntimeError, match="already started"):
            profiler.start()
        profiler.stop()
        profiler.stop()  # idempotent
        with profiler:
            pass  # restartable after stop

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="interval_s"):
            SamplingProfiler(interval_s=0.0)


class TestDashboard:
    def _artifacts(self, tmp_path, series_name="stream_events_total"):
        from repro.obs.dashboard import render_dashboard

        sampler = SeriesSampler(interval_s=5.0)
        state = {"v": 0.0}
        sampler.add_counter(series_name, lambda: state["v"])
        rule = HealthRule(
            "spike",
            f"{series_name}_rate",
            window_s=100.0,
            aggregate="last",
            warn_above=1.0,
        )
        monitor = HealthMonitor([rule])
        series_path = tmp_path / "series.jsonl"
        health_path = tmp_path / "health.jsonl"
        monitor.attach_sink(health_path)
        for i in range(6):
            state["v"] = float(i * (20 if i == 3 else 1))
            sampler.sample(float(5 * i))
            monitor.evaluate(sampler, float(5 * i))
        sampler.write_jsonl(series_path)
        monitor.close()
        profiler = SamplingProfiler()
        profiler.sample_once(_grab_frame())
        profile_path = profiler.write(tmp_path / "p.json")
        return render_dashboard, series_path, health_path, profile_path

    def test_html_contains_all_sections(self, tmp_path):
        render_dashboard, series, health, profile = self._artifacts(tmp_path)
        html_text = render_dashboard(
            series_path=series, health_path=health, profile_path=profile
        )
        assert html_text.lstrip().startswith("<!DOCTYPE html>")
        assert "stream_events_total" in html_text
        assert "spike" in html_text
        assert "test_observatory._grab_frame" in html_text
        # self-contained: no external scripts, stylesheets or images
        assert "src=" not in html_text
        assert "href=" not in html_text

    def test_hostile_series_name_is_escaped(self, tmp_path):
        render_dashboard, series, health, profile = self._artifacts(
            tmp_path, series_name="x<script>alert(1)</script>"
        )
        html_text = render_dashboard(series_path=series)
        assert "<script>alert(1)</script>" not in html_text
        assert "&lt;script&gt;" in html_text

    def test_ansi_mode_renders_text(self, tmp_path):
        render_dashboard, series, health, _ = self._artifacts(tmp_path)
        text = render_dashboard(
            series_path=series, health_path=health, ansi=True, color=False
        )
        assert "stream_events_total" in text
        assert "<" not in text.replace("<-", "")  # no HTML leaked into ANSI
        assert "\x1b[" not in text  # color=False strips escape codes

    def test_requires_at_least_one_artifact(self):
        from repro.obs.dashboard import render_dashboard

        with pytest.raises(ValueError, match="at least one"):
            render_dashboard()
