"""ASCII table/figure rendering."""

from __future__ import annotations

import pytest

from repro.analysis.report import ascii_bars, ascii_table, series_csv


class TestAsciiTable:
    def test_alignment(self):
        rendered = ascii_table(
            ["name", "value"], [("a", 1.0), ("long-name", 2.5)], title="T"
        )
        lines = rendered.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        # All data rows have the same width up to trailing spaces.
        assert len(lines[3].rstrip()) <= len(lines[1])

    def test_float_formatting(self):
        rendered = ascii_table(["x"], [(0.123456,)])
        assert "0.1235" in rendered

    def test_large_float_formatting(self):
        rendered = ascii_table(["x"], [(12345.678,)])
        assert "12345.7" in rendered

    def test_no_title(self):
        rendered = ascii_table(["a"], [(1,)])
        assert rendered.splitlines()[0].startswith("a")


class TestAsciiBars:
    def test_bar_lengths_proportional(self):
        rendered = ascii_bars(["x", "y"], [1.0, 0.5], width=10)
        lines = rendered.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_bars(["x"], [1.0, 2.0])

    def test_zero_values_no_crash(self):
        rendered = ascii_bars(["x"], [0.0])
        assert "#" not in rendered

    def test_title(self):
        rendered = ascii_bars(["x"], [1.0], title="Figure 3")
        assert rendered.splitlines()[0] == "Figure 3"


class TestSeriesCsv:
    def test_header_and_rows(self):
        csv = series_csv(["hour", "value"], [(0, 0.25), (1, 0.5)])
        lines = csv.splitlines()
        assert lines[0] == "hour,value"
        assert lines[1] == "0,0.2500"
        assert lines[2] == "1,0.5000"
