"""The timestamp-less-forum monitor (paper Sec. VII)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ForumError
from repro.forum.engine import ForumServer
from repro.forum.monitor import ForumMonitor


def _forum_with_live_posts(offset_hours=0.0, **kwargs):
    forum = ForumServer("F", "x.onion", server_offset_hours=offset_hours, **kwargs)
    # Posts spread over ten days at 6h and 18h UTC.
    forum.import_crowd_posts(
        {
            "alice": [day * 86400.0 + 6 * 3600.0 for day in range(1, 11)],
            "bob": [day * 86400.0 + 18 * 3600.0 for day in range(1, 11)],
        }
    )
    return forum


class TestNewlyVisiblePosts:
    def test_window_query(self):
        forum = _forum_with_live_posts()
        forum.register("viewer")
        posts = forum.newly_visible_posts("viewer", 0.0, 2 * 86400.0)
        # Day 1 posts (6h, 18h) and day 2's 6h... day2 18h is at 2d+18h.
        assert len(posts) == 2

    def test_since_exclusive_until_inclusive(self):
        forum = _forum_with_live_posts()
        forum.register("viewer")
        t = 86400.0 + 6 * 3600.0
        assert len(forum.newly_visible_posts("viewer", t - 1, t)) == 1
        assert len(forum.newly_visible_posts("viewer", t, t)) == 0

    def test_rank_gating(self):
        from repro.forum.engine import Board

        forum = ForumServer("F", "x.onion")
        forum.add_board(Board("Elite", min_rank=5))
        thread = forum.create_thread("Elite", "secret")
        forum.register("vip", rank=5)
        forum.register("pleb")
        forum.submit_post("vip", thread, 100.0)
        assert len(forum.newly_visible_posts("vip", 0.0, 200.0)) == 1
        assert len(forum.newly_visible_posts("pleb", 0.0, 200.0)) == 0

    def test_index_updates_after_new_post(self):
        forum = _forum_with_live_posts()
        forum.register("viewer")
        forum.newly_visible_posts("viewer", 0.0, 86400.0)  # builds index
        thread = forum.thread_by_title("Welcome")
        forum.register("carol")
        forum.submit_post("carol", thread.thread_id, 5 * 86400.0)
        fresh = forum.newly_visible_posts(
            "viewer", 5 * 86400.0 - 1, 5 * 86400.0 + 1
        )
        assert any(post.author == "carol" for post in fresh)


class TestForumMonitor:
    def test_first_poll_discards_backlog(self):
        forum = _forum_with_live_posts()
        monitor = ForumMonitor(forum)
        assert monitor.poll(5 * 86400.0) == []
        # Everything before the first poll is gone for good.
        later = monitor.poll(20 * 86400.0)
        observed_ids = {observation.post_id for observation in later}
        # First poll at day 5 00:00 swallows days 1-4 (8 posts); the
        # remaining 12 posts (day 5's two through day 10's two) appear.
        assert len(observed_ids) == 12

    def test_campaign_recovers_crowd(self):
        forum = _forum_with_live_posts()
        result = ForumMonitor(forum).run_campaign(
            start=0.0, end=12 * 86400.0, poll_interval=1800.0
        )
        assert set(result.traces.user_ids()) == {"alice", "bob"}
        assert result.n_polls > 500

    def test_midpoint_stamping_unbiased(self):
        forum = _forum_with_live_posts()
        result = ForumMonitor(forum).run_campaign(
            start=0.0, end=12 * 86400.0, poll_interval=3600.0
        )
        # alice posts at exactly 6h; hourly polls see her between 6h and
        # 7h, midpoint-stamped at 5.5h+1h/2... within the hour.
        hours = (np.asarray(result.traces["alice"].timestamps) % 86400.0) / 3600.0
        assert np.all(np.abs(hours - 6.0) <= 0.51)

    def test_monitor_ignores_server_timestamps(self):
        # Identical observations regardless of the forum's clock skew.
        plain = ForumMonitor(_forum_with_live_posts(0.0)).run_campaign(
            0.0, 12 * 86400.0, 3600.0
        )
        skewed = ForumMonitor(_forum_with_live_posts(9.0)).run_campaign(
            0.0, 12 * 86400.0, 3600.0
        )
        assert np.allclose(
            plain.traces["alice"].timestamps, skewed.traces["alice"].timestamps
        )

    def test_publication_delay_shifts_observations(self):
        delayed = _forum_with_live_posts(publication_delay=7200.0)
        result = ForumMonitor(delayed).run_campaign(0.0, 12 * 86400.0, 900.0)
        hours = (np.asarray(result.traces["alice"].timestamps) % 86400.0) / 3600.0
        assert np.all(hours > 7.5)  # 6h post + 2h delay

    def test_invalid_campaign(self):
        forum = _forum_with_live_posts()
        with pytest.raises(ForumError):
            ForumMonitor(forum).run_campaign(0.0, 100.0, 0.0)
        with pytest.raises(ForumError):
            ForumMonitor(forum).run_campaign(100.0, 100.0, 10.0)

    def test_summary(self):
        forum = _forum_with_live_posts()
        result = ForumMonitor(forum).run_campaign(0.0, 2 * 86400.0, 3600.0)
        assert "polls" in result.summary()

    def test_monitor_over_tor_proxy(self):
        from repro.tor.hidden_service import HiddenServiceHost, TorClient
        from repro.tor.network import build_network

        network = build_network(seed=3)
        forum = _forum_with_live_posts()
        host = HiddenServiceHost(
            network=network,
            application=forum,
            private_key="monitor-key",
            rng=np.random.default_rng(3),
        )
        descriptor = host.setup()
        client = TorClient(network, seed=4)
        remote = client.connect(descriptor.onion, {descriptor.onion: host})
        result = ForumMonitor(remote).run_campaign(0.0, 5 * 86400.0, 7200.0)
        assert len(result.traces) == 2


class TestMonitorEngineFeed:
    """An attached streaming engine is fed through the bulk path."""

    def test_poll_flushes_fresh_observations(self):
        from repro.core.streaming import StreamingGeolocator

        engine = StreamingGeolocator(min_posts=1)
        monitor = ForumMonitor(_forum_with_live_posts(), engine=engine)
        monitor.poll(5 * 86400.0)
        # First poll discards the backlog: nothing reaches the engine.
        assert engine.n_events == 0
        fresh = monitor.poll(20 * 86400.0)
        assert engine.n_events == len(fresh) > 0
        oracle = StreamingGeolocator(min_posts=1)
        for observation in fresh:
            oracle.observe(observation.author, observation.observed_at)
        assert engine.state_dict() == oracle.state_dict()

    def test_campaign_feeds_every_stamped_post(self):
        from repro.core.streaming import StreamingGeolocator

        engine = StreamingGeolocator(min_posts=1)
        monitor = ForumMonitor(_forum_with_live_posts(), engine=engine)
        result = monitor.run_campaign(0.0, 12 * 86400.0, 3600.0)
        assert engine.n_events == len(result.observations)
        assert set(result.traces.user_ids()) <= {"alice", "bob"}

    def test_resume_does_not_double_feed(self, tmp_path):
        from repro.core.streaming import StreamingGeolocator

        path = tmp_path / "campaign.json"
        first = ForumMonitor(
            _forum_with_live_posts(), engine=StreamingGeolocator(min_posts=1)
        )
        first.run_campaign(0.0, 6 * 86400.0, 3600.0, checkpoint_path=path)
        n_before_resume = len(first._observations)
        resumed_engine = StreamingGeolocator(min_posts=1)
        resumed = ForumMonitor.from_checkpoint(
            _forum_with_live_posts(), path, engine=resumed_engine
        )
        result = resumed.run_campaign(0.0, 12 * 86400.0, 3600.0)
        # Replayed polls are skipped, so the re-attached engine sees only
        # the post-checkpoint observations.
        assert resumed_engine.n_events == len(result.observations) - n_before_resume
