"""User population sampling and post generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ZoneError
from repro.synth.population import (
    CHRONOTYPE_CLIP,
    sample_population,
    sample_user,
)
from repro.synth.posting import generate_crowd, generate_trace
from repro.timebase.clock import SECONDS_PER_DAY, CivilDate, civil_to_ordinal


class TestSampleUser:
    def test_fields_in_range(self, rng):
        for index in range(50):
            user = sample_user(f"u{index}", "germany", rng)
            assert abs(user.chronotype_shift) <= CHRONOTYPE_CLIP
            assert user.posts_per_active_day > 0
            assert 0.15 <= user.active_day_probability <= 0.98
            assert 0.7 <= user.weekend_factor <= 1.3

    def test_region_resolution(self, rng):
        user = sample_user("u", "brazil", rng)
        assert user.region.name == "Brazil"

    def test_with_region_relocates(self, rng):
        user = sample_user("u", "germany", rng)
        relocated = user.with_region("japan")
        assert relocated.region_key == "japan"
        assert relocated.chronotype_shift == user.chronotype_shift

    def test_unknown_region_rejected(self, rng):
        with pytest.raises(ZoneError):
            sample_population("narnia", 3, rng)


class TestSamplePopulation:
    def test_count_and_ids(self, rng):
        users = sample_population("italy", 7, rng)
        assert len(users) == 7
        assert len({user.user_id for user in users}) == 7
        assert all(user.user_id.startswith("italy_") for user in users)

    def test_prefix_override(self, rng):
        users = sample_population("italy", 2, rng, prefix="forum_x")
        assert users[0].user_id.startswith("forum_x_")

    def test_chronotypes_vary(self, rng):
        users = sample_population("france", 40, rng)
        shifts = [user.chronotype_shift for user in users]
        assert np.std(shifts) > 0.5


class TestGenerateTrace:
    def test_deterministic_given_seed(self):
        spec = sample_user("u", "germany", np.random.default_rng(7))
        a = generate_trace(spec, np.random.default_rng(42), n_days=60)
        b = generate_trace(spec, np.random.default_rng(42), n_days=60)
        assert np.array_equal(a.timestamps, b.timestamps)

    def test_window_respected(self, rng):
        spec = sample_user("u", "malaysia", rng, posts_per_day_mean=3.0)
        trace = generate_trace(spec, rng, start_day=10, n_days=20)
        if len(trace):
            days = trace.timestamps // SECONDS_PER_DAY
            # Posts are stamped in UTC; Malaysians (UTC+8) posting in the
            # local early morning land on the previous UTC day.
            assert days.min() >= 9
            assert days.max() <= 30

    def test_rate_scales_volume(self, rng):
        quiet_spec = sample_user("q", "japan", rng, posts_per_day_mean=0.3)
        busy_spec = sample_user("b", "japan", rng, posts_per_day_mean=6.0)
        quiet = generate_trace(quiet_spec, rng, n_days=120)
        busy = generate_trace(busy_spec, rng, n_days=120)
        assert len(busy) > len(quiet)

    def test_night_trough_in_local_time(self, rng):
        spec = sample_user(
            "u", "malaysia", rng, posts_per_day_mean=6.0, chronotype_std=0.01
        )
        trace = generate_trace(spec, rng, n_days=366)
        local_hours = ((trace.timestamps / 3600.0 + 8) % 24).astype(int)
        histogram = np.bincount(local_hours, minlength=24)
        assert histogram[19:23].sum() > 4 * histogram[3:7].sum()

    def test_dst_shifts_utc_hours(self, rng):
        # A low-chronotype German posts one UTC hour earlier in summer.
        spec = sample_user(
            "u", "germany", rng, posts_per_day_mean=8.0, chronotype_std=0.01
        )
        trace = generate_trace(spec, rng, n_days=366)
        stamps = np.asarray(trace.timestamps)
        july = civil_to_ordinal(CivilDate(2016, 7, 1))
        winter = stamps[stamps < 60 * SECONDS_PER_DAY]
        summer = stamps[
            (stamps >= july * SECONDS_PER_DAY)
            & (stamps < (july + 60) * SECONDS_PER_DAY)
        ]
        hist_winter = np.bincount(
            ((winter % 86400) // 3600).astype(int), minlength=24
        ).astype(float)
        hist_summer = np.bincount(
            ((summer % 86400) // 3600).astype(int), minlength=24
        ).astype(float)
        # Summer activity happens one UTC hour earlier: rolling the summer
        # histogram forward by one hour must align it best with winter.
        correlations = {
            shift: float(np.dot(np.roll(hist_summer, shift), hist_winter))
            for shift in range(-3, 4)
        }
        assert max(correlations, key=correlations.get) == 1


class TestGenerateCrowd:
    def test_one_trace_per_user(self, rng):
        users = sample_population("poland", 5, rng, posts_per_day_mean=2.0)
        crowd = generate_crowd(users, rng, n_days=90)
        assert len(crowd) <= 5
        assert set(crowd.user_ids()) <= {user.user_id for user in users}
