"""EM mixture fitting and model selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.em import (
    fit_mixture,
    select_mixture,
)
from repro.core.gaussian import GaussianComponent, mixture_pdf
from repro.core.placement import PlacementDistribution
from repro.errors import FitError
from repro.timebase.zones import ZONE_OFFSETS


def _placement(components, n_users=500):
    offsets = np.asarray(ZONE_OFFSETS, dtype=float)
    density = np.asarray(mixture_pdf(components, offsets))
    fractions = density / density.sum()
    return PlacementDistribution(tuple(fractions.tolist()), n_users=n_users)


def _components(*specs):
    return [GaussianComponent(mean=m, sigma=s, weight=w) for m, s, w in specs]


class TestFitMixture:
    def test_single_component_recovery(self):
        placement = _placement(_components((2.0, 2.0, 1.0)))
        model = fit_mixture(placement, 1)
        assert model.k == 1
        assert model.components[0].mean == pytest.approx(2.0, abs=0.2)
        assert model.components[0].sigma == pytest.approx(2.0, abs=0.3)

    def test_two_component_recovery(self):
        placement = _placement(
            _components((-6.0, 1.6, 0.4), (1.0, 1.6, 0.6))
        )
        model = fit_mixture(placement, 2)
        means = sorted(component.mean for component in model.components)
        assert means[0] == pytest.approx(-6.0, abs=0.4)
        assert means[1] == pytest.approx(1.0, abs=0.4)
        weights = sorted(component.weight for component in model.components)
        assert weights == pytest.approx([0.4, 0.6], abs=0.05)

    def test_three_component_recovery(self):
        placement = _placement(
            _components((-7.0, 1.5, 0.33), (0.0, 1.5, 0.34), (8.0, 1.5, 0.33))
        )
        model = fit_mixture(placement, 3)
        means = sorted(component.mean for component in model.components)
        assert means == pytest.approx([-7.0, 0.0, 8.0], abs=0.5)

    def test_invalid_k(self):
        placement = _placement(_components((0.0, 2.0, 1.0)))
        with pytest.raises(FitError):
            fit_mixture(placement, 0)

    def test_components_sorted_by_weight(self):
        placement = _placement(
            _components((-6.0, 1.5, 0.25), (2.0, 1.5, 0.75))
        )
        model = fit_mixture(placement, 2)
        assert model.components[0].weight >= model.components[1].weight

    def test_likelihood_not_worse_with_more_components(self):
        placement = _placement(
            _components((-6.0, 1.5, 0.5), (4.0, 1.5, 0.5))
        )
        single = fit_mixture(placement, 1)
        double = fit_mixture(placement, 2)
        assert double.log_likelihood >= single.log_likelihood - 1e-6

    def test_mixing_weights_sum_to_one(self):
        placement = _placement(
            _components((-4.0, 2.0, 0.5), (5.0, 2.0, 0.5))
        )
        model = fit_mixture(placement, 2)
        assert sum(c.weight for c in model.components) == pytest.approx(1.0)


class TestSelectMixture:
    def test_selects_one_for_single_crowd(self):
        placement = _placement(_components((3.0, 2.0, 1.0)))
        model = select_mixture(placement)
        assert model.k == 1

    def test_selects_two_for_distant_pair(self):
        placement = _placement(
            _components((-6.0, 1.6, 0.5), (2.0, 1.6, 0.5))
        )
        model = select_mixture(placement)
        assert model.k == 2

    def test_selects_three_for_distant_triple(self):
        placement = _placement(
            _components((-7.0, 1.4, 0.33), (0.0, 1.4, 0.34), (8.0, 1.4, 0.33))
        )
        model = select_mixture(placement)
        assert model.k == 3

    def test_close_crowds_merge(self):
        # Two crowds 1.5 zones apart are below the method's resolution.
        placement = _placement(
            _components((0.0, 2.0, 0.5), (1.5, 2.0, 0.5))
        )
        model = select_mixture(placement)
        assert model.k == 1

    def test_unknown_criterion(self):
        placement = _placement(_components((0.0, 2.0, 1.0)))
        with pytest.raises(FitError):
            select_mixture(placement, criterion="hqc")

    def test_bic_more_conservative_than_aic(self):
        placement = _placement(
            _components((-5.0, 2.2, 0.6), (0.5, 2.2, 0.4)), n_users=120
        )
        bic_model = select_mixture(placement, criterion="bic")
        aic_model = select_mixture(placement, criterion="aic")
        assert bic_model.k <= aic_model.k

    def test_zone_offsets_ranked_by_weight(self):
        placement = _placement(
            _components((-6.0, 1.5, 0.3), (2.0, 1.5, 0.7))
        )
        model = select_mixture(placement)
        assert model.zone_offsets() == [2, -6]

    def test_dominant(self):
        placement = _placement(
            _components((-6.0, 1.5, 0.3), (2.0, 1.5, 0.7))
        )
        model = select_mixture(placement)
        assert model.dominant().nearest_zone() == 2


class TestModelProperties:
    def test_bic_formula(self):
        placement = _placement(_components((0.0, 2.0, 1.0)))
        model = fit_mixture(placement, 2)
        expected = -2.0 * model.log_likelihood + (3 * 2 - 1) * np.log(
            model.n_effective
        )
        assert model.bic == pytest.approx(expected)

    def test_density_on_zones_shape(self):
        placement = _placement(_components((0.0, 2.0, 1.0)))
        model = fit_mixture(placement, 1)
        assert model.density_on_zones().shape == (24,)

    def test_n_effective_equals_users(self):
        placement = _placement(_components((0.0, 2.0, 1.0)), n_users=321)
        model = fit_mixture(placement, 1)
        assert model.n_effective == pytest.approx(321.0)
