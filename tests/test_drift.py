"""Temporal-drift robustness: confidence lifecycle, change-points, events.

Covers the drift layer end to end -- unit behaviour of the config and
confidence primitives, the acceptance scenario (20% of a crowd relocating
+6 h mid-stream), the DST negative control, the drift-off inertness
invariant, and checkpoint schema negotiation across versions 1 and 2.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.streaming_experiments import run_drift_experiment
from repro.core.drift import (
    ChangePointDetector,
    CompositionTimeline,
    DriftConfig,
    UserConfidence,
)
from repro.core.streaming import (
    STREAM_CHECKPOINT_KIND,
    EMPTY_STREAM,
    UNDER_EVIDENCED,
    VERDICT,
    StreamingGeolocator,
)
from repro.errors import CheckpointError, EmptyTraceError
from repro.reliability import read_checkpoint
from repro.synth.drift import (
    build_dst_scenario,
    build_relocation_scenario,
    build_server_offset_scenario,
)
from repro.synth.twitter import build_region_crowd
from repro.timebase.clock import SECONDS_PER_DAY
from repro.timebase.zones import ZONE_OFFSETS

pytestmark = pytest.mark.drift


def _stream(engine: StreamingGeolocator, scenario, *, snapshot_every: int = 7):
    next_snapshot = None
    for timestamp, user_id in scenario.sorted_events():
        day = int(timestamp // SECONDS_PER_DAY)
        if next_snapshot is None:
            next_snapshot = day + snapshot_every
        elif day >= next_snapshot:
            engine.snapshot()
            next_snapshot = day + snapshot_every
        engine.observe(user_id, timestamp)
    return engine.snapshot()


class TestDriftConfig:
    def test_defaults_validate_and_round_trip(self):
        config = DriftConfig()
        assert DriftConfig.from_dict(config.as_dict()) == config

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_days": 0},
            {"check_interval_days": 0},
            {"emd_threshold": -1.0},
            {"screen_threshold": 5.0},  # above emd_threshold
            {"confidence_threshold": 1.5},
            {"decay_per_day": -0.1},
            {"min_reestimate_cells": 4},  # below min_window_cells
            {"metric": "nosuch"},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            DriftConfig(**kwargs)


class TestUserConfidence:
    def test_decays_linearly_and_clamps(self):
        confidence = UserConfidence(1.0, as_of_day=10)
        assert confidence.effective(10, 0.01) == pytest.approx(1.0)
        assert confidence.effective(60, 0.01) == pytest.approx(0.5)
        assert confidence.effective(10_000, 0.01) == 0.0

    def test_reset_restores_full_confidence(self):
        confidence = UserConfidence(0.2, as_of_day=0)
        confidence.reset(42)
        assert confidence.value == 1.0
        assert confidence.as_of_day == 42


class TestChangePointDetector:
    def test_shifted_profile_scores_above_threshold(self):
        config = DriftConfig()
        detector = ChangePointDetector(config)
        history = np.zeros(24)
        history[8:16] = 10.0
        window = np.roll(history, 6)
        assert detector.score(window, history) > config.emd_threshold
        assert detector.score(history, history) == pytest.approx(0.0)

    def test_split_score_discounts_thin_sides(self):
        config = DriftConfig()
        detector = ChangePointDetector(config)
        history = np.zeros(24)
        history[8:16] = 100.0
        thin = np.roll(history, 6) / 100.0 * 6.0  # six cells only
        assert detector.split_score(thin, history) < detector.score(thin, history)


class TestEmptyStreamSentinel:
    """Regression: a pre-observe snapshot is not just 'under-evidenced'."""

    def test_empty_stream_is_distinguished(self, references):
        stream = StreamingGeolocator(references)
        snapshot = stream.snapshot()
        assert snapshot.is_empty_stream()
        assert snapshot.verdict_state() == EMPTY_STREAM
        assert not snapshot.has_verdict()
        with pytest.raises(EmptyTraceError, match="empty stream"):
            snapshot.dominant_mean()

    def test_under_evidenced_still_returns_nan(self, references):
        stream = StreamingGeolocator(references)
        stream.observe("u", 1000.0)
        snapshot = stream.snapshot()
        assert not snapshot.is_empty_stream()
        assert snapshot.verdict_state() == UNDER_EVIDENCED
        assert np.isnan(snapshot.dominant_mean())

    def test_verdict_state_with_crowd(self, references):
        crowd = build_region_crowd("germany", 30, seed=3, n_days=200)
        stream = StreamingGeolocator(references)
        for trace in crowd:
            for timestamp in trace.timestamps:
                stream.observe(trace.user_id, float(timestamp))
        assert stream.snapshot().verdict_state() == VERDICT


class TestWarmColdInvariant:
    """snapshot() must equal snapshot_reference() under any interleaving."""

    def test_interleaved_observe_snapshot_invalidate(self, references):
        crowd = build_region_crowd("japan", 12, seed=9, n_days=240)
        events = sorted(
            (float(ts), trace.user_id)
            for trace in crowd
            for ts in trace.timestamps
        )
        stream = StreamingGeolocator(references)
        rng = np.random.default_rng(17)
        for i, (timestamp, user_id) in enumerate(events):
            stream.observe(user_id, timestamp)
            if rng.random() < 0.01:
                warm = stream.snapshot()
                cold = stream.snapshot_reference()
                assert warm.placement == cold.placement, f"diverged at event {i}"
            if rng.random() < 0.005:
                stream.invalidate_all()
        assert stream.snapshot().placement == stream.snapshot_reference().placement

    def test_drift_enabled_still_matches_reference(self):
        scenario = build_relocation_scenario(n_users=40, n_days=160, seed=3)
        engine = StreamingGeolocator(drift=DriftConfig())
        snapshot = _stream(engine, scenario)
        assert snapshot.placement == engine.snapshot_reference().placement

    def test_observe_after_invalidate_does_not_double_count(self, references):
        crowd = build_region_crowd("germany", 15, seed=4, n_days=120)
        stream = StreamingGeolocator(references)
        for trace in crowd:
            for timestamp in trace.timestamps:
                stream.observe(trace.user_id, float(timestamp))
        stream.snapshot()
        stream.invalidate_all()
        # More observations while everyone is already dirty: subtraction
        # of the stale contribution must happen exactly once per user.
        for trace in crowd:
            for timestamp in trace.timestamps[:5]:
                stream.observe(trace.user_id, float(timestamp) + 1.0)
        warm = stream.snapshot()
        cold = stream.snapshot_reference()
        assert warm.placement == cold.placement
        assert warm.placement is not None
        assert warm.placement.n_users == cold.placement.n_users


class TestDriftAcceptance:
    def test_relocation_scenario_meets_roadmap_bar(self):
        report = run_drift_experiment(seed=11)
        assert report.kind == "relocation"
        assert report.detection_rate >= 0.9
        assert report.correct_rate >= 0.9
        assert report.false_positive_rate < 0.05
        assert report.timeline_l1 < 0.15
        assert report.warm_equals_cold

    def test_migration_events_carry_evidence(self):
        scenario = build_relocation_scenario(n_users=60, n_days=240, seed=23)
        engine = StreamingGeolocator(drift=DriftConfig())
        seen = []
        engine.on_migration(seen.append)
        _stream(engine, scenario)
        assert seen == engine.migrations
        assert any(e.reason == "change-point" for e in seen)
        for event in seen:
            assert event.user_id in scenario.traces.user_ids()
            assert event.window_cells > 0
            assert 0.0 <= event.confidence <= 1.0
            assert event.record_version >= 1
            payload = event.to_dict()
            assert payload["reason"] in {"change-point", "confidence", "refine"}

    def test_refinement_converges_to_settled_zone(self):
        scenario = build_relocation_scenario(n_users=60, n_days=240, seed=23)
        engine = StreamingGeolocator(drift=DriftConfig())
        _stream(engine, scenario)
        last = {}
        for event in engine.migrations:
            last[event.user_id] = event
        for user_id, event in last.items():
            if user_id not in scenario.moved_ids or event.new_offset is None:
                continue
            index = engine.zone_index_of(user_id)
            if index is None:
                continue
            assert abs(event.new_offset - ZONE_OFFSETS[index]) <= 1

    def test_dst_is_a_negative_control(self):
        report = run_drift_experiment(
            build_dst_scenario(n_users=50, n_days=240, seed=5)
        )
        # Everyone "moved" one hour; almost nobody should fire.
        assert report.n_detected <= max(2, report.n_placed_movers // 10)

    def test_server_offset_shift_is_detected_crowd_wide(self):
        report = run_drift_experiment(
            build_server_offset_scenario(
                n_users=50, shift_hours=6, n_days=240, seed=13
            )
        )
        assert report.detection_rate >= 0.9
        assert report.warm_equals_cold


class TestDriftOffInertness:
    def test_disabled_drift_never_mutates_records(self):
        scenario = build_relocation_scenario(n_users=30, n_days=160, seed=8)
        plain = StreamingGeolocator()
        snapshot = _stream(plain, scenario)
        assert plain.migrations == []
        assert plain.timeline is None
        assert snapshot.confidence is None
        assert snapshot.placement == plain.snapshot_reference().placement


class TestCheckpointNegotiation:
    def _small_engine(self, drift=None):
        scenario = build_relocation_scenario(n_users=12, n_days=120, seed=2)
        engine = StreamingGeolocator(
            drift=DriftConfig() if drift is None else drift
        )
        _stream(engine, scenario)
        return engine

    def test_v2_json_round_trip_preserves_drift_state(self, tmp_path):
        engine = self._small_engine()
        path = tmp_path / "campaign.json"
        engine.save_checkpoint(path)
        restored = StreamingGeolocator.load_checkpoint(path)
        assert restored.drift == engine.drift
        assert restored.snapshot().placement == engine.snapshot().placement
        assert restored.timeline is not None
        assert len(restored.timeline) == len(engine.timeline)

    def test_v2_binary_round_trip_preserves_drift_state(self, tmp_path):
        engine = self._small_engine()
        path = tmp_path / "campaign.npz"
        engine.save_checkpoint(path)
        restored = StreamingGeolocator.load_checkpoint(path)
        assert restored.drift == engine.drift
        assert restored.snapshot().placement == engine.snapshot().placement
        assert len(restored.timeline) == len(engine.timeline)

    def test_v1_json_loads_with_full_confidence_defaults(self, tmp_path):
        from repro.reliability import write_checkpoint

        engine = StreamingGeolocator()
        crowd = build_region_crowd("germany", 5, seed=1, n_days=90)
        for trace in crowd:
            for timestamp in trace.timestamps:
                engine.observe(trace.user_id, float(timestamp))
        state = engine.state_dict()
        # Reduce to the version-1 schema: pre-drift fields only.
        for user_state in state["users"].values():
            for key in ("record_version", "anchor_day", "confidence", "confidence_day"):
                del user_state[key]
        for key in ("stream_day", "drift", "timeline"):
            del state[key]
        path = tmp_path / "old.json"
        write_checkpoint(path, STREAM_CHECKPOINT_KIND, 1, state)

        plain = StreamingGeolocator.load_checkpoint(path)
        assert plain.drift is None
        assert plain.snapshot().placement == engine.snapshot().placement

        enabled = StreamingGeolocator.load_checkpoint(path, drift=DriftConfig())
        for user_state in enabled._users.values():
            assert user_state.confidence is not None
            assert user_state.confidence.value == 1.0
            assert user_state.record_version == 1

    def test_v2_file_fails_loudly_on_v1_reader(self, tmp_path):
        engine = self._small_engine()
        path = tmp_path / "campaign.json"
        engine.save_checkpoint(path)
        with pytest.raises(CheckpointError, match="version"):
            read_checkpoint(path, STREAM_CHECKPOINT_KIND, 1)

    def test_unknown_future_version_is_rejected(self, tmp_path):
        from repro.reliability import write_checkpoint

        path = tmp_path / "future.json"
        write_checkpoint(path, STREAM_CHECKPOINT_KIND, 99, {"users": {}})
        with pytest.raises(CheckpointError, match="version"):
            StreamingGeolocator.load_checkpoint(path)

    def test_drift_survives_checkpoint_mid_stream(self, tmp_path):
        """Pause/resume mid-campaign: detection still fires after resume."""
        scenario = build_relocation_scenario(n_users=40, n_days=240, seed=31)
        engine = StreamingGeolocator(drift=DriftConfig())
        events = scenario.sorted_events()
        half = len(events) // 2
        for timestamp, user_id in events[:half]:
            engine.observe(user_id, timestamp)
        engine.snapshot()
        path = tmp_path / "mid.npz"
        engine.save_checkpoint(path)

        resumed = StreamingGeolocator.load_checkpoint(path)
        for timestamp, user_id in events[half:]:
            resumed.observe(user_id, timestamp)
        snapshot = resumed.snapshot()
        movers_fired = {
            e.user_id for e in resumed.migrations if e.user_id in scenario.moved_ids
        }
        assert movers_fired, "no migrations detected after resume"
        assert snapshot.placement == resumed.snapshot_reference().placement


class TestCompositionTimeline:
    def test_records_and_replaces_by_day(self):
        timeline = CompositionTimeline()
        hist = np.zeros(len(ZONE_OFFSETS), dtype=np.int64)
        hist[3] = 5
        timeline.record(10, hist)
        hist[3] = 7
        timeline.record(10, hist)
        timeline.record(11, hist)
        assert len(timeline) == 2
        assert timeline.samples()[0].n_active == 7

    def test_shift_visible_in_timeline(self):
        scenario = build_server_offset_scenario(
            n_users=40, shift_hours=6, n_days=240, seed=13
        )
        engine = StreamingGeolocator(drift=DriftConfig())
        _stream(engine, scenario)
        samples = engine.timeline.samples()
        early = next(s for s in samples if s.n_active >= 10)
        late = samples[-1]

        def mean_zone(sample):
            fractions = np.asarray(sample.fractions)
            return float(fractions @ np.asarray(ZONE_OFFSETS))

        # The fraction-weighted crowd centre slides by the server shift
        # (the mode alone is too jumpy on a 40-user crowd).
        assert abs(
            (mean_zone(late) - mean_zone(early)) - scenario.shift_hours
        ) <= 2.0
