"""The forum server engine."""

from __future__ import annotations

import pytest

from repro.errors import ForumError
from repro.forum.engine import Board, ForumServer


@pytest.fixture()
def forum():
    return ForumServer("Test Forum", "abcdefgh12345678.onion", server_offset_hours=3)


class TestSetup:
    def test_probe_threads_exist(self, forum):
        assert forum.thread_by_title("Welcome").title == "Welcome"
        assert forum.thread_by_title("Spam").title == "Spam"

    def test_missing_thread(self, forum):
        with pytest.raises(ForumError):
            forum.thread_by_title("Nonexistent")

    def test_create_thread_unknown_board(self, forum):
        with pytest.raises(ForumError):
            forum.create_thread("Ghost Board", "Hello")

    def test_boards_listing(self, forum):
        forum.add_board(Board("Market", min_rank=2))
        names = {board.name for board in forum.boards()}
        assert {"Reception", "Market"} <= names


class TestMembership:
    def test_register_and_check(self, forum):
        forum.register("alice")
        assert forum.is_member("alice")
        assert not forum.is_member("bob")

    def test_duplicate_username(self, forum):
        forum.register("alice")
        with pytest.raises(ForumError):
            forum.register("alice")

    def test_rank(self, forum):
        forum.register("pro", rank=2)
        assert forum.rank_of("pro") == 2
        with pytest.raises(ForumError):
            forum.rank_of("ghost")


class TestPosting:
    def test_server_time_offset(self, forum):
        assert forum.server_time(1000.0) == 1000.0 + 3 * 3600.0

    def test_post_stamped_in_server_time(self, forum):
        forum.register("alice")
        thread = forum.thread_by_title("Welcome")
        post = forum.submit_post("alice", thread.thread_id, 500.0, body="hi")
        assert post.server_time == 500.0 + 3 * 3600.0
        assert post.author == "alice"

    def test_non_member_cannot_post(self, forum):
        thread = forum.thread_by_title("Welcome")
        with pytest.raises(ForumError):
            forum.submit_post("stranger", thread.thread_id, 0.0)

    def test_unknown_thread(self, forum):
        forum.register("alice")
        with pytest.raises(ForumError):
            forum.submit_post("alice", 999, 0.0)

    def test_post_ids_increase(self, forum):
        forum.register("alice")
        thread = forum.thread_by_title("Welcome")
        first = forum.submit_post("alice", thread.thread_id, 0.0)
        second = forum.submit_post("alice", thread.thread_id, 1.0)
        assert second.post_id > first.post_id


class TestVisibility:
    def test_rank_gating(self, forum):
        forum.add_board(Board("Elite", min_rank=3))
        elite_thread = forum.create_thread("Elite", "Secrets")
        forum.register("vip", rank=3)
        forum.register("pleb", rank=0)
        forum.submit_post("vip", elite_thread, 100.0)
        assert len(forum.visible_posts("vip", 200.0)) == 1
        assert len(forum.visible_posts("pleb", 200.0)) == 0

    def test_publication_delay(self):
        delayed = ForumServer("D", "x.onion", publication_delay=3600.0)
        delayed.register("alice")
        thread = delayed.thread_by_title("Welcome")
        delayed.submit_post("alice", thread.thread_id, 0.0)
        assert len(delayed.visible_posts("alice", 1800.0)) == 0
        assert len(delayed.visible_posts("alice", 3601.0)) == 1

    def test_board_filter(self, forum):
        forum.add_board(Board("Main"))
        main_thread = forum.create_thread("Main", "Chat")
        forum.register("alice")
        forum.submit_post("alice", main_thread, 0.0)
        welcome = forum.thread_by_title("Welcome")
        forum.submit_post("alice", welcome.thread_id, 0.0)
        assert len(forum.visible_posts("alice", 10.0, board="Main")) == 1

    def test_posts_sorted_by_id(self, forum):
        forum.register("alice")
        thread = forum.thread_by_title("Welcome")
        for utc in (5.0, 1.0, 3.0):
            forum.submit_post("alice", thread.thread_id, utc)
        posts = forum.visible_posts("alice", 100.0)
        assert [post.post_id for post in posts] == sorted(
            post.post_id for post in posts
        )


class TestImport:
    def test_import_registers_and_counts(self, forum):
        imported = forum.import_crowd_posts(
            {"u1": [0.0, 60.0], "u2": [120.0]}, thread_title="History"
        )
        assert imported == 3
        assert forum.is_member("u1") and forum.is_member("u2")
        assert forum.total_posts() == 3

    def test_import_applies_server_offset(self, forum):
        forum.import_crowd_posts({"u": [1000.0]})
        forum.register("viewer")
        posts = [
            post
            for post in forum.visible_posts("viewer", 10_000.0)
            if post.author == "u"
        ]
        assert posts[0].server_time == 1000.0 + 3 * 3600.0
