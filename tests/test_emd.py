"""Earth Mover's Distance: closed forms, metric axioms, oracles."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.stats import wasserstein_distance

from repro.core.emd import (
    ALL_DISTANCES,
    distance_matrix,
    emd_circular,
    emd_linear,
    l1_distance,
    l2_distance,
)
from repro.core.profiles import HOURS, Profile, uniform_profile

mass = st.lists(
    st.floats(0.01, 5.0, allow_nan=False), min_size=HOURS, max_size=HOURS
)


class TestLinearEmd:
    def test_identical_is_zero(self):
        assert emd_linear(uniform_profile(), uniform_profile()) == pytest.approx(0.0)

    def test_adjacent_point_masses(self):
        a = Profile([1.0] + [0.0] * 23)
        b = Profile([0.0, 1.0] + [0.0] * 22)
        assert emd_linear(a, b) == pytest.approx(1.0)

    def test_distance_scales_with_separation(self):
        a = Profile([1.0] + [0.0] * 23)
        for gap in (2, 5, 9):
            shifted = [0.0] * HOURS
            shifted[gap] = 1.0
            assert emd_linear(a, Profile(shifted)) == pytest.approx(float(gap))

    @given(mass, mass)
    @settings(max_examples=60)
    def test_matches_scipy(self, p, q):
        positions = np.arange(HOURS, dtype=float)
        expected = wasserstein_distance(
            positions, positions, u_weights=p, v_weights=q
        )
        assert emd_linear(np.asarray(p), np.asarray(q)) == pytest.approx(
            expected, abs=1e-9
        )

    @given(mass, mass)
    @settings(max_examples=40)
    def test_symmetry(self, p, q):
        p_arr, q_arr = np.asarray(p), np.asarray(q)
        assert emd_linear(p_arr, q_arr) == pytest.approx(emd_linear(q_arr, p_arr))

    @given(mass, mass, mass)
    @settings(max_examples=40)
    def test_triangle_inequality(self, p, q, r):
        p_arr, q_arr, r_arr = map(np.asarray, (p, q, r))
        assert emd_linear(p_arr, r_arr) <= emd_linear(p_arr, q_arr) + emd_linear(
            q_arr, r_arr
        ) + 1e-9


class TestCircularEmd:
    def test_wraparound_cheaper_than_linear(self):
        a = Profile([1.0] + [0.0] * 23)
        b = Profile([0.0] * 23 + [1.0])
        assert emd_linear(a, b) == pytest.approx(23.0)
        assert emd_circular(a, b) == pytest.approx(1.0)

    @given(mass, st.integers(0, 23))
    @settings(max_examples=40)
    def test_rotation_invariance(self, p, shift):
        profile = Profile(p)
        rotated = profile.shifted(shift)
        other = uniform_profile()
        rotated_other = other  # uniform is rotation-invariant
        assert emd_circular(profile, other) == pytest.approx(
            emd_circular(rotated, rotated_other), abs=1e-9
        )

    @given(mass, mass, st.integers(0, 23))
    @settings(max_examples=40)
    def test_joint_rotation_invariance(self, p, q, shift):
        a, b = Profile(p), Profile(q)
        assert emd_circular(a, b) == pytest.approx(
            emd_circular(a.shifted(shift), b.shifted(shift)), abs=1e-9
        )

    @given(mass, mass)
    @settings(max_examples=40)
    def test_never_exceeds_linear(self, p, q):
        a, b = np.asarray(p), np.asarray(q)
        assert emd_circular(a, b) <= emd_linear(a, b) + 1e-9

    @given(mass)
    @settings(max_examples=30)
    def test_identity(self, p):
        assert emd_circular(np.asarray(p), np.asarray(p)) == pytest.approx(0.0)


class TestOtherDistances:
    def test_l1_known_value(self):
        a = Profile([1.0] + [0.0] * 23)
        assert l1_distance(a, uniform_profile()) == pytest.approx(2 * 23 / 24)

    def test_l2_vs_numpy(self):
        a = Profile(np.arange(1.0, 25.0))
        b = uniform_profile()
        assert l2_distance(a, b) == pytest.approx(np.linalg.norm(a.mass - b.mass))

    def test_zero_mass_input_rejected(self):
        with pytest.raises(ValueError):
            emd_linear(np.zeros(HOURS), np.ones(HOURS))


class TestDistanceMatrix:
    @pytest.mark.parametrize("metric", sorted(ALL_DISTANCES))
    def test_matches_scalar_function(self, metric):
        rng = np.random.default_rng(5)
        profiles = [Profile(rng.random(HOURS) + 0.01) for _ in range(4)]
        references = [Profile(rng.random(HOURS) + 0.01) for _ in range(6)]
        matrix = distance_matrix(profiles, references, metric=metric)
        func = ALL_DISTANCES[metric]
        for i, p in enumerate(profiles):
            for j, q in enumerate(references):
                assert matrix[i, j] == pytest.approx(func(p, q), abs=1e-9)

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            distance_matrix([uniform_profile()], [uniform_profile()], metric="cosine")

    def test_shape(self):
        matrix = distance_matrix(
            [uniform_profile()] * 3, [uniform_profile()] * 24
        )
        assert matrix.shape == (3, 24)
