"""Nelder-Mead and golden-section minimisers, with scipy as oracle."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.optimize import minimize as scipy_minimize

from repro.core.optimize import golden_section, nelder_mead
from repro.errors import FitError


class TestNelderMead:
    def test_quadratic_1d(self):
        result = nelder_mead(lambda x: (x[0] - 3.0) ** 2, [0.0])
        assert result.converged
        assert result.x[0] == pytest.approx(3.0, abs=1e-4)

    def test_quadratic_3d(self):
        target = np.array([1.0, -2.0, 0.5])

        def objective(x):
            return float(np.sum((x - target) ** 2))

        result = nelder_mead(objective, [0.0, 0.0, 0.0])
        assert np.allclose(result.x, target, atol=1e-3)

    def test_rosenbrock(self):
        def rosenbrock(x):
            return float(
                100.0 * (x[1] - x[0] ** 2) ** 2 + (1.0 - x[0]) ** 2
            )

        result = nelder_mead(rosenbrock, [-1.2, 1.0], max_iter=5000)
        assert np.allclose(result.x, [1.0, 1.0], atol=1e-2)

    def test_matches_scipy_on_skewed_quadratic(self):
        matrix = np.array([[2.0, 0.4], [0.4, 1.0]])
        shift = np.array([0.7, -1.3])

        def objective(x):
            delta = np.asarray(x) - shift
            return float(delta @ matrix @ delta)

        ours = nelder_mead(objective, [0.0, 0.0])
        scipys = scipy_minimize(objective, [0.0, 0.0], method="Nelder-Mead")
        assert ours.fun == pytest.approx(scipys.fun, abs=1e-6)

    def test_handles_plateau_without_crash(self):
        result = nelder_mead(lambda x: 1.0, [0.0, 0.0])
        assert result.fun == 1.0

    def test_empty_start_rejected(self):
        with pytest.raises(FitError):
            nelder_mead(lambda x: 0.0, [])

    def test_iteration_budget_respected(self):
        result = nelder_mead(
            lambda x: float(np.sum(np.asarray(x) ** 2)), [50.0] * 4, max_iter=3
        )
        assert result.iterations <= 3
        assert not result.converged


class TestGoldenSection:
    def test_parabola(self):
        assert golden_section(lambda x: (x - 1.7) ** 2, -5, 5) == pytest.approx(
            1.7, abs=1e-5
        )

    def test_asymmetric_function(self):
        assert golden_section(lambda x: abs(x + 2.0) + 0.1 * x, -10, 10) == pytest.approx(
            -2.0, abs=1e-4
        )

    def test_boundary_minimum(self):
        assert golden_section(lambda x: x, 0.0, 1.0) == pytest.approx(0.0, abs=1e-5)

    def test_invalid_bracket(self):
        with pytest.raises(FitError):
            golden_section(lambda x: x * x, 2.0, 1.0)
