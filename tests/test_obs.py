"""The observability layer: metrics, spans, structured logs, manifests."""

from __future__ import annotations

import io
import json
import logging
import math
import threading

import pytest

from repro.errors import ReproError
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.obs.logs import (
    JsonlFormatter,
    configure_logging,
    get_logger,
    log_event,
    reset_logging,
)
from repro.obs.manifest import (
    MANIFEST_KIND,
    RunManifest,
    collect_versions,
    fingerprint_dataset,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Stopwatch,
    percentile_from_counts,
    use_registry,
)
from repro.obs.progress import ProgressReporter
from repro.obs.tracing import Tracer, trace_span, traced, use_tracer


class TestCounters:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        c = registry.counter("repro_test_events_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_same_name_same_handle(self):
        registry = MetricsRegistry()
        assert registry.counter("repro_test_a_total") is registry.counter(
            "repro_test_a_total"
        )

    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        shm = registry.counter("repro_test_builds_total", path="shm")
        serial = registry.counter("repro_test_builds_total", path="serial")
        assert shm is not serial
        shm.inc(3)
        assert shm.value == 3 and serial.value == 0

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_test_x_total", a="1", b="2")
        b = registry.counter("repro_test_x_total", b="2", a="1")
        assert a is b

    def test_counter_cannot_decrease(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            MetricsRegistry().counter("repro_test_events_total").inc(-1)

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_test_thing")

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            MetricsRegistry().counter("repro test total")

    def test_concurrent_increments_never_lost(self):
        registry = MetricsRegistry()
        c = registry.counter("repro_test_race_total")
        n_threads, per_thread = 8, 5_000

        def work():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * per_thread


class TestGauges:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("repro_test_dirty_users")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0


class TestHistograms:
    def test_bucket_edges_are_le_inclusive(self):
        h = Histogram("repro_test_seconds", buckets=(0.1, 1.0, 10.0))
        h.observe(0.1)  # exactly on an edge -> that bucket, not the next
        h.observe(0.10001)
        h.observe(10.0)
        h.observe(11.0)  # above the last bound -> +Inf slot
        assert h.bucket_counts() == [1, 1, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(21.20001)

    def test_buckets_must_strictly_increase(self):
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("repro_test_seconds", buckets=(1.0, 1.0))

    def test_infinite_bucket_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            Histogram("repro_test_seconds", buckets=(1.0, float("inf")))

    def test_time_context_is_exception_safe(self):
        h = Histogram("repro_test_seconds", buckets=(60.0,))
        with pytest.raises(RuntimeError):
            with h.time():
                raise RuntimeError("boom")
        assert h.count == 1


class TestExposition:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("repro_test_runs_total", "completed runs").inc(2)
        registry.counter("repro_test_builds_total", path="shm").inc()
        registry.gauge("repro_test_dirty_users").set(7)
        h = registry.histogram("repro_test_seconds", buckets=(0.5, 2.0))
        h.observe(0.25)
        h.observe(1.0)
        h.observe(5.0)
        return registry

    def test_snapshot_sections(self):
        snap = self._populated().snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert {"name": "repro_test_runs_total", "labels": {}, "value": 2.0} in snap[
            "counters"
        ]
        assert snap["histograms"][0]["counts"] == [1, 1, 1]

    def test_to_json_round_trips(self):
        payload = json.loads(self._populated().to_json())
        assert payload["kind"] == "repro-metrics"
        assert payload["metrics"]["gauges"][0]["value"] == 7.0

    def test_prometheus_text_format(self):
        text = self._populated().to_prometheus()
        lines = text.splitlines()
        assert "# HELP repro_test_runs_total completed runs" in lines
        assert "# TYPE repro_test_runs_total counter" in lines
        assert "repro_test_runs_total 2" in lines
        assert 'repro_test_builds_total{path="shm"} 1' in lines
        assert "# TYPE repro_test_seconds histogram" in lines
        # Bucket counts are cumulative and terminated by +Inf == _count.
        assert 'repro_test_seconds_bucket{le="0.5"} 1' in lines
        assert 'repro_test_seconds_bucket{le="2"} 2' in lines
        assert 'repro_test_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_test_seconds_sum 6.25" in lines
        assert "repro_test_seconds_count 3" in lines
        assert text.endswith("\n")

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_events_total", reason='a"b').inc()
        assert r'reason="a\"b"' in registry.to_prometheus()


class TestRegistryGlobals:
    def test_null_registry_is_default_and_inert(self):
        registry = obs_metrics.get_registry()
        assert isinstance(registry, NullRegistry)
        assert not registry.enabled
        handle = obs_metrics.counter("repro_test_events_total")
        handle.inc()  # must not blow up, must not record
        assert registry.snapshot() == {
            "counters": [],
            "gauges": [],
            "histograms": [],
        }

    def test_use_registry_swaps_and_restores(self):
        live = MetricsRegistry()
        with use_registry(live):
            obs_metrics.counter("repro_test_events_total").inc()
            assert obs_metrics.get_registry() is live
        assert isinstance(obs_metrics.get_registry(), NullRegistry)
        assert live.counter("repro_test_events_total").value == 1.0

    def test_enable_disable(self):
        try:
            registry = obs_metrics.enable()
            assert isinstance(registry, MetricsRegistry)
            assert obs_metrics.enable() is registry  # idempotent
        finally:
            obs_metrics.disable()
        assert not obs_metrics.get_registry().enabled


class TestTracing:
    def test_spans_nest_on_one_thread(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("outer", crowd="test"):
                with trace_span("inner"):
                    pass
                with trace_span("inner"):
                    pass
        assert [root.name for root in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [child.name for child in outer.children] == ["inner", "inner"]
        assert outer.attrs == {"crowd": "test"}
        assert outer.wall_s >= sum(child.wall_s for child in outer.children) * 0.5

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with pytest.raises(KeyError):
                with trace_span("doomed"):
                    raise KeyError("gone")
        (span,) = tracer.all_spans()
        assert span.status == "error"
        assert "KeyError" in span.error
        # The stack unwound: a new span is a root, not a child of "doomed".
        with use_tracer(tracer):
            with trace_span("after"):
                pass
        assert [root.name for root in tracer.roots] == ["doomed", "after"]

    def test_disabled_tracer_records_nothing(self):
        assert not obs_tracing.get_tracer().enabled
        with trace_span("invisible"):
            pass
        assert obs_tracing.get_tracer().all_spans() == []

    def test_traced_decorator(self):
        tracer = Tracer()

        @traced("named")
        def work(x):
            return x + 1

        with use_tracer(tracer):
            assert work(1) == 2
        assert work(1) == 2  # disabled path still runs the function
        assert [span.name for span in tracer.all_spans()] == ["named"]

    def test_chrome_trace_export(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("outer"):
                with trace_span("inner", n=3):
                    pass
        doc = tracer.to_chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert [event["name"] for event in events] == ["outer", "inner"]
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
        assert events[1]["args"]["n"] == 3

    def test_summary_aggregates_by_name(self):
        tracer = Tracer()
        with use_tracer(tracer):
            for _ in range(3):
                with trace_span("hot"):
                    pass
            with pytest.raises(ValueError):
                with trace_span("cold"):
                    raise ValueError()
        summary = {entry["name"]: entry for entry in tracer.summary()}
        assert summary["hot"]["count"] == 3
        assert summary["hot"]["errors"] == 0
        assert summary["cold"]["errors"] == 1

    def test_reset_clears_roots(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("gone"):
                pass
        tracer.reset()
        assert tracer.all_spans() == []


class TestLogging:
    def teardown_method(self):
        reset_logging()

    def test_jsonl_lines_carry_event_fields(self):
        sink = io.StringIO()
        configure_logging("INFO", json_lines=True, stream=sink)
        log_event(get_logger("core"), logging.INFO, "geolocate_done", n_users=42)
        line = json.loads(sink.getvalue().strip())
        assert line["logger"] == "repro.core"
        assert line["event"] == "geolocate_done"
        assert line["n_users"] == 42
        assert line["level"] == "INFO"
        assert "ts" in line

    def test_plain_format_appends_key_value_pairs(self):
        sink = io.StringIO()
        configure_logging("INFO", stream=sink)
        log_event(get_logger("core"), logging.INFO, "progress", done=10, pct=12.5)
        out = sink.getvalue()
        assert "progress" in out and "done=10" in out and "pct=12.5" in out

    def test_disabled_level_emits_nothing(self):
        sink = io.StringIO()
        configure_logging("WARNING", stream=sink)
        log_event(get_logger("core"), logging.INFO, "quiet")
        assert sink.getvalue() == ""

    def test_reconfigure_replaces_handler(self):
        sink = io.StringIO()
        configure_logging("INFO", stream=sink)
        configure_logging("INFO", stream=sink)  # must not stack handlers
        log_event(get_logger("core"), logging.INFO, "once")
        assert sink.getvalue().count("once") == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging("LOUD")

    def test_jsonl_formatter_stringifies_exotic_values(self):
        record = logging.LogRecord("repro.core", logging.INFO, "", 0, "ev", (), None)
        setattr(record, "repro_fields", {"path": object()})
        body = json.loads(JsonlFormatter().format(record))
        assert isinstance(body["path"], str)


class TestProgressReporter:
    def _reporter(self, sink, **kwargs):
        configure_logging("INFO", json_lines=True, stream=sink)
        clock = {"t": 0.0}
        reporter = ProgressReporter(
            "core",
            "profile_build",
            min_interval_s=5.0,
            clock=lambda: clock["t"],
            **kwargs,
        )
        return reporter, clock

    def teardown_method(self):
        reset_logging()

    def test_rate_limited_emission_with_eta(self):
        sink = io.StringIO()
        reporter, clock = self._reporter(sink, total=100)
        reporter.advance(10)  # interval not elapsed: silent
        assert sink.getvalue() == ""
        clock["t"] = 5.0
        reporter.advance(10)
        (line,) = [json.loads(l) for l in sink.getvalue().splitlines()]
        assert line["event"] == "progress"
        assert line["done"] == 20 and line["total"] == 100
        assert line["pct"] == 20.0
        assert line["eta_s"] == pytest.approx(20.0)  # 80 left at 4/s

    def test_finish_always_emits_final_line(self):
        sink = io.StringIO()
        reporter, clock = self._reporter(sink)
        reporter.advance(3)
        reporter.finish()
        lines = [json.loads(l) for l in sink.getvalue().splitlines()]
        assert lines[-1]["final"] is True
        assert lines[-1]["done"] == 3
        assert reporter.done == 3

    def test_feeds_progress_counter(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            reporter = ProgressReporter("forum", "monitor_campaign", clock=lambda: 0.0)
            reporter.advance(7)
        value = registry.counter(
            "repro_forum_progress_units_total", stage="monitor_campaign"
        ).value
        assert value == 7.0


class TestRunManifest:
    def test_round_trip_through_disk(self, tmp_path):
        manifest = RunManifest(
            command="geolocate", config={"scale": 0.02}, seed=11
        )
        path = manifest.write(tmp_path / "run.manifest.json")
        loaded = RunManifest.load(path)
        assert loaded.command == "geolocate"
        assert loaded.config == {"scale": 0.02}
        assert loaded.seed == 11
        assert loaded.fingerprint() == manifest.fingerprint()

    def test_fingerprint_ignores_metrics_and_time(self):
        a = RunManifest(command="run", seed=1, metrics={"counters": [1]}, created="x")
        b = RunManifest(command="run", seed=1, metrics={}, created="y")
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != RunManifest(command="run", seed=2).fingerprint()

    def test_tampering_is_detected(self, tmp_path):
        path = RunManifest(command="run").write(tmp_path / "m.json")
        payload = json.loads(path.read_text())
        payload["seed"] = 999  # edit after the fact
        path.write_text(json.dumps(payload))
        with pytest.raises(ReproError, match="fingerprint mismatch"):
            RunManifest.load(path)

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ReproError, match="not a run manifest"):
            RunManifest.load(path)

    def test_corrupt_json_rejected(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("{not json")
        with pytest.raises(ReproError, match="corrupt manifest"):
            RunManifest.load(path)

    def test_collect_embeds_live_registry_and_tracer(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        with use_registry(registry), use_tracer(tracer):
            obs_metrics.counter("repro_test_runs_total").inc()
            with trace_span("stage"):
                pass
            manifest = RunManifest.collect("test", seed=3)
        assert manifest.metrics["counters"][0]["name"] == "repro_test_runs_total"
        assert manifest.spans[0]["name"] == "stage"
        assert manifest.versions == collect_versions()
        assert manifest.to_dict()["kind"] == MANIFEST_KIND

    def test_dataset_fingerprint_file_and_dir(self, tmp_path):
        blob = tmp_path / "data.jsonl"
        blob.write_text("hello\n")
        fp = fingerprint_dataset(blob)
        assert fp["scheme"] == "sha256"
        assert fp["bytes"] == 6
        assert fingerprint_dataset(blob)["sha256"] == fp["sha256"]

        directory = tmp_path / "store"
        directory.mkdir()
        (directory / "a.bin").write_bytes(b"aa")
        (directory / "b.bin").write_bytes(b"bb")
        dir_fp = fingerprint_dataset(directory)
        assert dir_fp["scheme"] == "dir-sha256"
        assert dir_fp["bytes"] == 4
        (directory / "b.bin").write_bytes(b"bc")
        assert fingerprint_dataset(directory)["sha256"] != dir_fp["sha256"]

    def test_missing_dataset_raises_and_none_passes(self):
        assert fingerprint_dataset(None) is None
        with pytest.raises(ReproError, match="missing dataset"):
            fingerprint_dataset("/nonexistent/path/xyz")


class TestPercentileFromCounts:
    def test_interpolates_inside_landing_bucket(self):
        # 10 observations uniform in (0, 1], 10 in (1, 2]
        buckets, counts = [1.0, 2.0], [10, 10, 0]
        assert percentile_from_counts(buckets, counts, 0.5) == pytest.approx(1.0)
        assert percentile_from_counts(buckets, counts, 0.25) == pytest.approx(0.5)
        assert percentile_from_counts(buckets, counts, 0.75) == pytest.approx(1.5)
        assert percentile_from_counts(buckets, counts, 1.0) == pytest.approx(2.0)

    def test_inf_bucket_degrades_to_largest_finite_bound(self):
        assert percentile_from_counts([1.0, 2.0], [0, 0, 5], 0.99) == 2.0

    def test_empty_histogram_is_nan(self):
        assert math.isnan(percentile_from_counts([1.0], [0, 0], 0.5))

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError, match="quantile"):
            percentile_from_counts([1.0], [1, 0], 0.0)
        with pytest.raises(ValueError, match="quantile"):
            percentile_from_counts([1.0], [1, 0], 1.5)

    def test_count_length_must_match_buckets(self):
        with pytest.raises(ValueError, match="expected 3 counts"):
            percentile_from_counts([1.0, 2.0], [1, 0], 0.5)

    def test_histogram_percentile_uses_live_counts(self):
        h = Histogram("repro_test_seconds", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.5, 1.5, 3.0):
            h.observe(value)
        assert h.percentile(0.5) == pytest.approx(1.0)
        assert h.percentile(1.0) == pytest.approx(4.0)
        assert math.isnan(Histogram("repro_test_empty", buckets=(1.0,)).percentile(0.5))

    def test_null_registry_percentile_is_nan(self):
        h = NullRegistry().histogram("repro_test_seconds", "help")
        h.observe(1.0)
        assert math.isnan(h.percentile(0.5))

    def test_matches_snapshot_shape(self):
        # the CLI computes percentiles from the persisted snapshot entries;
        # the module function must accept that exact shape
        registry = MetricsRegistry()
        h = registry.histogram("repro_test_seconds", "t", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        (entry,) = registry.snapshot()["histograms"]
        value = percentile_from_counts(entry["buckets"], entry["counts"], 0.95)
        assert value == pytest.approx(h.percentile(0.95))


class TestStopwatch:
    def test_elapsed_is_monotone_nonnegative(self):
        watch = Stopwatch()
        first = watch.elapsed_s()
        second = watch.elapsed_s()
        assert 0.0 <= first <= second

    def test_restart_returns_elapsed_and_resets(self):
        watch = Stopwatch()
        elapsed = watch.restart()
        assert elapsed >= 0.0
        assert watch.elapsed_s() <= elapsed + 1.0  # origin moved forward
