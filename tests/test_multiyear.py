"""Multi-year traces: the seasonal classifiers sharpen with history.

The generation window is not limited to 2016 -- the civil calendar and
every DST rule family extend indefinitely, so two-year traces double the
number of DST transitions (and gap windows) available to the hemisphere
and rule-family tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.dst_family import DstFamily, classify_dst_family
from repro.core.hemisphere import HemisphereVerdict, classify_hemisphere
from repro.synth.population import sample_user
from repro.synth.posting import generate_trace
from repro.timebase.clock import CivilDate, civil_to_ordinal


class TestMultiYearGeneration:
    def test_trace_spans_two_years(self, rng):
        spec = sample_user("u", "germany", rng, posts_per_day_mean=2.0)
        trace = generate_trace(spec, rng, n_days=730)
        assert trace.span_days() > 600

    def test_second_year_dst_applies(self, rng):
        # 2017: EU DST runs Mar 26 .. Oct 29.
        spec = sample_user(
            "u", "germany", rng, posts_per_day_mean=8.0, chronotype_std=0.01
        )
        trace = generate_trace(spec, rng, n_days=730)
        stamps = np.asarray(trace.timestamps)
        july_2017 = civil_to_ordinal(CivilDate(2017, 7, 10))
        jan_2017 = civil_to_ordinal(CivilDate(2017, 1, 10))
        summer = stamps[
            (stamps >= july_2017 * 86400.0)
            & (stamps < (july_2017 + 40) * 86400.0)
        ]
        winter = stamps[
            (stamps >= jan_2017 * 86400.0) & (stamps < (jan_2017 + 40) * 86400.0)
        ]
        hist_summer = np.bincount(
            ((summer % 86400) // 3600).astype(int), minlength=24
        ).astype(float)
        hist_winter = np.bincount(
            ((winter % 86400) // 3600).astype(int), minlength=24
        ).astype(float)
        correlations = {
            shift: float(np.dot(np.roll(hist_summer, shift), hist_winter))
            for shift in range(-3, 4)
        }
        assert max(correlations, key=correlations.get) == 1


class TestClassifiersWithTwoYears:
    def test_hemisphere_still_correct(self, rng):
        spec = sample_user(
            "u", "brazil", rng, posts_per_day_mean=6.0, chronotype_std=0.5
        )
        trace = generate_trace(spec, rng, n_days=730)
        result = classify_hemisphere(trace)
        assert result.verdict is HemisphereVerdict.SOUTHERN

    def test_dst_family_accuracy_improves_with_years(self):
        def accuracy(n_days: int, n: int = 12) -> float:
            rng = np.random.default_rng(2024)
            hits = 0
            for index in range(n):
                spec = sample_user(
                    f"u{index}",
                    "new_york",
                    rng,
                    posts_per_day_mean=6.0,
                    chronotype_std=0.8,
                )
                trace = generate_trace(spec, rng, n_days=n_days)
                if classify_dst_family(trace).verdict is DstFamily.US:
                    hits += 1
            return hits / n

        one_year = accuracy(366)
        two_years = accuracy(730)
        assert two_years >= one_year - 0.1  # never materially worse
        assert two_years >= 0.6
