"""Seed-stability driver."""

from __future__ import annotations

from repro.analysis.robustness import run_seed_stability


class TestSeedStability:
    def test_big_forums_stable(self, context):
        rows = run_seed_stability(
            context,
            forums=("crd_club", "majestic_garden"),
            seeds=(1, 2),
            scale=0.5,
        )
        by_forum = {row.forum_key: row for row in rows}
        assert by_forum["crd_club"].both_correct == 1.0
        assert by_forum["majestic_garden"].center_correct == 1.0

    def test_row_bookkeeping(self, context):
        rows = run_seed_stability(
            context, forums=("dream_market",), seeds=(1, 2), scale=0.4
        )
        row = rows[0]
        assert row.n_seeds == 2
        assert 0.0 <= row.both_correct <= min(row.k_correct, row.center_correct)
        assert row.center_spread >= 0.0
