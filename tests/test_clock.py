"""Civil-date arithmetic, checked against the standard library."""

from __future__ import annotations

import datetime

import pytest
from hypothesis import given, strategies as st

from repro.errors import CalendarError
from repro.timebase.clock import (
    EPOCH_YEAR,
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    CivilDate,
    civil_to_ordinal,
    day_ordinal,
    days_in_month,
    days_in_year,
    hour_of_day,
    is_leap_year,
    make_timestamp,
    nth_weekday_of_month,
    ordinal_to_civil,
    weekday,
)

_EPOCH_DATE = datetime.date(EPOCH_YEAR, 1, 1)


class TestLeapYears:
    def test_2016_is_leap(self):
        assert is_leap_year(2016)

    def test_2100_is_not_leap(self):
        assert not is_leap_year(2100)

    def test_2000_is_leap(self):
        assert is_leap_year(2000)

    def test_2017_is_not_leap(self):
        assert not is_leap_year(2017)

    def test_days_in_year(self):
        assert days_in_year(2016) == 366
        assert days_in_year(2017) == 365


class TestDaysInMonth:
    def test_february_leap(self):
        assert days_in_month(2016, 2) == 29

    def test_february_regular(self):
        assert days_in_month(2017, 2) == 28

    def test_invalid_month(self):
        with pytest.raises(CalendarError):
            days_in_month(2016, 13)

    @given(st.integers(2000, 2100), st.integers(1, 12))
    def test_matches_stdlib(self, year, month):
        import calendar

        assert days_in_month(year, month) == calendar.monthrange(year, month)[1]


class TestCivilDate:
    def test_str(self):
        assert str(CivilDate(2016, 3, 7)) == "2016-03-07"

    def test_invalid_day(self):
        with pytest.raises(CalendarError):
            CivilDate(2017, 2, 29)

    def test_invalid_month(self):
        with pytest.raises(CalendarError):
            CivilDate(2016, 0, 1)

    def test_ordering(self):
        assert CivilDate(2016, 1, 2) < CivilDate(2016, 2, 1)


class TestOrdinalConversions:
    def test_epoch_is_zero(self):
        assert civil_to_ordinal(CivilDate(2016, 1, 1)) == 0

    def test_known_date(self):
        assert civil_to_ordinal(CivilDate(2016, 12, 31)) == 365

    def test_negative_ordinal(self):
        assert civil_to_ordinal(CivilDate(2015, 12, 31)) == -1

    @given(st.integers(-4000, 4000))
    def test_roundtrip(self, ordinal):
        assert civil_to_ordinal(ordinal_to_civil(ordinal)) == ordinal

    @given(
        st.dates(
            min_value=datetime.date(1990, 1, 1), max_value=datetime.date(2100, 1, 1)
        )
    )
    def test_matches_stdlib(self, date):
        expected = (date - _EPOCH_DATE).days
        assert civil_to_ordinal(CivilDate(date.year, date.month, date.day)) == expected

    @given(st.integers(-20000, 20000))
    def test_ordinal_to_civil_matches_stdlib(self, ordinal):
        expected = _EPOCH_DATE + datetime.timedelta(days=ordinal)
        civil = ordinal_to_civil(ordinal)
        assert (civil.year, civil.month, civil.day) == (
            expected.year,
            expected.month,
            expected.day,
        )


class TestWeekday:
    def test_epoch_weekday_is_friday(self):
        assert weekday(0) == 4

    @given(st.integers(-10000, 10000))
    def test_matches_stdlib(self, ordinal):
        expected = (_EPOCH_DATE + datetime.timedelta(days=ordinal)).weekday()
        assert weekday(ordinal) == expected


class TestTimestamps:
    def test_epoch_timestamp(self):
        assert make_timestamp(2016, 1, 1) == 0.0

    def test_components(self):
        ts = make_timestamp(2016, 1, 2, hour=3, minute=4, second=5)
        assert ts == SECONDS_PER_DAY + 3 * SECONDS_PER_HOUR + 4 * 60 + 5

    def test_invalid_minute(self):
        with pytest.raises(CalendarError):
            make_timestamp(2016, 1, 1, minute=61)

    def test_hour_overflow_rolls_to_next_day(self):
        assert make_timestamp(2016, 1, 1, hour=25) == make_timestamp(
            2016, 1, 2, hour=1
        )

    def test_hour_of_day_utc(self):
        assert hour_of_day(make_timestamp(2016, 6, 15, hour=13)) == 13

    def test_hour_of_day_with_offset(self):
        assert hour_of_day(make_timestamp(2016, 6, 15, hour=23), offset_hours=2) == 1

    def test_day_ordinal_with_offset_wraps(self):
        ts = make_timestamp(2016, 1, 1, hour=23)
        assert day_ordinal(ts) == 0
        assert day_ordinal(ts, offset_hours=2) == 1

    @given(st.integers(0, 365), st.integers(0, 23), st.integers(-11, 12))
    def test_offset_shift_consistency(self, day, hour, offset):
        ts = day * SECONDS_PER_DAY + hour * SECONDS_PER_HOUR
        assert hour_of_day(ts, offset) == (hour + offset) % 24


class TestNthWeekday:
    def test_last_sunday_march_2016(self):
        # EU DST start 2016: March 27.
        ordinal = nth_weekday_of_month(2016, 3, 6, -1)
        assert ordinal_to_civil(ordinal) == CivilDate(2016, 3, 27)

    def test_second_sunday_march_2016(self):
        # US DST start 2016: March 13.
        ordinal = nth_weekday_of_month(2016, 3, 6, 2)
        assert ordinal_to_civil(ordinal) == CivilDate(2016, 3, 13)

    def test_first_sunday_november_2016(self):
        # US DST end 2016: November 6.
        ordinal = nth_weekday_of_month(2016, 11, 6, 1)
        assert ordinal_to_civil(ordinal) == CivilDate(2016, 11, 6)

    def test_nonexistent_fifth_sunday(self):
        with pytest.raises(CalendarError):
            nth_weekday_of_month(2016, 2, 6, 5)

    def test_zero_n_rejected(self):
        with pytest.raises(CalendarError):
            nth_weekday_of_month(2016, 1, 6, 0)

    @given(st.integers(2000, 2050), st.integers(1, 12), st.integers(0, 6))
    def test_nth_is_correct_weekday(self, year, month, target):
        ordinal = nth_weekday_of_month(year, month, target, 1)
        assert weekday(ordinal) == target
        civil = ordinal_to_civil(ordinal)
        assert civil.month == month and civil.day <= 7
