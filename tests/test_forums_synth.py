"""Synthetic Dark Web forum crowds."""

from __future__ import annotations

import pytest

from repro.synth.forums import (
    FORUM_SPECS,
    build_forum_crowd,
    build_merged_crowd,
    build_relocated_crowd,
)
from repro.timebase.zones import get_region


class TestSpecs:
    def test_five_forums(self):
        assert set(FORUM_SPECS) == {
            "crd_club",
            "idc",
            "dream_market",
            "majestic_garden",
            "pedo_community",
        }

    @pytest.mark.parametrize("key", sorted(FORUM_SPECS))
    def test_component_weights_sum_to_one(self, key):
        spec = FORUM_SPECS[key]
        assert sum(weight for _, weight in spec.components) == pytest.approx(1.0)

    @pytest.mark.parametrize("key", sorted(FORUM_SPECS))
    def test_component_regions_exist(self, key):
        for region_key, _ in FORUM_SPECS[key].components:
            get_region(region_key)

    def test_paper_counts(self):
        assert FORUM_SPECS["crd_club"].n_users == 209
        assert FORUM_SPECS["crd_club"].total_posts == 14_809
        assert FORUM_SPECS["idc"].n_users == 52
        assert FORUM_SPECS["dream_market"].total_posts == 14_499
        assert FORUM_SPECS["majestic_garden"].n_users == 638
        assert FORUM_SPECS["pedo_community"].total_posts == 44_876

    def test_posts_per_user(self):
        spec = FORUM_SPECS["crd_club"]
        assert spec.posts_per_user() == pytest.approx(14_809 / 209)

    def test_onions_match_paper(self):
        assert FORUM_SPECS["crd_club"].onion.startswith("crdclub4wraumez4")
        assert FORUM_SPECS["pedo_community"].onion.startswith("support26v5pvkg6")


class TestBuildForumCrowd:
    def test_scaled_crowd_size(self):
        crowd = build_forum_crowd(FORUM_SPECS["idc"], seed=1, scale=0.5, n_days=90)
        # Oversampling factor 1.8 on 26 users.
        assert 30 <= len(crowd.traces) <= 60

    def test_bots_mixed_in(self):
        crowd = build_forum_crowd(FORUM_SPECS["idc"], seed=1, scale=1.0, n_days=90)
        assert any("bot" in user for user in crowd.traces.user_ids())

    def test_specs_by_user_covers_humans(self):
        crowd = build_forum_crowd(FORUM_SPECS["idc"], seed=1, scale=0.5, n_days=60)
        humans = [u for u in crowd.traces.user_ids() if "bot" not in u]
        assert set(humans) <= set(crowd.specs_by_user)

    def test_deterministic(self):
        a = build_forum_crowd(FORUM_SPECS["idc"], seed=9, scale=0.3, n_days=60)
        b = build_forum_crowd(FORUM_SPECS["idc"], seed=9, scale=0.3, n_days=60)
        assert a.traces.total_posts() == b.traces.total_posts()

    def test_name_property(self):
        crowd = build_forum_crowd(FORUM_SPECS["crd_club"], seed=1, scale=0.1, n_days=30)
        assert crowd.name == "CRD Club"


class TestRelocatedCrowd:
    def test_three_copies(self):
        traces = build_relocated_crowd("malaysia", (0, -7, 9), 10, seed=2, n_days=60)
        users = traces.user_ids()
        assert len(users) == 30
        assert sum(1 for user in users if user.startswith("utc+9_")) == 10

    def test_shift_preserves_post_counts(self):
        traces = build_relocated_crowd("malaysia", (0, 8), 5, seed=2, n_days=60)
        base = [user for user in traces.user_ids() if user.startswith("utc+8_")]
        moved = [user for user in traces.user_ids() if user.startswith("utc+0_")]
        total_base = sum(len(traces[user]) for user in base)
        total_moved = sum(len(traces[user]) for user in moved)
        assert total_base == total_moved

    def test_identity_offset_unshifted(self):
        traces = build_relocated_crowd("malaysia", (8,), 3, seed=2, n_days=60)
        # Relocating to the home offset leaves timestamps unchanged
        # relative to a direct generation with the same seed.
        again = build_relocated_crowd("malaysia", (8,), 3, seed=2, n_days=60)
        for user in traces.user_ids():
            assert list(traces[user].timestamps) == list(again[user].timestamps)


class TestMergedCrowd:
    def test_users_per_region(self):
        traces = build_merged_crowd(("germany", "japan"), 6, seed=4, n_days=60)
        germans = [u for u in traces.user_ids() if "germany" in u]
        japanese = [u for u in traces.user_ids() if "japan" in u]
        assert len(germans) <= 6 and len(japanese) <= 6
        assert len(traces) == len(germans) + len(japanese)
