"""Bridges and censorship circumvention."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CircuitError, TorError
from repro.tor.bridges import (
    BridgeAuthority,
    Censor,
    build_censored_circuit,
    make_bridges,
)
from repro.tor.network import build_network
from repro.tor.relay import Relay, RelayFlag


@pytest.fixture()
def network():
    return build_network(n_relays=30, seed=9)


@pytest.fixture()
def authority():
    return BridgeAuthority(make_bridges(10, seed=9))


class TestCensor:
    def test_blocking_consensus_blocks_all(self, network):
        censor = Censor.blocking_consensus(network.consensus)
        for relay in network.consensus.all_relays():
            assert not censor.allows(relay.relay_id)

    def test_bridges_not_blocked(self, network, authority):
        censor = Censor.blocking_consensus(network.consensus)
        for bridge in authority.request_bridges("alice"):
            assert censor.allows(bridge.relay_id)


class TestBridgeAuthority:
    def test_bridges_unlisted(self, network, authority):
        consensus_ids = {r.relay_id for r in network.consensus.all_relays()}
        for bridge in authority.request_bridges("alice"):
            assert bridge.relay_id not in consensus_ids

    def test_ration_size(self, authority):
        assert len(authority.request_bridges("alice")) == 3

    def test_ration_stable_per_client(self, authority):
        first = [b.relay_id for b in authority.request_bridges("alice")]
        second = [b.relay_id for b in authority.request_bridges("alice")]
        assert first == second

    def test_different_clients_different_rations(self, authority):
        alice = {b.relay_id for b in authority.request_bridges("alice")}
        others = set()
        for name in ("bob", "carol", "dave", "erin"):
            others |= {b.relay_id for b in authority.request_bridges(name)}
        assert others - alice  # the authority does not hand everyone the same set

    def test_empty_authority(self):
        authority = BridgeAuthority([])
        with pytest.raises(TorError):
            authority.request_bridges("alice")

    def test_non_guard_bridge_rejected(self):
        bad = Relay("b", "b", 1.0, flags=RelayFlag.FAST)
        with pytest.raises(TorError):
            BridgeAuthority([bad])


class TestCensoredCircuits:
    def test_uncensored_uses_guard(self, network):
        rng = np.random.default_rng(1)
        censor = Censor(blocked_relay_ids=frozenset())
        circuit = build_censored_circuit(
            network.consensus, rng, censor=censor
        )
        assert circuit.guard.can_serve(RelayFlag.GUARD)

    def test_full_censorship_without_bridges_fails(self, network):
        rng = np.random.default_rng(1)
        censor = Censor.blocking_consensus(network.consensus)
        with pytest.raises(CircuitError):
            build_censored_circuit(network.consensus, rng, censor=censor)

    def test_bridge_restores_access(self, network, authority):
        rng = np.random.default_rng(1)
        censor = Censor.blocking_consensus(network.consensus)
        circuit = build_censored_circuit(
            network.consensus,
            rng,
            censor=censor,
            bridge_authority=authority,
            client_id="alice",
        )
        assert authority.is_bridge(circuit.guard.relay_id)
        # The rest of the circuit still runs over public relays.
        assert not authority.is_bridge(circuit.hops[1].relay_id)
        assert not authority.is_bridge(circuit.exit.relay_id)

    def test_bridge_circuit_relays_traffic(self, network, authority):
        rng = np.random.default_rng(2)
        censor = Censor.blocking_consensus(network.consensus)
        circuit = build_censored_circuit(
            network.consensus,
            rng,
            censor=censor,
            bridge_authority=authority,
            client_id="alice",
        )
        reply, _ = circuit.round_trip(b"ping", lambda payload: b"pong:" + payload)
        assert reply == b"pong:ping"

    def test_censor_blocking_bridges_too(self, network, authority):
        rng = np.random.default_rng(3)
        blocked = {r.relay_id for r in network.consensus.all_relays()}
        blocked |= {b.relay_id for b in authority.request_bridges("alice")}
        censor = Censor(blocked_relay_ids=frozenset(blocked))
        with pytest.raises(CircuitError):
            build_censored_circuit(
                network.consensus,
                rng,
                censor=censor,
                bridge_authority=authority,
                client_id="alice",
            )
