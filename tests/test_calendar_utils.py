"""Weekend/holiday calendars."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.timebase.calendar_utils import (
    HolidayCalendar,
    is_weekend,
    standard_holidays,
)
from repro.timebase.clock import CivilDate, civil_to_ordinal, weekday


def _ordinal(year, month, day):
    return civil_to_ordinal(CivilDate(year, month, day))


class TestWeekend:
    def test_epoch_is_friday(self):
        assert not is_weekend(0)

    def test_saturday(self):
        assert is_weekend(1)  # 2016-01-02

    def test_sunday(self):
        assert is_weekend(2)  # 2016-01-03

    @given(st.integers(-5000, 5000))
    def test_consistent_with_weekday(self, ordinal):
        assert is_weekend(ordinal) == (weekday(ordinal) >= 5)

    @given(st.integers(0, 1000))
    def test_two_weekend_days_per_week(self, start):
        week = range(start * 7, start * 7 + 7)
        assert sum(1 for day in week if is_weekend(day)) == 2


class TestHolidayCalendar:
    def test_christmas_is_holiday(self):
        calendar = standard_holidays(window=0)
        assert calendar.is_holiday(_ordinal(2016, 12, 25))

    def test_window_extends(self):
        calendar = standard_holidays(window=1)
        # May 2 is within one day of May 1.
        assert calendar.is_holiday(_ordinal(2016, 5, 2))

    def test_regular_day_is_not(self):
        calendar = standard_holidays(window=1)
        assert not calendar.is_holiday(_ordinal(2016, 7, 14))

    def test_custom_calendar(self):
        calendar = HolidayCalendar(
            name="custom", fixed_dates=frozenset({(7, 4)}), window=0
        )
        assert calendar.is_holiday(_ordinal(2016, 7, 4))
        assert not calendar.is_holiday(_ordinal(2016, 7, 5))

    def test_holidays_in_year_sorted_count(self):
        calendar = standard_holidays()
        ordinals = calendar.holidays_in_year(2016)
        assert len(ordinals) == 6
        assert ordinals == sorted(ordinals)

    def test_empty_calendar(self):
        calendar = HolidayCalendar(name="empty")
        assert not calendar.is_holiday(0)
        assert calendar.holidays_in_year(2016) == []
