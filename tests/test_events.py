"""Activity traces and trace sets."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.events import ActivityTrace, PostEvent, TraceSet
from repro.errors import EmptyTraceError
from repro.timebase.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR, make_timestamp


def _trace(user="alice", hours=(9, 21), days=range(10)):
    stamps = [
        day * SECONDS_PER_DAY + hour * SECONDS_PER_HOUR
        for day in days
        for hour in hours
    ]
    return ActivityTrace(user, stamps)


class TestPostEvent:
    def test_day_and_hour(self):
        event = PostEvent(make_timestamp(2016, 1, 2, hour=5), "u")
        assert event.day() == 1
        assert event.hour() == 5

    def test_offset_aware(self):
        event = PostEvent(make_timestamp(2016, 1, 1, hour=23), "u")
        assert event.hour(offset_hours=3) == 2
        assert event.day(offset_hours=3) == 1

    def test_ordering_by_time(self):
        early = PostEvent(10.0, "b")
        late = PostEvent(20.0, "a")
        assert early < late


class TestActivityTrace:
    def test_sorted_on_construction(self):
        trace = ActivityTrace("u", [30.0, 10.0, 20.0])
        assert list(trace.timestamps) == [10.0, 20.0, 30.0]

    def test_timestamps_read_only(self):
        trace = _trace()
        with pytest.raises(ValueError):
            trace.timestamps[0] = 0.0

    def test_len_and_iter(self):
        trace = _trace(days=range(3))
        assert len(trace) == 6
        events = list(trace)
        assert all(isinstance(event, PostEvent) for event in events)
        assert events[0].user_id == "alice"

    def test_span_days(self):
        assert _trace(days=range(10)).span_days() == 10

    def test_span_days_empty(self):
        assert ActivityTrace("u").span_days() == 0

    def test_shifted(self):
        trace = _trace(hours=(10,), days=(0,))
        shifted = trace.shifted(2.0)
        assert shifted.timestamps[0] == trace.timestamps[0] + 2 * SECONDS_PER_HOUR
        assert shifted.user_id == "alice"

    def test_restricted_to_days(self):
        trace = _trace(hours=(12,), days=range(10))
        evens = trace.restricted_to_days(lambda day: day % 2 == 0)
        assert len(evens) == 5

    def test_restricted_empty_trace(self):
        empty = ActivityTrace("u")
        assert empty.restricted_to_days(lambda day: True).is_empty()

    def test_merge_same_user(self):
        merged = _trace(days=(0,)).merged_with(_trace(days=(1,)))
        assert len(merged) == 4

    def test_merge_different_user_rejected(self):
        with pytest.raises(ValueError):
            _trace(user="a").merged_with(_trace(user="b"))

    def test_active_day_hours_dedupes(self):
        # Three posts in the same hour of the same day count once.
        base = 5 * SECONDS_PER_DAY + 9 * SECONDS_PER_HOUR
        trace = ActivityTrace("u", [base, base + 60, base + 120])
        assert trace.active_day_hours() == {(5, 9)}

    def test_active_day_hours_offset(self):
        trace = ActivityTrace("u", [23 * SECONDS_PER_HOUR])
        assert trace.active_day_hours(offset_hours=2) == {(1, 1)}

    @given(
        st.lists(
            st.floats(0, 365 * SECONDS_PER_DAY, allow_nan=False), min_size=1, max_size=50
        )
    )
    def test_active_cells_never_exceed_posts(self, stamps):
        trace = ActivityTrace("u", stamps)
        assert 1 <= len(trace.active_day_hours()) <= len(trace)


class TestTraceSet:
    def test_add_merges_duplicates(self):
        traces = TraceSet([_trace(days=(0,)), _trace(days=(1,))])
        assert len(traces) == 1
        assert len(traces["alice"]) == 4

    def test_from_events(self):
        events = [PostEvent(1.0, "a"), PostEvent(2.0, "b"), PostEvent(3.0, "a")]
        traces = TraceSet.from_events(events)
        assert len(traces) == 2
        assert len(traces["a"]) == 2

    def test_getitem_missing(self):
        with pytest.raises(EmptyTraceError):
            TraceSet()["ghost"]

    def test_contains(self):
        traces = TraceSet([_trace()])
        assert "alice" in traces
        assert "bob" not in traces

    def test_total_posts(self):
        traces = TraceSet([_trace(user="a", days=range(3)), _trace(user="b", days=range(2))])
        assert traces.total_posts() == 10

    def test_with_min_posts(self):
        traces = TraceSet(
            [_trace(user="busy", days=range(20)), _trace(user="quiet", days=range(2))]
        )
        active = traces.with_min_posts(30)
        assert active.user_ids() == ["busy"]

    def test_without_users(self):
        traces = TraceSet([_trace(user="a"), _trace(user="b")])
        assert traces.without_users(["a"]).user_ids() == ["b"]

    def test_shifted_applies_to_all(self):
        traces = TraceSet([_trace(user="a", hours=(10,), days=(0,))])
        shifted = traces.shifted(-3.0)
        assert shifted["a"].timestamps[0] == 7 * SECONDS_PER_HOUR

    def test_most_active_ordering(self):
        traces = TraceSet(
            [
                _trace(user="small", days=range(1)),
                _trace(user="big", days=range(9)),
                _trace(user="mid", days=range(4)),
            ]
        )
        ranked = traces.most_active(2)
        assert [trace.user_id for trace in ranked] == ["big", "mid"]

    def test_most_active_ties_break_by_name(self):
        traces = TraceSet([_trace(user="b"), _trace(user="a")])
        ranked = traces.most_active(2)
        assert [trace.user_id for trace in ranked] == ["a", "b"]

    def test_filter_users(self):
        traces = TraceSet([_trace(user="keep"), _trace(user="drop")])
        kept = traces.filter_users(lambda trace: trace.user_id == "keep")
        assert kept.user_ids() == ["keep"]

    def test_as_mapping_is_copy(self):
        traces = TraceSet([_trace()])
        mapping = traces.as_mapping()
        assert set(mapping) == {"alice"}
