"""Counts-kernel backends and the blocked EMD kernels.

The dispatcher contract is that backends are interchangeable bit for bit:
the numpy pass is the reference, the numba JIT (when installed) must
match it exactly, and the blocked ``distance_matrix`` kernels must be
invariant to the block size down to the last bit -- that exactness is
what the sharded engine's merge correctness rests on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import emd as emd_module
from repro.core import kernels
from repro.core.emd import ALL_DISTANCES, distance_matrix
from repro.core.kernels import (
    HAVE_NUMBA,
    available_backends,
    kernel_backend,
    segment_counts,
    segment_counts_numpy,
    segment_unique_cells,
    segment_unique_cells_numpy,
    set_kernel_backend,
)
from repro.timebase.clock import split_day_hours


def _naive_counts(arrays: list[np.ndarray], offset_hours: float) -> np.ndarray:
    """Per-user dict-of-cells oracle for the segmented counts kernels."""
    out = np.zeros((len(arrays), 24), dtype=float)
    for i, stamps in enumerate(arrays):
        stamps = np.asarray(stamps, dtype=float)
        if stamps.size == 0:
            continue
        days, hours = split_day_hours(stamps, offset_hours)
        cells = {(int(day), int(hour)) for day, hour in zip(days, hours)}
        for _, hour in cells:
            out[i, hour] += 1.0
    return out


def _flatten(arrays: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    lengths = np.asarray([len(a) for a in arrays], dtype=np.int64)
    stamps = (
        np.concatenate([np.asarray(a, dtype=float) for a in arrays])
        if arrays
        else np.zeros(0, dtype=float)
    )
    return stamps, lengths


segments = st.lists(
    st.lists(
        st.floats(-3e5, 3e6, allow_nan=False, allow_infinity=False),
        min_size=0,
        max_size=25,
    ),
    min_size=0,
    max_size=12,
)


class TestNumpyBackend:
    @given(segments, st.sampled_from([0.0, -5.0, 3.0, 11.5]))
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_oracle(self, arrays, offset):
        """Unsorted, negative and empty segments all count correctly."""
        lists = [np.asarray(a, dtype=float) for a in arrays]
        stamps, lengths = _flatten(lists)
        np.testing.assert_array_equal(
            segment_counts_numpy(stamps, lengths, offset),
            _naive_counts(lists, offset),
        )

    def test_empty_column_shapes(self):
        empty = np.zeros(0, dtype=float)
        no_users = segment_counts_numpy(empty, np.zeros(0, dtype=np.int64))
        assert no_users.shape == (0, 24)
        silent = segment_counts_numpy(empty, np.zeros(3, dtype=np.int64))
        np.testing.assert_array_equal(silent, np.zeros((3, 24)))

    def test_rows_are_float64(self):
        counts = segment_counts_numpy(
            np.array([10.0, 3700.0]), np.array([2], dtype=np.int64)
        )
        assert counts.dtype == np.float64


class TestBackendDispatch:
    def test_default_backend_is_listed(self):
        assert kernel_backend() in available_backends()
        assert "numpy" in available_backends()

    def test_set_and_restore(self):
        previous = set_kernel_backend("numpy")
        try:
            assert kernel_backend() == "numpy"
            counts = segment_counts(
                np.array([100.0, 7300.0]), np.array([2], dtype=np.int64)
            )
            assert counts.shape == (1, 24)
        finally:
            set_kernel_backend(previous)
        assert kernel_backend() == previous

    def test_unknown_backend_refused(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            set_kernel_backend("fortran")

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed here")
    def test_numba_requested_but_missing_refused(self):
        with pytest.raises(ValueError, match="numba is not installed"):
            set_kernel_backend("numba")
        with pytest.raises(RuntimeError, match="numba is not installed"):
            kernels.segment_counts_numba(
                np.array([1.0]), np.array([1], dtype=np.int64)
            )


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
class TestNumbaBackend:
    @given(segments, st.sampled_from([0.0, -5.0, 3.0, 11.5]))
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_to_numpy(self, arrays, offset):
        lists = [np.asarray(a, dtype=float) for a in arrays]
        stamps, lengths = _flatten(lists)
        np.testing.assert_array_equal(
            kernels.segment_counts_numba(stamps, lengths, offset),
            segment_counts_numpy(stamps, lengths, offset),
        )

    def test_backend_selectable(self):
        previous = set_kernel_backend("numba")
        try:
            assert kernel_backend() == "numba"
        finally:
            set_kernel_backend(previous)


def _naive_unique(arrays: list, offset: float) -> tuple:
    """Per-user sorted-set oracle for the unique-cells kernels."""
    cells_out: list[int] = []
    lengths = []
    for stamps in arrays:
        stamps = np.asarray(stamps, dtype=float)
        if stamps.size == 0:
            lengths.append(0)
            continue
        days, hours = split_day_hours(stamps, offset)
        unique = sorted(
            {int(day) * 24 + int(hour) for day, hour in zip(days, hours)}
        )
        cells_out.extend(unique)
        lengths.append(len(unique))
    return (
        np.asarray(cells_out, dtype=np.int64),
        np.asarray(lengths, dtype=np.int64),
    )


class TestSegmentUniqueCells:
    @given(segments, st.sampled_from([0.0, -5.0, 3.0, 11.5]))
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_oracle(self, arrays, offset):
        """Unsorted, negative and empty segments all deduplicate correctly."""
        lists = [np.asarray(a, dtype=float) for a in arrays]
        stamps, lengths = _flatten(lists)
        cells, counts = segment_unique_cells_numpy(stamps, lengths, offset)
        want_cells, want_counts = _naive_unique(lists, offset)
        np.testing.assert_array_equal(counts, want_counts)
        np.testing.assert_array_equal(cells, want_cells)

    def test_empty_column_shapes(self):
        empty = np.zeros(0, dtype=float)
        cells, counts = segment_unique_cells_numpy(
            empty, np.zeros(3, dtype=np.int64)
        )
        assert cells.shape == (0,) and cells.dtype == np.int64
        np.testing.assert_array_equal(counts, np.zeros(3, dtype=np.int64))

    def test_duplicates_collapse_within_user_only(self):
        # The same hour cell for two users stays one cell *each*.
        stamps = np.asarray([3600.0, 3660.0, 3600.0], dtype=float)
        lengths = np.asarray([2, 1], dtype=np.int64)
        cells, counts = segment_unique_cells_numpy(stamps, lengths)
        np.testing.assert_array_equal(counts, [1, 1])
        np.testing.assert_array_equal(cells, [1, 1])

    @given(segments, st.sampled_from([0.0, -5.0, 11.5]))
    @settings(max_examples=30, deadline=None)
    def test_dispatcher_matches_numpy(self, arrays, offset):
        lists = [np.asarray(a, dtype=float) for a in arrays]
        stamps, lengths = _flatten(lists)
        cells, counts = segment_unique_cells(stamps, lengths, offset)
        want_cells, want_counts = segment_unique_cells_numpy(
            stamps, lengths, offset
        )
        np.testing.assert_array_equal(cells, want_cells)
        np.testing.assert_array_equal(counts, want_counts)

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed here")
    def test_numba_variant_missing_refused(self):
        with pytest.raises(RuntimeError, match="numba is not installed"):
            kernels.segment_unique_cells_numba(
                np.array([1.0]), np.array([1], dtype=np.int64)
            )

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    @given(segments, st.sampled_from([0.0, -5.0, 3.0, 11.5]))
    @settings(max_examples=60, deadline=None)
    def test_numba_bit_identical(self, arrays, offset):
        lists = [np.asarray(a, dtype=float) for a in arrays]
        stamps, lengths = _flatten(lists)
        numba_cells, numba_counts = kernels.segment_unique_cells_numba(
            stamps, lengths, offset
        )
        numpy_cells, numpy_counts = segment_unique_cells_numpy(
            stamps, lengths, offset
        )
        np.testing.assert_array_equal(numba_cells, numpy_cells)
        np.testing.assert_array_equal(numba_counts, numpy_counts)


class TestBlockedDistanceKernels:
    def _profiles(self, n: int, seed: int) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return rng.uniform(0.05, 4.0, size=(n, 24))

    def _naive(self, p: np.ndarray, q: np.ndarray, metric: str) -> np.ndarray:
        distance = ALL_DISTANCES[metric]
        return np.array(
            [[distance(row, ref) for ref in q] for row in p], dtype=float
        )

    @pytest.mark.parametrize("metric", sorted(ALL_DISTANCES))
    def test_matches_scalar_metrics(self, metric):
        p = self._profiles(17, 1)
        q = self._profiles(5, 2)
        np.testing.assert_allclose(
            distance_matrix(p, q, metric=metric),
            self._naive(p, q, metric),
            atol=1e-12,
        )

    @pytest.mark.parametrize("metric", sorted(ALL_DISTANCES))
    def test_block_size_invariance_is_bitwise(self, metric, monkeypatch):
        """Shrinking the block to a couple of rows changes nothing, bit-wise.

        Each output element is a reduction over one (profile, reference)
        pair, so blocking (and therefore sharding) cannot perturb results.
        """
        p = self._profiles(41, 3)
        q = self._profiles(7, 4)
        whole = distance_matrix(p, q, metric=metric)
        monkeypatch.setattr(emd_module, "_BLOCK_BYTES", 1)
        monkeypatch.setattr(emd_module, "_MIN_BLOCK_ROWS", 2)
        monkeypatch.setattr(emd_module, "_MAX_BLOCK_ROWS", 2)
        tiny_blocks = distance_matrix(p, q, metric=metric)
        np.testing.assert_array_equal(whole, tiny_blocks)

    def test_adaptive_block_rows_respects_budget(self):
        assert emd_module._block_rows(1) == emd_module._MAX_BLOCK_ROWS
        huge_q = emd_module._block_rows(100_000)
        assert huge_q == emd_module._MIN_BLOCK_ROWS
        mid = emd_module._block_rows(256)
        per_row = 256 * 24 * 8
        assert mid * per_row <= emd_module._BLOCK_BYTES
        assert emd_module._MIN_BLOCK_ROWS <= mid <= emd_module._MAX_BLOCK_ROWS

    def test_empty_inputs(self):
        p = self._profiles(3, 5)
        assert distance_matrix(p, np.zeros((0, 24))).shape == (3, 0)
        assert distance_matrix(np.zeros((0, 24)), p).shape == (0, 3)
