"""Quarantine of corrupt traces and the DataQualityReport accounting."""

from __future__ import annotations

import pytest

from repro.core.events import ActivityTrace, TraceSet
from repro.core.geolocate import CrowdGeolocator
from repro.errors import CorruptTraceError
from repro.reliability.quality import (
    REASON_EMPTY,
    REASON_NON_FINITE,
    assert_traces_clean,
    partition_trace_set,
    trace_fault,
)
from repro.synth.twitter import build_region_crowd

pytestmark = pytest.mark.reliability


class TestTraceFault:
    def test_healthy(self):
        assert trace_fault(ActivityTrace("u", [100.0, 200.0])) is None

    def test_empty(self):
        assert trace_fault(ActivityTrace("u")) == REASON_EMPTY

    def test_nan(self):
        assert trace_fault(ActivityTrace("u", [100.0, float("nan")])) == REASON_NON_FINITE

    def test_inf(self):
        assert trace_fault(ActivityTrace("u", [float("inf")])) == REASON_NON_FINITE

    def test_negative_is_fine(self):
        # The simulation epoch is arbitrary: zones east of UTC produce
        # legitimately negative UTC stamps near day 0 (only the on-disk
        # JSONL format pins timestamps to be nonnegative).
        assert trace_fault(ActivityTrace("u", [500.0, -1.0])) is None

    def test_zero_is_fine(self):
        assert trace_fault(ActivityTrace("u", [0.0])) is None


class TestPartition:
    def _mixed(self):
        return TraceSet(
            [
                ActivityTrace("ok1", [100.0, 200.0]),
                ActivityTrace("ok2", [300.0]),
                ActivityTrace("hollow", []),
                ActivityTrace("mangled", [100.0, float("nan")]),
                ActivityTrace("garbled", [float("inf"), 60.0]),
            ]
        )

    def test_every_trace_lands_once(self):
        healthy, report = partition_trace_set(self._mixed())
        assert set(healthy.user_ids()) == {"ok1", "ok2"}
        assert report.n_input_users == 5
        assert report.n_retained_users == 2
        assert report.n_quarantined == 3

    def test_reasons_named_per_user(self):
        _, report = partition_trace_set(self._mixed())
        assert report.reason_for("hollow") == REASON_EMPTY
        assert report.reason_for("mangled") == REASON_NON_FINITE
        assert report.reason_for("garbled") == REASON_NON_FINITE
        assert report.reason_for("ok1") is None

    def test_report_accounting(self):
        _, report = partition_trace_set(self._mixed())
        assert report.fraction_retained() == pytest.approx(0.4)
        assert report.reasons() == {
            REASON_EMPTY: 1,
            REASON_NON_FINITE: 2,
        }
        assert not report.is_clean()
        assert "retained 2/5" in report.summary()

    def test_clean_crowd(self):
        crowd = TraceSet([ActivityTrace("u", [100.0])])
        healthy, report = partition_trace_set(crowd)
        assert report.is_clean()
        assert report.fraction_retained() == 1.0
        assert "clean" in report.summary()

    def test_quarantined_evidence_volume(self):
        _, report = partition_trace_set(self._mixed())
        by_user = {entry.user_id: entry for entry in report.quarantined}
        assert by_user["mangled"].n_posts == 2
        assert by_user["hollow"].n_posts == 0


class TestAssertTracesClean:
    def test_accepts_clean(self):
        assert_traces_clean(TraceSet([ActivityTrace("u", [100.0])]))

    def test_accepts_empty_traces(self):
        # Lack of evidence is not corruption; the activity threshold
        # handles empty traces downstream, as it always has.
        assert_traces_clean(TraceSet([ActivityTrace("u", [])]))

    def test_rejects_nan_naming_the_user(self):
        crowd = TraceSet([ActivityTrace("broken", [float("nan")])])
        with pytest.raises(CorruptTraceError, match="broken"):
            assert_traces_clean(crowd)

    def test_rejects_inf(self):
        crowd = TraceSet([ActivityTrace("inf_user", [float("inf")])])
        with pytest.raises(CorruptTraceError):
            assert_traces_clean(crowd)

    def test_accepts_negative_timestamps(self):
        # See test_negative_is_fine: negative stamps are legitimate data.
        assert_traces_clean(TraceSet([ActivityTrace("east", [-28800.0])]))


class TestQuarantineGeolocation:
    """geolocate(quarantine=True): the ISSUE's 10 %-corrupt-crowd criterion."""

    def _corrupt_crowd(self):
        # 36 healthy Malaysian users + 4 corrupt ones = 10 % corruption.
        crowd = build_region_crowd("malaysia", 36, seed=8, n_days=366)
        crowd.add(ActivityTrace("corrupt_nan_a", [1000.0, float("nan")]))
        crowd.add(ActivityTrace("corrupt_nan_b", [float("nan")] * 40))
        crowd.add(ActivityTrace("corrupt_inf", [float("inf"), 3600.0]))
        crowd.add(ActivityTrace("corrupt_empty", []))
        return crowd

    def test_strict_mode_hard_fails(self, references):
        with pytest.raises(CorruptTraceError):
            CrowdGeolocator(references).geolocate(self._corrupt_crowd())

    def test_quarantine_mode_places_healthy_ninety_percent(self, references):
        crowd = self._corrupt_crowd()
        report = CrowdGeolocator(references).geolocate(
            crowd, crowd_name="mixed", quarantine=True
        )
        # The healthy 90 % is analysed as if the corruption never happened.
        clean_crowd = build_region_crowd("malaysia", 36, seed=8, n_days=366)
        clean = CrowdGeolocator(references).geolocate(clean_crowd)
        assert report.n_users == clean.n_users
        assert set(report.user_zones) == set(clean.user_zones)
        assert abs(report.mixture.dominant().mean - 8.0) <= 1.2

    def test_quality_report_names_every_quarantined_user(self, references):
        report = CrowdGeolocator(references).geolocate(
            self._corrupt_crowd(), quarantine=True
        )
        quality = report.data_quality
        assert quality is not None
        assert quality.n_input_users == 40
        assert quality.n_retained_users == 36
        assert set(quality.quarantined_users()) == {
            "corrupt_nan_a",
            "corrupt_nan_b",
            "corrupt_inf",
            "corrupt_empty",
        }
        assert quality.reason_for("corrupt_nan_a") == REASON_NON_FINITE
        assert quality.reason_for("corrupt_nan_b") == REASON_NON_FINITE
        assert quality.reason_for("corrupt_inf") == REASON_NON_FINITE
        assert quality.reason_for("corrupt_empty") == REASON_EMPTY
        assert quality.fraction_retained() == pytest.approx(0.9)

    def test_summary_mentions_quality(self, references):
        report = CrowdGeolocator(references).geolocate(
            self._corrupt_crowd(), quarantine=True
        )
        assert "quarantined" in report.summary()

    def test_quarantine_on_clean_crowd_reports_clean(self, references):
        crowd = build_region_crowd("malaysia", 36, seed=8, n_days=366)
        report = CrowdGeolocator(references).geolocate(crowd, quarantine=True)
        assert report.data_quality is not None
        assert report.data_quality.is_clean()
        assert "quarantined" not in report.summary()

    def test_strict_mode_report_has_no_quality_field(self, references):
        crowd = build_region_crowd("malaysia", 36, seed=8, n_days=366)
        report = CrowdGeolocator(references).geolocate(crowd)
        assert report.data_quality is None
