"""Time-zone and region registry."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ZoneError
from repro.timebase.clock import CivilDate, civil_to_ordinal
from repro.timebase.zones import (
    TABLE1_KEYS,
    Hemisphere,
    TimeZone,
    ZONE_OFFSETS,
    all_zones,
    get_region,
    get_zone,
    normalize_offset,
    region_keys,
)


class TestNormalizeOffset:
    @given(st.integers(-100, 100))
    def test_range(self, offset):
        assert -11 <= normalize_offset(offset) <= 12

    @given(st.integers(-11, 12))
    def test_identity_in_range(self, offset):
        assert normalize_offset(offset) == offset

    @given(st.integers(-100, 100))
    def test_mod_24_equivalence(self, offset):
        assert (normalize_offset(offset) - offset) % 24 == 0

    def test_wrap_east(self):
        assert normalize_offset(13) == -11

    def test_wrap_west(self):
        assert normalize_offset(-12) == 12


class TestTimeZone:
    def test_name_positive(self):
        assert TimeZone(3).name == "UTC+3"

    def test_name_negative(self):
        assert TimeZone(-5).name == "UTC-5"

    def test_out_of_range_rejected(self):
        with pytest.raises(ZoneError):
            TimeZone(13)

    def test_all_zones_count_and_order(self):
        zones = all_zones()
        assert len(zones) == 24
        assert zones[0].offset == -11
        assert zones[-1].offset == 12

    def test_get_zone_normalizes(self):
        assert get_zone(14).offset == -10


class TestRegionRegistry:
    def test_table1_has_14_regions(self):
        assert len(TABLE1_KEYS) == 14

    def test_unknown_region(self):
        with pytest.raises(ZoneError):
            get_region("atlantis")

    def test_lookup_case_insensitive(self):
        assert get_region("Germany").name == "Germany"

    def test_germany(self):
        germany = get_region("germany")
        assert germany.base_offset == 1
        assert germany.hemisphere is Hemisphere.NORTHERN
        assert germany.uses_dst
        assert germany.twitter_active_users == 470

    def test_malaysia_no_dst(self):
        malaysia = get_region("malaysia")
        assert malaysia.base_offset == 8
        assert not malaysia.uses_dst

    def test_brazil_southern(self):
        brazil = get_region("brazil")
        assert brazil.hemisphere is Hemisphere.SOUTHERN
        assert brazil.base_offset == -3

    def test_table1_counts_match_paper(self):
        expected = {
            "brazil": 3763,
            "california": 2868,
            "finland": 73,
            "france": 2222,
            "germany": 470,
            "illinois": 794,
            "italy": 734,
            "japan": 3745,
            "malaysia": 1714,
            "new_south_wales": 151,
            "new_york": 1417,
            "poland": 375,
            "turkey": 1019,
            "united_kingdom": 3231,
        }
        for key, count in expected.items():
            assert get_region(key).twitter_active_users == count

    def test_effective_offset_summer_germany(self):
        germany = get_region("germany")
        july = civil_to_ordinal(CivilDate(2016, 7, 1))
        january = civil_to_ordinal(CivilDate(2016, 1, 5))
        assert germany.utc_offset_at(july) == 2
        assert germany.utc_offset_at(january) == 1

    def test_effective_offset_summer_brazil(self):
        brazil = get_region("brazil")
        july = civil_to_ordinal(CivilDate(2016, 7, 1))
        december = civil_to_ordinal(CivilDate(2016, 12, 20))
        assert brazil.utc_offset_at(july) == -3
        assert brazil.utc_offset_at(december) == -2

    def test_zone_property_normalized(self):
        assert get_region("new_south_wales").zone.offset == 10

    def test_extra_case_study_regions_exist(self):
        for key in ("russia_moscow", "paraguay", "us_pacific", "caucasus"):
            assert key in region_keys()

    @pytest.mark.parametrize("key", TABLE1_KEYS)
    def test_every_table1_offset_canonical(self, key):
        region = get_region(key)
        assert region.base_offset in ZONE_OFFSETS
