"""Tests for the whole-program lint engine (PR 10: lintkit v2).

Covers the three new layers -- the project indexer with its on-disk
content-hash cache, the intraprocedural reaching-definitions dataflow,
and the graph rules DC012..DC016 -- plus the CLI surface that grew
around them (``--changed``, ``--graph-out``, baselines, the API
surface file).  Graph rules are exercised against miniature projects
under ``tests/fixtures/lintkit/graph/``: each has its own
``pyproject.toml``, so project-root detection stops there and the
fixture behaves as a self-contained codebase.
"""

from __future__ import annotations

import ast
import json
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lintkit import (
    GraphRule,
    all_rules,
    iter_python_files,
    lint_paths,
    lint_source,
    run_project_lint,
)
from repro.lintkit.baseline import filter_findings, load_baseline, render_baseline
from repro.lintkit.dataflow import FunctionDataflow
from repro.lintkit.engine import _baseline_resolver, _build_context
from repro.lintkit.index import (
    CACHE_SCHEMA_VERSION,
    IndexCache,
    detect_project_root,
    module_name_for,
)

REPO = Path(__file__).resolve().parent.parent
GRAPH_FIXTURES = REPO / "tests" / "fixtures" / "lintkit" / "graph"

#: rule id -> findings its bad mini-project must produce (of that rule).
EXPECTED_GRAPH_FINDINGS = {
    "DC012": 1,
    "DC013": 2,
    "DC014": 3,
    "DC015": 2,
    "DC016": 4,
}

_PYPROJECT = '[project]\nname = "mini"\nversion = "0.0.0"\n'

_DC013_BAD = textwrap.dedent(
    '''\
    """Mini module with a set-order taint."""

    import json


    def export():
        seen = {3, 1, 2}
        rows = [zone for zone in seen]
        return json.dumps(rows)
    '''
)

_DC013_GOOD = _DC013_BAD.replace("[zone for zone in seen]", "sorted(seen)")


def _write_mini_project(root: Path, source: str = _DC013_BAD) -> Path:
    (root / "src" / "repro").mkdir(parents=True)
    (root / "pyproject.toml").write_text(_PYPROJECT, encoding="utf-8")
    module = root / "src" / "repro" / "report.py"
    module.write_text(source, encoding="utf-8")
    return module


def _rule_findings(paths, rule_id):
    return [f for f in lint_paths(paths) if f.rule_id == rule_id]


class TestGraphRuleFixtures:
    @pytest.mark.parametrize("rule_id", sorted(EXPECTED_GRAPH_FINDINGS))
    def test_bad_fixture_fires(self, rule_id):
        case = GRAPH_FIXTURES / f"dc{rule_id[2:]}_bad"
        findings = _rule_findings([case], rule_id)
        assert len(findings) == EXPECTED_GRAPH_FINDINGS[rule_id], findings

    @pytest.mark.parametrize("rule_id", sorted(EXPECTED_GRAPH_FINDINGS))
    def test_good_fixture_is_quiet(self, rule_id):
        case = GRAPH_FIXTURES / f"dc{rule_id[2:]}_good"
        assert _rule_findings([case], rule_id) == []

    def test_dc012_names_the_entry_point(self):
        findings = _rule_findings([GRAPH_FIXTURES / "dc012_bad"], "DC012")
        assert "via repro.pipeline.place_crowd" in findings[0].message

    def test_dc012_dead_private_code_does_not_alarm(self):
        # The good fixture *contains* an unseeded default_rng() in a
        # never-called private helper; reachability must not flag it.
        source = (
            GRAPH_FIXTURES / "dc012_good" / "src" / "repro" / "pipeline.py"
        ).read_text(encoding="utf-8")
        assert "default_rng()" in source
        assert _rule_findings([GRAPH_FIXTURES / "dc012_good"], "DC012") == []

    def test_graph_rules_never_run_per_file(self):
        # lint_source has no project; DC013's violation must not fire there.
        findings = lint_source(_DC013_BAD, path="src/repro/core/kernel.py")
        assert [f for f in findings if f.rule_id == "DC013"] == []

    def test_graph_rule_classes_are_marked(self):
        graph_ids = {
            rule_id
            for rule_id, rule_class in all_rules().items()
            if issubclass(rule_class, GraphRule)
        }
        assert graph_ids == set(EXPECTED_GRAPH_FINDINGS)

    def test_graph_finding_respects_line_suppression(self, tmp_path):
        suppressed = _DC013_BAD.replace(
            "return json.dumps(rows)",
            "return json.dumps(rows)  # darkcrowd: disable=DC013",
        )
        _write_mini_project(tmp_path / "proj", suppressed)
        assert _rule_findings([tmp_path / "proj"], "DC013") == []


class TestDataflow:
    def _flow(self, source: str):
        ctx = _build_context(textwrap.dedent(source), "mod.py")
        fn = next(
            node for node in ctx.tree.body if isinstance(node, ast.FunctionDef)
        )
        return fn, FunctionDataflow(fn, ctx.resolve)

    def _origins(self, source: str):
        """Origin kinds of the value returned by the function's last stmt."""
        fn, flow = self._flow(source)
        ret = fn.body[-1]
        assert isinstance(ret, ast.Return)
        return {o.kind for o in flow.origins(ret.value, ret)}, flow, fn

    def test_param_origin(self):
        kinds, _, _ = self._origins(
            """
            def f(x):
                return x
            """
        )
        assert kinds == {"param"}

    def test_set_iteration_lifts_to_taint(self):
        kinds, _, _ = self._origins(
            """
            def f():
                s = set()
                y = list(s)
                return y
            """
        )
        assert kinds == {"iter-of-set"}

    def test_sorted_is_a_terminal_ordered_origin(self):
        kinds, _, _ = self._origins(
            """
            def f():
                s = {1, 2}
                y = sorted(s)
                return y
            """
        )
        assert kinds == {"call"}

    def test_branches_union_both_definitions(self):
        kinds, _, _ = self._origins(
            """
            def f(cond):
                if cond:
                    x = {1}
                else:
                    x = [1]
                return x
            """
        )
        assert kinds == {"set-display", "const"}

    def test_loop_body_definition_reaches_loop_head(self):
        fn, flow = self._flow(
            """
            def f(items):
                for item in items:
                    use = x
                    x = {item}
                return x
            """
        )
        loop = fn.body[0]
        use_stmt = loop.body[0]
        defs = flow.definitions_at("x", use_stmt)
        assert any(d.kind == "assign" for d in defs)

    def test_nested_function_definition_kind(self):
        fn, flow = self._flow(
            """
            def f():
                def inner():
                    return 1
                return inner
            """
        )
        ret = fn.body[-1]
        kinds = {o.kind for o in flow.origins(ret.value, ret)}
        assert kinds == {"nested-function"}


class TestProjectIndex:
    def test_signature_rendering_is_version_stable(self, tmp_path):
        source = textwrap.dedent(
            '''\
            """Mini module."""


            def full(a, b=1, *args, c, d=2, **kw):
                return a, b, args, c, d, kw


            def posonly(a, /, b):
                return a + b
            '''
        )
        _write_mini_project(tmp_path / "proj", source)
        result = run_project_lint([tmp_path / "proj"])
        api = result.index.public_api()
        assert api["repro.report.full"] == "(a, b=_, *args, c, d=_, **kw)"
        assert api["repro.report.posonly"] == "(a, /, b)"

    def test_public_api_excludes_private_and_tests(self, tmp_path):
        root = tmp_path / "proj"
        _write_mini_project(root)
        (root / "src" / "repro" / "_internal.py").write_text(
            "def visible():\n    return 1\n", encoding="utf-8"
        )
        (root / "tests").mkdir()
        (root / "tests" / "test_x.py").write_text(
            "def test_ok():\n    assert True\n", encoding="utf-8"
        )
        result = run_project_lint([root])
        api = result.index.public_api()
        assert "repro.report.export" in api
        assert not any("_internal" in name for name in api)
        assert not any("test_x" in name for name in api)

    def test_call_graph_and_entry_points(self):
        result = run_project_lint([GRAPH_FIXTURES / "dc012_bad"])
        edges = result.index.call_graph()
        assert "repro.pipeline._simulate" in edges["repro.pipeline.place_crowd"]
        assert "repro.pipeline._make_rng" in edges["repro.pipeline._simulate"]
        entries = result.index.entry_points()
        assert "repro.pipeline.place_crowd" in entries
        assert "repro.pipeline._make_rng" not in entries

    def test_graph_payload_shape(self):
        result = run_project_lint([GRAPH_FIXTURES / "dc012_bad"])
        payload = result.index.graph_payload()
        assert payload["kind"] == "darkcrowd-lint-graph"
        assert payload["stats"]["n_modules"] == 1
        assert "repro.pipeline" in payload["modules"]
        assert payload["calls"]["repro.pipeline.place_crowd"] == [
            "repro.pipeline._simulate"
        ]

    def test_module_name_for_src_layout(self, tmp_path):
        root = tmp_path / "proj"
        assert module_name_for(root / "src" / "repro" / "core" / "x.py", root) == (
            "repro.core.x"
        )
        assert module_name_for(root / "src" / "repro" / "__init__.py", root) == (
            "repro"
        )
        assert module_name_for(root / "tests" / "test_x.py", root) == "tests.test_x"

    def test_detect_project_root_stops_at_marker(self):
        mini = GRAPH_FIXTURES / "dc012_bad"
        assert detect_project_root(mini / "src" / "repro" / "pipeline.py") == mini
        assert detect_project_root(REPO / "src") == REPO


class TestIndexCache:
    def test_cold_and_warm_runs_agree(self, tmp_path):
        root = tmp_path / "proj"
        _write_mini_project(root)
        cold = run_project_lint([root], use_cache=True)
        assert cold.cache_hits == 0 and cold.cache_misses > 0
        assert (root / ".darkcrowd_cache" / IndexCache.FILENAME).is_file()
        warm = run_project_lint([root], use_cache=True)
        assert warm.cache_misses == 0 and warm.cache_hits > 0
        assert warm.findings == cold.findings
        assert [f.rule_id for f in cold.findings] == ["DC013"]

    def test_edit_invalidates_by_content_hash(self, tmp_path):
        root = tmp_path / "proj"
        module = _write_mini_project(root)
        first = run_project_lint([root], use_cache=True)
        assert [f.rule_id for f in first.findings] == ["DC013"]
        module.write_text(_DC013_GOOD, encoding="utf-8")
        second = run_project_lint([root], use_cache=True)
        assert second.findings == []
        assert second.cache_misses >= 1  # the edited file re-parsed
        third = run_project_lint([root], use_cache=True)
        assert third.cache_misses == 0 and third.findings == []

    def test_corrupt_cache_is_a_cold_start_not_an_error(self, tmp_path):
        root = tmp_path / "proj"
        _write_mini_project(root)
        baseline_result = run_project_lint([root], use_cache=True)
        cache_file = root / ".darkcrowd_cache" / IndexCache.FILENAME
        cache_file.write_text("{not json", encoding="utf-8")
        recovered = run_project_lint([root], use_cache=True)
        assert recovered.findings == baseline_result.findings
        assert recovered.cache_hits == 0
        # and the run rewrote a valid cache
        json.loads(cache_file.read_text(encoding="utf-8"))

    def test_stale_schema_is_discarded(self, tmp_path):
        root = tmp_path / "proj"
        _write_mini_project(root)
        run_project_lint([root], use_cache=True)
        cache_file = root / ".darkcrowd_cache" / IndexCache.FILENAME
        payload = json.loads(cache_file.read_text(encoding="utf-8"))
        assert payload["schema"] == CACHE_SCHEMA_VERSION
        payload["schema"] = CACHE_SCHEMA_VERSION + 1
        cache_file.write_text(json.dumps(payload), encoding="utf-8")
        rerun = run_project_lint([root], use_cache=True)
        assert rerun.cache_hits == 0 and rerun.cache_misses > 0

    def test_cache_off_by_default_in_library_api(self, tmp_path):
        root = tmp_path / "proj"
        _write_mini_project(root)
        lint_paths([root])
        assert not (root / ".darkcrowd_cache").exists()


class TestFixtureExclusion:
    """Satellite: exclusion must hold for every invocation spelling."""

    def test_absolute_invocation_excludes_fixtures(self):
        files = list(iter_python_files([REPO / "tests"]))
        assert files and not [p for p in files if "fixtures" in p.parts]

    def test_relative_invocation_excludes_fixtures(self, monkeypatch):
        monkeypatch.chdir(REPO)
        files = list(iter_python_files([Path("tests")]))
        assert files and not [
            p for p in files if "fixtures" in p.resolve().parts
        ]

    def test_dotted_invocation_excludes_fixtures(self, monkeypatch):
        monkeypatch.chdir(REPO)
        files = list(iter_python_files([Path("tests") / ".." / "tests"]))
        assert files and not [
            p for p in files if "fixtures" in p.resolve().parts
        ]

    def test_fixture_dir_named_directly_is_still_excluded(self):
        # Root-relative exclusion: naming the corpus *directory* no longer
        # sneaks it in; only explicit files bypass.
        assert list(iter_python_files([REPO / "tests" / "fixtures"])) == []

    def test_explicit_file_still_bypasses(self):
        target = REPO / "tests" / "fixtures" / "lintkit" / "dc007_bad.py"
        assert list(iter_python_files([target])) == [target]

    def test_mini_project_roots_inside_fixtures_are_lintable(self):
        # The graph fixtures live under tests/fixtures/ but carry their
        # own pyproject.toml: exclusion is computed against *their* root.
        files = list(iter_python_files([GRAPH_FIXTURES / "dc012_bad"]))
        assert [p.name for p in files] == ["pipeline.py"]


def _git(cwd: Path, *cmd: str) -> None:
    subprocess.run(
        [
            "git",
            "-c",
            "user.email=lint@test",
            "-c",
            "user.name=lint",
            *cmd,
        ],
        cwd=cwd,
        check=True,
        capture_output=True,
    )


class TestChangedScoping:
    @pytest.fixture()
    def git_project(self, tmp_path, monkeypatch):
        root = tmp_path / "proj"
        _write_mini_project(root, _DC013_GOOD)
        (root / "src" / "repro" / "other.py").write_text(
            "def untouched():\n    return 1\n", encoding="utf-8"
        )
        _git(root, "init", "-q")
        _git(root, "add", "-A")
        _git(root, "commit", "-qm", "seed")
        monkeypatch.chdir(root)
        return root

    def test_no_changes_reports_clean(self, git_project, capsys):
        assert main(["lint", "--changed", "HEAD", "src"]) == 0
        assert "no changed python files" in capsys.readouterr().out

    def test_only_changed_files_are_reported(self, git_project, capsys):
        # Introduce a DC007 violation in a tracked file and an untracked
        # file; the untouched module must stay out of the report.
        changed = git_project / "src" / "repro" / "report.py"
        changed.write_text(
            _DC013_GOOD + "\n\ndef grow(bucket=[]):\n    return bucket\n",
            encoding="utf-8",
        )
        untracked = git_project / "src" / "repro" / "fresh.py"
        untracked.write_text(
            "def tally(counts={}):\n    return counts\n", encoding="utf-8"
        )
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "--changed", "HEAD", "src"])
        assert excinfo.value.code == 1
        out = capsys.readouterr().out
        assert out.count("DC007") == 2
        assert "report.py" in out and "fresh.py" in out
        assert "other.py" not in out

    def test_changed_outside_git_fails_loudly(self, tmp_path, monkeypatch):
        root = tmp_path / "nogit"
        _write_mini_project(root, _DC013_GOOD)
        monkeypatch.chdir(root)
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "--changed", "HEAD", "src"])
        assert "git" in str(excinfo.value.code)


class TestBaseline:
    def test_baseline_round_trip_suppresses_then_resurfaces(self, tmp_path):
        root = tmp_path / "proj"
        module = _write_mini_project(root)
        result = run_project_lint([root])
        assert len(result.findings) == 1
        resolver = _baseline_resolver(root)
        baseline_path = tmp_path / "lint-baseline.json"
        baseline_path.write_text(
            render_baseline(result.findings, resolver), encoding="utf-8"
        )
        suppressed = run_project_lint([root], baseline=baseline_path)
        assert suppressed.findings == [] and suppressed.baselined == 1
        # Editing the offending line invalidates its hash: the finding
        # is new again even though the baseline still exists.
        module.write_text(
            _DC013_BAD.replace("json.dumps(rows)", "json.dumps(list(rows))"),
            encoding="utf-8",
        )
        resurfaced = run_project_lint([root], baseline=baseline_path)
        assert [f.rule_id for f in resurfaced.findings] == ["DC013"]
        assert resurfaced.baselined == 0

    def test_baseline_is_line_number_drift_proof(self, tmp_path):
        root = tmp_path / "proj"
        module = _write_mini_project(root)
        result = run_project_lint([root])
        resolver = _baseline_resolver(root)
        entries = load_baseline_from_text(
            render_baseline(result.findings, resolver), tmp_path
        )
        # Shift every line down: the finding moves but its key does not.
        module.write_text(
            "# leading comment\n\n" + _DC013_BAD, encoding="utf-8"
        )
        shifted = run_project_lint([root])
        kept, n_suppressed = filter_findings(
            shifted.findings, entries, _baseline_resolver(root)
        )
        assert kept == [] and n_suppressed == 1

    def test_malformed_baseline_raises_value_error(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"kind": "something-else"}', encoding="utf-8")
        with pytest.raises(ValueError, match="darkcrowd-lint-baseline"):
            load_baseline(bad)


def load_baseline_from_text(text: str, tmp_path: Path):
    path = tmp_path / "roundtrip-baseline.json"
    path.write_text(text, encoding="utf-8")
    return load_baseline(path)


class TestCliV2:
    def test_graph_out_writes_payload(self, tmp_path, capsys):
        out = tmp_path / "graph.json"
        assert (
            main(
                [
                    "lint",
                    "--graph-out",
                    str(out),
                    "--no-cache",
                    str(GRAPH_FIXTURES / "dc012_good"),
                ]
            )
            == 0
        )
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["kind"] == "darkcrowd-lint-graph"
        assert "repro.pipeline" in payload["modules"]

    def test_write_api_baseline_then_clean_then_drift(self, tmp_path, capsys):
        root = tmp_path / "proj"
        module = _write_mini_project(root, _DC013_GOOD)
        assert (
            main(["lint", "--write-api-baseline", "--no-cache", str(root)]) == 0
        )
        surface = json.loads((root / "api_surface.json").read_text("utf-8"))
        assert surface["kind"] == "darkcrowd-api-surface"
        assert "repro.report.export" in surface["api"]
        assert main(["lint", "--no-cache", str(root)]) == 0
        module.write_text(
            _DC013_GOOD.replace("def export():", "def export(extra):"),
            encoding="utf-8",
        )
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "--no-cache", str(root)])
        assert excinfo.value.code == 1
        assert "DC016" in capsys.readouterr().out

    def test_write_baseline_cli_round_trip(self, tmp_path, capsys):
        root = tmp_path / "proj"
        _write_mini_project(root)
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "lint",
                    "--write-baseline",
                    str(baseline),
                    "--no-cache",
                    str(root),
                ]
            )
            == 0
        )
        assert "1 finding" in capsys.readouterr().out
        assert (
            main(["lint", "--baseline", str(baseline), "--no-cache", str(root)])
            == 0
        )
        out = capsys.readouterr().out
        assert "all clean" in out and "1 baselined" in out

    def test_json_meta_block(self, tmp_path, capsys):
        root = tmp_path / "proj"
        _write_mini_project(root, _DC013_GOOD)
        assert main(["lint", "--format", "json", "--no-cache", str(root)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["meta"]["whole_program"] is True
        assert payload["meta"]["baselined"] == 0


class TestRealTreeInvariants:
    def test_shipped_api_surface_is_current(self):
        # DC016 compares against the committed api_surface.json; the
        # self-lint gate in test_lintkit covers findings == [].  Here we
        # assert the file itself round-trips as the exact current surface.
        from repro.lintkit import render_api_surface

        result = run_project_lint([REPO / "src"])
        recorded = (REPO / "api_surface.json").read_text(encoding="utf-8")
        assert render_api_surface(result.index) == recorded

    def test_warm_cache_skips_all_parsing(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run_project_lint(
            [REPO / "src"], use_cache=True, cache_dir=cache_dir
        )
        warm = run_project_lint(
            [REPO / "src"], use_cache=True, cache_dir=cache_dir
        )
        assert warm.cache_misses == 0
        assert warm.cache_hits == len(warm.files)
        assert warm.findings == cold.findings
