"""Fixture: narrow or logged exception handling (DC008 quiet)."""
from repro.obs.logs import get_logger

_log = get_logger("core")


def narrow(worker):
    try:
        worker()
    except ValueError:
        pass


def logged(worker):
    try:
        worker()
    except Exception as exc:
        _log.warning("worker failed: %s", exc)
