"""Fixture: metric/span names off-convention (DC003 must fire)."""
from repro.obs import metrics
from repro.obs.tracing import trace_span

a = metrics.counter("events_total")
b = metrics.counter("repro_core_total")
c = metrics.histogram("repro_core_emd_calls")
d = metrics.gauge("repro_Core_rss_bytes")
with trace_span("EMD-Batch"):
    pass
