"""Fixture: incremental snapshot() and a suppressed oracle (DC009 clean)."""


def crowd_summary(engine):
    snapshot = engine.snapshot()
    return snapshot.n_users_active


def scored_invariant(engine):
    warm = engine.snapshot()
    cold = engine.snapshot_reference()  # darkcrowd: disable=DC009
    return warm.placement == cold.placement
