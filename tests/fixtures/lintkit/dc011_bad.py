"""Fixture: ad-hoc perf_counter timing (DC011 must fire on every call)."""
import time
from time import perf_counter

started = time.perf_counter()
work_duration = time.perf_counter() - started
aliased = perf_counter()
