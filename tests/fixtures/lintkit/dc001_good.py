"""Fixture: wall time read through the injectable seam (DC001 quiet)."""
import time

from repro.reliability.clocks import utc_isoformat, wall_now

started = wall_now()
elapsed = time.monotonic()  # monotonic reads are fine
stamp = utc_isoformat(started)
