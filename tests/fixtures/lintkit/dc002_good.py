"""Fixture: seeded generator instances (DC002 quiet)."""
import random

import numpy as np

rng = np.random.default_rng(7)
noise = rng.random(24)
stdlib_rng = random.Random(7)
jitter = stdlib_rng.random()
generator = np.random.Generator(np.random.PCG64(7))
