"""Fixture: timing routed through the obs layer (DC011 quiet)."""
import time

from repro.obs import metrics as obs_metrics

watch = obs_metrics.Stopwatch()
elapsed = watch.elapsed_s()
with obs_metrics.histogram("repro_core_step_seconds", "step wall time").time():
    pass
idle = time.monotonic()  # monotonic is the scheduling clock, not a timer
