"""Fixture: bulk ingest and non-engine observes (DC010 stays quiet)."""


def replay_events(engine, events):
    engine.observe_batch(
        [user_id for _, user_id in events],
        [timestamp for timestamp, _ in events],
    )


def replay_store(engine, store):
    return engine.ingest_store(store, max_posts=65536)


def time_polls(histogram, durations):
    # One positional arg: a latency histogram, not the streaming engine.
    for elapsed in durations:
        histogram.observe(elapsed)


def observe_once(engine, user_id, timestamp):
    # Not inside a loop: a single trailing event is fine.
    return engine.observe(user_id, timestamp)


def deferred(engine, events):
    # Defined inside a loop but executed elsewhere: the nested-function
    # boundary stops the loop walk.
    callbacks = []
    for timestamp, user_id in events:
        callbacks.append(lambda u=user_id, t=timestamp: engine.observe(u, t))
    return callbacks
