"""Fixture: silently swallowed broad exceptions (DC008 must fire)."""


def swallow_exception(worker):
    try:
        worker()
    except Exception:
        pass


def swallow_bare(worker):
    try:
        worker()
    except:  # noqa: E722
        ...
