"""Fixture: module-global RNG draws (DC002 must fire on every draw)."""
import random

import numpy as np

noise = np.random.rand(24)
pick = np.random.randint(0, 10)
jitter = random.random()
choice = random.choice([1, 2, 3])
