"""Fixture: mutable default arguments (DC007 must fire on each)."""


def accumulate(item, bucket=[]):
    bucket.append(item)
    return bucket


def tally(key, counts={}):
    counts[key] = counts.get(key, 0) + 1
    return counts


def fresh(seen=set(), *, extras=list()):
    return seen | set(extras)
