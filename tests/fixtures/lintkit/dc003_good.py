"""Fixture: convention-abiding metric and span names (DC003 quiet)."""
from repro.obs import metrics
from repro.obs.tracing import trace_span

a = metrics.counter("repro_core_emd_calls_total")
b = metrics.histogram("repro_collect_fetch_latency_seconds")
c = metrics.gauge("repro_engine_store_rss_bytes")
dynamic = metrics.counter(f"repro_core_{1}_total")  # non-literal: not checked
with trace_span("emd_batch"):
    pass
