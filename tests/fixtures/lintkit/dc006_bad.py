"""Fixture: SharedMemory with no guaranteed release (DC006 must fire)."""
from multiprocessing.shared_memory import SharedMemory


def leaky(size):
    shm = SharedMemory(create=True, size=size)
    return shm.buf[:8]
