"""Fixture: exact float equality in core numerics (DC005 must fire)."""


def is_zero(mass):
    return mass == 0.0


def not_unit(score):
    return score != 1.0
