"""Fixture: cold snapshot_reference() in library code (DC009 must fire)."""


def crowd_summary(engine):
    snapshot = engine.snapshot_reference()
    return snapshot.n_users_active


def compare_then_serve(engine):
    from repro.core.streaming import StreamingGeolocator

    other = StreamingGeolocator()
    return engine.snapshot_reference().placement == other.snapshot().placement
