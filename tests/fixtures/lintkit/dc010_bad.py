"""Fixture: per-event observe() loops in library code (DC010 must fire)."""


def replay_events(engine, events):
    for timestamp, user_id in events:
        engine.observe(user_id, timestamp)


def replay_until(engine, events, deadline):
    cursor = 0
    while cursor < len(events):
        timestamp, user_id = events[cursor]
        if timestamp > deadline:
            break
        engine.observe(user_id, timestamp)
        cursor += 1


def feed_traces(engine, traces):
    for trace in traces:
        for timestamp in trace.timestamps:
            engine.observe(trace.user_id, float(timestamp))
