"""Fixture: print() in library code (DC004 must fire)."""


def summarise(rows):
    print("summary:", len(rows))
    return len(rows)
