"""Fixture: tolerance comparisons and non-float sentinels (DC005 quiet)."""
import math


def is_zero(mass):
    return math.isclose(mass, 0.0, abs_tol=1e-12)


def missing(score):
    return score is None


def count_is_zero(n):
    return n == 0  # int equality is exact: fine
