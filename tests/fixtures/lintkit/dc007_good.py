"""Fixture: None / immutable defaults (DC007 quiet)."""


def accumulate(item, bucket=None):
    bucket = [] if bucket is None else bucket
    bucket.append(item)
    return bucket


def windows(months=frozenset({12, 1, 2}), order=()):
    return months, order
