"""Fixture: library output through the logging layer (DC004 quiet)."""
from repro.obs.logs import get_logger

_log = get_logger("core")


def summarise(rows):
    _log.info("summary rows=%d", len(rows))
    return len(rows)
