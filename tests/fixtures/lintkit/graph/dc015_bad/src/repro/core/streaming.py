"""Fixture: checkpoint version drift (DC015 fires twice).

The declared writer version escaped the negotiated reader set, and a
call site hard-codes a literal instead of routing through the
constants.
"""

STREAM_CHECKPOINT_KIND = "streaming-geolocator"
STREAM_CHECKPOINT_VERSION = 3
STREAM_CHECKPOINT_COMPAT = (1, 2)


def write_checkpoint(path, kind, version, state):
    return (path, kind, version, state)


def save_state(path, state):
    return write_checkpoint(path, STREAM_CHECKPOINT_KIND, 2, state)
