"""Fixture: set iteration order reaching serialization sinks (DC013)."""

import json


def export_zones():
    seen = {3, 7, 11}
    rows = [zone for zone in seen]
    return json.dumps(rows)


def export_offsets(path):
    offsets = set()
    offsets.add(1)
    ordered = list(offsets)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(ordered, handle)
