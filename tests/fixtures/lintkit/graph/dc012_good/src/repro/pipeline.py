"""Fixture: seeded RNG on every reachable path (DC012 stays quiet).

``_dead_helper`` constructs an unseeded generator but nothing public
reaches it -- the reachability analysis must not alarm on dead private
code (that precision is the whole point of the call-graph pass).
"""

import numpy as np


def place_crowd(n_users, seed):
    """Public entry point: threads an explicit seed all the way down."""
    return _simulate(n_users, np.random.default_rng(seed))


def _simulate(n_users, rng):
    return rng.normal(size=n_users)


def _dead_helper():
    return np.random.default_rng()
