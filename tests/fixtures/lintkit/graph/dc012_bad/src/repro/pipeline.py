"""Fixture: unseeded RNG buried under private helpers (DC012 fires).

No single file looks wrong -- ``place_crowd`` is documented to take a
seedless signature, and the unseeded ``default_rng()`` hides two
private hops below it.  Only the call graph sees the path.
"""

import numpy as np


def place_crowd(n_users):
    """Public entry point: reaches the unseeded generator via helpers."""
    return _simulate(n_users)


def _simulate(n_users):
    rng = _make_rng()
    return rng.normal(size=n_users)


def _make_rng():
    return np.random.default_rng()
