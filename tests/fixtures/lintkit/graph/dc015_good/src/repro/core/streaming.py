"""Fixture: checkpoint versions route through the contract (DC015 quiet)."""

STREAM_CHECKPOINT_KIND = "streaming-geolocator"
STREAM_CHECKPOINT_VERSION = 2
STREAM_CHECKPOINT_COMPAT = (1, 2)


def write_checkpoint(path, kind, version, state):
    return (path, kind, version, state)


def read_checkpoint_negotiated(path, kind, versions):
    return (path, kind, versions)


def save_state(path, state):
    return write_checkpoint(
        path, STREAM_CHECKPOINT_KIND, STREAM_CHECKPOINT_VERSION, state
    )


def load_state(path):
    return read_checkpoint_negotiated(
        path, STREAM_CHECKPOINT_KIND, STREAM_CHECKPOINT_COMPAT
    )
