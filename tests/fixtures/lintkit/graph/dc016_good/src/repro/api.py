"""Fixture: public API matches the recorded surface (DC016 stays quiet)."""


def place(users, seed):
    return len(users) + seed


def summarize():
    return {}


def _helper():
    return 0
