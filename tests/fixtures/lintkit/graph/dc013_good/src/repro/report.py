"""Fixture: sets are sorted before serialization (DC013 stays quiet)."""

import json


def export_zones():
    seen = {3, 7, 11}
    return json.dumps(sorted(seen))


def export_offsets(path):
    offsets = {1, 2}
    ordered = sorted(offsets)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(ordered, handle)
