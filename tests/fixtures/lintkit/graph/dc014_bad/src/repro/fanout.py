"""Fixture: unpicklable process-pool dispatch (DC014 fires three ways)."""

import threading
from concurrent.futures import ProcessPoolExecutor


def _worker(item):
    return item + 1


def fan_out(items):
    lock = threading.Lock()
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(lambda item: item + 1, item) for item in items]
        counted = list(pool.map(_worker, items, lock))
    return futures, counted


def fan_out_closure(items):
    def inner(item):
        return item * 2

    with ProcessPoolExecutor() as pool:
        return list(pool.map(inner, items))
