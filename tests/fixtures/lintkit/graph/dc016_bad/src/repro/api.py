"""Fixture: public API drift against the recorded surface (DC016)."""


def place(users, seed):
    return len(users) + seed


def summarize():
    return {}


def _helper():
    return 0
