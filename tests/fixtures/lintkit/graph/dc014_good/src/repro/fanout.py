"""Fixture: module-level workers, plain-data args (DC014 stays quiet)."""

from concurrent.futures import ProcessPoolExecutor


def _worker(item):
    return item + 1


def fan_out(items):
    payload = [int(item) for item in items]
    with ProcessPoolExecutor() as pool:
        return list(pool.map(_worker, payload))
