"""Fixture: naked wall-clock reads (DC001 must fire on every call)."""
import time
from datetime import date, datetime

started = time.time()
stamp = datetime.now()
legacy = datetime.utcnow()
day = date.today()
