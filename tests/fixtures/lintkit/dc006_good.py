"""Fixture: SharedMemory under with / try-finally (DC006 quiet)."""
from contextlib import closing
from multiprocessing.shared_memory import SharedMemory


def with_block(size):
    with closing(SharedMemory(create=True, size=size)) as shm:
        return bytes(shm.buf[:8])


def try_finally(size):
    shm = None
    try:
        shm = SharedMemory(create=True, size=size)
        return bytes(shm.buf[:8])
    finally:
        if shm is not None:
            shm.close()
            shm.unlink()
