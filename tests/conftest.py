"""Shared fixtures.

The expensive artifacts (the synthetic Twitter dataset and the reference
profiles derived from it) are built once per session at a small scale and
shared; :func:`repro.analysis.experiments.make_context` memoises on its
parameters, so repeated fixture use is free.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import ExperimentContext, make_context
from repro.core.reference import ReferenceProfiles


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """Small but statistically usable experiment context."""
    return make_context(seed=2016, scale=0.02, n_days=366)


@pytest.fixture(scope="session")
def references(context) -> ReferenceProfiles:
    """Data-driven time-zone references from the session dataset."""
    return context.references


@pytest.fixture(scope="session")
def canonical_references() -> ReferenceProfiles:
    """Parametric references (no dataset needed)."""
    return ReferenceProfiles.canonical()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
