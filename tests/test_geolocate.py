"""The end-to-end CrowdGeolocator pipeline."""

from __future__ import annotations

import pytest

from repro.core.events import TraceSet
from repro.core.geolocate import CrowdGeolocator
from repro.errors import EmptyTraceError
from repro.synth.bots import generate_bot_trace
from repro.synth.forums import build_merged_crowd
from repro.synth.twitter import build_region_crowd


class TestGeolocate:
    def test_single_country_crowd(self, references):
        crowd = build_region_crowd("malaysia", 60, seed=8, n_days=366)
        geolocator = CrowdGeolocator(references)
        report = geolocator.geolocate(crowd, crowd_name="test crowd")
        assert report.crowd_name == "test crowd"
        assert report.mixture.k == 1
        assert abs(report.mixture.dominant().mean - 8.0) <= 1.0
        assert report.n_users > 0
        assert report.n_posts > 0

    def test_two_country_crowd(self, references):
        crowd = build_merged_crowd(("illinois", "malaysia"), 60, seed=9, n_days=366)
        report = CrowdGeolocator(references).geolocate(crowd)
        zones = sorted(report.zone_offsets())
        assert len(zones) == 2
        assert abs(zones[0] - (-6)) <= 1
        assert abs(zones[1] - 8) <= 1

    def test_polish_removes_bots(self, references, rng):
        crowd = build_region_crowd("japan", 40, seed=10, n_days=366)
        for index in range(4):
            crowd.add(generate_bot_trace(f"bot{index}", rng, n_days=366))
        report = CrowdGeolocator(references).geolocate(crowd)
        assert report.n_removed_flat >= 3
        assert all("bot" not in user for user in report.user_zones)

    def test_no_polish_keeps_bots(self, references, rng):
        crowd = build_region_crowd("japan", 40, seed=10, n_days=366)
        crowd.add(generate_bot_trace("bot0", rng, n_days=366, posts_per_day=3.0))
        report = CrowdGeolocator(references).geolocate(crowd, polish=False)
        assert report.n_removed_flat == 0
        assert "bot0" in report.user_zones

    def test_empty_crowd_rejected(self, references):
        with pytest.raises(EmptyTraceError):
            CrowdGeolocator(references).geolocate(TraceSet())

    def test_threshold_too_high_rejected(self, references):
        crowd = build_region_crowd("japan", 10, seed=10, n_days=90)
        geolocator = CrowdGeolocator(references, min_posts=10**7)
        with pytest.raises(EmptyTraceError):
            geolocator.geolocate(crowd)

    def test_hemisphere_results_attached(self, references):
        crowd = build_region_crowd("brazil", 40, seed=12, n_days=366)
        report = CrowdGeolocator(references).geolocate(crowd, hemisphere_top_n=3)
        assert len(report.hemisphere) == 3

    def test_user_zones_cover_crowd(self, references):
        crowd = build_region_crowd("france", 30, seed=13, n_days=366)
        report = CrowdGeolocator(references).geolocate(crowd)
        assert len(report.user_zones) == report.n_users

    def test_summary_mentions_zones(self, references):
        crowd = build_region_crowd("malaysia", 40, seed=8, n_days=366)
        report = CrowdGeolocator(references).geolocate(crowd, crowd_name="X")
        summary = report.summary()
        assert "X" in summary
        assert "UTC+" in summary

    def test_fit_metrics_much_better_than_baseline(self, references):
        from repro.core.metrics import baseline_metrics

        crowd = build_region_crowd("malaysia", 80, seed=8, n_days=366)
        report = CrowdGeolocator(references).geolocate(crowd)
        baseline = baseline_metrics(report.placement, report.mixture.components)
        assert report.fit_metrics.average < baseline.average

    def test_default_references_canonical(self):
        geolocator = CrowdGeolocator()
        assert geolocator.references is not None

    def test_pearson_reported_high_for_clean_crowd(self, references):
        crowd = build_region_crowd("malaysia", 60, seed=8, n_days=366)
        report = CrowdGeolocator(references).geolocate(crowd)
        assert report.pearson_vs_generic > 0.75
