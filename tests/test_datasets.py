"""Labeled datasets, filtering and serialisation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.events import ActivityTrace, TraceSet
from repro.datasets.registry import TABLE1_ROWS, table1_rows, total_active_users
from repro.datasets.traces import (
    LabeledDataset,
    load_trace_set,
    load_trace_set_resilient,
    save_trace_set,
)
from repro.errors import DatasetError
from repro.timebase.calendar_utils import standard_holidays
from repro.timebase.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR, make_timestamp


def _simple_dataset():
    german = TraceSet(
        [
            ActivityTrace(
                "hans",
                [
                    day * SECONDS_PER_DAY + 19 * SECONDS_PER_HOUR
                    for day in range(40)
                ],
            )
        ]
    )
    japanese = TraceSet(
        [ActivityTrace("yuki", [day * SECONDS_PER_DAY + 11 * SECONDS_PER_HOUR for day in range(40)])]
    )
    return LabeledDataset({"germany": german, "japan": japanese})


class TestRegistry:
    def test_rows_in_paper_order(self):
        names = [name for name, _ in table1_rows()]
        assert names[0] == "Brazil"
        assert names[-1] == "United Kingdom"
        assert len(names) == 14

    def test_total(self):
        assert total_active_users() == sum(count for _, count in table1_rows())
        assert total_active_users() == 22576

    def test_rows_regions_consistent(self):
        for key, region in TABLE1_ROWS:
            assert region.twitter_active_users >= 0


class TestLabeledDataset:
    def test_unknown_region_rejected(self):
        with pytest.raises(Exception):
            LabeledDataset({"atlantis": TraceSet()})

    def test_crowd_access(self):
        dataset = _simple_dataset()
        assert len(dataset.crowd("germany")) == 1
        with pytest.raises(DatasetError):
            dataset.crowd("france")

    def test_totals(self):
        dataset = _simple_dataset()
        assert dataset.total_users() == 2
        assert dataset.total_posts() == 80

    def test_min_posts_filter(self):
        dataset = _simple_dataset().with_min_posts(50)
        assert dataset.total_users() == 0

    def test_merged(self):
        merged = _simple_dataset().merged()
        assert set(merged.user_ids()) == {"hans", "yuki"}

    def test_merged_subset(self):
        merged = _simple_dataset().merged(["japan"])
        assert merged.user_ids() == ["yuki"]

    def test_contains_and_iter(self):
        dataset = _simple_dataset()
        assert "germany" in dataset
        assert set(iter(dataset)) == {"germany", "japan"}


class TestHolidayFilter:
    def test_posts_on_holidays_removed(self):
        christmas = make_timestamp(2016, 12, 25, hour=12)
        workday = make_timestamp(2016, 7, 12, hour=12)
        dataset = LabeledDataset(
            {"germany": TraceSet([ActivityTrace("u", [christmas, workday])])}
        )
        cleaned = dataset.without_holidays(standard_holidays())
        assert len(cleaned.crowd("germany")["u"]) == 1


class TestCrowdProfiles:
    def test_local_profile_centred_on_local_hour(self):
        dataset = _simple_dataset()
        profile = dataset.crowd_profile("japan")  # posts at 11h UTC = 20h JST
        assert profile.peak_hour() == 20

    def test_utc_profile(self):
        dataset = _simple_dataset()
        profile = dataset.crowd_profile("japan", local_time=False)
        assert profile.peak_hour() == 11

    def test_empty_region_rejected(self):
        dataset = LabeledDataset({"germany": TraceSet()})
        with pytest.raises(DatasetError):
            dataset.crowd_profile("germany")

    def test_generic_profile_averages(self):
        dataset = _simple_dataset()
        generic = dataset.generic_profile()
        # hans posts 19 UTC = 20 CET (winter); yuki 11 UTC = 20 JST: the
        # aligned generic profile must concentrate at 20h local.
        assert generic.peak_hour() == 20

    def test_generic_profile_no_users(self):
        dataset = LabeledDataset({"germany": TraceSet()})
        with pytest.raises(DatasetError):
            dataset.generic_profile()

    def test_reference_profiles_roundtrip(self):
        dataset = _simple_dataset()
        references = dataset.reference_profiles()
        assert references.nearest_zone(references.for_zone(9)) == 9


class TestDstNormalization:
    def test_summer_posts_shifted_forward(self):
        summer_post = make_timestamp(2016, 7, 10, hour=18)
        dataset = LabeledDataset(
            {"germany": TraceSet([ActivityTrace("u", [summer_post] )])}
        )
        normalized = dataset.dst_normalized_crowd("germany")
        assert normalized["u"].timestamps[0] == summer_post + 3600.0

    def test_winter_posts_untouched(self):
        winter_post = make_timestamp(2016, 1, 10, hour=18)
        dataset = LabeledDataset(
            {"germany": TraceSet([ActivityTrace("u", [winter_post])])}
        )
        normalized = dataset.dst_normalized_crowd("germany")
        assert normalized["u"].timestamps[0] == winter_post

    def test_no_dst_region_is_identity(self):
        stamps = [make_timestamp(2016, month, 1, hour=9) for month in (1, 7)]
        dataset = LabeledDataset(
            {"malaysia": TraceSet([ActivityTrace("u", stamps)])}
        )
        normalized = dataset.dst_normalized_crowd("malaysia")
        assert list(normalized["u"].timestamps) == stamps


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        traces = TraceSet(
            [
                ActivityTrace("a", [1.5, 2.5]),
                ActivityTrace("b", [100.0]),
            ]
        )
        path = tmp_path / "traces.jsonl"
        save_trace_set(traces, path)
        loaded = load_trace_set(path)
        assert set(loaded.user_ids()) == {"a", "b"}
        assert list(loaded["a"].timestamps) == [1.5, 2.5]

    @given(
        st.dictionaries(
            st.text(
                alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
                min_size=1,
                max_size=8,
            ),
            st.lists(st.floats(0, 1e8, allow_nan=False), min_size=1, max_size=20),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=20)
    def test_roundtrip_property(self, data):
        import tempfile
        from pathlib import Path

        traces = TraceSet(
            ActivityTrace(user, stamps) for user, stamps in data.items()
        )
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.jsonl"
            save_trace_set(traces, path)
            loaded = load_trace_set(path)
        assert set(loaded.user_ids()) == set(traces.user_ids())
        for user in traces.user_ids():
            assert np.allclose(loaded[user].timestamps, traces[user].timestamps)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"user": "a"}\n')
        with pytest.raises(DatasetError):
            load_trace_set(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.jsonl"
        path.write_text('\n{"user": "a", "timestamps": [1.0]}\n\n')
        assert len(load_trace_set(path)) == 1


class TestMalformedRecords:
    """Every malformed line raises DatasetError -- never a bare
    KeyError/ValueError from inside the decoder."""

    GOOD = '{"user": "ok", "timestamps": [1.0, 2.0]}\n'

    def _load(self, tmp_path, bad_line):
        path = tmp_path / "traces.jsonl"
        path.write_text(self.GOOD + bad_line + "\n", encoding="utf-8")
        return load_trace_set(path)

    @pytest.mark.parametrize(
        "bad_line",
        [
            '{"user": "trunc", "timestamps": [1.0,',  # truncated mid-write
            "[1, 2, 3]",  # not an object
            '"just a string"',
            '{"timestamps": [1.0]}',  # user missing
            '{"user": 7, "timestamps": [1.0]}',  # user wrong type
            '{"user": "", "timestamps": [1.0]}',  # user empty
            '{"user": "u"}',  # timestamps missing
            '{"user": "u", "timestamps": 5.0}',  # timestamps not a list
            '{"user": "u", "timestamps": ["a"]}',  # non-numeric entries
            '{"user": "u", "timestamps": [true]}',  # bools are not numbers
            '{"user": "u", "timestamps": [1.0, -5.0]}',  # negative stamp
            '{"user": "u", "timestamps": [NaN]}',  # json.loads accepts NaN
            '{"user": "u", "timestamps": [Infinity]}',
        ],
        ids=[
            "truncated",
            "array",
            "string",
            "no-user",
            "user-type",
            "user-empty",
            "no-timestamps",
            "timestamps-type",
            "timestamps-nonnumeric",
            "timestamps-bool",
            "negative",
            "nan",
            "inf",
        ],
    )
    def test_malformed_line_raises_dataset_error(self, tmp_path, bad_line):
        with pytest.raises(DatasetError) as excinfo:
            self._load(tmp_path, bad_line)
        assert "traces.jsonl:2" in str(excinfo.value)

    def test_error_is_never_a_bare_decoder_exception(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        path.write_text('{"user": "u", "timestamps": [1.0,\n', encoding="utf-8")
        try:
            load_trace_set(path)
        except DatasetError:
            pass
        else:  # pragma: no cover - the load must fail
            pytest.fail("malformed line silently accepted")

    def test_empty_timestamp_list_is_allowed(self, tmp_path):
        # An evidence-free user is not a malformed record.
        path = tmp_path / "traces.jsonl"
        path.write_text('{"user": "quiet", "timestamps": []}\n')
        loaded = load_trace_set(path)
        assert len(loaded["quiet"]) == 0


class TestResilientLoader:
    def test_quarantines_bad_lines_keeps_good(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        path.write_text(
            '{"user": "a", "timestamps": [1.0]}\n'
            '{"user": "broken", "timestamps": [NaN]}\n'
            "not json at all\n"
            '{"user": "b", "timestamps": [2.0]}\n',
            encoding="utf-8",
        )
        traces, report = load_trace_set_resilient(path)
        assert set(traces.user_ids()) == {"a", "b"}
        assert report.n_input_users == 4
        assert report.n_retained_users == 2
        assert report.n_quarantined == 2

    def test_quarantine_named_by_user_when_decodable(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        path.write_text('{"user": "broken", "timestamps": [-1.0]}\n')
        _, report = load_trace_set_resilient(path)
        assert report.quarantined_users() == ["broken"]
        assert "negative" in report.reason_for("broken")

    def test_quarantine_named_by_line_when_undecodable(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        path.write_text('{"user": "a", "timestamps": [1.0]}\n{{{\n')
        _, report = load_trace_set_resilient(path)
        assert report.quarantined_users() == ["<line 2>"]

    def test_clean_file_reports_clean(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        save_trace_set(TraceSet([ActivityTrace("a", [1.0])]), path)
        traces, report = load_trace_set_resilient(path)
        assert report.is_clean()
        assert set(traces.user_ids()) == {"a"}
