"""Tests for the ``darkcrowd lint`` engine (:mod:`repro.lintkit`).

Each rule has a *bad* fixture it must fire on and a *good* fixture it
must stay quiet on (``tests/fixtures/lintkit/``).  The fixtures are real
Python files but live under a ``fixtures`` directory the engine never
descends into, so the self-lint test at the bottom can assert the whole
shipped tree is clean while the corpus of known violations sits inside
it.  Scoped rules (DC001's clocks exemption, DC004's library-only scope,
DC005's ``core/`` scope) are exercised by spoofing the path given to
:func:`lint_source`.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lintkit import (
    DEFAULT_EXCLUDED_DIRS,
    PARSE_ERROR_ID,
    REPORT_KIND,
    REPORT_VERSION,
    all_rules,
    get_rule,
    iter_python_files,
    lint_paths,
    lint_source,
    render_json,
    render_text,
    resolve_selection,
)

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "fixtures" / "lintkit"

#: A path where *every* rule is in scope: library code, under ``core/``,
#: not the clocks module and not the CLI.
CORE_PATH = "src/repro/core/kernel.py"

#: rule id -> number of findings its bad fixture must produce.
EXPECTED_BAD_FINDINGS = {
    "DC001": 4,
    "DC002": 4,
    "DC003": 5,
    "DC004": 1,
    "DC005": 2,
    "DC006": 1,
    "DC007": 4,
    "DC008": 2,
    "DC009": 2,
    "DC010": 3,
    "DC011": 3,
}


def fixture_source(name: str) -> str:
    return (FIXTURES / name).read_text(encoding="utf-8")


class TestRegistry:
    def test_all_sixteen_rules_registered(self):
        assert sorted(all_rules()) == [f"DC00{i}" for i in range(1, 10)] + [
            f"DC0{i}" for i in range(10, 17)
        ]

    def test_every_rule_documents_itself(self):
        for rule_id, rule_class in all_rules().items():
            assert rule_class.rule_id == rule_id
            assert rule_class.summary, rule_id
            assert rule_class.rationale, rule_id

    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError, match="DC999"):
            get_rule("DC999")
        with pytest.raises(KeyError, match="DC999"):
            resolve_selection(select=["DC999"])
        with pytest.raises(KeyError, match="DC999"):
            resolve_selection(ignore=["DC999"])

    def test_select_then_ignore(self):
        rules = resolve_selection(select=["DC001", "DC002"], ignore=["DC002"])
        assert [rule.rule_id for rule in rules] == ["DC001"]


class TestRuleFixtures:
    @pytest.mark.parametrize("rule_id", sorted(EXPECTED_BAD_FINDINGS))
    def test_bad_fixture_fires(self, rule_id):
        source = fixture_source(f"{rule_id.lower()}_bad.py")
        findings = lint_source(source, path=CORE_PATH)
        fired = [f for f in findings if f.rule_id == rule_id]
        assert len(fired) == EXPECTED_BAD_FINDINGS[rule_id]
        # the bad fixture for rule X must not trip any *other* rule,
        # otherwise the corpus is testing more than it claims to
        assert findings == fired

    @pytest.mark.parametrize("rule_id", sorted(EXPECTED_BAD_FINDINGS))
    def test_good_fixture_is_quiet(self, rule_id):
        source = fixture_source(f"{rule_id.lower()}_good.py")
        assert lint_source(source, path=CORE_PATH) == []

    def test_findings_carry_location_and_message(self):
        findings = lint_source(fixture_source("dc004_bad.py"), path=CORE_PATH)
        (finding,) = findings
        assert finding.path == CORE_PATH
        assert finding.line == 5
        assert finding.rule_id == "DC004"
        assert "print" in finding.message
        assert finding.render().startswith(f"{CORE_PATH}:5:")


class TestRuleScoping:
    def test_dc001_exempts_the_clocks_module(self):
        source = fixture_source("dc001_bad.py")
        assert lint_source(source, path="src/repro/reliability/clocks.py") == []

    def test_dc004_exempts_cli_and_tests(self):
        source = fixture_source("dc004_bad.py")
        assert lint_source(source, path="src/repro/cli.py") == []
        assert lint_source(source, path="tests/test_example.py") == []
        assert lint_source(source, path="scripts/tool.py") == []

    def test_dc005_only_checks_core(self):
        source = fixture_source("dc005_bad.py")
        assert lint_source(source, path="src/repro/collect/fetch.py") == []
        assert len(lint_source(source, path=CORE_PATH)) == 2

    def test_dc010_exempts_streaming_and_tests(self):
        source = fixture_source("dc010_bad.py")
        assert lint_source(source, path="src/repro/core/streaming.py") == []
        assert lint_source(source, path="tests/test_example.py") == []
        assert len(lint_source(source, path=CORE_PATH)) == 3

    def test_dc011_exempts_obs_and_tests_but_not_cli(self):
        source = fixture_source("dc011_bad.py")
        assert lint_source(source, path="src/repro/obs/metrics.py") == []
        assert lint_source(source, path="src/repro/obs/profiler.py") == []
        assert lint_source(source, path="tests/test_example.py") == []
        # the CLI is library code for timing purposes: its throughput
        # prints consume Stopwatch values like any other caller
        assert len(lint_source(source, path="src/repro/cli.py")) == 3
        assert len(lint_source(source, path=CORE_PATH)) == 3


class TestSuppressions:
    BAD_LINE = "import time\nstarted = time.time(){comment}\n"

    def test_specific_rule_suppressed(self):
        source = self.BAD_LINE.format(comment="  # darkcrowd: disable=DC001")
        assert lint_source(source, path=CORE_PATH) == []

    def test_all_suppressed(self):
        source = self.BAD_LINE.format(comment="  # darkcrowd: disable=all")
        assert lint_source(source, path=CORE_PATH) == []

    def test_comma_separated_list(self):
        source = self.BAD_LINE.format(comment="  # darkcrowd: disable=DC007, DC001")
        assert lint_source(source, path=CORE_PATH) == []

    def test_other_rule_does_not_suppress(self):
        source = self.BAD_LINE.format(comment="  # darkcrowd: disable=DC002")
        findings = lint_source(source, path=CORE_PATH)
        assert [f.rule_id for f in findings] == ["DC001"]

    def test_suppression_is_per_line(self):
        source = (
            "import time\n"
            "a = time.time()  # darkcrowd: disable=DC001\n"
            "b = time.time()\n"
        )
        findings = lint_source(source, path=CORE_PATH)
        assert [(f.rule_id, f.line) for f in findings] == [("DC001", 3)]


class TestSelection:
    def test_select_runs_only_listed_rules(self):
        source = fixture_source("dc001_bad.py")
        rules = resolve_selection(select=["DC002"])
        assert lint_source(source, path=CORE_PATH, rules=rules) == []

    def test_ignore_drops_a_rule(self):
        source = fixture_source("dc001_bad.py")
        rules = resolve_selection(ignore=["DC001"])
        assert lint_source(source, path=CORE_PATH, rules=rules) == []


class TestParseErrors:
    def test_syntax_error_becomes_dc000(self):
        findings = lint_source("def broken(:\n", path="src/repro/core/x.py")
        (finding,) = findings
        assert finding.rule_id == PARSE_ERROR_ID
        assert "cannot parse" in finding.message


class TestReporters:
    def test_text_tally_all_clean(self):
        assert render_text([]) == "all clean"

    def test_text_tally_counts(self):
        findings = lint_source(fixture_source("dc005_bad.py"), path=CORE_PATH)
        report = render_text(findings)
        assert report.endswith("2 findings")
        one = lint_source(fixture_source("dc004_bad.py"), path=CORE_PATH)
        assert render_text(one).endswith("1 finding")

    def test_json_schema(self):
        findings = lint_source(fixture_source("dc007_bad.py"), path=CORE_PATH)
        payload = json.loads(render_json(findings))
        assert payload["kind"] == REPORT_KIND
        assert payload["version"] == REPORT_VERSION
        assert payload["n_findings"] == len(findings) == 4
        for entry in payload["findings"]:
            assert set(entry) == {"path", "line", "col", "rule", "message"}
            assert entry["rule"] == "DC007"
        assert sorted(payload["rules"]) == sorted(all_rules())
        for description in payload["rules"].values():
            assert set(description) == {"summary", "rationale"}

    def test_json_is_stable_across_renders(self):
        findings = lint_source(fixture_source("dc008_bad.py"), path=CORE_PATH)
        assert render_json(findings) == render_json(findings)


class TestFileDiscovery:
    def test_fixtures_dir_is_never_descended_into(self):
        files = list(iter_python_files([REPO / "tests"]))
        assert files, "discovery found no test files at all"
        assert not [p for p in files if "fixtures" in p.parts]

    def test_explicit_file_bypasses_dir_exclusion(self):
        target = FIXTURES / "dc007_bad.py"
        files = list(iter_python_files([target]))
        assert files == [target]

    def test_deduplicates_overlapping_inputs(self):
        target = FIXTURES / "dc007_bad.py"
        files = list(iter_python_files([target, target]))
        assert files == [target]

    def test_default_excludes_cover_caches(self):
        assert {"__pycache__", ".mypy_cache", "fixtures"} <= set(DEFAULT_EXCLUDED_DIRS)


class TestCliLint:
    def test_lint_clean_paths_exits_zero(self, capsys):
        assert main(["lint", str(REPO / "src" / "repro" / "lintkit")]) == 0
        assert "all clean" in capsys.readouterr().out

    def test_lint_bad_fixture_exits_one(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", str(FIXTURES / "dc007_bad.py")])
        assert excinfo.value.code == 1
        assert "DC007" in capsys.readouterr().out

    def test_lint_json_format(self, capsys):
        with pytest.raises(SystemExit):
            main(["lint", "--format", "json", str(FIXTURES / "dc007_bad.py")])
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == REPORT_KIND
        assert payload["n_findings"] == 4

    def test_lint_unknown_rule_id_fails_loudly(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "--select", "DC999", str(FIXTURES)])
        assert "DC999" in str(excinfo.value.code)

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in all_rules():
            assert rule_id in out


class TestSelfLint:
    def test_shipped_tree_is_clean(self):
        findings = lint_paths([REPO / "src", REPO / "tests"])
        assert findings == [], render_text(findings)
