"""Ablation drivers."""

from __future__ import annotations


from repro.analysis.ablations import (
    run_metric_ablation,
    run_sigma_init_ablation,
    run_threshold_ablation,
    run_trace_length_ablation,
)


class TestMetricAblation:
    def test_all_metrics_evaluated(self, context):
        rows = run_metric_ablation(context, regions=("malaysia",), n_users=40)
        assert [row.metric for row in rows] == ["linear", "circular", "l1", "l2"]
        assert all(0.0 <= row.accuracy <= 1.0 for row in rows)

    def test_emd_metrics_competitive(self, context):
        rows = run_metric_ablation(
            context, regions=("malaysia", "germany"), n_users=50
        )
        by_metric = {row.metric: row.accuracy for row in rows}
        assert by_metric["linear"] >= 0.5


class TestThresholdAblation:
    def test_retention_monotone_decreasing(self, context):
        rows = run_threshold_ablation(
            context, thresholds=(5, 30, 80), n_users=60
        )
        retained = [row.users_retained for row in rows]
        assert retained == sorted(retained, reverse=True)

    def test_row_fields(self, context):
        rows = run_threshold_ablation(context, thresholds=(30,), n_users=40)
        assert rows[0].min_posts == 30


class TestSigmaInitAblation:
    def test_paper_sigma_recovers_components(self, context):
        rows = run_sigma_init_ablation(
            context, sigma_inits=(2.5,), users_per_component=60
        )
        assert rows[0].recovered_components == 3
        assert rows[0].max_center_error <= 1.5

    def test_sweep_shape(self, context):
        rows = run_sigma_init_ablation(
            context, sigma_inits=(1.0, 2.5), users_per_component=50
        )
        assert [row.sigma_init for row in rows] == [1.0, 2.5]


class TestTraceLengthAblation:
    def test_longer_traces_not_worse(self, context):
        rows = run_trace_length_ablation(
            context, day_counts=(45, 366), n_users=60
        )
        assert rows[-1].accuracy >= rows[0].accuracy - 0.1

    def test_short_traces_lose_users(self, context):
        rows = run_trace_length_ablation(
            context, day_counts=(30, 366), n_users=60
        )
        assert rows[0].users_retained <= rows[1].users_retained
