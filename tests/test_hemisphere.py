"""The DST-based hemisphere test (Sec. V-F)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.events import ActivityTrace, TraceSet
from repro.core.hemisphere import (
    HemisphereVerdict,
    classify_hemisphere,
    classify_most_active,
)
from repro.synth.population import sample_user
from repro.synth.posting import generate_trace


def _resident_trace(region_key, rng, *, n_days=366, rate=8.0):
    # High activity, like the "5 most active users" the paper tests.
    spec = sample_user(
        "u", region_key, rng, posts_per_day_mean=rate, chronotype_std=0.5
    )
    return generate_trace(spec, rng, n_days=n_days)


class TestClassification:
    @pytest.mark.parametrize(
        "region_key", ["germany", "united_kingdom", "california", "italy"]
    )
    def test_northern_residents(self, region_key, rng):
        trace = _resident_trace(region_key, rng)
        result = classify_hemisphere(trace)
        assert result.verdict is HemisphereVerdict.NORTHERN

    @pytest.mark.parametrize("region_key", ["brazil", "new_south_wales"])
    def test_southern_residents(self, region_key, rng):
        trace = _resident_trace(region_key, rng)
        result = classify_hemisphere(trace)
        assert result.verdict is HemisphereVerdict.SOUTHERN

    @pytest.mark.parametrize("region_key", ["malaysia", "japan", "turkey"])
    def test_no_dst_residents(self, region_key, rng):
        trace = _resident_trace(region_key, rng)
        result = classify_hemisphere(trace)
        assert result.verdict is HemisphereVerdict.NO_DST

    def test_insufficient_data(self):
        result = classify_hemisphere(ActivityTrace("u", [0.0, 3600.0]))
        assert result.verdict is HemisphereVerdict.INSUFFICIENT_DATA
        assert np.isnan(result.distance_forward)

    def test_summer_only_trace_insufficient(self, rng):
        trace = _resident_trace("germany", rng, n_days=90)  # Jan-Mar only
        result = classify_hemisphere(trace)
        assert result.verdict is HemisphereVerdict.INSUFFICIENT_DATA


class TestMargins:
    def test_margin_positive_for_dst_resident(self, rng):
        trace = _resident_trace("germany", rng)
        result = classify_hemisphere(trace)
        assert result.margin() > 0.25

    def test_high_margin_threshold_forces_no_dst(self, rng):
        trace = _resident_trace("germany", rng)
        result = classify_hemisphere(trace, asymmetry_threshold=5.0)
        assert result.verdict is HemisphereVerdict.NO_DST

    def test_distances_recorded(self, rng):
        trace = _resident_trace("brazil", rng)
        result = classify_hemisphere(trace)
        assert result.distance_backward < result.distance_forward
        assert result.user_id == "u"


class TestMostActive:
    def test_runs_on_top_n(self, rng):
        specs = [
            sample_user(f"u{i}", "italy", rng, posts_per_day_mean=2.0)
            for i in range(8)
        ]
        crowd = TraceSet(generate_trace(spec, rng) for spec in specs)
        results = classify_most_active(crowd, 3)
        assert len(results) == 3
        verdicts = {result.verdict for result in results}
        assert verdicts <= {
            HemisphereVerdict.NORTHERN,
            HemisphereVerdict.NO_DST,
        }
