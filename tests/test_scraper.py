"""The scraping procedure: probe, calibrate, dump, correct."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ForumError
from repro.forum.engine import ForumServer
from repro.forum.scraper import ForumScraper


def _forum_with_history(offset_hours):
    forum = ForumServer("F", "x.onion", server_offset_hours=offset_hours)
    forum.import_crowd_posts(
        {
            "alice": [1000.0, 5000.0, 9000.0],
            "bob": [2000.0],
        }
    )
    return forum


class TestCalibration:
    @pytest.mark.parametrize("offset", [-5, 0, 3, 11, 0.5])
    def test_offset_recovered(self, offset):
        forum = ForumServer("F", "x.onion", server_offset_hours=offset)
        scraper = ForumScraper(forum)
        assert scraper.calibrate_offset(10_000.0) == pytest.approx(offset)

    def test_quarter_hour_rounding(self):
        forum = ForumServer("F", "x.onion", server_offset_hours=2.07)
        scraper = ForumScraper(forum)
        assert scraper.calibrate_offset(0.0) == pytest.approx(2.0)

    def test_registers_researcher(self):
        forum = ForumServer("F", "x.onion")
        scraper = ForumScraper(forum, username="probe_account")
        scraper.calibrate_offset(0.0)
        assert forum.is_member("probe_account")

    def test_idempotent_registration(self):
        forum = ForumServer("F", "x.onion")
        scraper = ForumScraper(forum)
        scraper.calibrate_offset(0.0)
        scraper.calibrate_offset(100.0)  # must not raise on second signup


class TestScrape:
    def test_recovers_utc_timestamps(self):
        forum = _forum_with_history(offset_hours=7)
        result = ForumScraper(forum).scrape(50_000.0)
        assert result.server_offset_hours == pytest.approx(7.0)
        assert np.allclose(
            result.traces["alice"].timestamps, [1000.0, 5000.0, 9000.0]
        )
        assert np.allclose(result.traces["bob"].timestamps, [2000.0])

    def test_probe_post_excluded(self):
        forum = _forum_with_history(offset_hours=0)
        result = ForumScraper(forum, username="researcher").scrape(50_000.0)
        assert "researcher" not in result.traces

    def test_counts(self):
        forum = _forum_with_history(offset_hours=3)
        result = ForumScraper(forum).scrape(50_000.0)
        assert result.n_posts == 4
        assert len(result.traces) == 2

    def test_summary_mentions_offset(self):
        forum = _forum_with_history(offset_hours=3)
        result = ForumScraper(forum).scrape(50_000.0)
        assert "+3.00h" in result.summary()

    def test_negative_offset_forum(self):
        forum = _forum_with_history(offset_hours=-6)
        result = ForumScraper(forum).scrape(50_000.0)
        assert np.allclose(
            result.traces["alice"].timestamps, [1000.0, 5000.0, 9000.0]
        )

    def test_scrape_is_offset_invariant(self):
        # The recovered traces must not depend on the server clock skew.
        base = ForumScraper(_forum_with_history(0)).scrape(50_000.0)
        skewed = ForumScraper(_forum_with_history(9)).scrape(50_000.0)
        assert np.allclose(
            base.traces["alice"].timestamps, skewed.traces["alice"].timestamps
        )
