"""The scraping procedure: probe, calibrate, dump, correct."""

from __future__ import annotations

import numpy as np
import pytest

from repro.forum.engine import ForumServer
from repro.forum.scraper import ForumScraper, normalize_offset_hours


def _forum_with_history(offset_hours):
    forum = ForumServer("F", "x.onion", server_offset_hours=offset_hours)
    forum.import_crowd_posts(
        {
            "alice": [1000.0, 5000.0, 9000.0],
            "bob": [2000.0],
        }
    )
    return forum


class TestCalibration:
    @pytest.mark.parametrize("offset", [-5, 0, 3, 11, 0.5])
    def test_offset_recovered(self, offset):
        forum = ForumServer("F", "x.onion", server_offset_hours=offset)
        scraper = ForumScraper(forum)
        assert scraper.calibrate_offset(10_000.0) == pytest.approx(offset)

    def test_quarter_hour_rounding(self):
        forum = ForumServer("F", "x.onion", server_offset_hours=2.07)
        scraper = ForumScraper(forum)
        assert scraper.calibrate_offset(0.0) == pytest.approx(2.0)

    def test_registers_researcher(self):
        forum = ForumServer("F", "x.onion")
        scraper = ForumScraper(forum, username="probe_account")
        scraper.calibrate_offset(0.0)
        assert forum.is_member("probe_account")

    def test_idempotent_registration(self):
        forum = ForumServer("F", "x.onion")
        scraper = ForumScraper(forum)
        scraper.calibrate_offset(0.0)
        scraper.calibrate_offset(100.0)  # must not raise on second signup


class TestScrape:
    def test_recovers_utc_timestamps(self):
        forum = _forum_with_history(offset_hours=7)
        result = ForumScraper(forum).scrape(50_000.0)
        assert result.server_offset_hours == pytest.approx(7.0)
        assert np.allclose(
            result.traces["alice"].timestamps, [1000.0, 5000.0, 9000.0]
        )
        assert np.allclose(result.traces["bob"].timestamps, [2000.0])

    def test_probe_post_excluded(self):
        forum = _forum_with_history(offset_hours=0)
        result = ForumScraper(forum, username="researcher").scrape(50_000.0)
        assert "researcher" not in result.traces

    def test_counts(self):
        forum = _forum_with_history(offset_hours=3)
        result = ForumScraper(forum).scrape(50_000.0)
        assert result.n_posts == 4
        assert len(result.traces) == 2

    def test_summary_mentions_offset(self):
        forum = _forum_with_history(offset_hours=3)
        result = ForumScraper(forum).scrape(50_000.0)
        assert "+3.00h" in result.summary()

    def test_negative_offset_forum(self):
        forum = _forum_with_history(offset_hours=-6)
        result = ForumScraper(forum).scrape(50_000.0)
        assert np.allclose(
            result.traces["alice"].timestamps, [1000.0, 5000.0, 9000.0]
        )

    def test_scrape_is_offset_invariant(self):
        # The recovered traces must not depend on the server clock skew.
        base = ForumScraper(_forum_with_history(0)).scrape(50_000.0)
        skewed = ForumScraper(_forum_with_history(9)).scrape(50_000.0)
        assert np.allclose(
            base.traces["alice"].timestamps, skewed.traces["alice"].timestamps
        )


class TestOffsetNormalization:
    """Regressions for the +/-12 h seam: offsets fold into (-12, +12]."""

    @pytest.mark.parametrize(
        ("raw", "folded"),
        [
            (0.0, 0.0),
            (12.0, 12.0),  # the seam itself takes the +12 representative
            (-12.0, 12.0),  # ... from either side
            (12.25, -11.75),  # just past the seam wraps westward
            (-11.75, -11.75),
            (-12.25, 11.75),
            (13.0, -11.0),
            (-13.0, 11.0),
            (24.0, 0.0),
            (-24.0, 0.0),
            (23.75, -0.25),
            (11.75, 11.75),
        ],
    )
    def test_fold_into_half_open_day(self, raw, folded):
        assert normalize_offset_hours(raw) == pytest.approx(folded)

    def test_fold_is_idempotent(self):
        for raw in np.arange(-30.0, 30.0, 0.25):
            once = normalize_offset_hours(raw)
            assert normalize_offset_hours(once) == pytest.approx(once)
            assert -12.0 < once <= 12.0

    def test_fold_preserves_hour_of_day(self):
        for raw in np.arange(-30.0, 30.0, 0.25):
            folded = normalize_offset_hours(raw)
            assert (folded - raw) % 24.0 == pytest.approx(0.0) or (
                folded - raw
            ) % 24.0 == pytest.approx(24.0)

    @pytest.mark.parametrize("offset", [12.0, -12.0])
    def test_calibration_at_the_seam_is_canonical(self, offset):
        # A server clock 12h ahead is indistinguishable from 12h behind;
        # both calibrate to the canonical +12 representative.
        forum = ForumServer("F", "x.onion", server_offset_hours=offset)
        scraper = ForumScraper(forum)
        assert scraper.calibrate_offset(10_000.0) == pytest.approx(12.0)

    def test_calibration_just_past_the_seam(self):
        forum = ForumServer("F", "x.onion", server_offset_hours=12.25)
        assert ForumScraper(forum).calibrate_offset(0.0) == pytest.approx(-11.75)

    def test_seam_scrape_preserves_hour_of_day(self):
        # Folding moves the correction by whole days, never partial hours:
        # the recovered hour-of-day (all the method uses) is intact.
        base = ForumScraper(_forum_with_history(0)).scrape(50_000.0)
        seam = ForumScraper(_forum_with_history(-12)).scrape(50_000.0)
        base_hours = np.asarray(base.traces["alice"].timestamps) % 86400.0
        seam_hours = np.asarray(seam.traces["alice"].timestamps) % 86400.0
        assert np.allclose(base_hours, seam_hours)

    def test_rounding_lands_on_seam_then_folds(self):
        # 11.9h rounds to the 12.0 quarter-hour grid point -- exactly the
        # seam -- and must come back as +12, not -12.
        forum = ForumServer("F", "x.onion", server_offset_hours=11.9)
        assert ForumScraper(forum).calibrate_offset(0.0) == pytest.approx(12.0)
