"""Hidden-service hosting and the rendezvous RPC path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TorError
from repro.forum.engine import ForumServer
from repro.forum.scraper import ForumScraper
from repro.tor.hidden_service import HiddenServiceHost, TorClient
from repro.tor.network import build_network


@pytest.fixture()
def stack():
    network = build_network(seed=11)
    forum = ForumServer("Hidden Forum", "ignored.onion", server_offset_hours=2)
    forum.import_crowd_posts({"alice": [100.0, 5000.0], "bob": [900.0]})
    host = HiddenServiceHost(
        network=network,
        application=forum,
        private_key="secret-key-123",
        rng=np.random.default_rng(11),
    )
    descriptor = host.setup()
    client = TorClient(network, seed=12)
    return network, forum, host, descriptor, client


class TestSetup:
    def test_descriptor_published(self, stack):
        network, _, host, descriptor, _ = stack
        assert network.fetch_descriptor(host.onion) == descriptor
        assert descriptor.verify()
        assert len(descriptor.intro_point_ids) == 3

    def test_onion_derived_from_key(self, stack):
        _, _, host, descriptor, _ = stack
        assert descriptor.onion == host.onion
        assert descriptor.onion.endswith(".onion")


class TestConnect:
    def test_connect_and_call(self, stack):
        _, forum, host, descriptor, client = stack
        remote = client.connect(descriptor.onion, {descriptor.onion: host})
        assert remote.total_posts() == forum.total_posts()
        assert client.rpc_count == 1
        assert client.total_latency_ms > 0

    def test_unknown_onion(self, stack):
        _, _, host, descriptor, client = stack
        with pytest.raises(Exception):
            client.connect("ffffffffffffffff.onion", {})

    def test_unreachable_host(self, stack):
        _, _, _, descriptor, client = stack
        with pytest.raises(TorError):
            client.connect(descriptor.onion, {})


class TestRemoteForum:
    def test_full_scrape_over_tor_matches_direct(self, stack):
        _, forum, host, descriptor, client = stack
        remote = client.connect(descriptor.onion, {descriptor.onion: host})
        over_tor = ForumScraper(remote, username="tor_researcher").scrape(10_000.0)
        direct = ForumScraper(forum, username="direct_researcher").scrape(10_000.0)
        assert over_tor.server_offset_hours == direct.server_offset_hours
        assert set(over_tor.traces.user_ids()) >= {"alice", "bob"}
        assert np.allclose(
            over_tor.traces["alice"].timestamps, direct.traces["alice"].timestamps
        )

    def test_membership_via_proxy(self, stack):
        _, forum, host, descriptor, client = stack
        remote = client.connect(descriptor.onion, {descriptor.onion: host})
        remote.register("newcomer")
        assert forum.is_member("newcomer")
        assert remote.is_member("newcomer")

    def test_submit_post_via_proxy(self, stack):
        _, forum, host, descriptor, client = stack
        remote = client.connect(descriptor.onion, {descriptor.onion: host})
        remote.register("poster")
        thread = remote.thread_by_title("Welcome")
        post = remote.submit_post("poster", thread.thread_id, 777.0, "hello")
        assert post.server_time == pytest.approx(777.0 + 2 * 3600.0)

    def test_disconnect_closes_circuits(self, stack):
        _, _, host, descriptor, client = stack
        remote = client.connect(descriptor.onion, {descriptor.onion: host})
        remote.disconnect()
        with pytest.raises(Exception):
            remote.total_posts()

    def test_method_allowlist(self, stack):
        _, _, host, descriptor, client = stack
        remote = client.connect(descriptor.onion, {descriptor.onion: host})
        with pytest.raises(TorError):
            remote._call("import_crowd_posts", {})

    def test_name_exposed(self, stack):
        _, _, host, descriptor, client = stack
        remote = client.connect(descriptor.onion, {descriptor.onion: host})
        assert remote.name == "Hidden Forum"
