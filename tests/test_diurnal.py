"""Diurnal activity models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.emd import emd_linear
from repro.core.reference import parametric_generic_profile
from repro.synth.diurnal import (
    CANONICAL,
    CULTURES,
    EARLY,
    NIGHT,
    REGION_CULTURES,
    SIESTA,
    DiurnalModel,
    model_for_region,
)


class TestDiurnalModel:
    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            DiurnalModel(name="bad", weights=(1.0,) * 23)

    def test_negative_weight_rejected(self):
        weights = [1.0] * 24
        weights[5] = -1.0
        with pytest.raises(ValueError):
            DiurnalModel(name="bad", weights=tuple(weights))

    def test_pmf_normalised(self):
        assert np.isclose(CANONICAL.pmf().sum(), 1.0)

    @given(st.floats(-12.0, 12.0, allow_nan=False))
    @settings(max_examples=30)
    def test_shifted_pmf_normalised(self, shift):
        assert np.isclose(CANONICAL.pmf(shift).sum(), 1.0)

    def test_positive_shift_moves_later(self):
        base_peak = int(np.argmax(CANONICAL.pmf()))
        shifted_peak = int(np.argmax(CANONICAL.pmf(3.0)))
        assert (shifted_peak - base_peak) % 24 == 3

    def test_profile_matches_pmf(self):
        assert np.allclose(CANONICAL.profile().mass, CANONICAL.pmf())

    def test_rate_at_integer_matches_weights(self):
        assert CANONICAL.rate_at(21.0) == pytest.approx(CANONICAL.weights[21])

    def test_sample_hours_respects_distribution(self, rng):
        hours = CANONICAL.sample_hours(8000, rng)
        assert hours.min() >= 0.0 and hours.max() < 24.0
        histogram = np.histogram(hours, bins=24, range=(0, 24))[0]
        # Evening (21h) must dominate the night trough (4h) decisively.
        assert histogram[21] > 3 * histogram[4]

    def test_canonical_matches_reference_profile(self):
        assert np.allclose(
            CANONICAL.profile().mass, parametric_generic_profile().mass
        )


class TestCultures:
    def test_registry_complete(self):
        assert set(CULTURES) == {"canonical", "siesta", "early", "night"}

    def test_region_mapping(self):
        assert model_for_region("italy") is SIESTA
        assert model_for_region("japan") is EARLY
        assert model_for_region("malaysia") is CANONICAL

    def test_mapping_case_insensitive(self):
        assert model_for_region("Italy") is SIESTA

    @pytest.mark.parametrize("model", [SIESTA, EARLY, NIGHT])
    def test_variants_phase_aligned_with_canonical(self, model):
        # Re-centering guarantees the variant is EMD-closest to the
        # canonical curve at (near) zero shift.
        distances = {
            shift: emd_linear(model.pmf(shift), CANONICAL.pmf())
            for shift in (-2, -1, 0, 1, 2)
        }
        assert min(distances, key=distances.get) == 0

    def test_siesta_has_deeper_afternoon_dip(self):
        siesta_pmf = SIESTA.pmf()
        canonical_pmf = CANONICAL.pmf()
        assert siesta_pmf[14] < canonical_pmf[14]

    def test_all_regions_resolve(self):
        for region in REGION_CULTURES:
            assert model_for_region(region) in CULTURES.values()


class TestPersonalized:
    def test_personalized_is_sharper(self, rng):
        personal = CANONICAL.personalized(rng, concentration=2.5)
        base_entropy = CANONICAL.profile().entropy()
        assert personal.profile().entropy() < base_entropy

    def test_personalized_keeps_phase(self, rng):
        # Over many draws the personalised peak stays in the evening.
        peaks = [
            int(np.argmax(CANONICAL.personalized(rng).pmf())) for _ in range(40)
        ]
        evening = sum(1 for peak in peaks if 18 <= peak <= 23)
        assert evening >= 30

    def test_concentration_one_without_noise_is_identity(self, rng):
        personal = CANONICAL.personalized(
            rng, concentration=1.0, noise_dispersion=10**9
        )
        assert np.allclose(personal.pmf(), CANONICAL.pmf(), atol=1e-3)
