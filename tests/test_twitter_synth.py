"""The synthetic Table-I Twitter dataset."""

from __future__ import annotations

import pytest

from repro.synth.twitter import (
    build_region_crowd,
    build_twitter_dataset,
    scaled_user_count,
)
from repro.timebase.zones import TABLE1_KEYS


class TestScaledCounts:
    def test_full_scale_matches_table1(self):
        assert scaled_user_count("brazil", 1.0) == 3763

    def test_small_regions_floored(self):
        assert scaled_user_count("finland", 0.01) == 8

    def test_scale_halves(self):
        assert scaled_user_count("japan", 0.5) == pytest.approx(1872, abs=1)


class TestBuildDataset:
    def test_all_regions_present(self, context):
        assert set(context.dataset.region_keys()) == set(TABLE1_KEYS)

    def test_deterministic(self):
        a = build_twitter_dataset(seed=5, scale=0.005, n_days=30, regions=("finland",))
        b = build_twitter_dataset(seed=5, scale=0.005, n_days=30, regions=("finland",))
        crowd_a, crowd_b = a.crowd("finland"), b.crowd("finland")
        assert crowd_a.user_ids() == crowd_b.user_ids()
        assert crowd_a.total_posts() == crowd_b.total_posts()

    def test_seed_changes_data(self):
        a = build_twitter_dataset(seed=5, scale=0.005, n_days=30, regions=("finland",))
        b = build_twitter_dataset(seed=6, scale=0.005, n_days=30, regions=("finland",))
        assert a.crowd("finland").total_posts() != b.crowd("finland").total_posts()

    def test_bots_included(self):
        dataset = build_twitter_dataset(
            seed=5, scale=0.05, n_days=30, bot_fraction=0.5, regions=("finland",)
        )
        bots = [
            user
            for user in dataset.crowd("finland").user_ids()
            if "bot" in user
        ]
        assert len(bots) >= 1

    def test_no_bots_when_disabled(self):
        dataset = build_twitter_dataset(
            seed=5, scale=0.005, n_days=30, bot_fraction=0.0, regions=("finland",)
        )
        assert all("bot" not in user for user in dataset.crowd("finland").user_ids())


class TestRegionCrowd:
    def test_user_count(self):
        crowd = build_region_crowd("turkey", 12, seed=3, n_days=60)
        assert len(crowd) <= 12  # users with zero posts drop out

    def test_respects_seed(self):
        a = build_region_crowd("turkey", 6, seed=3, n_days=60)
        b = build_region_crowd("turkey", 6, seed=3, n_days=60)
        assert a.total_posts() == b.total_posts()
