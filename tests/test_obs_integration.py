"""Observability wired through the pipeline: counters, spans, CLI artifacts.

The unit layer (``test_obs.py``) proves the registry/tracer/manifest
primitives; this module proves the *instrumentation* -- that a real
geolocation run feeds the expected metric set, that enabling it never
changes a single number, and that the CLI's ``--metrics-out`` /
``--trace-out`` / ``--manifest-out`` flags produce valid artifacts the
``stats`` subcommand can read back.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.batch import ProfileMatrix
from repro.core.events import ActivityTrace, TraceSet
from repro.core.geolocate import CrowdGeolocator
from repro.datasets.store import TraceStore
from repro.errors import RetryExhaustedError, TransientForumError
from repro.obs import metrics as obs_metrics
from repro.obs.manifest import RunManifest
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.tracing import Tracer, use_tracer
from repro.reliability.clocks import ManualClock
from repro.reliability.policy import CircuitBreaker, CircuitState, RetryPolicy
from repro.reliability.quality import partition_trace_set


def _diurnal_crowd(n_users: int = 30, seed: int = 7) -> TraceSet:
    """A small crowd with clear evening peaks, cheap enough per-test."""
    rng = np.random.default_rng(seed)
    traces = []
    for index in range(n_users):
        zone_shift = index % 4  # a handful of distinct zones
        days = rng.integers(0, 40, size=60)
        hours = rng.integers(18, 23, size=60) - zone_shift
        stamps = days * 86400.0 + hours * 3600.0 + rng.uniform(0, 3600, size=60)
        traces.append(ActivityTrace(f"u{index:03d}", np.abs(stamps)))
    return TraceSet(traces)


def _counter_names(registry: MetricsRegistry) -> set[str]:
    return {entry["name"] for entry in registry.snapshot()["counters"]}


def _counter_value(registry: MetricsRegistry, name: str, **labels) -> float:
    return registry.counter(name, **labels).value


class TestGeolocateInstrumentation:
    def test_batch_run_feeds_expected_counter_set(self):
        crowd = _diurnal_crowd()
        registry = MetricsRegistry()
        tracer = Tracer()
        with use_registry(registry), use_tracer(tracer):
            report = CrowdGeolocator().geolocate(crowd)
        names = _counter_names(registry)
        assert {
            "repro_batch_builds_total",
            "repro_core_em_runs_total",
            "repro_core_geolocate_runs_total",
            "repro_core_users_placed_total",
        } <= names
        assert (
            _counter_value(
                registry, "repro_core_geolocate_runs_total", pipeline="batch"
            )
            == 1.0
        )
        assert _counter_value(
            registry, "repro_core_users_placed_total"
        ) == float(len(report.user_zones))
        # The run's wall time landed in the latency histogram.
        (histogram,) = [
            entry
            for entry in registry.snapshot()["histograms"]
            if entry["name"] == "repro_core_geolocate_seconds"
        ]
        assert histogram["count"] == 1

    def test_batch_run_records_pipeline_spans(self):
        tracer = Tracer()
        with use_tracer(tracer):
            CrowdGeolocator().geolocate(_diurnal_crowd())
        names = {span.name for span in tracer.all_spans()}
        assert {"profile_build", "polish", "placement", "mixture"} <= names

    def test_reference_run_counts_its_pipeline(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            CrowdGeolocator().geolocate(_diurnal_crowd(), engine="reference")
        assert (
            _counter_value(
                registry, "repro_core_geolocate_runs_total", pipeline="reference"
            )
            == 1.0
        )

    def test_observability_is_numerically_inert(self):
        crowd = _diurnal_crowd()
        locator = CrowdGeolocator()
        plain = locator.geolocate(crowd)
        with use_registry(MetricsRegistry()), use_tracer(Tracer()):
            instrumented = locator.geolocate(crowd)
        assert plain.user_zones == instrumented.user_zones
        assert list(plain.placement.fractions) == list(
            instrumented.placement.fractions
        )
        assert plain.zone_offsets() == instrumented.zone_offsets()


class TestStoreInstrumentation:
    def test_store_pipeline_counters_and_spans(self, tmp_path):
        crowd = _diurnal_crowd()
        store_path = tmp_path / "crowd.store"
        TraceStore.write(crowd, store_path)
        registry = MetricsRegistry()
        tracer = Tracer()
        with use_registry(registry), use_tracer(tracer):
            store = TraceStore.open(store_path)
            report = CrowdGeolocator().geolocate_store(store)
        names = _counter_names(registry)
        assert "repro_datasets_store_opens_total" in names
        assert "repro_datasets_store_shards_total" in names
        assert (
            _counter_value(
                registry, "repro_core_geolocate_runs_total", pipeline="store"
            )
            == 1.0
        )
        assert report.user_zones
        spans = {span.name for span in tracer.all_spans()}
        assert {"profile_build", "polish", "placement"} <= spans
        build = next(
            span for span in tracer.all_spans() if span.name == "profile_build"
        )
        assert build.attrs.get("source") == "store"

    def test_store_and_jsonl_paths_agree_under_instrumentation(self, tmp_path):
        crowd = _diurnal_crowd()
        store_path = tmp_path / "crowd.store"
        TraceStore.write(crowd, store_path)
        with use_registry(MetricsRegistry()), use_tracer(Tracer()):
            via_store = CrowdGeolocator().geolocate_store(
                TraceStore.open(store_path)
            )
        via_memory = CrowdGeolocator().geolocate(crowd)
        assert via_store.user_zones == via_memory.user_zones

    def test_profile_matrix_build_counter(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            ProfileMatrix.from_trace_set(_diurnal_crowd())
        assert "repro_batch_builds_total" in _counter_names(registry)


class TestReliabilityInstrumentation:
    def test_retry_counters(self):
        registry = MetricsRegistry()
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        clock = ManualClock()

        def always_down():
            raise TransientForumError("503")

        with use_registry(registry):
            with pytest.raises(RetryExhaustedError):
                policy.execute(always_down, clock=clock)
        assert (
            _counter_value(registry, "repro_reliability_retry_attempts_total")
            == 3.0
        )
        assert (
            _counter_value(registry, "repro_reliability_retry_exhausted_total")
            == 1.0
        )

    def test_circuit_transitions_counted_once_per_flip(self):
        registry = MetricsRegistry()
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=2, recovery_timeout=10.0, clock=clock
        )
        with use_registry(registry):
            breaker.record_failure()  # below threshold: still closed
            breaker.record_failure()  # trips
            assert breaker.state is CircuitState.OPEN
            clock.advance(10.0)
            assert breaker.state is CircuitState.HALF_OPEN
            breaker.record_success()
            assert breaker.state is CircuitState.CLOSED

        def transitions(to: str) -> float:
            return _counter_value(
                registry, "repro_reliability_circuit_transitions_total", to=to
            )

        assert transitions("open") == 1.0
        assert transitions("half_open") == 1.0
        assert transitions("closed") == 1.0

    def test_quarantine_counters_by_reason(self):
        registry = MetricsRegistry()
        traces = TraceSet(
            [
                ActivityTrace("ok", [3600.0 * h for h in range(1, 40)]),
                ActivityTrace("hollow", []),
                ActivityTrace("mangled", [float("nan")]),
            ]
        )
        with use_registry(registry):
            healthy, report = partition_trace_set(traces)
        assert len(healthy) == 1 and report.n_quarantined == 2
        assert (
            _counter_value(
                registry,
                "repro_reliability_quarantined_users_total",
                reason="empty-trace",
            )
            == 1.0
        )
        assert (
            _counter_value(
                registry,
                "repro_reliability_quarantined_users_total",
                reason="non-finite-timestamps",
            )
            == 1.0
        )
        assert (
            _counter_value(registry, "repro_reliability_retained_users_total")
            == 1.0
        )


def _write_jsonl_crowd(path, n_users: int = 10) -> None:
    lines = []
    for index in range(n_users):
        hour = 19 + index % 3
        stamps = [day * 86400.0 + hour * 3600.0 for day in range(40)]
        lines.append(json.dumps({"user": f"u{index:02d}", "timestamps": stamps}))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


class TestCliArtifacts:
    def test_geolocate_writes_all_three_artifacts(self, tmp_path, capsys):
        traces = tmp_path / "crowd.jsonl"
        _write_jsonl_crowd(traces)
        metrics_out = tmp_path / "metrics.json"
        trace_out = tmp_path / "trace.json"
        manifest_out = tmp_path / "run.manifest.json"
        assert (
            cli_main(
                [
                    "--scale",
                    "0.02",
                    "geolocate",
                    str(traces),
                    "--metrics-out",
                    str(metrics_out),
                    "--trace-out",
                    str(trace_out),
                    "--manifest-out",
                    str(manifest_out),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "metrics written" in out

        metrics = json.loads(metrics_out.read_text())
        assert metrics["kind"] == "repro-metrics"
        counter_names = {
            entry["name"] for entry in metrics["metrics"]["counters"]
        }
        assert "repro_core_geolocate_runs_total" in counter_names

        trace = json.loads(trace_out.read_text())
        span_names = {event["name"] for event in trace["traceEvents"]}
        assert {"profile_build", "polish", "placement"} <= span_names

        manifest = RunManifest.load(manifest_out)
        assert manifest.command == "geolocate"
        assert manifest.dataset is not None
        assert manifest.dataset["path"] == str(traces)
        assert manifest.seed is not None or manifest.config  # config captured

    def test_obs_flags_accepted_after_subcommand(self, tmp_path):
        traces = tmp_path / "crowd.jsonl"
        _write_jsonl_crowd(traces)
        metrics_out = tmp_path / "m.json"
        assert (
            cli_main(
                [
                    "--scale",
                    "0.02",
                    "geolocate",
                    str(traces),
                    "--metrics-out",
                    str(metrics_out),
                ]
            )
            == 0
        )
        assert metrics_out.exists()
        # Manifest defaults to <metrics-out>.manifest.json.
        assert (tmp_path / "m.json.manifest.json").exists()

    def test_prom_suffix_selects_prometheus_format(self, tmp_path):
        traces = tmp_path / "crowd.jsonl"
        _write_jsonl_crowd(traces)
        prom_out = tmp_path / "metrics.prom"
        assert (
            cli_main(
                [
                    "--scale",
                    "0.02",
                    "geolocate",
                    str(traces),
                    "--metrics-out",
                    str(prom_out),
                ]
            )
            == 0
        )
        text = prom_out.read_text()
        assert "# TYPE repro_core_geolocate_runs_total counter" in text

    def test_globals_restored_after_cli_run(self, tmp_path):
        traces = tmp_path / "crowd.jsonl"
        _write_jsonl_crowd(traces)
        from repro.obs import tracing as obs_tracing

        before_registry = obs_metrics.get_registry()
        before_tracer = obs_tracing.get_tracer()
        cli_main(
            [
                "--scale",
                "0.02",
                "geolocate",
                str(traces),
                "--metrics-out",
                str(tmp_path / "m.json"),
            ]
        )
        assert obs_metrics.get_registry() is before_registry
        assert obs_tracing.get_tracer() is before_tracer


class TestStatsSubcommand:
    @pytest.fixture()
    def artifacts(self, tmp_path):
        traces = tmp_path / "crowd.jsonl"
        _write_jsonl_crowd(traces)
        metrics_out = tmp_path / "metrics.json"
        trace_out = tmp_path / "trace.json"
        manifest_out = tmp_path / "run.manifest.json"
        cli_main(
            [
                "--scale",
                "0.02",
                "geolocate",
                str(traces),
                "--metrics-out",
                str(metrics_out),
                "--trace-out",
                str(trace_out),
                "--manifest-out",
                str(manifest_out),
            ]
        )
        return metrics_out, trace_out, manifest_out

    def test_stats_reads_metrics(self, artifacts, capsys):
        metrics_out, _, _ = artifacts
        capsys.readouterr()
        assert cli_main(["stats", str(metrics_out)]) == 0
        out = capsys.readouterr().out
        assert "repro_core_geolocate_runs_total" in out

    def test_stats_reads_trace(self, artifacts, capsys):
        _, trace_out, _ = artifacts
        capsys.readouterr()
        assert cli_main(["stats", str(trace_out)]) == 0
        out = capsys.readouterr().out
        assert "profile_build" in out

    def test_stats_reads_manifest(self, artifacts, capsys):
        _, _, manifest_out = artifacts
        capsys.readouterr()
        assert cli_main(["stats", str(manifest_out)]) == 0
        out = capsys.readouterr().out
        assert "geolocate" in out
        assert "fingerprint" in out

    def test_stats_rejects_unknown_document(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "mystery"}))
        with pytest.raises(SystemExit):
            cli_main(["stats", str(path)])
