"""Property tests: the batch fast paths equal the per-Profile reference paths.

Every vectorised path added by the batch engine (one-pass Eq. 1 profiles,
matrix distances for all four metrics, mask-based polishing, bincount
placement, the shared-matrix geolocator, streaming snapshots) is checked
here against the naive per-user implementation it replaced, including
empty-trace, single-user and tie-breaking edge cases.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batch import ProfileMatrix, segmented_hour_counts
from repro.core.emd import ALL_DISTANCES, as_profile_matrix, distance_matrix
from repro.core.events import ActivityTrace, TraceSet
from repro.core.flatness import (
    flat_profile_mask,
    is_flat_profile,
    polish_trace_set,
    polish_trace_set_reference,
)
from repro.core.geolocate import CrowdGeolocator
from repro.core.placement import (
    PlacementDistribution,
    place_profile_matrix,
    place_trace_set,
    place_users,
    placement_distribution,
)
from repro.core.profiles import (
    HOURS,
    Profile,
    active_hour_counts,
    build_crowd_profile,
    build_user_profile,
    build_user_profile_civil,
)
from repro.core.reference import ReferenceProfiles
from repro.core.streaming import StreamingGeolocator
from repro.errors import EmptyTraceError
from repro.timebase.zones import ZONE_OFFSETS, get_region, normalize_offset

SECONDS_90_DAYS = 90 * 86400.0

timestamps_strategy = st.lists(
    st.floats(0.0, SECONDS_90_DAYS, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)

trace_set_strategy = st.lists(timestamps_strategy, min_size=0, max_size=8).map(
    lambda lists: TraceSet(
        ActivityTrace(f"u{i:03d}", stamps) for i, stamps in enumerate(lists)
    )
)

mass_strategy = st.lists(
    st.floats(0.01, 5.0, allow_nan=False), min_size=HOURS, max_size=HOURS
)


def _diurnal_trace(user_id, zone, rng, n_days=30, posts_per_day=4):
    """A plausibly diurnal user resident in UTC+zone (evening-heavy)."""
    hours = rng.choice([18, 19, 20, 21, 22], size=n_days * posts_per_day)
    days = rng.integers(0, n_days, size=n_days * posts_per_day)
    stamps = days * 86400.0 + (hours - zone) * 3600.0 + rng.uniform(
        0, 3600.0, size=hours.size
    )
    return ActivityTrace(user_id, np.abs(stamps))


def _uniform_trace(user_id, rng, n_days=30):
    """A bot: one post in every hour of every day (perfectly flat)."""
    days = np.repeat(np.arange(n_days), HOURS)
    hours = np.tile(np.arange(HOURS), n_days)
    return ActivityTrace(user_id, days * 86400.0 + hours * 3600.0 + 30.0)


def _mixed_crowd(seed=0, n_diurnal=12, n_flat=4):
    rng = np.random.default_rng(seed)
    traces = [
        _diurnal_trace(f"d{i:02d}", int(rng.integers(-11, 13)), rng)
        for i in range(n_diurnal)
    ]
    traces += [_uniform_trace(f"flat{i:02d}", rng) for i in range(n_flat)]
    return TraceSet(traces)


class TestProfileEquivalence:
    @given(trace_set_strategy, st.floats(-12.0, 12.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_matrix_rows_equal_reference_profiles(self, traces, offset):
        matrix = ProfileMatrix.from_trace_set(traces, offset_hours=offset)
        assert matrix.user_ids == tuple(
            trace.user_id for trace in traces if not trace.is_empty()
        )
        for trace in traces:
            if trace.is_empty():
                continue
            expected = build_user_profile(trace, offset_hours=offset).mass
            np.testing.assert_allclose(
                matrix.row(trace.user_id), expected, atol=1e-12
            )

    @given(trace_set_strategy)
    @settings(max_examples=25, deadline=None)
    def test_segmented_counts_equal_per_trace_counts(self, traces):
        arrays = [trace.timestamps for trace in traces]
        segmented = segmented_hour_counts(arrays)
        for i, trace in enumerate(traces):
            np.testing.assert_array_equal(
                segmented[i], active_hour_counts(trace.timestamps)
            )

    @given(timestamps_strategy)
    @settings(max_examples=25, deadline=None)
    def test_active_hour_counts_match_cell_set(self, stamps):
        trace = ActivityTrace("u", stamps)
        counts = np.zeros(HOURS)
        for _day, hour in trace.active_day_hours():
            counts[hour] += 1.0
        np.testing.assert_array_equal(active_hour_counts(trace.timestamps), counts)

    def test_empty_trace_set(self):
        matrix = ProfileMatrix.from_trace_set(TraceSet())
        assert len(matrix) == 0
        assert matrix.matrix.shape == (0, HOURS)
        with pytest.raises(EmptyTraceError):
            matrix.crowd_profile()

    def test_single_user(self):
        traces = TraceSet([ActivityTrace("solo", [100.0, 7200.0, 7300.0])])
        matrix = ProfileMatrix.from_trace_set(traces)
        assert len(matrix) == 1
        assert matrix.profile("solo") == build_user_profile(traces["solo"])

    def test_empty_traces_skipped_or_raise(self):
        traces = TraceSet([ActivityTrace("a", [100.0]), ActivityTrace("b", [])])
        matrix = ProfileMatrix.from_trace_set(traces)
        assert matrix.user_ids == ("a",)
        with pytest.raises(EmptyTraceError):
            ProfileMatrix.from_trace_set(traces, skip_empty=False)

    def test_parallel_path_equals_serial(self):
        crowd = _mixed_crowd(seed=3)
        serial = ProfileMatrix.from_trace_set(crowd, parallel=False)
        forced = ProfileMatrix.from_trace_set(crowd, parallel=True, max_workers=2)
        assert serial.user_ids == forced.user_ids
        np.testing.assert_allclose(serial.matrix, forced.matrix)

    def test_crowd_profile_matches_reference(self):
        crowd = _mixed_crowd(seed=4)
        matrix = ProfileMatrix.from_trace_set(crowd)
        expected = build_crowd_profile(
            build_user_profile(trace) for trace in crowd
        )
        np.testing.assert_allclose(
            matrix.crowd_profile().mass, expected.mass, atol=1e-12
        )


class TestCivilProfile:
    @given(
        st.sampled_from(["germany", "brazil", "new_south_wales", "japan"]),
        st.lists(
            st.floats(0.0, 360 * 86400.0, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=40,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_vectorised_equals_naive_loop(self, region_key, stamps):
        region = get_region(region_key)
        trace = ActivityTrace("u", stamps)
        # The pre-vectorisation implementation, kept verbatim as the oracle.
        counts = np.zeros(HOURS, dtype=float)
        seen: set[tuple[int, int]] = set()
        for timestamp in trace.timestamps:
            utc_day = int(timestamp // 86400.0)
            offset = region.utc_offset_at(utc_day)
            shifted = timestamp + offset * 3600.0
            cell = (int(shifted // 86400.0), int((shifted % 86400.0) // 3600.0))
            if cell in seen:
                continue
            seen.add(cell)
            counts[cell[1]] += 1.0
        expected = Profile(counts)
        assert build_user_profile_civil(trace, region) == expected


class TestDistanceMatrix:
    @given(
        st.lists(mass_strategy, min_size=1, max_size=6),
        st.lists(mass_strategy, min_size=1, max_size=6),
        st.sampled_from(sorted(ALL_DISTANCES)),
    )
    @settings(max_examples=40, deadline=None)
    def test_matrix_equals_scalar_loop(self, p_masses, q_masses, metric):
        profiles = [Profile(m) for m in p_masses]
        references = [Profile(m) for m in q_masses]
        matrix = distance_matrix(profiles, references, metric=metric)
        scalar = ALL_DISTANCES[metric]
        expected = np.array(
            [[scalar(p, q) for q in references] for p in profiles]
        )
        np.testing.assert_allclose(matrix, expected, atol=1e-9)

    def test_reference_profiles_cached_cumsum_used(self):
        references = ReferenceProfiles.canonical()
        fresh = np.cumsum(
            np.vstack([r.mass for r in references.as_list()]), axis=1
        )
        np.testing.assert_allclose(references.cumulative(), fresh)
        profiles = [Profile(np.arange(1.0, 25.0))]
        via_object = distance_matrix(profiles, references)
        via_list = distance_matrix(profiles, references.as_list())
        np.testing.assert_allclose(via_object, via_list, atol=1e-12)

    def test_profile_matrix_input(self):
        crowd = _mixed_crowd(seed=5)
        matrix = ProfileMatrix.from_trace_set(crowd)
        references = ReferenceProfiles.canonical()
        via_matrix = distance_matrix(matrix, references)
        via_lists = distance_matrix(
            [matrix.profile(u) for u in matrix.user_ids], references.as_list()
        )
        np.testing.assert_allclose(via_matrix, via_lists, atol=1e-9)

    def test_empty_profiles(self):
        references = ReferenceProfiles.canonical()
        out = distance_matrix(np.zeros((0, HOURS)) + 1.0, references)
        assert out.shape == (0, len(ZONE_OFFSETS))

    def test_as_profile_matrix_rejects_zero_mass(self):
        with pytest.raises(ValueError):
            as_profile_matrix(np.zeros((2, HOURS)))


class TestFlatnessEquivalence:
    @given(st.lists(mass_strategy, min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_mask_equals_scalar(self, masses):
        profiles = [Profile(m) for m in masses]
        references = ReferenceProfiles.canonical()
        mask = flat_profile_mask(
            np.vstack([p.mass for p in profiles]), references
        )
        expected = [is_flat_profile(p, references) for p in profiles]
        assert mask.tolist() == expected

    @pytest.mark.parametrize("fixed_references", [True, False])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_polish_survivors_match_reference(self, fixed_references, seed):
        crowd = _mixed_crowd(seed=seed)
        references = ReferenceProfiles.canonical() if fixed_references else None
        fast = polish_trace_set(crowd, references, min_posts=10)
        slow = polish_trace_set_reference(crowd, references, min_posts=10)
        assert fast.removed_user_ids == slow.removed_user_ids
        assert fast.iterations == slow.iterations
        assert fast.polished.user_ids() == slow.polished.user_ids()
        assert all(u.startswith("flat") for u in fast.removed_user_ids)

    def test_polish_empty_crowd(self):
        fast = polish_trace_set(TraceSet(), None)
        slow = polish_trace_set_reference(TraceSet(), None)
        assert fast.removed_user_ids == slow.removed_user_ids == ()
        assert fast.iterations == slow.iterations == 1


class TestPlacementEquivalence:
    @given(st.lists(st.integers(-40, 40), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_bincount_distribution_matches_loop(self, assignments):
        fast = placement_distribution(assignments)
        offsets = [normalize_offset(o) for o in assignments]
        counts = np.zeros(len(ZONE_OFFSETS), dtype=float)
        for offset in offsets:
            counts[ZONE_OFFSETS.index(offset)] += 1.0
        expected = PlacementDistribution(
            tuple((counts / counts.sum()).tolist()), n_users=len(offsets)
        )
        assert fast.n_users == expected.n_users
        np.testing.assert_allclose(fast.as_array(), expected.as_array())

    def test_placement_distribution_empty(self):
        with pytest.raises(EmptyTraceError):
            placement_distribution([])

    def test_matrix_placement_matches_dict_path(self):
        crowd = _mixed_crowd(seed=6)
        references = ReferenceProfiles.canonical()
        matrix = ProfileMatrix.from_trace_set(crowd)
        assignments, distribution = place_profile_matrix(matrix, references)
        dict_assignments = place_users(
            {u: matrix.profile(u) for u in matrix.user_ids}, references
        )
        assert assignments == dict_assignments
        np.testing.assert_allclose(
            distribution.as_array(),
            placement_distribution(assignments.values()).as_array(),
        )
        assert place_trace_set(crowd, references).as_array() == pytest.approx(
            distribution.as_array()
        )

    def test_tie_breaking_resolves_to_smaller_offset(self):
        # A 12-hour-periodic generic profile makes references for offsets o
        # and o+/-12 identical, so every user ties across two zones; both
        # paths must agree on the smaller offset, like nearest_zone does.
        periodic = Profile(np.tile([1.0, 2.0, 4.0, 2.0, 1.0, 0.5, 0.25, 0.5,
                                    1.0, 2.0, 4.0, 2.0], 2))
        references = ReferenceProfiles(periodic)
        user = periodic.shifted(-5)  # resident of UTC+5, ties with UTC-7
        assert references.nearest_zone(user) == -7
        assignments = place_users({"u": user}, references)
        assert assignments["u"] == -7
        matrix = ProfileMatrix.from_profiles({"u": user})
        batch_assignments, _ = place_profile_matrix(matrix, references)
        assert batch_assignments["u"] == -7


class TestPipelineEquivalence:
    @pytest.mark.parametrize("polish", [True, False])
    def test_geolocate_engines_agree(self, polish):
        crowd = _mixed_crowd(seed=7, n_diurnal=20, n_flat=5)
        locator = CrowdGeolocator(min_posts=10)
        fast = locator.geolocate(
            crowd, crowd_name="c", polish=polish, engine="batch"
        )
        slow = locator.geolocate(
            crowd, crowd_name="c", polish=polish, engine="reference"
        )
        assert fast.n_users == slow.n_users
        assert fast.n_posts == slow.n_posts
        assert fast.n_removed_flat == slow.n_removed_flat
        assert fast.user_zones == slow.user_zones
        np.testing.assert_allclose(
            fast.placement.as_array(), slow.placement.as_array()
        )
        np.testing.assert_allclose(
            fast.crowd_profile.mass, slow.crowd_profile.mass, atol=1e-12
        )
        assert fast.pearson_vs_generic == pytest.approx(slow.pearson_vs_generic)

    def test_geolocate_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            CrowdGeolocator().geolocate(_mixed_crowd(), engine="warp")


class TestStreamingEquivalence:
    def test_snapshot_matches_batch_pipeline(self):
        crowd = _mixed_crowd(seed=8, n_diurnal=15, n_flat=3)
        stream = StreamingGeolocator(min_posts=10, min_users_for_verdict=5)
        for trace in crowd:
            for stamp in trace.timestamps:
                stream.observe(trace.user_id, float(stamp))
        profiles = stream.active_profiles()
        # Oracle: per-user threshold + scalar flat filter.
        references = stream.references
        expected = {}
        for trace in crowd:
            if len(trace) < 10:
                continue
            profile = build_user_profile(trace)
            if is_flat_profile(profile, references):
                continue
            expected[trace.user_id] = profile
        assert set(profiles) == set(expected)
        for user_id, profile in expected.items():
            np.testing.assert_allclose(
                profiles[user_id].mass, profile.mass, atol=1e-12
            )
        snapshot = stream.snapshot()
        assert snapshot.has_verdict()
        assert snapshot.n_users_active == len(expected)


class TestParallelFallback:
    """A broken process pool degrades to the serial pass -- loudly."""

    def _crowd(self):
        rng = np.random.default_rng(17)
        return TraceSet(
            ActivityTrace(
                f"u{i:02d}",
                np.sort(rng.uniform(0.0, SECONDS_90_DAYS, size=40)),
            )
            for i in range(12)
        )

    def test_broken_pool_warns_and_matches_serial(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        import repro.core.batch as batch_module

        def broken(arrays, offset_hours, max_workers, fanout="shm"):
            raise BrokenProcessPool("worker died mid-build")

        monkeypatch.setattr(batch_module, "_counts_parallel", broken)
        crowd = self._crowd()
        with pytest.warns(RuntimeWarning, match="BrokenProcessPool"):
            fallback = ProfileMatrix.from_trace_set(crowd, parallel=True)
        serial = ProfileMatrix.from_trace_set(crowd, parallel=False)
        assert fallback.user_ids == serial.user_ids
        np.testing.assert_allclose(fallback.matrix, serial.matrix)

    def test_unspawnable_pool_also_degrades(self, monkeypatch):
        import repro.core.batch as batch_module

        def unspawnable(arrays, offset_hours, max_workers, fanout="shm"):
            raise OSError("process spawning disabled")

        monkeypatch.setattr(batch_module, "_counts_parallel", unspawnable)
        with pytest.warns(RuntimeWarning, match="falling back"):
            matrix = ProfileMatrix.from_trace_set(self._crowd(), parallel=True)
        assert len(matrix) == 12

    def test_healthy_serial_path_does_not_warn(self):
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            ProfileMatrix.from_trace_set(self._crowd(), parallel=False)


class TestParallelKernels:
    """The shared-memory fan-out equals pickle fan-out equals serial."""

    def _columns(self, n_users: int, seed: int = 23):
        rng = np.random.default_rng(seed)
        lengths = rng.integers(1, 60, size=n_users)
        stamps = np.sort(
            rng.uniform(0.0, SECONDS_90_DAYS, size=int(lengths.sum()))
        )
        # Sort within each user's segment, as traces and the store do.
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        stamps = np.concatenate(
            [np.sort(stamps[offsets[i] : offsets[i + 1]]) for i in range(n_users)]
        )
        return stamps, lengths.astype(np.int64)

    def test_shm_equals_pickle_equals_serial(self):
        from repro.core.batch import (
            _flat_segment_counts,
            counts_parallel_pickle,
            counts_parallel_shm,
        )

        stamps, lengths = self._columns(120)
        serial = _flat_segment_counts(stamps, lengths, 3.0)
        np.testing.assert_array_equal(
            counts_parallel_shm(stamps, lengths, 3.0), serial
        )
        np.testing.assert_array_equal(
            counts_parallel_pickle(stamps, lengths, 3.0), serial
        )

    def test_single_user_parallel(self):
        from repro.core.batch import (
            _flat_segment_counts,
            counts_parallel_pickle,
            counts_parallel_shm,
        )

        stamps, lengths = self._columns(1)
        serial = _flat_segment_counts(stamps, lengths, 0.0)
        np.testing.assert_array_equal(
            counts_parallel_shm(stamps, lengths, 0.0), serial
        )
        np.testing.assert_array_equal(
            counts_parallel_pickle(stamps, lengths, 0.0), serial
        )

    def test_max_workers_one_equals_serial(self):
        from repro.core.batch import (
            _flat_segment_counts,
            counts_parallel_pickle,
            counts_parallel_shm,
        )

        stamps, lengths = self._columns(17)
        serial = _flat_segment_counts(stamps, lengths, -4.5)
        np.testing.assert_array_equal(
            counts_parallel_shm(stamps, lengths, -4.5, max_workers=1), serial
        )
        np.testing.assert_array_equal(
            counts_parallel_pickle(stamps, lengths, -4.5, max_workers=1),
            serial,
        )

    def test_empty_tail_chunk(self):
        """More requested workers than users: tail chunks must be empty-safe."""
        from repro.core.batch import counts_parallel_shm, _flat_segment_counts

        stamps, lengths = self._columns(3)
        serial = _flat_segment_counts(stamps, lengths, 0.0)
        np.testing.assert_array_equal(
            counts_parallel_shm(stamps, lengths, 0.0, max_workers=8), serial
        )

    def test_chunk_bounds_tile_exactly(self):
        from repro.core.batch import _chunk_bounds

        for n_users in (1, 2, 3, 7, 64, 65, 1000):
            for workers in (1, 2, 3, 8):
                bounds = _chunk_bounds(n_users, workers)
                assert bounds[0][0] == 0
                assert bounds[-1][1] == n_users
                for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                    assert hi == lo
                assert all(hi > lo for lo, hi in bounds)

    def test_zero_users(self):
        from repro.core.batch import counts_parallel_shm

        counts = counts_parallel_shm(
            np.zeros(0), np.zeros(0, dtype=np.int64), 0.0
        )
        assert counts.shape == (0, HOURS)


class TestFastSelect:
    """select()/without_users() skip re-validation but equal the validating
    constructor bit for bit."""

    @given(
        seed=st.integers(0, 2**16),
        n_users=st.integers(1, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_select_equals_validating_constructor(self, seed, n_users):
        rng = np.random.default_rng(seed)
        rows = rng.uniform(0.01, 1.0, size=(n_users, HOURS))
        ids = [f"u{i}" for i in range(n_users)]
        matrix = ProfileMatrix(ids, rows)
        mask = rng.uniform(size=n_users) < 0.5
        fast = matrix.select(mask)
        rebuilt = ProfileMatrix(
            [uid for uid, keep in zip(ids, mask) if keep],
            matrix.matrix[mask],
        )
        assert fast.user_ids == rebuilt.user_ids
        # The validating constructor re-normalises the (already
        # row-stochastic) rows, which can move the last bit; the fast path
        # must agree up to that one re-normalisation and keep every row
        # exactly unit-mass.
        np.testing.assert_allclose(fast.matrix, rebuilt.matrix, rtol=1e-14)
        np.testing.assert_allclose(fast.matrix.sum(axis=1), 1.0, rtol=1e-12)
        np.testing.assert_allclose(
            fast.cumulative(), rebuilt.cumulative(), rtol=1e-13
        )

    def test_select_preserves_rows_bitwise(self):
        rng = np.random.default_rng(5)
        matrix = ProfileMatrix(
            [f"u{i}" for i in range(10)],
            rng.uniform(0.01, 1.0, size=(10, HOURS)),
        )
        mask = np.arange(10) % 2 == 0
        subset = matrix.select(mask)
        np.testing.assert_array_equal(subset.matrix, matrix.matrix[mask])

    def test_select_slices_cumulative_cache(self):
        rng = np.random.default_rng(6)
        matrix = ProfileMatrix(
            [f"u{i}" for i in range(8)],
            rng.uniform(0.01, 1.0, size=(8, HOURS)),
        )
        matrix.cumulative()  # populate the cache before slicing
        mask = np.array([True, False] * 4)
        subset = matrix.select(mask)
        np.testing.assert_array_equal(
            subset.cumulative(), matrix.cumulative()[mask]
        )

    def test_without_users_equals_masked_select(self):
        rng = np.random.default_rng(7)
        ids = [f"u{i}" for i in range(9)]
        matrix = ProfileMatrix(ids, rng.uniform(0.01, 1.0, size=(9, HOURS)))
        dropped = {"u1", "u4", "u8"}
        via_without = matrix.without_users(dropped)
        keep = np.array([uid not in dropped for uid in ids])
        via_select = matrix.select(keep)
        assert via_without.user_ids == via_select.user_ids
        np.testing.assert_array_equal(via_without.matrix, via_select.matrix)

    def test_select_bad_mask_shape_raises(self):
        matrix = ProfileMatrix(["a"], np.full((1, HOURS), 1.0))
        with pytest.raises(Exception, match="mask"):
            matrix.select(np.array([True, False]))
