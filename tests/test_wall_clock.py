"""Regression tests for the injectable wall-clock seam.

The reliability layer's *monotonic* clocks (``Clock`` / ``ManualClock``)
are covered in test_reliability_policy; this file covers the *wall*
seam -- ``wall_now`` / ``set_wall_clock`` / ``frozen_wall_clock`` -- and
the one consumer the lint rule DC001 forced through it: the run-manifest
``created`` stamp.
"""

from __future__ import annotations

import time
from datetime import datetime, timezone

import pytest

from repro.obs.manifest import RunManifest
from repro.reliability.clocks import (
    frozen_wall_clock,
    set_wall_clock,
    utc_isoformat,
    wall_now,
)

EPOCH_2020 = 1_577_836_800.0  # 2020-01-01T00:00:00+00:00


@pytest.fixture(autouse=True)
def _restore_system_clock():
    yield
    set_wall_clock(None)


class TestWallSeam:
    def test_default_tracks_system_time(self):
        # the one place naked time.time() is the *point*: checking the
        # seam's default against the system clock it wraps
        before = time.time()  # darkcrowd: disable=DC001
        observed = wall_now()
        after = time.time()  # darkcrowd: disable=DC001
        assert before <= observed <= after

    def test_set_wall_clock_installs_and_restores(self):
        set_wall_clock(lambda: EPOCH_2020)
        assert wall_now() == EPOCH_2020
        set_wall_clock(None)
        assert abs(wall_now() - time.time()) < 5.0  # darkcrowd: disable=DC001

    def test_frozen_wall_clock_pins_now(self):
        with frozen_wall_clock(EPOCH_2020):
            assert wall_now() == EPOCH_2020
            assert wall_now() == EPOCH_2020  # repeated reads do not drift
        assert wall_now() != EPOCH_2020

    def test_frozen_contexts_nest_and_unwind(self):
        with frozen_wall_clock(EPOCH_2020):
            with frozen_wall_clock(EPOCH_2020 + 60.0):
                assert wall_now() == EPOCH_2020 + 60.0
            assert wall_now() == EPOCH_2020

    def test_frozen_restores_previous_injection(self):
        set_wall_clock(lambda: 123.0)
        with frozen_wall_clock(EPOCH_2020):
            assert wall_now() == EPOCH_2020
        assert wall_now() == 123.0

    def test_frozen_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with frozen_wall_clock(EPOCH_2020):
                raise RuntimeError("boom")
        assert wall_now() != EPOCH_2020


class TestUtcIsoformat:
    def test_known_epoch(self):
        assert utc_isoformat(EPOCH_2020) == "2020-01-01T00:00:00+00:00"

    def test_round_trips_through_fromisoformat(self):
        stamp = utc_isoformat(wall_now())
        parsed = datetime.fromisoformat(stamp)
        assert parsed.tzinfo is not None
        assert parsed.utcoffset().total_seconds() == 0.0


class TestManifestCreatedStamp:
    def test_created_is_deterministic_under_frozen_clock(self):
        with frozen_wall_clock(EPOCH_2020):
            first = RunManifest(command="bench")
            second = RunManifest(command="bench")
        assert first.created == "2020-01-01T00:00:00+00:00"
        assert first.created == second.created

    def test_created_defaults_to_parseable_recent_utc(self):
        manifest = RunManifest(command="bench")
        parsed = datetime.fromisoformat(manifest.created)
        now = datetime.now(timezone.utc)  # darkcrowd: disable=DC001
        delta = abs(now - parsed).total_seconds()
        assert delta < 60.0

    def test_created_excluded_from_fingerprint(self):
        with frozen_wall_clock(EPOCH_2020):
            early = RunManifest(command="bench", seed=7)
        with frozen_wall_clock(EPOCH_2020 + 86_400.0):
            late = RunManifest(command="bench", seed=7)
        assert early.created != late.created
        assert early.fingerprint() == late.fingerprint()
