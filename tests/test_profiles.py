"""Eq. 1 / Eq. 2 profiles and the shift convention."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.events import ActivityTrace
from repro.core.profiles import (
    HOURS,
    Profile,
    average_pairwise_pearson,
    build_crowd_profile,
    build_user_profile,
    build_user_profile_civil,
    uniform_profile,
)
from repro.errors import EmptyTraceError, ProfileError
from repro.timebase.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR, make_timestamp
from repro.timebase.zones import get_region

positive_mass = st.lists(
    st.floats(0.0, 10.0, allow_nan=False), min_size=HOURS, max_size=HOURS
).filter(lambda mass: sum(mass) > 1e-6)


class TestProfileInvariants:
    @given(positive_mass)
    def test_normalised(self, mass):
        assert np.isclose(Profile(mass).mass.sum(), 1.0)

    def test_wrong_length_rejected(self):
        with pytest.raises(ProfileError):
            Profile([1.0] * 23)

    def test_negative_mass_rejected(self):
        mass = [1.0] * HOURS
        mass[3] = -0.5
        with pytest.raises(ProfileError):
            Profile(mass)

    def test_zero_mass_rejected(self):
        with pytest.raises(ProfileError):
            Profile([0.0] * HOURS)

    def test_mass_read_only(self):
        profile = uniform_profile()
        with pytest.raises(ValueError):
            profile.mass[0] = 1.0

    def test_indexing_wraps(self):
        profile = Profile([1.0] + [0.0] * 23)
        assert profile[24] == profile[0] == 1.0

    def test_equality(self):
        assert uniform_profile() == uniform_profile()
        assert uniform_profile() != Profile([1.0] + [0.0] * 23)


class TestShift:
    @given(positive_mass, st.integers(-30, 30))
    def test_shift_definition(self, mass, shift):
        profile = Profile(mass)
        shifted = profile.shifted(shift)
        for hour in range(HOURS):
            assert np.isclose(shifted[hour], profile[hour - shift])

    @given(positive_mass)
    def test_full_cycle_identity(self, mass):
        profile = Profile(mass)
        assert profile.shifted(24) == profile
        assert profile.shifted(0) == profile

    @given(positive_mass, st.integers(-12, 12))
    def test_shift_roundtrip(self, mass, shift):
        profile = Profile(mass)
        assert profile.shifted(shift).shifted(-shift) == profile

    def test_peak_moves_with_shift(self):
        profile = Profile([0.0] * 20 + [1.0] + [0.0] * 3)  # peak at 20
        assert profile.shifted(3).peak_hour() == 23


class TestStatistics:
    def test_uniform_entropy(self):
        assert np.isclose(uniform_profile().entropy(), np.log2(24))

    def test_point_mass_entropy(self):
        assert Profile([1.0] + [0.0] * 23).entropy() == 0.0

    def test_uniform_flatness_zero(self):
        assert uniform_profile().flatness() == pytest.approx(0.0)

    def test_point_mass_flatness(self):
        assert Profile([1.0] + [0.0] * 23).flatness() == pytest.approx(23 / 24)

    def test_mixed_with(self):
        peaked = Profile([1.0] + [0.0] * 23)
        mixed = peaked.mixed_with(uniform_profile(), 0.5)
        assert mixed[0] == pytest.approx(0.5 + 0.5 / 24)

    def test_mixed_with_invalid_weight(self):
        with pytest.raises(ProfileError):
            uniform_profile().mixed_with(uniform_profile(), 1.5)


class TestBuildUserProfile:
    def test_empty_trace_rejected(self):
        with pytest.raises(EmptyTraceError):
            build_user_profile(ActivityTrace("u"))

    def test_saturation_per_day_hour(self):
        # Ten posts at 21h of the same day weigh the same as one post at 9h
        # of another day: Eq. 1 counts active day-hours, not posts.
        base_evening = 21 * SECONDS_PER_HOUR
        stamps = [base_evening + i for i in range(10)]
        stamps.append(SECONDS_PER_DAY + 9 * SECONDS_PER_HOUR)
        profile = build_user_profile(ActivityTrace("u", stamps))
        assert profile[21] == pytest.approx(0.5)
        assert profile[9] == pytest.approx(0.5)

    def test_offset_shifts_hours(self):
        stamps = [23 * SECONDS_PER_HOUR + day * SECONDS_PER_DAY for day in range(5)]
        profile = build_user_profile(ActivityTrace("u", stamps), offset_hours=2)
        assert profile[1] == pytest.approx(1.0)

    def test_distribution_over_days(self):
        stamps = []
        for day in range(4):
            stamps.append(day * SECONDS_PER_DAY + 8 * SECONDS_PER_HOUR)
        stamps.append(20 * SECONDS_PER_HOUR)
        profile = build_user_profile(ActivityTrace("u", stamps))
        assert profile[8] == pytest.approx(4 / 5)
        assert profile[20] == pytest.approx(1 / 5)


class TestCivilProfile:
    def test_matches_plain_profile_without_dst(self):
        malaysia = get_region("malaysia")
        stamps = [
            make_timestamp(2016, month, 10, hour=12) for month in range(1, 13)
        ]
        trace = ActivityTrace("u", stamps)
        civil = build_user_profile_civil(trace, malaysia)
        plain = build_user_profile(trace, offset_hours=8)
        assert civil == plain

    def test_dst_stabilises_hour(self):
        # A German posting at 20h local civil time year-round: in UTC the
        # hour flips between 19 (winter) and 18 (summer), but the civil
        # profile sees 20h everywhere.
        germany = get_region("germany")
        stamps = [
            make_timestamp(2016, 1, 10, hour=19),
            make_timestamp(2016, 7, 10, hour=18),
        ]
        profile = build_user_profile_civil(ActivityTrace("u", stamps), germany)
        assert profile[20] == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(EmptyTraceError):
            build_user_profile_civil(ActivityTrace("u"), get_region("italy"))


class TestCrowdProfile:
    def test_average_of_user_profiles(self):
        a = Profile([1.0] + [0.0] * 23)
        b = Profile([0.0, 1.0] + [0.0] * 22)
        crowd = build_crowd_profile([a, b])
        assert crowd[0] == pytest.approx(0.5)
        assert crowd[1] == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(EmptyTraceError):
            build_crowd_profile([])

    @given(st.lists(positive_mass, min_size=2, max_size=6))
    def test_normalised(self, masses):
        crowd = build_crowd_profile([Profile(mass) for mass in masses])
        assert np.isclose(crowd.mass.sum(), 1.0)


class TestPairwisePearson:
    def test_identical_profiles_correlate_fully(self):
        profile = Profile(np.arange(1.0, 25.0))
        assert average_pairwise_pearson([profile, profile]) == pytest.approx(1.0)

    def test_needs_two(self):
        with pytest.raises(ProfileError):
            average_pairwise_pearson([uniform_profile()])

    def test_shifted_crowds_correlate_after_alignment(self):
        base = Profile(np.arange(1.0, 25.0) ** 2)
        shifted = base.shifted(5)
        aligned = shifted.shifted(-5)
        assert average_pairwise_pearson([base, aligned]) == pytest.approx(1.0)
