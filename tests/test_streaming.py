"""Streaming geolocation and the convergence experiment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.streaming_experiments import run_convergence_experiment
from repro.core.events import PostEvent
from repro.core.streaming import StreamingGeolocator
from repro.synth.twitter import build_region_crowd


class TestStreamingGeolocator:
    def test_no_verdict_before_evidence(self, references):
        stream = StreamingGeolocator(references)
        stream.observe("u", 1000.0)
        snapshot = stream.snapshot()
        assert not snapshot.has_verdict()
        assert np.isnan(snapshot.dominant_mean())
        assert snapshot.n_events_seen == 1
        assert snapshot.n_users_seen == 1

    def test_matches_batch_pipeline(self, references):
        crowd = build_region_crowd("malaysia", 50, seed=21, n_days=366)
        stream = StreamingGeolocator(references)
        for trace in crowd:
            for timestamp in trace.timestamps:
                stream.observe(trace.user_id, float(timestamp))
        snapshot = stream.snapshot()
        assert snapshot.has_verdict()
        assert abs(snapshot.dominant_mean() - 8.0) <= 1.2

    def test_incremental_profile_equals_batch_profile(self, references):
        from repro.core.profiles import build_user_profile

        crowd = build_region_crowd("japan", 3, seed=5, n_days=200)
        stream = StreamingGeolocator(references, min_posts=1)
        for trace in crowd:
            for timestamp in trace.timestamps:
                stream.observe(trace.user_id, float(timestamp))
        profiles = stream.active_profiles()
        for trace in crowd:
            if trace.user_id in profiles:
                assert profiles[trace.user_id] == build_user_profile(trace)

    def test_observe_events(self, references):
        stream = StreamingGeolocator(references)
        stream.observe_events(
            [PostEvent(100.0, "a"), PostEvent(200.0, "a"), PostEvent(300.0, "b")]
        )
        assert stream.n_events == 3
        assert stream.n_users() == 2

    def test_threshold_gates_activity(self, references):
        stream = StreamingGeolocator(references, min_posts=5)
        for index in range(4):
            stream.observe("u", index * 86400.0 + 20 * 3600.0)
        assert stream.active_profiles() == {}
        stream.observe("u", 4 * 86400.0 + 20 * 3600.0)
        assert "u" in stream.active_profiles()

    def test_flat_users_filtered(self, references, rng):
        stream = StreamingGeolocator(references, min_posts=30)
        # A bot posting at uniformly random hours.
        for index in range(400):
            stream.observe("bot", float(rng.uniform(0, 366 * 86400.0)))
        assert "bot" not in stream.active_profiles()


class TestConvergence:
    def test_verdict_appears_and_stabilises(self, context):
        rows = run_convergence_experiment(
            context, checkpoint_days=(7, 60, 366), scale=0.6
        )
        by_day = {row.day: row for row in rows}
        assert not by_day[7].has_verdict
        assert by_day[366].has_verdict
        assert by_day[366].n_users_active > by_day[60].n_users_active

    def test_events_monotone(self, context):
        rows = run_convergence_experiment(
            context, checkpoint_days=(30, 120, 366), scale=0.4
        )
        counts = [row.n_events for row in rows]
        assert counts == sorted(counts)
