"""Streaming geolocation and the convergence experiment."""

from __future__ import annotations

import numpy as np

from repro.analysis.streaming_experiments import run_convergence_experiment
from repro.core.events import PostEvent
from repro.core.streaming import StreamingGeolocator
from repro.synth.twitter import build_region_crowd


class TestStreamingGeolocator:
    def test_no_verdict_before_evidence(self, references):
        stream = StreamingGeolocator(references)
        stream.observe("u", 1000.0)
        snapshot = stream.snapshot()
        assert not snapshot.has_verdict()
        assert np.isnan(snapshot.dominant_mean())
        assert snapshot.n_events_seen == 1
        assert snapshot.n_users_seen == 1

    def test_matches_batch_pipeline(self, references):
        crowd = build_region_crowd("malaysia", 50, seed=21, n_days=366)
        stream = StreamingGeolocator(references)
        for trace in crowd:
            for timestamp in trace.timestamps:
                stream.observe(trace.user_id, float(timestamp))
        snapshot = stream.snapshot()
        assert snapshot.has_verdict()
        assert abs(snapshot.dominant_mean() - 8.0) <= 1.2

    def test_incremental_profile_equals_batch_profile(self, references):
        from repro.core.profiles import build_user_profile

        crowd = build_region_crowd("japan", 3, seed=5, n_days=200)
        stream = StreamingGeolocator(references, min_posts=1)
        for trace in crowd:
            for timestamp in trace.timestamps:
                stream.observe(trace.user_id, float(timestamp))
        profiles = stream.active_profiles()
        for trace in crowd:
            if trace.user_id in profiles:
                assert profiles[trace.user_id] == build_user_profile(trace)

    def test_observe_events(self, references):
        stream = StreamingGeolocator(references)
        stream.observe_events(
            [PostEvent(100.0, "a"), PostEvent(200.0, "a"), PostEvent(300.0, "b")]
        )
        assert stream.n_events == 3
        assert stream.n_users() == 2

    def test_threshold_gates_activity(self, references):
        stream = StreamingGeolocator(references, min_posts=5)
        for index in range(4):
            stream.observe("u", index * 86400.0 + 20 * 3600.0)
        assert stream.active_profiles() == {}
        stream.observe("u", 4 * 86400.0 + 20 * 3600.0)
        assert "u" in stream.active_profiles()

    def test_flat_users_filtered(self, references, rng):
        stream = StreamingGeolocator(references, min_posts=30)
        # A bot posting at uniformly random hours.
        for index in range(400):
            stream.observe("bot", float(rng.uniform(0, 366 * 86400.0)))
        assert "bot" not in stream.active_profiles()


class TestConvergence:
    def test_verdict_appears_and_stabilises(self, context):
        rows = run_convergence_experiment(
            context, checkpoint_days=(7, 60, 366), scale=0.6
        )
        by_day = {row.day: row for row in rows}
        assert not by_day[7].has_verdict
        assert by_day[366].has_verdict
        assert by_day[366].n_users_active > by_day[60].n_users_active

    def test_events_monotone(self, context):
        rows = run_convergence_experiment(
            context, checkpoint_days=(30, 120, 366), scale=0.4
        )
        counts = [row.n_events for row in rows]
        assert counts == sorted(counts)


class TestIncrementalSnapshots:
    """The dirty-set fast path must be indistinguishable from a cold run."""

    def _mixed_events(self, n_users=60, seed=13):
        rng = np.random.default_rng(seed)
        events = []
        for i in range(n_users):
            zone = int(rng.integers(-11, 13)) if i % 2 else 8
            days = rng.integers(0, 90, size=45)
            hours = rng.normal(14.0 - zone, 2.5, size=45) % 24
            for stamp in days * 86400.0 + hours * 3600.0:
                events.append((f"u{i:03d}", float(stamp)))
        rng.shuffle(events)
        return events

    def _assert_matches_reference(self, stream):
        warm = stream.snapshot()
        cold = stream.snapshot_reference()
        assert warm.n_users_active == cold.n_users_active
        assert warm.placement == cold.placement
        assert (
            np.isnan(warm.dominant_mean())
            and np.isnan(cold.dominant_mean())
        ) or warm.dominant_mean() == cold.dominant_mean()

    def test_snapshot_equals_cold_reference_throughout(self, references):
        events = self._mixed_events()
        stream = StreamingGeolocator(references)
        step = len(events) // 5
        for start in range(0, len(events), step):
            for user_id, stamp in events[start : start + step]:
                stream.observe(user_id, stamp)
            self._assert_matches_reference(stream)

    def test_interleaved_checkpoint_restore_stays_exact(
        self, references, tmp_path
    ):
        events = self._mixed_events(n_users=40, seed=7)
        stream = StreamingGeolocator(references)
        third = len(events) // 3
        for user_id, stamp in events[:third]:
            stream.observe(user_id, stamp)
        self._assert_matches_reference(stream)

        stream.save_checkpoint(tmp_path / "mid.npz")
        stream = StreamingGeolocator.load_checkpoint(
            tmp_path / "mid.npz", references=references
        )
        for user_id, stamp in events[third : 2 * third]:
            stream.observe(user_id, stamp)
        self._assert_matches_reference(stream)

        stream.save_checkpoint(tmp_path / "mid.json")
        stream = StreamingGeolocator.load_checkpoint(
            tmp_path / "mid.json", references=references
        )
        for user_id, stamp in events[2 * third :]:
            stream.observe(user_id, stamp)
        self._assert_matches_reference(stream)
        assert stream.n_events == len(events)

    def test_snapshot_exposes_placement(self, references):
        crowd = build_region_crowd("malaysia", 30, seed=21, n_days=366)
        stream = StreamingGeolocator(references)
        for trace in crowd:
            for timestamp in trace.timestamps:
                stream.observe(trace.user_id, float(timestamp))
        snapshot = stream.snapshot()
        assert snapshot.placement is not None
        assert snapshot.placement.n_users == snapshot.n_users_active
        assert abs(sum(snapshot.placement.fractions) - 1.0) < 1e-9

    def test_dirty_set_tracks_new_cells_only(self, references):
        stream = StreamingGeolocator(references, min_posts=2)
        stream.observe("u", 20 * 3600.0)
        stream.observe("u", 86400.0 + 20 * 3600.0)
        assert stream.n_dirty() == 1
        stream.snapshot()
        assert stream.n_dirty() == 0
        # Same (day, hour) cell again: profile unchanged, nothing dirty.
        stream.observe("u", 86400.0 + 20 * 3600.0 + 120.0)
        assert stream.n_dirty() == 0
        # A fresh cell makes the user dirty again.
        stream.observe("u", 2 * 86400.0 + 9 * 3600.0)
        assert stream.n_dirty() == 1

    def test_idle_snapshot_does_no_replacement_work(self, references):
        crowd = build_region_crowd("japan", 20, seed=3, n_days=366)
        stream = StreamingGeolocator(references)
        for trace in crowd:
            for timestamp in trace.timestamps:
                stream.observe(trace.user_id, float(timestamp))
        first = stream.snapshot()
        assert stream.n_dirty() == 0
        second = stream.snapshot()
        assert second.placement == first.placement
        assert second.dominant_mean() == first.dominant_mean()

    def test_invalidate_all_reproduces_same_answer(self, references):
        crowd = build_region_crowd("brazil", 25, seed=9, n_days=366)
        stream = StreamingGeolocator(references)
        for trace in crowd:
            for timestamp in trace.timestamps:
                stream.observe(trace.user_id, float(timestamp))
        warm = stream.snapshot()
        stream.invalidate_all()
        assert stream.n_dirty() == stream.n_users()
        cold = stream.snapshot()
        assert cold.placement == warm.placement


class TestHeartbeat:
    """The observatory's gauge surface: cheap, deterministic, drift-aware."""

    def _fill(self, stream, n_users=5, n_days=30):
        crowd = build_region_crowd("japan", n_users, seed=3, n_days=n_days)
        for trace in crowd:
            for timestamp in trace.timestamps:
                stream.observe(trace.user_id, float(timestamp))

    def test_counts_and_snapshot_lag(self, references):
        stream = StreamingGeolocator(references)
        self._fill(stream)
        beat = stream.heartbeat()
        assert beat["events_total"] == float(stream.n_events)
        assert beat["users_seen"] == float(stream.n_users())
        assert beat["dirty_users"] == float(stream.n_dirty())
        assert beat["migrations_total"] == 0.0
        # no snapshot or checkpoint yet: everything ingested is lag
        assert beat["snapshot_lag_events"] == beat["events_total"]
        assert beat["checkpoint_lag_events"] == beat["events_total"]
        assert beat["users_placed"] == 0.0  # histogram fills at refresh

        stream.snapshot()
        beat = stream.heartbeat()
        assert beat["snapshot_lag_events"] == 0.0
        assert beat["users_placed"] > 0.0
        stream.observe("late", 20 * 3600.0)
        assert stream.heartbeat()["snapshot_lag_events"] == 1.0

    def test_checkpoint_lag_and_age(self, references, tmp_path):
        clock = {"t": 1000.0}
        stream = StreamingGeolocator(references, wall_clock=lambda: clock["t"])
        self._fill(stream, n_users=3)
        assert "checkpoint_age_s" not in stream.heartbeat()
        stream.save_checkpoint(tmp_path / "c.npz")
        clock["t"] = 1007.0
        beat = stream.heartbeat()
        assert beat["checkpoint_lag_events"] == 0.0
        assert beat["checkpoint_age_s"] == 7.0

    def test_drift_gauges_only_with_drift_enabled(self, references):
        plain = StreamingGeolocator(references)
        self._fill(plain)
        assert "stream_day" not in plain.heartbeat()
        assert "stale_ratio" not in plain.heartbeat()

        from repro.core.drift import DriftConfig

        drifting = StreamingGeolocator(references, drift=DriftConfig())
        self._fill(drifting, n_days=120)
        beat = drifting.heartbeat()
        assert beat["stream_day"] >= 100.0
        assert 0.0 <= beat["stale_ratio"] <= 1.0
        assert 0.0 <= beat["confidence_min"] <= beat["confidence_mean"] <= 1.0

    def test_heartbeat_mutates_nothing(self, references):
        stream = StreamingGeolocator(references)
        self._fill(stream)
        before = stream.heartbeat()
        assert stream.heartbeat() == before
        assert stream.n_dirty() > 0  # no hidden refresh happened
