"""EMD placement of users into zones."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.events import ActivityTrace, TraceSet
from repro.core.placement import (
    PlacementDistribution,
    place_trace_set,
    place_users,
    placement_distribution,
)
from repro.errors import EmptyTraceError
from repro.timebase.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.timebase.zones import ZONE_OFFSETS


class TestPlacementDistribution:
    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            PlacementDistribution((1.0,), n_users=1)

    def test_fraction_at(self):
        fractions = [0.0] * 24
        fractions[ZONE_OFFSETS.index(3)] = 1.0
        placement = PlacementDistribution(tuple(fractions), n_users=10)
        assert placement.fraction_at(3) == 1.0
        assert placement.fraction_at(4) == 0.0

    def test_mode_and_mean(self):
        fractions = [0.0] * 24
        fractions[ZONE_OFFSETS.index(2)] = 0.75
        fractions[ZONE_OFFSETS.index(6)] = 0.25
        placement = PlacementDistribution(tuple(fractions), n_users=4)
        assert placement.mode_offset() == 2
        assert placement.mean_offset() == pytest.approx(3.0)

    def test_counts_round_to_users(self):
        fractions = [0.0] * 24
        fractions[0] = 0.5
        fractions[1] = 0.5
        placement = PlacementDistribution(tuple(fractions), n_users=10)
        assert placement.counts().sum() == 10

    def test_top_zones(self):
        fractions = [0.0] * 24
        fractions[ZONE_OFFSETS.index(1)] = 0.6
        fractions[ZONE_OFFSETS.index(-6)] = 0.4
        placement = PlacementDistribution(tuple(fractions), n_users=10)
        assert placement.top_zones(2) == [(1, 0.6), (-6, 0.4)]


class TestPlaceUsers:
    @pytest.mark.parametrize("offset", [-8, -3, 0, 1, 5, 8, 12])
    def test_noiseless_profile_placed_exactly(self, canonical_references, offset):
        profile = canonical_references.for_zone(offset)
        assignments = place_users({"u": profile}, canonical_references)
        assert assignments == {"u": offset}

    def test_empty_mapping(self, canonical_references):
        assert place_users({}, canonical_references) == {}

    def test_mixed_crowd(self, canonical_references):
        profiles = {
            "east": canonical_references.for_zone(8),
            "west": canonical_references.for_zone(-5),
        }
        assignments = place_users(profiles, canonical_references)
        assert assignments["east"] == 8
        assert assignments["west"] == -5

    def test_circular_metric_supported(self, canonical_references):
        profile = canonical_references.for_zone(11)
        assignments = place_users({"u": profile}, canonical_references, metric="circular")
        assert assignments["u"] == 11


class TestPlacementAggregation:
    def test_empty_rejected(self):
        with pytest.raises(EmptyTraceError):
            placement_distribution([])

    def test_fractions_sum_to_one(self):
        placement = placement_distribution([0, 0, 1, 5])
        assert placement.as_array().sum() == pytest.approx(1.0)
        assert placement.n_users == 4

    def test_out_of_range_offsets_normalised(self):
        placement = placement_distribution([13, -12])
        assert placement.fraction_at(-11) == pytest.approx(0.5)
        assert placement.fraction_at(12) == pytest.approx(0.5)

    @given(st.lists(st.integers(-11, 12), min_size=1, max_size=50))
    def test_counts_match_inputs(self, offsets):
        placement = placement_distribution(offsets)
        for offset in set(offsets):
            expected = offsets.count(offset) / len(offsets)
            assert placement.fraction_at(offset) == pytest.approx(expected)


class TestPlaceTraceSet:
    def test_synthetic_evening_poster(self, canonical_references):
        # A user posting at 21h local in UTC+2 posts at 19h UTC.
        stamps = [
            day * SECONDS_PER_DAY + 19 * SECONDS_PER_HOUR for day in range(60)
        ]
        # Add morning activity at 9h local = 7h UTC for shape.
        stamps += [
            day * SECONDS_PER_DAY + 7 * SECONDS_PER_HOUR for day in range(0, 60, 2)
        ]
        traces = TraceSet([ActivityTrace("u", stamps)])
        placement = place_trace_set(traces, canonical_references)
        assert abs(placement.mode_offset() - 2) <= 1

    def test_skips_empty_traces(self, canonical_references):
        traces = TraceSet([ActivityTrace("empty")])
        with pytest.raises(EmptyTraceError):
            place_trace_set(traces, canonical_references)
