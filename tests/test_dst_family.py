"""EU-rule vs US-rule classification (fine-grained extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dst_family import (
    DstFamily,
    classify_dst_family,
)
from repro.core.events import ActivityTrace
from repro.synth.population import sample_user
from repro.synth.posting import generate_trace


def _resident(region_key, rng, rate=10.0):
    spec = sample_user(
        "u", region_key, rng, posts_per_day_mean=rate, chronotype_std=0.5
    )
    return generate_trace(spec, rng, n_days=366)


class TestClassification:
    def test_eu_residents(self, rng):
        verdicts = [
            classify_dst_family(_resident("germany", rng)).verdict
            for _ in range(8)
        ]
        assert verdicts.count(DstFamily.EU) >= 5

    def test_us_residents(self, rng):
        verdicts = [
            classify_dst_family(_resident("new_york", rng)).verdict
            for _ in range(8)
        ]
        assert verdicts.count(DstFamily.US) >= 5

    def test_empty_trace(self):
        result = classify_dst_family(ActivityTrace("u"))
        assert result.verdict is DstFamily.INSUFFICIENT_DATA

    def test_sparse_trace_insufficient(self, rng):
        result = classify_dst_family(ActivityTrace("u", [0.0, 86400.0]))
        assert result.verdict is DstFamily.INSUFFICIENT_DATA

    def test_no_gap_activity_insufficient(self, rng):
        # A user active only in deep winter/summer gives no gap signal.
        stamps = []
        for day in list(range(0, 60)) + list(range(150, 240)):
            stamps.append(day * 86400.0 + 20 * 3600.0)
        result = classify_dst_family(ActivityTrace("u", stamps))
        assert result.verdict in (
            DstFamily.INSUFFICIENT_DATA,
            DstFamily.UNCLEAR,
        )

    def test_scores_recorded(self, rng):
        result = classify_dst_family(_resident("california", rng))
        assert np.isfinite(result.spring_score)
        assert np.isfinite(result.autumn_score)
        assert result.total_score() == pytest.approx(
            result.spring_score + result.autumn_score
        )

    def test_high_margin_forces_unclear(self, rng):
        result = classify_dst_family(_resident("germany", rng), min_margin=100.0)
        assert result.verdict in (DstFamily.UNCLEAR, DstFamily.INSUFFICIENT_DATA)


class TestPopulationAccuracy:
    @pytest.mark.parametrize(
        "region_key,expected",
        [("united_kingdom", DstFamily.EU), ("illinois", DstFamily.US)],
    )
    def test_majority_accuracy(self, region_key, expected):
        rng = np.random.default_rng(777)
        verdicts = [
            classify_dst_family(_resident(region_key, rng)).verdict
            for _ in range(15)
        ]
        assert verdicts.count(expected) >= 9  # ~60%+ on high-activity users
