"""Flat-profile (bot) detection and iterative polishing."""

from __future__ import annotations


from repro.core.events import TraceSet
from repro.core.flatness import is_flat_profile, polish_trace_set
from repro.core.profiles import build_user_profile, uniform_profile
from repro.synth.bots import generate_bot_trace, generate_shift_worker_trace
from repro.synth.population import sample_population
from repro.synth.posting import generate_crowd


class TestIsFlat:
    def test_uniform_is_flat(self, canonical_references):
        assert is_flat_profile(uniform_profile(), canonical_references)

    def test_generic_is_not_flat(self, canonical_references):
        assert not is_flat_profile(
            canonical_references.generic, canonical_references
        )

    def test_every_zone_reference_is_not_flat(self, canonical_references):
        for reference in canonical_references.as_list():
            assert not is_flat_profile(reference, canonical_references)

    def test_nearly_uniform_is_flat(self, canonical_references):
        nearly = uniform_profile().mixed_with(canonical_references.generic, 0.1)
        assert is_flat_profile(nearly, canonical_references)

    def test_bot_trace_is_flat(self, canonical_references, rng):
        bot = generate_bot_trace("bot", rng, n_days=365, posts_per_day=3.0)
        assert is_flat_profile(build_user_profile(bot), canonical_references)

    def test_shift_worker_is_flat(self, canonical_references, rng):
        worker = generate_shift_worker_trace("worker", rng, n_days=365)
        assert is_flat_profile(build_user_profile(worker), canonical_references)


class TestPolish:
    def _crowd_with_bots(self, rng, n_humans=30, n_bots=5):
        humans = sample_population("france", n_humans, rng)
        crowd = generate_crowd(humans, rng, n_days=200)
        for index in range(n_bots):
            crowd.add(
                generate_bot_trace(f"bot_{index}", rng, n_days=200, posts_per_day=2.0)
            )
        return crowd

    def test_removes_bots_keeps_humans(self, canonical_references, rng):
        crowd = self._crowd_with_bots(rng)
        result = polish_trace_set(crowd, canonical_references, min_posts=30)
        removed = set(result.removed_user_ids)
        assert all(user.startswith("bot_") for user in removed)
        assert len(removed) >= 4  # at least most of the 5 bots

    def test_threshold_applied_first(self, canonical_references, rng):
        crowd = self._crowd_with_bots(rng)
        result = polish_trace_set(crowd, canonical_references, min_posts=10**6)
        assert len(result.polished) == 0

    def test_no_flat_users_is_noop(self, canonical_references, rng):
        humans = sample_population("germany", 10, rng)
        crowd = generate_crowd(humans, rng, n_days=200)
        result = polish_trace_set(crowd, canonical_references, min_posts=30)
        assert result.n_removed == 0
        assert result.iterations == 1

    def test_self_referencing_polish(self, rng):
        # references=None: rebuild references from the crowd each round.
        crowd = self._crowd_with_bots(rng)
        result = polish_trace_set(crowd, None, min_posts=30)
        assert all(user.startswith("bot_") for user in result.removed_user_ids)

    def test_empty_crowd(self, canonical_references):
        result = polish_trace_set(TraceSet(), canonical_references)
        assert len(result.polished) == 0
        assert result.n_removed == 0
