"""Bot and shift-worker trace generators."""

from __future__ import annotations

import numpy as np

from repro.core.profiles import build_user_profile
from repro.synth.bots import generate_bot_trace, generate_shift_worker_trace


class TestBotTraces:
    def test_volume(self, rng):
        bot = generate_bot_trace("b", rng, n_days=200, posts_per_day=2.0)
        assert 250 <= len(bot) <= 550

    def test_profile_is_nearly_uniform(self, rng):
        bot = generate_bot_trace("b", rng, n_days=365, posts_per_day=4.0)
        profile = build_user_profile(bot)
        assert profile.flatness() < 0.15

    def test_window(self, rng):
        bot = generate_bot_trace("b", rng, start_day=100, n_days=10)
        days = np.asarray(bot.timestamps) // 86400
        assert days.min() >= 100 and days.max() < 110


class TestShiftWorkers:
    def test_flatter_than_regular_user(self, rng):
        worker = generate_shift_worker_trace("w", rng, n_days=365)
        profile = build_user_profile(worker)
        # Rotating phases flatten the long-run profile well below a
        # normal user's concentration.
        assert profile.flatness() < 0.35

    def test_respects_activity_probability(self, rng):
        worker = generate_shift_worker_trace(
            "w", rng, n_days=300, active_day_probability=0.1
        )
        heavy = generate_shift_worker_trace(
            "w2", rng, n_days=300, active_day_probability=0.95
        )
        assert len(heavy) > len(worker)

    def test_offset_applied(self, rng):
        worker = generate_shift_worker_trace("w", rng, n_days=50, utc_offset=8)
        assert len(worker) > 0
