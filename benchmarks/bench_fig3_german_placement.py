"""E-F3: Fig. 3 -- EMD placement of the German Twitter crowd.

Paper shape: a Gaussian placement distribution peaked at UTC+1 with
sigma ~ 2.5, decaying in the neighbouring zones.
"""

from __future__ import annotations

from _shared import render_single_country

from repro.analysis.experiments import run_single_country_placement


def test_fig3_german_placement(benchmark, context, artifact_writer):
    result = benchmark.pedantic(
        run_single_country_placement,
        args=("germany", context),
        kwargs={"n_users": 250},
        rounds=1,
        iterations=1,
    )
    artifact_writer("fig3_german_placement", render_single_country(result, "Fig. 3"))
    assert result.center_error() <= 1.0
    assert 0.6 <= result.fit.sigma <= 3.5
    assert abs(result.placement.mode_offset() - 1) <= 1
    # Mass concentrates around the true zone, as in the paper's figure.
    nearby = sum(
        result.placement.fraction_at(offset) for offset in range(-2, 5)
    )
    assert nearby > 0.8
