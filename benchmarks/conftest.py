"""Shared benchmark fixtures.

Benchmarks regenerate every table and figure of the paper at meaningful
scale (forum crowds at the paper's user counts; the Twitter ground-truth
dataset at 4% of Table I, which keeps reference quality while staying
minutes-fast).  Each bench also writes its reproduced artifact into
``benchmarks/results/`` so the rows/series survive output capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.experiments import ExperimentContext, make_context

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    return make_context(seed=2016, scale=0.04, n_days=366)


@pytest.fixture(scope="session")
def artifact_writer():
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return write
