"""E-H: Sec. V-F -- hemisphere classification experiments.

Paper shape: the 5 most active users of the UK, Germany and Italy all
classify northern; the 5 most active Brazilians classify southern
(paper: 20/20); on the Pedo Support Community a good part of the most
active users classify southern.
"""

from __future__ import annotations

from repro.analysis.experiments import (
    run_forum_case_study,
    run_hemisphere_validation,
)
from repro.analysis.report import ascii_table
from repro.core.hemisphere import HemisphereVerdict


def test_hemisphere_country_validation(benchmark, context, artifact_writer):
    validations = benchmark.pedantic(
        run_hemisphere_validation, args=(context,), rounds=1, iterations=1
    )
    rows = [
        (
            validation.region_key,
            validation.expected.value,
            f"{validation.n_correct()}/{len(validation.results)}",
            " ".join(result.verdict.value for result in validation.results),
        )
        for validation in validations
    ]
    artifact_writer(
        "hemisphere_validation",
        ascii_table(
            ["region", "expected", "correct", "verdicts"],
            rows,
            title="Sec. V-F -- hemisphere validation, 5 most active users "
            "(paper: 20/20)",
        ),
    )
    total = sum(len(validation.results) for validation in validations)
    correct = sum(validation.n_correct() for validation in validations)
    assert total == 20
    assert correct >= 15  # paper: 20/20; synthetic noise allows a few misses
    # No user of a northern country may classify southern (or vice versa).
    for validation in validations:
        wrong_pole = (
            HemisphereVerdict.SOUTHERN
            if validation.expected.value == "northern"
            else HemisphereVerdict.NORTHERN
        )
        assert all(result.verdict is not wrong_pole for result in validation.results)


def test_hemisphere_pedo_forum(benchmark, context, artifact_writer):
    study = benchmark.pedantic(
        run_forum_case_study,
        args=("pedo_community", context),
        kwargs={"via_tor": False, "hemisphere_top_n": 5, "seed": 11},
        rounds=1,
        iterations=1,
    )
    verdicts = [result.verdict for result in study.report.hemisphere]
    artifact_writer(
        "hemisphere_pedo",
        "Pedo Support Community, 5 most active users (paper: 3 southern, "
        "2 northern):\n"
        + "\n".join(
            f"  {result.user_id}: {result.verdict.value}"
            for result in study.report.hemisphere
        ),
    )
    assert len(verdicts) == 5
    assert verdicts.count(HemisphereVerdict.SOUTHERN) >= 1
