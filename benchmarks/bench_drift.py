"""Temporal-drift layer: detection quality and lifecycle overhead.

Scores the ROADMAP item 4 acceptance scenario (20% of a crowd relocating
+6 h mid-stream) and times the per-event cost of streaming with the
confidence lifecycle enabled vs disabled.
"""

from __future__ import annotations

from repro.analysis.report import ascii_table
from repro.analysis.streaming_experiments import run_drift_experiment
from repro.core.drift import DriftConfig
from repro.core.streaming import StreamingGeolocator
from repro.synth.drift import build_dst_scenario, build_relocation_scenario


def test_drift_acceptance_scenario(benchmark, artifact_writer):
    report = benchmark.pedantic(
        run_drift_experiment,
        kwargs={"seed": 11},
        rounds=1,
        iterations=1,
    )
    artifact_writer(
        "drift_acceptance",
        ascii_table(
            ["metric", "value"],
            [
                ("scenario", report.kind),
                ("placed movers", report.n_placed_movers),
                ("detected", report.n_detected),
                ("correct new zone", report.n_correct),
                ("detection rate", f"{report.detection_rate:.2f}"),
                ("correct rate", f"{report.correct_rate:.2f}"),
                ("false-positive rate", f"{report.false_positive_rate:.3f}"),
                ("timeline L1 vs oracle", f"{report.timeline_l1:.3f}"),
                ("warm == cold", report.warm_equals_cold),
            ],
            title="Drift acceptance -- 20% of the crowd relocates +6h",
        ),
    )
    assert report.detection_rate >= 0.9
    assert report.correct_rate >= 0.9
    assert report.false_positive_rate < 0.05
    assert report.warm_equals_cold


def test_drift_dst_negative_control(benchmark):
    report = benchmark.pedantic(
        run_drift_experiment,
        args=(build_dst_scenario(n_users=50, n_days=240, seed=5),),
        rounds=1,
        iterations=1,
    )
    assert report.n_detected <= max(2, report.n_placed_movers // 10)


def test_drift_lifecycle_event_cost(benchmark):
    """Per-event overhead of the enabled lifecycle on a drifting crowd."""
    scenario = build_relocation_scenario(n_users=60, n_days=240, seed=7)
    events = scenario.sorted_events()

    def stream():
        engine = StreamingGeolocator(drift=DriftConfig())
        for timestamp, user_id in events:
            engine.observe(user_id, timestamp)
        return engine.snapshot()

    snapshot = benchmark(stream)
    assert snapshot.n_events_seen == len(events)
