"""Out-of-core scale bench: the ISSUE's 100k/1M-user acceptance numbers.

Times the three tentpole layers end to end on a synthetic crowd of
``--users`` users (default 100k; pass ``--users 1000000`` for the
million-user run):

* **store**   -- compiling the crowd into the columnar
  :class:`~repro.datasets.store.TraceStore` and loading it back into a
  :class:`~repro.core.batch.ProfileMatrix`, against the JSONL
  parse + per-trace path it replaces (skipped above 200k users, where
  the JSONL baseline alone would dominate the bench),
* **build**   -- the shared-memory parallel Eq. 1 kernel against the
  pickle fan-out baseline,
* **snapshot / checkpoint** -- a cold full re-place of the streaming
  geolocator against a warm snapshot after 1 000 fresh events, plus the
  binary ``.npz`` checkpoint round-trip.

Results are merged into ``BENCH_core.json`` under the ``"scale"`` key
(the ``full``/``smoke`` sections written by :mod:`perf_baseline` are
preserved)::

    PYTHONPATH=src python benchmarks/bench_scale.py
    PYTHONPATH=src python benchmarks/bench_scale.py --users 1000000
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from perf_baseline import BENCH_PATH

from repro.core.batch import (
    ProfileMatrix,
    counts_parallel_pickle,
    counts_parallel_shm,
)
from repro.core.events import ActivityTrace, TraceSet
from repro.core.reference import parametric_generic_profile
from repro.core.streaming import StreamingGeolocator
from repro.datasets.store import TraceStore
from repro.datasets.traces import load_trace_set, save_trace_set

#: Above this crowd size the JSONL baseline is skipped (it alone would
#: run for minutes and gigabytes); the store numbers are still recorded.
MAX_JSONL_USERS = 200_000

#: Fresh events streamed before each warm snapshot (the ISSUE's "after
#: 1k new events" criterion).
WARM_EVENTS = 1_000


def synthetic_columns(
    n_users: int, posts_per_user: int, *, seed: int = 11, n_days: int = 45
) -> tuple[list[str], np.ndarray, np.ndarray]:
    """A diurnal crowd generated straight into columnar form.

    Same statistical shape as :func:`_shared.synthetic_crowd` (canonical
    diurnal curve, one random zone per user) but built as one flat
    timestamp column + per-user lengths with zero per-user Python loops,
    so the million-user run spends its time in the code under test, not
    in the generator.
    """
    rng = np.random.default_rng(seed)
    weights = parametric_generic_profile().mass
    n_posts = n_users * posts_per_user
    zones = rng.integers(-11, 13, size=n_users)
    days = rng.integers(0, n_days, size=n_posts)
    local_hours = rng.choice(24, size=n_posts, p=weights)
    stamps = (
        days * 86400.0
        + (local_hours - np.repeat(zones, posts_per_user)) * 3600.0
        + rng.uniform(0.0, 3600.0, size=n_posts)
    )
    stamps = np.abs(stamps)
    # Sort within each user's segment (store layout expects sorted traces).
    stamps = np.sort(stamps.reshape(n_users, posts_per_user), axis=1).ravel()
    user_ids = [f"user_{index:07d}" for index in range(n_users)]
    lengths = np.full(n_users, posts_per_user, dtype=np.int64)
    return user_ids, stamps, lengths


def _traces(user_ids, stamps, lengths):
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    for i, user_id in enumerate(user_ids):
        yield ActivityTrace(user_id, stamps[offsets[i] : offsets[i + 1]])


def _binary_columns(user_ids, stamps, lengths, *, min_posts: int):
    """The streaming geolocator's checkpoint columns, built vectorised.

    Encodes every post's (day, hour) cell, de-duplicates per user, and
    packs the result in the exact layout of
    :meth:`StreamingGeolocator.binary_state` -- the bench restores from
    this instead of replaying millions of ``observe`` calls one by one.
    """
    n_users = len(user_ids)
    owners = np.repeat(np.arange(n_users, dtype=np.int64), lengths)
    cells = (stamps // 86400.0).astype(np.int64) * 24 + (
        (stamps % 86400.0) // 3600.0
    ).astype(np.int64)
    span = int(cells.max()) - int(cells.min()) + 1
    base = int(cells.min())
    unique = np.unique(owners * span + (cells - base))
    unique_owner = unique // span
    unique_cells = unique % span + base
    counts = np.bincount(unique_owner, minlength=n_users)
    offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    meta = {
        "config": {
            "metric": "linear",
            "min_posts": min_posts,
            "sigma_init": 2.5,
            "max_components": 4,
            "min_users_for_verdict": 10,
        },
        "n_events": int(stamps.size),
    }
    arrays = {
        "user_ids": np.asarray(user_ids, dtype=np.str_),
        "n_posts": np.asarray(lengths, dtype=np.int64),
        "cell_offsets": offsets,
        "cells": unique_cells.astype(np.int64),
        "generic_profile": np.asarray(
            parametric_generic_profile().mass, dtype=np.float64
        ),
    }
    return meta, arrays


def _time(func, *, repeat: int = 1) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def run(n_users: int, posts_per_user: int) -> dict:
    results: dict = {"n_users": n_users, "posts_per_user": posts_per_user}
    print(f"generating {n_users} users x {posts_per_user} posts ...")
    user_ids, stamps, lengths = synthetic_columns(n_users, posts_per_user)

    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "crowd.store"

        start = time.perf_counter()
        store = TraceStore.write(_traces(user_ids, stamps, lengths), store_path)
        results["store_convert_s"] = round(time.perf_counter() - start, 4)
        del store

        def load_store():
            opened = TraceStore.open(store_path)
            return ProfileMatrix.from_store(opened, min_posts=30)

        results["store_load_s"] = round(_time(load_store, repeat=3), 4)

        if n_users <= MAX_JSONL_USERS:
            jsonl_path = Path(tmp) / "crowd.jsonl"
            save_trace_set(
                TraceSet(_traces(user_ids, stamps, lengths)), jsonl_path
            )

            def load_jsonl():
                crowd = load_trace_set(jsonl_path)
                return ProfileMatrix.from_trace_set(crowd.with_min_posts(30))

            results["jsonl_load_s"] = round(_time(load_jsonl), 4)
            results["load_speedup"] = round(
                results["jsonl_load_s"] / results["store_load_s"], 2
            )
        else:
            print(f"  (skipping JSONL baseline above {MAX_JSONL_USERS} users)")

        # -- layer 2: shared-memory kernel vs pickle fan-out ---------------
        results["build_pickle_s"] = round(
            _time(lambda: counts_parallel_pickle(stamps, lengths), repeat=2), 4
        )
        results["build_shm_s"] = round(
            _time(lambda: counts_parallel_shm(stamps, lengths), repeat=2), 4
        )
        results["build_speedup"] = round(
            results["build_pickle_s"] / results["build_shm_s"], 2
        )

        # -- layer 3: incremental snapshots + binary checkpoints -----------
        meta, arrays = _binary_columns(user_ids, stamps, lengths, min_posts=30)
        geo = StreamingGeolocator.from_binary_state(meta, arrays)

        def cold_snapshot():
            geo.invalidate_all()
            return geo.snapshot()

        results["snapshot_cold_s"] = round(_time(cold_snapshot, repeat=2), 4)

        warm_best = float("inf")
        clock = [int(stamps.max()) + 1]
        for _ in range(3):
            for k in range(WARM_EVENTS):
                geo.observe(user_ids[k % n_users], float(clock[0]))
                clock[0] += 7_200  # every event lands in a fresh cell
            warm_best = min(warm_best, _time(geo.snapshot))
        results["snapshot_warm_s"] = round(warm_best, 4)
        results["snapshot_speedup"] = round(
            results["snapshot_cold_s"] / results["snapshot_warm_s"], 2
        )

        ckpt = Path(tmp) / "crowd.ckpt.npz"
        results["checkpoint_save_s"] = round(
            _time(lambda: geo.save_checkpoint(ckpt), repeat=2), 4
        )
        results["checkpoint_load_s"] = round(
            _time(lambda: StreamingGeolocator.load_checkpoint(ckpt), repeat=2), 4
        )

    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--users", type=int, default=100_000)
    parser.add_argument("--posts", type=int, default=35)
    args = parser.parse_args(argv)

    results = run(args.users, args.posts)
    for name, value in results.items():
        print(f"  {name:20s} {value}")

    payload = (
        json.loads(BENCH_PATH.read_text(encoding="utf-8"))
        if BENCH_PATH.exists()
        else {}
    )
    payload.setdefault("scale", {})[str(args.users)] = results
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"merged into {BENCH_PATH} under scale.{args.users}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
