"""Out-of-core scale bench: the sharded engine's million-user numbers.

Times the sharded crowd engine end to end on a synthetic crowd of
``--users`` users (default 100k; pass ``--users 1000000`` for the
million-user run):

* **store**   -- streaming the crowd into the columnar
  :class:`~repro.datasets.store.TraceStore` chunk by chunk
  (:meth:`TraceStore.write_columns`, so the full stamp column never
  lives in memory) and loading it back into a
  :class:`~repro.core.batch.ProfileMatrix`; below
  :data:`MAX_INMEMORY_USERS` also against the JSONL parse + per-trace
  path it replaces,
* **sharded** -- ``geolocate_store_sharded`` across a worker sweep
  (1..cpu_count processes), against the unsharded
  ``geolocate_store`` oracle, with the verdict equality asserted,
* **kernel**  -- the segmented Eq. 1 counts backends (numpy vs numba,
  when numba is installed) on one chunk of the crowd,
* **build / snapshot / checkpoint** (below :data:`MAX_INMEMORY_USERS`)
  -- the shared-memory parallel Eq. 1 kernel against the pickle
  fan-out, and the streaming geolocator's warm-snapshot + checkpoint
  layers from the previous scale PR.

Results are merged into ``BENCH_core.json`` under the ``"scale"`` key
(the ``full``/``smoke`` sections written by :mod:`perf_baseline` are
preserved)::

    PYTHONPATH=src python benchmarks/bench_scale.py
    PYTHONPATH=src python benchmarks/bench_scale.py --users 1000000 --workers 1 2 4
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from perf_baseline import BENCH_PATH

from repro.core.batch import (
    ProfileMatrix,
    counts_parallel_pickle,
    counts_parallel_shm,
)
from repro.core.events import ActivityTrace, TraceSet
from repro.core.geolocate import CrowdGeolocator
from repro.core.kernels import (
    HAVE_NUMBA,
    kernel_backend,
    segment_counts_numpy,
)
from repro.core.reference import parametric_generic_profile
from repro.core.streaming import StreamingGeolocator
from repro.datasets.store import TraceStore
from repro.datasets.traces import load_trace_set, save_trace_set

#: Above this crowd size the in-memory comparison layers (JSONL baseline,
#: shm-vs-pickle build, streaming snapshots) are skipped -- they exist to
#: compare against superseded paths and would dominate the bench; the
#: streamed store write and the sharded engine are what scale.
MAX_INMEMORY_USERS = 200_000

#: Users generated per synthesis chunk; peak generator memory is one
#: chunk's stamps regardless of the crowd size.
CHUNK_USERS = 100_000

#: Fresh events streamed before each warm snapshot.
WARM_EVENTS = 1_000

#: Shards used for the sharded-engine sweep (fixed so worker counts are
#: compared on identical work units).
SWEEP_SHARDS = 8


def synthetic_chunks(
    n_users: int,
    posts_per_user: int,
    *,
    seed: int = 11,
    n_days: int = 45,
    chunk_users: int = CHUNK_USERS,
):
    """A diurnal crowd generated straight into columnar chunks.

    Yields ``(user_ids, lengths, stamps)`` blocks of at most
    *chunk_users* users -- the exact shape
    :meth:`TraceStore.write_columns` consumes -- with one spawned
    ``SeedSequence`` per chunk, so the crowd is deterministic for a given
    *seed* no matter how it is chunked.  Same statistical shape as the
    previous in-memory generator: canonical diurnal curve, one random
    zone per user.
    """
    weights = parametric_generic_profile().mass
    n_chunks = (n_users + chunk_users - 1) // chunk_users
    seeds = np.random.SeedSequence(seed).spawn(n_chunks)
    for chunk in range(n_chunks):
        lo = chunk * chunk_users
        hi = min(lo + chunk_users, n_users)
        block = hi - lo
        rng = np.random.default_rng(seeds[chunk])
        n_posts = block * posts_per_user
        zones = rng.integers(-11, 13, size=block)
        days = rng.integers(0, n_days, size=n_posts)
        local_hours = rng.choice(24, size=n_posts, p=weights)
        stamps = (
            days * 86400.0
            + (local_hours - np.repeat(zones, posts_per_user)) * 3600.0
            + rng.uniform(0.0, 3600.0, size=n_posts)
        )
        stamps = np.abs(stamps)
        # Sort within each user's segment (store layout expects sorted traces).
        stamps = np.sort(stamps.reshape(block, posts_per_user), axis=1).ravel()
        user_ids = [f"user_{index:07d}" for index in range(lo, hi)]
        lengths = np.full(block, posts_per_user, dtype=np.int64)
        yield user_ids, lengths, stamps


def synthetic_columns(
    n_users: int, posts_per_user: int, *, seed: int = 11, n_days: int = 45
) -> tuple[list[str], np.ndarray, np.ndarray]:
    """The chunked generator materialised (for the in-memory layers)."""
    ids: list[str] = []
    length_parts: list[np.ndarray] = []
    stamp_parts: list[np.ndarray] = []
    for chunk_ids, lengths, stamps in synthetic_chunks(
        n_users, posts_per_user, seed=seed, n_days=n_days
    ):
        ids.extend(chunk_ids)
        length_parts.append(lengths)
        stamp_parts.append(stamps)
    return ids, np.concatenate(stamp_parts), np.concatenate(length_parts)


def _traces(user_ids, stamps, lengths):
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    for i, user_id in enumerate(user_ids):
        yield ActivityTrace(user_id, stamps[offsets[i] : offsets[i + 1]])


def _binary_columns(user_ids, stamps, lengths, *, min_posts: int):
    """The streaming geolocator's checkpoint columns, built vectorised.

    Encodes every post's (day, hour) cell, de-duplicates per user, and
    packs the result in the exact layout of
    :meth:`StreamingGeolocator.binary_state` -- the bench restores from
    this instead of replaying millions of ``observe`` calls one by one.
    """
    n_users = len(user_ids)
    owners = np.repeat(np.arange(n_users, dtype=np.int64), lengths)
    cells = (stamps // 86400.0).astype(np.int64) * 24 + (
        (stamps % 86400.0) // 3600.0
    ).astype(np.int64)
    span = int(cells.max()) - int(cells.min()) + 1
    base = int(cells.min())
    unique = np.unique(owners * span + (cells - base))
    unique_owner = unique // span
    unique_cells = unique % span + base
    counts = np.bincount(unique_owner, minlength=n_users)
    offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    meta = {
        "config": {
            "metric": "linear",
            "min_posts": min_posts,
            "sigma_init": 2.5,
            "max_components": 4,
            "min_users_for_verdict": 10,
        },
        "n_events": int(stamps.size),
    }
    arrays = {
        "user_ids": np.asarray(user_ids, dtype=np.str_),
        "n_posts": np.asarray(lengths, dtype=np.int64),
        "cell_offsets": offsets,
        "cells": unique_cells.astype(np.int64),
        "generic_profile": np.asarray(
            parametric_generic_profile().mass, dtype=np.float64
        ),
    }
    return meta, arrays


def _time(func, *, repeat: int = 1) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_sharded(store: TraceStore, workers_sweep: list[int]) -> dict:
    """Sharded engine vs the unsharded oracle, across a worker sweep."""
    locator = CrowdGeolocator()
    sharded: dict = {"n_shards": SWEEP_SHARDS, "workers": {}}

    start = time.perf_counter()
    oracle = locator.geolocate_store(store, crowd_name="scale")
    sharded["oracle_store_s"] = round(time.perf_counter() - start, 4)

    for workers in workers_sweep:
        start = time.perf_counter()
        report = locator.geolocate_store_sharded(
            store,
            crowd_name="scale",
            n_shards=SWEEP_SHARDS,
            max_workers=workers,
        )
        sharded["workers"][str(workers)] = round(
            time.perf_counter() - start, 4
        )
        if (
            report.placement.fractions != oracle.placement.fractions
            or report.user_zones != oracle.user_zones
        ):
            raise AssertionError(
                f"sharded verdict diverged from the oracle at "
                f"{workers} workers"
            )
    sharded["matches_oracle"] = True
    single = sharded["workers"][str(workers_sweep[0])]
    best = min(sharded["workers"].values())
    sharded["multiworker_speedup"] = round(single / best, 2)
    return sharded


def _bench_kernels(n_users: int, posts_per_user: int) -> dict:
    """Segmented Eq. 1 counts: numpy pass vs the numba JIT (if present)."""
    sample_users = min(n_users, CHUNK_USERS)
    _, lengths, stamps = next(
        iter(synthetic_chunks(sample_users, posts_per_user))
    )
    kernel: dict = {
        "backend_default": kernel_backend(),
        "sample_users": sample_users,
        "numpy_s": round(
            _time(lambda: segment_counts_numpy(stamps, lengths, 0.0), repeat=3),
            4,
        ),
    }
    if HAVE_NUMBA:
        from repro.core.kernels import segment_counts_numba

        segment_counts_numba(stamps[:100], lengths[:1], 0.0)  # JIT warm-up
        kernel["numba_s"] = round(
            _time(lambda: segment_counts_numba(stamps, lengths, 0.0), repeat=3),
            4,
        )
        kernel["numba_speedup"] = round(
            kernel["numpy_s"] / kernel["numba_s"], 2
        )
    return kernel


def run(
    n_users: int, posts_per_user: int, workers_sweep: list[int] | None = None
) -> dict:
    if workers_sweep is None:
        cores = os.cpu_count() or 1
        workers_sweep = sorted({1, min(2, cores), min(4, cores), cores})
    results: dict = {
        "n_users": n_users,
        "posts_per_user": posts_per_user,
        "cpu_count": os.cpu_count() or 1,
    }
    print(
        f"streaming {n_users} users x {posts_per_user} posts "
        f"({(n_users + CHUNK_USERS - 1) // CHUNK_USERS} chunks) ..."
    )

    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "crowd.store"

        start = time.perf_counter()
        store = TraceStore.write_columns(
            synthetic_chunks(n_users, posts_per_user), store_path
        )
        results["store_convert_s"] = round(time.perf_counter() - start, 4)

        def load_store():
            opened = TraceStore.open(store_path)
            return ProfileMatrix.from_store(opened, min_posts=30)

        results["store_load_s"] = round(_time(load_store, repeat=2), 4)

        print(f"sharded sweep over workers {workers_sweep} ...")
        results["sharded"] = _bench_sharded(store, workers_sweep)
        results["kernel"] = _bench_kernels(n_users, posts_per_user)

        if n_users > MAX_INMEMORY_USERS:
            print(
                f"  (skipping JSONL/build/snapshot comparison layers above "
                f"{MAX_INMEMORY_USERS} users)"
            )
            return results

        # -- superseded-path comparison layers (small crowds only) ---------
        user_ids, stamps, lengths = synthetic_columns(n_users, posts_per_user)

        jsonl_path = Path(tmp) / "crowd.jsonl"
        save_trace_set(TraceSet(_traces(user_ids, stamps, lengths)), jsonl_path)

        def load_jsonl():
            crowd = load_trace_set(jsonl_path)
            return ProfileMatrix.from_trace_set(crowd.with_min_posts(30))

        results["jsonl_load_s"] = round(_time(load_jsonl), 4)
        results["load_speedup"] = round(
            results["jsonl_load_s"] / results["store_load_s"], 2
        )

        results["build_pickle_s"] = round(
            _time(lambda: counts_parallel_pickle(stamps, lengths), repeat=2), 4
        )
        results["build_shm_s"] = round(
            _time(lambda: counts_parallel_shm(stamps, lengths), repeat=2), 4
        )
        results["build_speedup"] = round(
            results["build_pickle_s"] / results["build_shm_s"], 2
        )

        meta, arrays = _binary_columns(user_ids, stamps, lengths, min_posts=30)
        geo = StreamingGeolocator.from_binary_state(meta, arrays)

        def cold_snapshot():
            geo.invalidate_all()
            return geo.snapshot()

        results["snapshot_cold_s"] = round(_time(cold_snapshot, repeat=2), 4)

        warm_best = float("inf")
        clock = [int(stamps.max()) + 1]
        for _ in range(3):
            for k in range(WARM_EVENTS):
                geo.observe(user_ids[k % n_users], float(clock[0]))
                clock[0] += 7_200  # every event lands in a fresh cell
            warm_best = min(warm_best, _time(geo.snapshot))
        results["snapshot_warm_s"] = round(warm_best, 4)
        results["snapshot_speedup"] = round(
            results["snapshot_cold_s"] / results["snapshot_warm_s"], 2
        )

        ckpt = Path(tmp) / "crowd.ckpt.npz"
        results["checkpoint_save_s"] = round(
            _time(lambda: geo.save_checkpoint(ckpt), repeat=2), 4
        )
        results["checkpoint_load_s"] = round(
            _time(lambda: StreamingGeolocator.load_checkpoint(ckpt), repeat=2), 4
        )

    return results


def merge_into_bench(results: dict, n_users: int) -> None:
    payload = (
        json.loads(BENCH_PATH.read_text(encoding="utf-8"))
        if BENCH_PATH.exists()
        else {}
    )
    payload.setdefault("scale", {})[str(n_users)] = results
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"merged into {BENCH_PATH} under scale.{n_users}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--users", type=int, default=100_000)
    parser.add_argument("--posts", type=int, default=35)
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=None,
        help="worker counts for the sharded sweep (default: 1..cpu_count)",
    )
    args = parser.parse_args(argv)

    results = run(args.users, args.posts, args.workers)
    for name, value in results.items():
        print(f"  {name:20s} {value}")
    merge_into_bench(results, args.users)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
