"""CI obs smoke: the instrumented CLI must emit valid observability artifacts.

Generates a small synthetic crowd, compiles it into a columnar store, runs
``darkcrowd geolocate --store`` through :func:`repro.cli.main` with
``--metrics-out`` / ``--trace-out``, and validates the JSON schemas of the
three artifacts the run writes:

* the metrics document (``kind: repro-metrics``) must carry the expected
  core counter set;
* the Chrome trace must contain complete events for the pipeline stages
  the ISSUE names: ``store_load``, ``profile_build``, ``polish`` and
  ``placement``;
* the run manifest (``kind: repro-run-manifest``) must round-trip through
  :meth:`RunManifest.load` with a consistent fingerprint and a dataset
  fingerprint matching the store directory on disk.

It then replays a synthetic relocation scenario through ``darkcrowd
replay --drift-window`` with the health observatory attached
(``--series-out`` / ``--health-out`` / ``--profile-out``) and validates
the three observatory artifacts:

* the series document (``kind: repro-series``) must carry the engine
  heartbeat series and their derived rates;
* the health log (``kind: repro-health``) must record the migration-rate
  SLO tripping on the relocation burst and recovering afterwards;
* the profile (``kind: repro-profile``) must be schema-valid, and
  ``darkcrowd dashboard`` must render all three into one self-contained
  HTML page (written to ``$OBS_SMOKE_DASHBOARD_OUT`` when set, so CI can
  upload it).

It also asserts the observability run is numerically inert: the report
computed with everything enabled equals one computed with the no-op
defaults.  Exits non-zero on any violation, so CI can gate on it::

    PYTHONPATH=src python benchmarks/obs_smoke.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _shared import synthetic_crowd
from repro.cli import main as cli_main
from repro.core.geolocate import CrowdGeolocator
from repro.datasets.store import TraceStore
from repro.datasets.traces import save_trace_set
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.obs.manifest import RunManifest, fingerprint_dataset

#: Crowd size: big enough to exercise polish/placement, small enough for CI.
N_USERS = 300

#: Counters every store-pipeline geolocation run must produce.
REQUIRED_COUNTERS = {
    "repro_batch_builds_total",
    "repro_core_em_runs_total",
    "repro_core_geolocate_runs_total",
    "repro_core_users_placed_total",
    "repro_datasets_store_opens_total",
    "repro_datasets_store_shards_total",
}

#: Span names the ISSUE's acceptance criterion requires in the trace.
REQUIRED_SPANS = {"store_load", "profile_build", "polish", "placement"}

_failures: list[str] = []


def check(condition: bool, message: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  {message:60s} {status}")
    if not condition:
        _failures.append(message)


def validate_metrics(path: Path) -> None:
    payload = json.loads(path.read_text(encoding="utf-8"))
    check(payload.get("kind") == "repro-metrics", "metrics kind is repro-metrics")
    metrics = payload.get("metrics") or {}
    check(
        set(metrics) == {"counters", "gauges", "histograms"},
        "metrics document has counters/gauges/histograms sections",
    )
    names = {entry["name"] for entry in metrics.get("counters", [])}
    missing = REQUIRED_COUNTERS - names
    check(not missing, f"required counters present (missing: {sorted(missing)})")
    check(
        all(
            set(entry) == {"name", "labels", "value"}
            for entry in metrics.get("counters", []) + metrics.get("gauges", [])
        ),
        "counter/gauge entries have name+labels+value",
    )
    check(
        all(
            {"name", "labels", "buckets", "counts", "sum", "count"} <= set(entry)
            and len(entry["counts"]) == len(entry["buckets"]) + 1
            for entry in metrics.get("histograms", [])
        ),
        "histogram entries have buckets plus a +Inf count slot",
    )


def validate_trace(path: Path) -> None:
    payload = json.loads(path.read_text(encoding="utf-8"))
    events = payload.get("traceEvents")
    check(isinstance(events, list) and events, "trace has a traceEvents list")
    check(
        all(
            event.get("ph") == "X"
            and isinstance(event.get("ts"), (int, float))
            and isinstance(event.get("dur"), (int, float))
            for event in events or []
        ),
        "every event is a complete (ph=X) event with ts/dur",
    )
    names = {event["name"] for event in events or []}
    missing = REQUIRED_SPANS - names
    check(not missing, f"required spans present (missing: {sorted(missing)})")


def validate_manifest(path: Path, store_path: Path) -> None:
    manifest = RunManifest.load(path)  # raises on kind/fingerprint mismatch
    check(manifest.command == "geolocate", "manifest records the command")
    check(bool(manifest.versions.get("repro")), "manifest records versions")
    check(bool(manifest.spans), "manifest embeds a span summary")
    check(
        bool(
            manifest.metrics.get("counters") or manifest.metrics.get("histograms")
        ),
        "manifest embeds a metrics snapshot",
    )
    expected = fingerprint_dataset(store_path)
    check(
        manifest.dataset is not None
        and manifest.dataset["sha256"] == expected["sha256"],
        "manifest dataset fingerprint matches the store on disk",
    )


#: Series every observatory replay must sample (heartbeat + derived rate).
REQUIRED_SERIES = {
    "stream_events_total",
    "stream_events_total_rate",
    "stream_users_seen",
    "stream_migrations_total",
    "stream_migrations_total_rate",
    "stream_stale_ratio",
}


def validate_series(path: Path) -> None:
    from repro.obs.timeseries import load_series_jsonl

    frame = load_series_jsonl(path)  # raises on a bad header kind
    check(len(frame) >= 10, f"series has enough samples ({len(frame)})")
    check(frame.interval_s > 0, "series header records the interval")
    missing = REQUIRED_SERIES - set(frame.names())
    check(not missing, f"required series present (missing: {sorted(missing)})")
    times, values = frame.series("stream_events_total")
    check(
        list(times) == sorted(times) and list(values) == sorted(values),
        "event counter series is monotone in stream time",
    )


def validate_health(path: Path) -> None:
    from repro.obs.health import OK, load_health_jsonl

    header, events = load_health_jsonl(path)
    check(
        "migration_rate_spike" in header.get("rules", {}),
        "health header describes the migration-rate rule",
    )
    spike = [e for e in events if e.rule == "migration_rate_spike"]
    tripped = [e for e in spike if e.old_state == OK]
    recovered = [e for e in spike if e.new_state == OK]
    check(
        bool(tripped),
        "migration-rate SLO trips on the relocation burst",
    )
    check(
        bool(recovered),
        "migration-rate SLO recovers once the burst rolls out",
    )


def validate_profile(path: Path) -> None:
    from repro.obs.profiler import load_profile

    payload = load_profile(path)  # raises on a bad kind
    check(payload["n_samples"] >= 0, "profile records its sample count")
    check(
        all(
            {"frame", "self_samples", "total_samples", "self_fraction"}
            <= set(entry)
            for entry in payload.get("hotspots", [])
        ),
        "profile hotspot entries are schema-valid",
    )
    check(
        all(
            isinstance(stack, str) and isinstance(count, int)
            for stack, count in payload.get("collapsed", {}).items()
        ),
        "profile collapsed stacks map str -> int",
    )


def observatory_replay(work: Path) -> None:
    """Replay a relocation scenario with the observatory attached."""
    from repro.synth.drift import build_relocation_scenario

    scenario = build_relocation_scenario(n_users=100, seed=0, start_day=1)
    drift_jsonl = work / "drift.jsonl"
    save_trace_set(scenario.traces, drift_jsonl)

    series_out = work / "series.jsonl"
    health_out = work / "health.jsonl"
    profile_out = work / "run.profile.json"
    code = cli_main(
        [
            "--scale",
            "0.02",
            "replay",
            str(drift_jsonl),
            "--drift-window",
            "30",
            "--batch-size",
            "256",
            "--series-out",
            str(series_out),
            "--health-out",
            str(health_out),
            "--profile-out",
            str(profile_out),
        ]
    )
    check(code == 0, "observatory replay exits 0")
    for artifact in (series_out, health_out, profile_out):
        check(artifact.exists(), f"{artifact.name} written")
    if _failures:
        return
    validate_series(series_out)
    validate_health(health_out)
    validate_profile(profile_out)

    dashboard_out = Path(
        os.environ.get("OBS_SMOKE_DASHBOARD_OUT", work / "dashboard.html")
    )
    dashboard_out.parent.mkdir(parents=True, exist_ok=True)
    code = cli_main(
        [
            "dashboard",
            "--series",
            str(series_out),
            "--health",
            str(health_out),
            "--profile",
            str(profile_out),
            "--out",
            str(dashboard_out),
        ]
    )
    check(code == 0, "dashboard render exits 0")
    html = dashboard_out.read_text(encoding="utf-8")
    check(html.lstrip().startswith("<!DOCTYPE html>"), "dashboard is HTML")
    check(
        "src=" not in html and "href=" not in html,
        "dashboard is self-contained (no external fetches)",
    )


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        work = Path(tmp)
        crowd = synthetic_crowd(N_USERS, seed=11)
        jsonl = work / "crowd.jsonl"
        save_trace_set(crowd, jsonl)
        store_path = work / "crowd.store"
        store = TraceStore.write(crowd, store_path)

        metrics_out = work / "metrics.json"
        trace_out = work / "trace.json"
        code = cli_main(
            [
                "geolocate",
                str(store_path),
                "--store",
                "--metrics-out",
                str(metrics_out),
                "--trace-out",
                str(trace_out),
            ]
        )
        check(code == 0, "instrumented CLI run exits 0")
        manifest_out = Path(str(metrics_out) + ".manifest.json")
        for artifact in (metrics_out, trace_out, manifest_out):
            check(artifact.exists(), f"{artifact.name} written")
        if _failures:
            print(f"obs_smoke: {len(_failures)} failure(s)", file=sys.stderr)
            return 1

        validate_metrics(metrics_out)
        validate_trace(trace_out)
        validate_manifest(manifest_out, store_path)

        observatory_replay(work)

        # Observability must be numerically inert: the instrumented run's
        # verdict equals a run under the no-op defaults, bit for bit.
        locator = CrowdGeolocator()
        plain = locator.geolocate_store(store)
        with obs_metrics.use_registry(obs_metrics.MetricsRegistry()):
            with obs_tracing.use_tracer(obs_tracing.Tracer()):
                instrumented = locator.geolocate_store(store)
        check(
            plain.user_zones == instrumented.user_zones
            and list(plain.placement.fractions)
            == list(instrumented.placement.fractions)
            and plain.zone_offsets() == instrumented.zone_offsets(),
            "obs-enabled run is bit-identical to obs-disabled run",
        )

    if _failures:
        print(f"obs_smoke: {len(_failures)} failure(s)", file=sys.stderr)
        return 1
    print("obs_smoke: all observability artifacts valid")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
