"""E-F6a/E-F6b: Fig. 6 -- Gaussian-mixture decomposition of synthetic
multi-region crowds.

Paper shape: the GMM recovers both the number of regions (3) and the
component centres (UTC/UTC-7/UTC+9 for the relocated Malaysians; the
Illinois/Germany/Malaysia home zones for the merged crowd).
"""

from __future__ import annotations

from _shared import render_placement

from repro.analysis.experiments import run_fig6_mixture


def _render(result):
    components = "; ".join(
        f"mean {component.mean:+.2f} weight {component.weight:.2f}"
        for component in result.mixture.components
    )
    return "\n".join(
        [
            render_placement(result.placement, result.label),
            f"expected zones: {sorted(result.expected_offsets)}",
            f"recovered components ({result.mixture.k}): {components}",
            f"max centre error: {result.max_center_error():.2f} zones",
            f"fit distance avg {result.fit_metrics.average:.4f} "
            f"std {result.fit_metrics.standard_deviation:.4f}",
        ]
    )


def test_fig6a_relocated_malaysians(benchmark, context, artifact_writer):
    result = benchmark.pedantic(
        run_fig6_mixture,
        args=("relocated", context),
        kwargs={"users_per_component": 120},
        rounds=1,
        iterations=1,
    )
    artifact_writer("fig6a_relocated", _render(result))
    assert result.mixture.k == 3
    assert result.max_center_error() <= 1.2
    weights = [component.weight for component in result.mixture.components]
    assert max(weights) - min(weights) < 0.2  # three equal crowds


def test_fig6b_merged_regions(benchmark, context, artifact_writer):
    result = benchmark.pedantic(
        run_fig6_mixture,
        args=("merged", context),
        kwargs={"users_per_component": 120},
        rounds=1,
        iterations=1,
    )
    artifact_writer("fig6b_merged", _render(result))
    assert result.mixture.k == 3
    assert result.max_center_error() <= 1.2
