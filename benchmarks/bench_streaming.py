"""Streaming convergence: how long must a forum be monitored?

Extension grounded in Sec. VII ("one might need to monitor a sufficiently
large number of days ... to collect 30 posts per user or more").
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ascii_table
from repro.analysis.streaming_experiments import run_convergence_experiment
from repro.core.streaming import StreamingGeolocator


def test_streaming_convergence(benchmark, context, artifact_writer):
    rows = benchmark.pedantic(
        run_convergence_experiment,
        args=(context,),
        kwargs={"scale": 1.0},
        rounds=1,
        iterations=1,
    )
    artifact_writer(
        "streaming_convergence",
        ascii_table(
            ["day", "events seen", "active users", "verdict", "dominant centre"],
            [
                (
                    row.day,
                    row.n_events,
                    row.n_users_active,
                    "yes" if row.has_verdict else "no",
                    row.dominant_mean,
                )
                for row in rows
            ],
            title="Extension -- verdict convergence while monitoring "
            "Dream Market",
        ),
    )
    final = rows[-1]
    assert final.has_verdict
    # Late-campaign verdicts agree with each other within half a zone.
    late = [row.dominant_mean for row in rows if row.day >= 240]
    assert max(late) - min(late) < 0.5


def test_streaming_event_throughput(benchmark, context):
    """Microbenchmark: per-event cost of the incremental accumulator."""
    stream = StreamingGeolocator(context.references)
    rng = np.random.default_rng(9)
    timestamps = rng.uniform(0, 366 * 86400.0, size=1000)
    counter = {"i": 0}

    def feed():
        i = counter["i"]
        stream.observe(f"user{i % 50}", float(timestamps[i % 1000]))
        counter["i"] = i + 1

    benchmark(feed)
    assert stream.n_events > 0
