"""Streaming convergence: how long must a forum be monitored?

Extension grounded in Sec. VII ("one might need to monitor a sufficiently
large number of days ... to collect 30 posts per user or more").
"""

from __future__ import annotations

import numpy as np

from _shared import synthetic_crowd
from repro.analysis.report import ascii_table
from repro.analysis.streaming_experiments import run_convergence_experiment
from repro.core.streaming import StreamingGeolocator
from repro.datasets.store import TraceStore


def test_streaming_convergence(benchmark, context, artifact_writer):
    rows = benchmark.pedantic(
        run_convergence_experiment,
        args=(context,),
        kwargs={"scale": 1.0},
        rounds=1,
        iterations=1,
    )
    artifact_writer(
        "streaming_convergence",
        ascii_table(
            ["day", "events seen", "active users", "verdict", "dominant centre"],
            [
                (
                    row.day,
                    row.n_events,
                    row.n_users_active,
                    "yes" if row.has_verdict else "no",
                    row.dominant_mean,
                )
                for row in rows
            ],
            title="Extension -- verdict convergence while monitoring "
            "Dream Market",
        ),
    )
    final = rows[-1]
    assert final.has_verdict
    # Late-campaign verdicts agree with each other within half a zone.
    late = [row.dominant_mean for row in rows if row.day >= 240]
    assert max(late) - min(late) < 0.5


def test_streaming_event_throughput(benchmark, context):
    """Microbenchmark: per-event cost of the incremental accumulator."""
    stream = StreamingGeolocator(context.references)
    rng = np.random.default_rng(9)
    timestamps = rng.uniform(0, 366 * 86400.0, size=1000)
    counter = {"i": 0}

    def feed():
        i = counter["i"]
        stream.observe(f"user{i % 50}", float(timestamps[i % 1000]))
        counter["i"] = i + 1

    benchmark(feed)
    assert stream.n_events > 0


def test_bulk_ingest_matches_per_event(benchmark, context):
    """One observe_batch call over an interleaved feed, checked for
    bit-identity against the per-event oracle after timing."""
    crowd = synthetic_crowd(300, seed=13)
    events = sorted(
        (float(timestamp), trace.user_id)
        for trace in crowd
        for timestamp in trace.timestamps
    )
    user_ids = [user_id for _, user_id in events]
    stamps = np.asarray([timestamp for timestamp, _ in events])

    def bulk():
        engine = StreamingGeolocator(context.references)
        engine.observe_batch(user_ids, stamps)
        return engine

    engine = benchmark(bulk)
    oracle = StreamingGeolocator(context.references)
    for timestamp, user_id in events:
        oracle.observe(user_id, timestamp)
    assert engine.n_events == len(events)
    assert engine.state_dict() == oracle.state_dict()


def test_store_ingest_throughput(benchmark, context, tmp_path):
    """Columnar replay of a TraceStore straight into the engine."""
    crowd = synthetic_crowd(300, seed=13)
    store = TraceStore.write(crowd, tmp_path / "bench.store")
    n_posts = store.total_posts()

    def from_store():
        engine = StreamingGeolocator(context.references)
        return engine.ingest_store(store)

    ingested = benchmark(from_store)
    assert ingested == n_posts
