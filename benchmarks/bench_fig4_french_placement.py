"""E-F4: Fig. 4 -- EMD placement of the French Twitter crowd."""

from __future__ import annotations

from _shared import render_single_country

from repro.analysis.experiments import run_single_country_placement


def test_fig4_french_placement(benchmark, context, artifact_writer):
    result = benchmark.pedantic(
        run_single_country_placement,
        args=("france", context),
        kwargs={"n_users": 250},
        rounds=1,
        iterations=1,
    )
    artifact_writer("fig4_french_placement", render_single_country(result, "Fig. 4"))
    assert result.center_error() <= 1.0
    assert abs(result.placement.mode_offset() - 1) <= 1
