"""Sec. VII countermeasures, quantified (extensions of the paper).

The paper argues three countermeasures qualitatively; these benches
measure them:

* removing timestamps does not stop the method (monitoring reconstructs
  them; sub-hour polling drifts the verdict < 0.3 zones),
* random timestamp delays only work once they reach several hours,
* a coordinated decoy minority shows up as its own component instead of
  fooling the verdict; only a coordinated majority flips it.
"""

from __future__ import annotations

from repro.analysis.countermeasures import (
    run_coordination_experiment,
    run_delay_experiment,
    run_hidden_sections_experiment,
    run_monitor_experiment,
)
from repro.analysis.report import ascii_table


def test_countermeasure_timestamp_removal(benchmark, context, artifact_writer):
    rows = benchmark.pedantic(
        run_monitor_experiment,
        args=(context,),
        kwargs={"poll_intervals_hours": (0.5, 1.0, 2.0, 4.0, 8.0)},
        rounds=1,
        iterations=1,
    )
    artifact_writer(
        "countermeasure_monitor",
        ascii_table(
            ["poll every (h)", "polls", "scraped centre", "monitored centre",
             "drift (zones)", "placement L1"],
            [
                (
                    row.poll_interval_hours,
                    row.n_polls,
                    row.dominant_mean_scraped,
                    row.dominant_mean_monitored,
                    row.center_drift,
                    row.placement_l1_distance,
                )
                for row in rows
            ],
            title="Sec. VII -- geolocating a timestamp-less forum by monitoring",
        ),
    )
    by_interval = {row.poll_interval_hours: row for row in rows}
    assert by_interval[0.5].center_drift < 0.3
    assert by_interval[8.0].center_drift < 1.0  # even coarse polling works


def test_countermeasure_random_delay(benchmark, context, artifact_writer):
    rows = benchmark.pedantic(
        run_delay_experiment,
        args=(context,),
        kwargs={"jitter_hours": (0.0, 1.0, 2.0, 4.0, 8.0, 12.0)},
        rounds=1,
        iterations=1,
    )
    artifact_writer(
        "countermeasure_delay",
        ascii_table(
            ["jitter (h)", "recovered centre", "centre error", "sigma",
             "flat users removed", "fit avg"],
            [
                (
                    row.jitter_hours,
                    row.dominant_mean,
                    row.center_error,
                    row.dominant_sigma,
                    row.flat_removed,
                    row.fit_average,
                )
                for row in rows
            ],
            title="Sec. VII -- random timestamp delays (robust multi-probe "
            "calibration)",
        ),
    )
    by_jitter = {row.jitter_hours: row for row in rows}
    # Paper: "the random delay must be of at least a few hours".  Small
    # jitter is absorbed; by 4-8h the centre drifts most of a zone; by
    # 12h profile destruction shows up as a surge of flat-filter removals.
    assert by_jitter[1.0].center_error < 0.8
    assert max(by_jitter[4.0].center_error, by_jitter[8.0].center_error) > 0.6
    assert by_jitter[12.0].flat_removed > by_jitter[0.0].flat_removed


def test_countermeasure_hidden_sections(benchmark, context, artifact_writer):
    rows = benchmark.pedantic(
        run_hidden_sections_experiment,
        args=(context,),
        kwargs={"hidden_fractions": (0.0, 0.25, 0.5, 0.75)},
        rounds=1,
        iterations=1,
    )
    artifact_writer(
        "countermeasure_hidden_sections",
        ascii_table(
            ["hidden fraction", "visible users", "recovered centre",
             "centre drift"],
            [
                (
                    row.hidden_fraction,
                    row.n_users_visible,
                    row.dominant_mean,
                    row.center_drift,
                )
                for row in rows
            ],
            title="Rank-gated sections: verdict vs fraction of posts hidden "
            "from the scraper",
        ),
    )
    # Hiding posts uniformly shrinks the sample but does not bias the
    # verdict: even 75% hidden drifts the centre well under a zone.
    assert all(row.center_drift < 0.8 for row in rows)
    visible = [row.n_users_visible for row in rows]
    assert visible == sorted(visible, reverse=True)


def test_countermeasure_coordination(benchmark, context, artifact_writer):
    rows = benchmark.pedantic(
        run_coordination_experiment,
        args=(context,),
        kwargs={"decoy_fractions": (0.0, 0.1, 0.25, 0.5, 0.75)},
        rounds=1,
        iterations=1,
    )
    artifact_writer(
        "countermeasure_coordination",
        ascii_table(
            ["decoy fraction", "recovered zones", "honest weight", "decoy weight"],
            [
                (
                    row.decoy_fraction,
                    str(list(row.recovered_zones)),
                    row.honest_zone_weight,
                    row.decoy_zone_weight,
                )
                for row in rows
            ],
            title="Sec. VII -- coordinated decoy crowds (Germany faking Japan)",
        ),
    )
    by_fraction = {row.decoy_fraction: row for row in rows}
    assert by_fraction[0.0].honest_zone_weight > 0.9
    assert by_fraction[0.25].honest_zone_weight > 0.5
    assert (
        by_fraction[0.75].decoy_zone_weight
        > by_fraction[0.75].honest_zone_weight
    )
