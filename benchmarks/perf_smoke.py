"""CI perf smoke test: fail loudly on >2x regression vs BENCH_core.json.

Re-times the smoke-sized fast paths recorded by :mod:`perf_baseline` and
exits non-zero when any of them runs more than :data:`TOLERANCE` times
slower than the recorded baseline.  Completes in a few seconds, so it is
suitable as a CI gate::

    PYTHONPATH=src python benchmarks/perf_smoke.py            # check
    PYTHONPATH=src python benchmarks/perf_baseline.py         # re-baseline
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from perf_baseline import (
    BENCH_PATH,
    FULL_USERS,
    SMOKE_USERS,
    _ingest_timings,
    _time,
    _timings,
)

#: Maximum tolerated slowdown factor vs the recorded smoke baseline.
TOLERANCE = 2.0

#: Absolute slack (seconds) so sub-millisecond entries are not failed on
#: scheduler noise: a path only regresses when it is both TOLERANCE times
#: and ABSOLUTE_SLACK_S slower than its baseline.
ABSOLUTE_SLACK_S = 0.010

#: Maximum tolerated slowdown of the fully-instrumented pipeline (live
#: metrics registry + live tracer) vs the obs-disabled run on the
#: FULL_USERS bench crowd -- the ISSUE's <5% observability budget.
OBS_OVERHEAD_TOLERANCE = 1.05

#: Absolute slack for the overhead gate, again against scheduler noise.
OBS_ABSOLUTE_SLACK_S = 0.050


def _obs_overhead_check() -> bool:
    """Gate: enabling metrics + tracing must cost < 5% on the 5k bench."""
    from _shared import synthetic_crowd
    from repro.core.geolocate import CrowdGeolocator
    from repro.obs import metrics as obs_metrics
    from repro.obs import tracing as obs_tracing

    crowd = synthetic_crowd(FULL_USERS, seed=11)
    locator = CrowdGeolocator()
    disabled_s = _time(locator.geolocate, crowd, repeat=3)
    with obs_metrics.use_registry(obs_metrics.MetricsRegistry()):
        with obs_tracing.use_tracer(obs_tracing.Tracer()):
            enabled_s = _time(locator.geolocate, crowd, repeat=3)
    ratio = enabled_s / disabled_s
    ok = enabled_s <= disabled_s * OBS_OVERHEAD_TOLERANCE + OBS_ABSOLUTE_SLACK_S
    status = "ok" if ok else "FAIL"
    print(
        f"  {'obs_overhead':24s} disabled {disabled_s * 1e3:8.2f} ms  "
        f"enabled {enabled_s * 1e3:8.2f} ms  ({ratio:.2f}x)  {status}"
    )
    return ok


#: Maximum tolerated slowdown of a streaming replay with the full health
#: observatory attached (series sampler + SLO monitor + sampling
#: profiler) vs the same replay with no observatory -- the ISSUE's <5%
#: budget for the observatory layer.
OBSERVATORY_OVERHEAD_TOLERANCE = 1.05

#: Absolute slack for the observatory gate, against scheduler noise.
OBSERVATORY_ABSOLUTE_SLACK_S = 0.050


def _observatory_overhead_check() -> bool:
    """Gate: the attached observatory costs < 5% and mutates nothing.

    Replays the same chunked feed through (a) a bare engine and (b) an
    engine with a bound series sampler, the default SLO rules and a live
    sampling profiler, ticking the observatory on every chunk's stream
    time exactly like ``darkcrowd replay``.  The observed run must stay
    within 5% of the bare run and its ``state_dict()`` must be
    bit-identical -- the observatory is a read-only passenger.
    """
    from _shared import synthetic_crowd
    from repro.core.streaming import StreamingGeolocator
    from repro.obs.health import HealthMonitor, Observatory, default_streaming_rules
    from repro.obs.profiler import SamplingProfiler
    from repro.obs.timeseries import SeriesSampler

    crowd = synthetic_crowd(400, seed=37)
    events = sorted(
        (float(timestamp), trace.user_id)
        for trace in crowd
        for timestamp in trace.timestamps
    )
    chunks = [events[i : i + 1024] for i in range(0, len(events), 1024)]

    def stream(observed: bool):
        engine = StreamingGeolocator()
        observatory = None
        profiler = None
        if observed:
            sampler = SeriesSampler()
            sampler.bind_streaming_engine(engine)
            observatory = Observatory(
                sampler=sampler,
                health=HealthMonitor(
                    default_streaming_rules(interval_s=sampler.interval_s)
                ),
            )
            profiler = SamplingProfiler()
            profiler.start()
        try:
            for chunk in chunks:
                engine.observe_batch(
                    [user_id for _, user_id in chunk],
                    [timestamp for timestamp, _ in chunk],
                )
                if observatory is not None:
                    observatory.tick(chunk[-1][0])
            engine.snapshot()
        finally:
            if profiler is not None:
                profiler.stop()
            if observatory is not None:
                observatory.close()
        return engine

    bare_s = _time(stream, False, repeat=3)
    observed_s = _time(stream, True, repeat=3)
    ratio = observed_s / bare_s
    fast_enough = (
        observed_s <= bare_s * OBSERVATORY_OVERHEAD_TOLERANCE
        + OBSERVATORY_ABSOLUTE_SLACK_S
    )
    identical = stream(True).state_dict() == stream(False).state_dict()

    ok = fast_enough and identical
    status = "ok" if ok else "FAIL"
    detail = "bit-identical" if identical else "DIVERGED"
    print(
        f"  {'observatory_overhead':24s} bare {bare_s * 1e3:8.2f} ms  "
        f"observed {observed_s * 1e3:8.2f} ms  ({ratio:.2f}x, {detail})  "
        f"{status}"
    )
    return ok


#: Maximum tolerated slowdown of a drift-*disabled* streaming engine vs a
#: replica of the pre-drift observe() body -- the drift layer must be
#: inert when not asked for.
DRIFT_OFF_TOLERANCE = 1.05

#: Absolute slack for the drift-off gate, against scheduler noise.
DRIFT_ABSOLUTE_SLACK_S = 0.050


def _drift_inertness_check() -> bool:
    """Gate: the drift layer costs nothing and changes nothing when off.

    Streams the same crowd through (a) a drift-disabled engine and (b) a
    replica running the pre-drift ``observe`` body verbatim, then checks
    the drift-off run is within 5% of the replica and that its snapshot
    is bit-identical to both the replica's and the cold
    ``snapshot_reference()`` oracle.
    """
    from _shared import synthetic_crowd
    from repro.core.streaming import StreamingGeolocator, _UserState

    class _PreDriftReplica(StreamingGeolocator):
        def observe(self, user_id: str, timestamp: float) -> None:
            state = self._users.get(user_id)
            if state is None:
                state = self._users[user_id] = _UserState()
            opened_cell = state.add(float(timestamp))
            if opened_cell or state.n_posts == self.min_posts:
                self._dirty.add(user_id)
            self._n_events += 1

    crowd = synthetic_crowd(400, seed=29)
    events = sorted(
        (float(ts), trace.user_id)
        for trace in crowd
        for ts in trace.timestamps
    )

    def stream(engine_class):
        engine = engine_class()
        for timestamp, user_id in events:
            engine.observe(user_id, timestamp)
        engine.snapshot()
        return engine

    replica_s = _time(stream, _PreDriftReplica, repeat=5)
    drift_off_s = _time(stream, StreamingGeolocator, repeat=5)
    ratio = drift_off_s / replica_s
    fast_enough = (
        drift_off_s <= replica_s * DRIFT_OFF_TOLERANCE + DRIFT_ABSOLUTE_SLACK_S
    )

    drift_off = stream(StreamingGeolocator)
    replica = stream(_PreDriftReplica)
    warm = drift_off.snapshot()
    identical = (
        warm.placement == replica.snapshot().placement
        and warm.placement == drift_off.snapshot_reference().placement
        and drift_off.migrations == []
        and drift_off.timeline is None
        and warm.confidence is None
    )

    ok = fast_enough and identical
    status = "ok" if ok else "FAIL"
    detail = "bit-identical" if identical else "DIVERGED"
    print(
        f"  {'drift_off_inertness':24s} replica {replica_s * 1e3:8.2f} ms  "
        f"drift-off {drift_off_s * 1e3:8.2f} ms  ({ratio:.2f}x, {detail})  "
        f"{status}"
    )
    return ok


#: Minimum speedup of ``ingest_store`` over the per-event observe() loop
#: on the smoke crowd (1000 users x 100 posts = 100k events) -- the
#: ISSUE's bulk-ingest acceptance bar.
INGEST_STORE_MIN_SPEEDUP = 5.0

#: Minimum speedup of a single ``observe_batch`` call over the per-event
#: loop on the same interleaved feed (pays per-chunk factorisation the
#: store path skips, so the bar is lower).
INGEST_BATCH_MIN_SPEEDUP = 2.0


def _ingest_throughput_check() -> bool:
    """Gate: bulk intake is fast *and* lands in the per-event state.

    Re-times the three intake paths on the 100k-event smoke feed and
    requires ``ingest_store`` >= 5x and ``observe_batch`` >= 2x the
    per-event loop, then replays a smaller crowd through batch and store
    to confirm the final engine state matches the per-event oracle --
    speed bought by diverging would be no speedup at all.
    """
    import tempfile

    from _shared import synthetic_crowd
    from repro.core.streaming import StreamingGeolocator
    from repro.datasets.store import TraceStore

    timings = _ingest_timings(SMOKE_USERS, repeat=2)
    fast_enough = (
        timings["store_speedup"] >= INGEST_STORE_MIN_SPEEDUP
        and timings["batch_speedup"] >= INGEST_BATCH_MIN_SPEEDUP
    )

    crowd = synthetic_crowd(400, seed=31)
    events = sorted(
        (float(timestamp), trace.user_id)
        for trace in crowd
        for timestamp in trace.timestamps
    )
    oracle = StreamingGeolocator()
    for timestamp, user_id in events:
        oracle.observe(user_id, timestamp)
    batched = StreamingGeolocator()
    batched.observe_batch(
        [user_id for _, user_id in events],
        [timestamp for timestamp, _ in events],
    )
    with tempfile.TemporaryDirectory() as tmp:
        store = TraceStore.write(crowd, Path(tmp) / "ingest.store")
        from_store = StreamingGeolocator()
        from_store.ingest_store(store)
    reference = oracle.state_dict()
    identical = (
        batched.state_dict() == reference
        and from_store.state_dict() == reference
    )

    ok = fast_enough and identical
    status = "ok" if ok else "FAIL"
    detail = "bit-identical" if identical else "DIVERGED"
    print(
        f"  {'ingest_throughput':24s} batch {timings['batch_speedup']:.1f}x  "
        f"store {timings['store_speedup']:.1f}x "
        f"({timings['store_events_per_s']:,} events/s, {detail})  {status}"
    )
    return ok


def _shard_merge_check() -> bool:
    """Gate: 2-shard merged verdict must be bit-identical to the oracle."""
    import tempfile

    from _shared import synthetic_crowd
    from repro.core.geolocate import CrowdGeolocator
    from repro.datasets.store import TraceStore

    crowd = synthetic_crowd(400, seed=23)
    locator = CrowdGeolocator()
    with tempfile.TemporaryDirectory() as tmp:
        store = TraceStore.write(crowd, Path(tmp) / "smoke.store")
        oracle = locator.geolocate_store(store, crowd_name="smoke")
        sharded = locator.geolocate_store_sharded(
            store, crowd_name="smoke", n_shards=2, max_workers=1
        )
    ok = (
        sharded.placement.fractions == oracle.placement.fractions
        and sharded.user_zones == oracle.user_zones
        and sharded.n_users == oracle.n_users
        and sharded.n_posts == oracle.n_posts
        and sharded.n_removed_flat == oracle.n_removed_flat
        and sharded.mixture == oracle.mixture
        and float(sharded.crowd_profile.mass.sum())
        == float(oracle.crowd_profile.mass.sum())
        and (sharded.crowd_profile.mass == oracle.crowd_profile.mass).all()
    )
    status = "ok" if ok else "FAIL"
    print(f"  {'shard_merge_identity':24s} 2 shards vs oracle  {status}")
    return bool(ok)


def main() -> int:
    if not BENCH_PATH.exists():
        print(
            f"perf_smoke: no baseline at {BENCH_PATH}; "
            "run benchmarks/perf_baseline.py first",
            file=sys.stderr,
        )
        return 2
    baseline = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    recorded = baseline.get("smoke", {})
    if not recorded:
        print("perf_smoke: baseline has no 'smoke' section", file=sys.stderr)
        return 2

    current = _timings(SMOKE_USERS, repeat=5)
    failures = []
    for name, entry in recorded.items():
        now = current.get(name)
        if now is None:
            continue
        ratio = now["fast_s"] / entry["fast_s"]
        regressed = (
            ratio > TOLERANCE
            and now["fast_s"] > entry["fast_s"] + ABSOLUTE_SLACK_S
        )
        status = "FAIL" if regressed else "ok"
        print(
            f"  {name:24s} baseline {entry['fast_s'] * 1e3:8.2f} ms  "
            f"now {now['fast_s'] * 1e3:8.2f} ms  ({ratio:.2f}x)  {status}"
        )
        if regressed:
            failures.append((name, ratio))

    if not _obs_overhead_check():
        failures.append(("obs_overhead", OBS_OVERHEAD_TOLERANCE))

    if not _observatory_overhead_check():
        failures.append(
            ("observatory_overhead", OBSERVATORY_OVERHEAD_TOLERANCE)
        )

    if not _shard_merge_check():
        failures.append(("shard_merge_identity", 1.0))

    if not _drift_inertness_check():
        failures.append(("drift_off_inertness", DRIFT_OFF_TOLERANCE))

    if not _ingest_throughput_check():
        failures.append(("ingest_throughput", INGEST_STORE_MIN_SPEEDUP))

    if failures:
        worst = ", ".join(f"{name} {ratio:.2f}x" for name, ratio in failures)
        print(
            f"perf_smoke: REGRESSION above {TOLERANCE:.1f}x tolerance: {worst}",
            file=sys.stderr,
        )
        return 1
    print("perf_smoke: all hot paths within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
