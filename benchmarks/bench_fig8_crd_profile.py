"""E-F8: Fig. 8 -- the CRD Club crowd profile and its Pearson vs generic.

Paper: the CRD Club profile correlates 0.93 with the generic Twitter
profile, supporting the claim that Dark Web access patterns mirror the
standard web's.
"""

from __future__ import annotations

from repro.analysis.experiments import run_forum_case_study
from repro.analysis.report import ascii_bars


def test_fig8_crd_profile(benchmark, context, artifact_writer):
    study = benchmark.pedantic(
        run_forum_case_study,
        args=("crd_club", context),
        kwargs={"via_tor": True},
        rounds=1,
        iterations=1,
    )
    chart = ascii_bars(
        list(range(24)),
        list(study.report.crowd_profile.mass),
        title="Fig. 8 -- CRD Club crowd profile (UTC clocks)",
    )
    artifact_writer(
        "fig8_crd_profile",
        "\n".join(
            [
                chart,
                f"Pearson vs generic (aligned): {study.pearson_vs_generic:.3f} "
                "(paper: 0.93)",
            ]
        ),
    )
    assert study.pearson_vs_generic > 0.85
