"""Seed-stability of the headline reproduction claims."""

from __future__ import annotations

from repro.analysis.report import ascii_table
from repro.analysis.robustness import run_seed_stability


def test_seed_stability(benchmark, context, artifact_writer):
    rows = benchmark.pedantic(
        run_seed_stability,
        args=(context,),
        kwargs={"seeds": (1, 2, 3), "scale": 0.8},
        rounds=1,
        iterations=1,
    )
    artifact_writer(
        "seed_stability",
        ascii_table(
            ["forum", "seeds", "k correct", "centre correct", "both",
             "centre spread (zones)"],
            [
                (
                    row.forum_key,
                    row.n_seeds,
                    row.k_correct,
                    row.center_correct,
                    row.both_correct,
                    row.center_spread,
                )
                for row in rows
            ],
            title="Robustness -- headline claims across independent "
            "generator seeds",
        ),
    )
    by_forum = {row.forum_key: row for row in rows}
    # The four well-populated forums must reproduce on every seed.
    for key in ("crd_club", "dream_market", "majestic_garden"):
        assert by_forum[key].center_correct == 1.0
    # The component count holds on a clear majority of seeds everywhere.
    for row in rows:
        assert row.k_correct >= 2 / 3 - 1e-9
