"""E-F1: Fig. 1 -- a single German user's activity profile."""

from __future__ import annotations

from repro.analysis.experiments import run_fig1_user_profile
from repro.analysis.report import ascii_bars


def test_fig1_single_user_profile(benchmark, context, artifact_writer):
    result = benchmark.pedantic(
        run_fig1_user_profile, args=(context,), rounds=1, iterations=1
    )
    profile = result.profile
    artifact_writer(
        "fig1_user_profile",
        ascii_bars(
            list(range(24)),
            list(profile.mass),
            title=f"Fig. 1 -- {result.label} (local time)",
        ),
    )
    # Paper shape: clear night trough (1h-7h), activity resuming in the
    # morning and dominating in the evening hours.
    night = sum(profile[h] for h in range(2, 6))
    evening = sum(profile[h] for h in range(18, 23))
    assert evening > 2 * night
    assert profile.flatness() > 0.15  # a human, not a bot
