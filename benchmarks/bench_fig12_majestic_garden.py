"""E-F12: Fig. 12 -- The Majestic Garden placement.

Paper shape: two components with the ordering *reversed* vs Dream Market
-- the larger on UTC-6 (a mostly American forum), the smaller on UTC+1.
"""

from __future__ import annotations

from _shared import component_zone_errors, render_forum_study

from repro.analysis.experiments import run_forum_case_study


def test_fig12_majestic_garden(benchmark, context, artifact_writer):
    study = benchmark.pedantic(
        run_forum_case_study,
        args=("majestic_garden", context),
        kwargs={"via_tor": True},
        rounds=1,
        iterations=1,
    )
    artifact_writer("fig12_majestic_garden", render_forum_study(study, "Fig. 12"))
    report = study.report
    assert report.mixture.k == 2
    ranked = sorted(report.mixture.components, key=lambda c: -c.weight)
    assert abs(ranked[0].mean - (-6)) <= 1.2
    assert abs(ranked[1].mean - 1) <= 1.2
    assert ranked[0].weight > ranked[1].weight
    assert max(component_zone_errors(study)) <= 1.2
