"""E-T1: Table I -- the ground-truth dataset (active users by region)."""

from __future__ import annotations

from repro.analysis.experiments import run_table1
from repro.analysis.report import ascii_table
from repro.synth.twitter import build_twitter_dataset


def test_table1_rows(benchmark, context, artifact_writer):
    rows = benchmark.pedantic(run_table1, args=(context,), rounds=1, iterations=1)
    rendered = ascii_table(
        ["Country/State", "paper active users", "generated active users"],
        rows,
        title="Table I -- active users by country/state",
    )
    artifact_writer("table1", rendered)
    assert len(rows) == 14
    assert sum(paper for _, paper, _ in rows) == 22576
    assert all(ours > 0 for _, _, ours in rows)


def test_dataset_generation_speed(benchmark):
    dataset = benchmark.pedantic(
        lambda: build_twitter_dataset(seed=1, scale=0.01, n_days=120),
        rounds=1,
        iterations=1,
    )
    assert dataset.total_users() > 100
