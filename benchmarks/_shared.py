"""Rendering helpers shared by the per-figure benchmarks."""

from __future__ import annotations

from repro.analysis.experiments import ForumCaseStudy, SingleCountryPlacement
from repro.analysis.report import ascii_bars


def render_placement(placement, title: str) -> str:
    labels = [f"UTC{offset:+d}" for offset in placement.offsets]
    return ascii_bars(labels, list(placement.fractions), title=title)


def render_single_country(result: SingleCountryPlacement, figure: str) -> str:
    chart = render_placement(
        result.placement,
        f"{figure} -- {result.region_key} crowd placement "
        f"(true zone UTC{result.true_offset:+d})",
    )
    return "\n".join(
        [
            chart,
            f"Gaussian fit: mean {result.fit.mean:+.2f} "
            f"(true {result.true_offset:+d}), sigma {result.fit.sigma:.2f} "
            "(paper: ~2.5)",
            f"fit distance avg {result.fit_metrics.average:.4f} "
            f"std {result.fit_metrics.standard_deviation:.4f}",
        ]
    )


def render_forum_study(study: ForumCaseStudy, figure: str) -> str:
    report = study.report
    components = "; ".join(
        f"mean {component.mean:+.2f} sigma {component.sigma:.2f} "
        f"weight {component.weight:.2f}"
        for component in report.mixture.components
    )
    lines = [
        render_placement(
            report.placement, f"{figure} -- {study.spec.name} crowd placement"
        ),
        f"scrape: {study.scrape.summary()}",
        f"polished crowd: {report.n_users} users / {report.n_posts} posts "
        f"({report.n_removed_flat} flat profiles removed)",
        f"components ({report.mixture.k}): {components}",
        f"expected zones (generator ground truth): {list(study.expected_offsets)}",
        f"fit distance avg {report.fit_metrics.average:.4f} "
        f"std {report.fit_metrics.standard_deviation:.4f}",
        f"Pearson vs generic: {study.pearson_vs_generic:.3f}",
    ]
    for hemisphere in report.hemisphere:
        lines.append(
            f"hemisphere[{hemisphere.user_id}]: {hemisphere.verdict.value} "
            f"(asymmetry {hemisphere.margin():.2f})"
        )
    return "\n".join(lines)


def component_zone_errors(study: ForumCaseStudy) -> list[float]:
    """Distance from each recovered component to the nearest expected zone."""
    return [
        min(abs(component.mean - expected) for expected in study.expected_offsets)
        for component in study.report.mixture.components
    ]
