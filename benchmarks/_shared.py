"""Rendering helpers shared by the per-figure benchmarks."""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import ForumCaseStudy, SingleCountryPlacement
from repro.analysis.report import ascii_bars
from repro.core.events import ActivityTrace, TraceSet
from repro.core.reference import parametric_generic_profile


def synthetic_crowd(
    n_users: int,
    *,
    seed: int = 0,
    flat_fraction: float = 0.05,
    n_days: int = 45,
    posts_per_user: int = 100,
) -> TraceSet:
    """A cheap, numpy-generated crowd for perf benchmarks.

    Diurnal users post by the canonical curve in a random zone; a
    *flat_fraction* of bots post uniformly round the clock, giving the
    polishing stage real work.  Built directly from arrays (no behavioural
    simulator) so generating 5k+ users takes well under a second.
    """
    rng = np.random.default_rng(seed)
    weights = parametric_generic_profile().mass
    n_flat = int(round(n_users * flat_fraction))
    traces = []
    for index in range(n_users - n_flat):
        zone = int(rng.integers(-11, 13))
        days = rng.integers(0, n_days, size=posts_per_user)
        local_hours = rng.choice(24, size=posts_per_user, p=weights)
        stamps = (
            days * 86400.0
            + (local_hours - zone) * 3600.0
            + rng.uniform(0.0, 3600.0, size=posts_per_user)
        )
        traces.append(ActivityTrace(f"user_{index:06d}", np.abs(stamps)))
    for index in range(n_flat):
        days = rng.integers(0, n_days, size=posts_per_user)
        hours = rng.integers(0, 24, size=posts_per_user)
        stamps = days * 86400.0 + hours * 3600.0 + rng.uniform(
            0.0, 3600.0, size=posts_per_user
        )
        traces.append(ActivityTrace(f"bot_{index:06d}", stamps))
    return TraceSet(traces)


def render_placement(placement, title: str) -> str:
    labels = [f"UTC{offset:+d}" for offset in placement.offsets]
    return ascii_bars(labels, list(placement.fractions), title=title)


def render_single_country(result: SingleCountryPlacement, figure: str) -> str:
    chart = render_placement(
        result.placement,
        f"{figure} -- {result.region_key} crowd placement "
        f"(true zone UTC{result.true_offset:+d})",
    )
    return "\n".join(
        [
            chart,
            f"Gaussian fit: mean {result.fit.mean:+.2f} "
            f"(true {result.true_offset:+d}), sigma {result.fit.sigma:.2f} "
            "(paper: ~2.5)",
            f"fit distance avg {result.fit_metrics.average:.4f} "
            f"std {result.fit_metrics.standard_deviation:.4f}",
        ]
    )


def render_forum_study(study: ForumCaseStudy, figure: str) -> str:
    report = study.report
    components = "; ".join(
        f"mean {component.mean:+.2f} sigma {component.sigma:.2f} "
        f"weight {component.weight:.2f}"
        for component in report.mixture.components
    )
    lines = [
        render_placement(
            report.placement, f"{figure} -- {study.spec.name} crowd placement"
        ),
        f"scrape: {study.scrape.summary()}",
        f"polished crowd: {report.n_users} users / {report.n_posts} posts "
        f"({report.n_removed_flat} flat profiles removed)",
        f"components ({report.mixture.k}): {components}",
        f"expected zones (generator ground truth): {list(study.expected_offsets)}",
        f"fit distance avg {report.fit_metrics.average:.4f} "
        f"std {report.fit_metrics.standard_deviation:.4f}",
        f"Pearson vs generic: {study.pearson_vs_generic:.3f}",
    ]
    for hemisphere in report.hemisphere:
        lines.append(
            f"hemisphere[{hemisphere.user_id}]: {hemisphere.verdict.value} "
            f"(asymmetry {hemisphere.margin():.2f})"
        )
    return "\n".join(lines)


def component_zone_errors(study: ForumCaseStudy) -> list[float]:
    """Distance from each recovered component to the nearest expected zone."""
    return [
        min(abs(component.mean - expected) for expected in study.expected_offsets)
        for component in study.report.mixture.components
    ]
