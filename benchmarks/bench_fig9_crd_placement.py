"""E-F9: Fig. 9 -- CRD Club placement.

Paper shape: a single Gaussian component whose mean falls between UTC+3
and UTC+4 (the Russian-speaking world), with tiny fit-distance metrics
(paper: avg 0.007, std 0.006).
"""

from __future__ import annotations

from _shared import render_forum_study

from repro.analysis.experiments import run_forum_case_study


def test_fig9_crd_placement(benchmark, context, artifact_writer):
    study = benchmark.pedantic(
        run_forum_case_study,
        args=("crd_club", context),
        kwargs={"via_tor": True, "seed": 8},
        rounds=1,
        iterations=1,
    )
    artifact_writer("fig9_crd_placement", render_forum_study(study, "Fig. 9"))
    report = study.report
    assert report.mixture.k == 1
    assert 2.4 <= report.mixture.dominant().mean <= 4.6
    assert report.fit_metrics.average < 0.02
    assert study.scrape.server_offset_hours == 3.0
