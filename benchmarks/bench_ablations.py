"""E-ABL: ablations of the paper's fixed design choices."""

from __future__ import annotations

from repro.analysis.ablations import (
    run_metric_ablation,
    run_sigma_init_ablation,
    run_threshold_ablation,
    run_trace_length_ablation,
)
from repro.analysis.report import ascii_table


def test_ablation_distance_metric(benchmark, context, artifact_writer):
    rows = benchmark.pedantic(
        run_metric_ablation, args=(context,), rounds=1, iterations=1
    )
    artifact_writer(
        "ablation_metric",
        ascii_table(
            ["metric", "accuracy (±1 zone)", "users placed"],
            [(row.metric, row.accuracy, row.n_users) for row in rows],
            title="Ablation -- placement distance (paper uses linear EMD)",
        ),
    )
    by_metric = {row.metric: row.accuracy for row in rows}
    # The EMD variants must beat the naive bin-wise distances: moving mass
    # one hour is cheap for EMD but maximally penalised by L1/L2.
    assert by_metric["linear"] >= by_metric["l2"] - 0.05
    assert by_metric["linear"] > 0.5


def test_ablation_activity_threshold(benchmark, context, artifact_writer):
    rows = benchmark.pedantic(
        run_threshold_ablation, args=(context,), rounds=1, iterations=1
    )
    artifact_writer(
        "ablation_threshold",
        ascii_table(
            ["min posts", "accuracy (±1 zone)", "users retained"],
            [(row.min_posts, row.accuracy, row.users_retained) for row in rows],
            title="Ablation -- activity threshold (paper uses 30 posts)",
        ),
    )
    retained = [row.users_retained for row in rows]
    assert retained == sorted(retained, reverse=True)
    thirty = next(row for row in rows if row.min_posts == 30)
    five = next(row for row in rows if row.min_posts == 5)
    # The 30-post rule's rationale: thresholding does not hurt much
    # accuracy-wise while guaranteeing meaningful profiles.
    assert thirty.accuracy >= five.accuracy - 0.1


def test_ablation_em_sigma_init(benchmark, context, artifact_writer):
    rows = benchmark.pedantic(
        run_sigma_init_ablation, args=(context,), rounds=1, iterations=1
    )
    artifact_writer(
        "ablation_sigma_init",
        ascii_table(
            ["sigma init", "components", "max centre error"],
            [
                (row.sigma_init, row.recovered_components, row.max_center_error)
                for row in rows
            ],
            title="Ablation -- EM sigma initialisation (paper uses 2.5)",
        ),
    )
    paper_row = next(row for row in rows if row.sigma_init == 2.5)
    assert paper_row.recovered_components == 3
    assert paper_row.max_center_error <= 1.5


def test_ablation_trace_length(benchmark, context, artifact_writer):
    rows = benchmark.pedantic(
        run_trace_length_ablation, args=(context,), rounds=1, iterations=1
    )
    artifact_writer(
        "ablation_trace_length",
        ascii_table(
            ["days of history", "accuracy (±1 zone)", "users retained"],
            [(row.n_days, row.accuracy, row.users_retained) for row in rows],
            title="Ablation -- monitoring duration (Sec. VII's question)",
        ),
    )
    assert rows[-1].users_retained >= rows[0].users_retained
    assert rows[-1].accuracy > 0.5
