"""Record the batch-engine perf trajectory into ``BENCH_core.json``.

Times the hot inference paths both ways -- the vectorised batch engine and
the per-:class:`Profile` reference implementation it replaced -- on a
synthetic 5k-user crowd, and dumps the numbers (plus a small smoke-sized
set used by :mod:`perf_smoke`) to ``BENCH_core.json`` at the repo root so
the speedups are tracked across PRs.

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf_baseline.py
    PYTHONPATH=src python benchmarks/perf_baseline.py --scale --scale-users 100000

``--scale`` also refreshes the ``scale`` section (via
:mod:`bench_scale`) in the same run, so ``BENCH_core.json`` carries one
coherent trajectory stamped by a single toolchain fingerprint.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from _shared import synthetic_crowd
from repro._version import __version__
from repro.obs.manifest import RunManifest
from repro.core.batch import ProfileMatrix
from repro.core.emd import distance_matrix
from repro.core.flatness import polish_trace_set, polish_trace_set_reference
from repro.core.geolocate import CrowdGeolocator
from repro.core.placement import placement_distribution
from repro.core.profiles import build_user_profile
from repro.core.reference import ReferenceProfiles
from repro.core.streaming import StreamingGeolocator
from repro.datasets.store import TraceStore

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"

#: Crowd size of the headline numbers (the ISSUE's acceptance criterion).
FULL_USERS = 5_000
#: Crowd size of the seconds-fast smoke set gated by perf_smoke.py.
SMOKE_USERS = 1_000


def _time(func, *args, repeat: int = 1, **kwargs) -> float:
    """Best-of-*repeat* wall time of one call (seconds), after one warmup."""
    func(*args, **kwargs)  # warm caches/allocator so first-call cost is excluded
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        func(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best


def _timings(n_users: int, *, repeat: int) -> dict[str, dict[str, float]]:
    crowd = synthetic_crowd(n_users, seed=11)
    references = ReferenceProfiles.canonical()
    locator = CrowdGeolocator()
    results: dict[str, dict[str, float]] = {}

    def record(name: str, fast_s: float, reference_s: float | None) -> None:
        entry = {"fast_s": round(fast_s, 6)}
        if reference_s is not None:
            entry["reference_s"] = round(reference_s, 6)
            entry["speedup"] = round(reference_s / fast_s, 2)
        results[name] = entry

    record(
        "profile_build",
        _time(ProfileMatrix.from_trace_set, crowd, repeat=repeat),
        _time(
            lambda: {t.user_id: build_user_profile(t) for t in crowd},
            repeat=repeat,
        ),
    )

    matrix = ProfileMatrix.from_trace_set(crowd)
    record(
        "distance_matrix",
        _time(distance_matrix, matrix, references, repeat=repeat),
        None,
    )

    record(
        "polish_trace_set",
        _time(polish_trace_set, crowd, references, repeat=repeat),
        _time(polish_trace_set_reference, crowd, references, repeat=repeat),
    )

    record(
        "geolocate",
        _time(locator.geolocate, crowd, engine="batch", repeat=repeat),
        _time(locator.geolocate, crowd, engine="reference", repeat=repeat),
    )

    assignments = list(
        locator.geolocate(crowd, engine="batch").user_zones.values()
    )
    record(
        "placement_distribution",
        _time(placement_distribution, assignments, repeat=repeat),
        None,
    )

    # Out-of-core paths (PR 3): the columnar store reader and the warm
    # incremental streaming snapshot, gated by perf_smoke alongside the
    # batch-engine entries above.
    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "crowd.store"
        TraceStore.write(crowd, store_path)

        def load_store():
            return ProfileMatrix.from_store(
                TraceStore.open(store_path), min_posts=30
            )

        record("store_load", _time(load_store, repeat=repeat), None)

    stream = StreamingGeolocator(references)
    for trace in crowd:
        for timestamp in trace.timestamps:
            stream.observe(trace.user_id, float(timestamp))
    stream.snapshot()  # place everyone once; timed snapshots are warm
    record(
        "streaming_snapshot",
        _time(stream.snapshot, repeat=repeat),
        None,
    )
    return results


def _ingest_timings(n_users: int = SMOKE_USERS, *, repeat: int = 1) -> dict:
    """Time the three streaming intake paths on one chronological feed.

    ``per_event_s`` is the serial ``observe()`` loop, ``batch_s`` one
    ``observe_batch`` call over the same interleaved event order, and
    ``store_s`` the columnar ``ingest_store`` replay (pre-grouped, no
    per-chunk factorisation).  All three land the engine in the same
    final state (see ``tests/test_streaming_batch.py``), so the ratios
    are pure pipeline cost.
    """
    crowd = synthetic_crowd(n_users, seed=17)
    references = ReferenceProfiles.canonical()
    events = sorted(
        (float(timestamp), trace.user_id)
        for trace in crowd
        for timestamp in trace.timestamps
    )
    user_ids = [user_id for _, user_id in events]
    stamps = np.asarray([timestamp for timestamp, _ in events], dtype=np.float64)

    def per_event():
        engine = StreamingGeolocator(references)
        for timestamp, user_id in events:
            engine.observe(user_id, timestamp)
        return engine

    def bulk():
        engine = StreamingGeolocator(references)
        engine.observe_batch(user_ids, stamps)
        return engine

    with tempfile.TemporaryDirectory() as tmp:
        store = TraceStore.write(crowd, Path(tmp) / "ingest.store")

        def from_store():
            engine = StreamingGeolocator(references)
            engine.ingest_store(store)
            return engine

        per_event_s = _time(per_event, repeat=repeat)
        batch_s = _time(bulk, repeat=repeat)
        store_s = _time(from_store, repeat=repeat)
    n_events = len(events)
    return {
        "n_users": n_users,
        "n_events": n_events,
        "per_event_s": round(per_event_s, 6),
        "batch_s": round(batch_s, 6),
        "store_s": round(store_s, 6),
        "batch_speedup": round(per_event_s / batch_s, 2),
        "store_speedup": round(per_event_s / store_s, 2),
        "per_event_events_per_s": round(n_events / per_event_s),
        "batch_events_per_s": round(n_events / batch_s),
        "store_events_per_s": round(n_events / store_s),
    }


def run() -> dict:
    # The manifest fingerprint ties every BENCH_core.json entry back to the
    # exact bench configuration and toolchain that produced it (same
    # fingerprint => comparable numbers).
    manifest = RunManifest.collect(
        "perf_baseline",
        config={
            "full_users": FULL_USERS,
            "smoke_users": SMOKE_USERS,
            "crowd_seed": 11,
        },
        seed=11,
    )
    payload = {
        "meta": {
            "version": __version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "full_users": FULL_USERS,
            "smoke_users": SMOKE_USERS,
            "manifest_fingerprint": manifest.fingerprint(),
        },
        "full": _timings(FULL_USERS, repeat=1),
        "smoke": _timings(SMOKE_USERS, repeat=3),
        # Bulk-ingest trajectory (PR 8): one 100k-event chronological feed
        # through all three intake paths, gated by perf_smoke.
        "streaming_ingest": _ingest_timings(SMOKE_USERS, repeat=3),
    }
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--scale",
        action="store_true",
        help="also refresh the BENCH scale section via bench_scale",
    )
    parser.add_argument(
        "--scale-users",
        type=int,
        default=100_000,
        help="crowd size for the --scale run (default 100000)",
    )
    args = parser.parse_args(argv)

    payload = run()
    if BENCH_PATH.exists():
        # Keep the scale section written by bench_scale.py across re-baselines.
        previous = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
        if "scale" in previous:
            payload["scale"] = previous["scale"]
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {BENCH_PATH}")
    for name, entry in payload["full"].items():
        speedup = entry.get("speedup")
        suffix = f"  ({speedup:.1f}x vs reference)" if speedup else ""
        print(f"  {name:24s} {entry['fast_s'] * 1e3:9.2f} ms{suffix}")
    ingest = payload["streaming_ingest"]
    print(
        f"  {'streaming_ingest':24s} per-event {ingest['per_event_s'] * 1e3:.2f} ms"
        f"  batch {ingest['batch_s'] * 1e3:.2f} ms"
        f" ({ingest['batch_speedup']:.1f}x)"
        f"  store {ingest['store_s'] * 1e3:.2f} ms"
        f" ({ingest['store_speedup']:.1f}x,"
        f" {ingest['store_events_per_s']:,} events/s)"
    )

    if args.scale:
        import bench_scale

        results = bench_scale.run(args.scale_users, 35)
        bench_scale.merge_into_bench(results, args.scale_users)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
