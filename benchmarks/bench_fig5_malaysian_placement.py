"""E-F5: Fig. 5 -- EMD placement of the Malaysian Twitter crowd."""

from __future__ import annotations

from _shared import render_single_country

from repro.analysis.experiments import run_single_country_placement


def test_fig5_malaysian_placement(benchmark, context, artifact_writer):
    result = benchmark.pedantic(
        run_single_country_placement,
        args=("malaysia", context),
        kwargs={"n_users": 250},
        rounds=1,
        iterations=1,
    )
    artifact_writer(
        "fig5_malaysian_placement", render_single_country(result, "Fig. 5")
    )
    assert result.center_error() <= 1.0
    assert abs(result.placement.mode_offset() - 8) <= 1
    assert result.fit_metrics.average < 0.03
