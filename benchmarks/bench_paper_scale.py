"""Paper-scale validation: Figs. 3-5 at the full Table I crowd sizes.

Everything else in the suite runs on scaled-down crowds for speed; this
bench generates the three validation countries at **exactly the paper's
user counts** (Germany 470, France 2,222, Malaysia 1,714) and re-runs the
single-country placements, demonstrating that the pipeline handles the
paper's actual data volume and that the centres do not drift with scale.
"""

from __future__ import annotations

from _shared import render_single_country

from repro.analysis.experiments import run_single_country_placement
from repro.analysis.report import ascii_table
from repro.timebase.zones import get_region

_FULL_SIZES = {"germany": 470, "france": 2222, "malaysia": 1714}


def test_paper_scale_validation(benchmark, context, artifact_writer):
    def run():
        return {
            region: run_single_country_placement(
                region, context, n_users=size, seed=77
            )
            for region, size in _FULL_SIZES.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for region, result in results.items():
        rows.append(
            (
                region,
                _FULL_SIZES[region],
                result.placement.n_users,
                f"UTC{result.true_offset:+d}",
                f"{result.fit.mean:+.2f}",
                f"{result.fit.sigma:.2f}",
            )
        )
    artifact_writer(
        "paper_scale_validation",
        ascii_table(
            ["region", "paper crowd size", "placed", "true zone",
             "fitted centre", "sigma"],
            rows,
            title="Figs. 3-5 at the paper's full crowd sizes",
        ),
    )
    for region, result in results.items():
        assert result.center_error() <= 1.0, region
        # Full-size crowds fill in the Gaussian tails the small-scale
        # benches can only sketch.
        assert result.fit_metrics.average < 0.02
        assert result.placement.n_users >= 0.9 * _FULL_SIZES[region]
