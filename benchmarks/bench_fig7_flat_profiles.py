"""E-F7: Fig. 7 + Sec. IV-C -- flat profiles and dataset polishing."""

from __future__ import annotations

from repro.analysis.experiments import run_fig7_flat
from repro.analysis.report import ascii_bars


def test_fig7_flat_profile_polishing(benchmark, context, artifact_writer):
    result = benchmark.pedantic(
        run_fig7_flat,
        args=(context,),
        kwargs={"n_humans": 120, "n_bots": 12},
        rounds=1,
        iterations=1,
    )
    chart = ascii_bars(
        list(range(24)),
        list(result.bot_profile.mass),
        title="Fig. 7 -- example flat (bot) profile",
    )
    artifact_writer(
        "fig7_flat_profiles",
        "\n".join(
            [
                chart,
                f"flat detected by EMD filter: {result.bot_is_flat}",
                f"polish: {result.n_before} users -> {result.n_after} "
                f"({result.n_removed} removed, "
                f"{result.removed_are_bots:.0%} of removals were actual bots)",
            ]
        ),
    )
    assert result.bot_is_flat
    assert result.n_removed >= 10
    assert result.removed_are_bots >= 0.9
    # Bots' profiles hover near uniform: low total-variation flatness.
    assert result.bot_profile.flatness() < 0.15
