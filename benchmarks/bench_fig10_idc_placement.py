"""E-F10: Fig. 10 -- Italian DarkNet Community placement.

Paper shape: a single component "centered close to the UTC+1 and slightly
shifted towards UTC+2", peak in the Italian zone.
"""

from __future__ import annotations

from _shared import render_forum_study

from repro.analysis.experiments import run_forum_case_study


def test_fig10_idc_placement(benchmark, context, artifact_writer):
    study = benchmark.pedantic(
        run_forum_case_study,
        args=("idc", context),
        kwargs={"via_tor": True},
        rounds=1,
        iterations=1,
    )
    artifact_writer("fig10_idc_placement", render_forum_study(study, "Fig. 10"))
    report = study.report
    assert report.mixture.k == 1
    # Centered near UTC+1, possibly pulled toward UTC+2 as in the paper.
    assert 0.5 <= report.mixture.dominant().mean <= 2.6
    assert study.scrape.server_offset_hours == 1.0
