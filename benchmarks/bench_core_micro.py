"""Microbenchmarks of the hot inference paths.

These are true pytest-benchmark timings (many rounds): EMD evaluation,
the vectorised placement matrix, Eq. 1 profile construction, EM fitting
and the Tor RPC round trip.  They guard against performance regressions
in the code the figure benches lean on.
"""

from __future__ import annotations

import numpy as np
import pytest

from _shared import synthetic_crowd
from repro.core.batch import ProfileMatrix
from repro.core.emd import distance_matrix, emd_circular, emd_linear
from repro.core.em import fit_mixture
from repro.core.events import ActivityTrace
from repro.core.flatness import polish_trace_set
from repro.core.gaussian import GaussianComponent, mixture_pdf
from repro.core.geolocate import CrowdGeolocator
from repro.core.placement import PlacementDistribution
from repro.core.profiles import Profile, build_user_profile
from repro.core.reference import ReferenceProfiles
from repro.timebase.zones import ZONE_OFFSETS


def _random_profiles(n, seed=0):
    rng = np.random.default_rng(seed)
    return [Profile(rng.random(24) + 0.01) for _ in range(n)]


def test_emd_linear_speed(benchmark):
    a, b = _random_profiles(2)
    result = benchmark(emd_linear, a, b)
    assert result >= 0.0


def test_emd_circular_speed(benchmark):
    a, b = _random_profiles(2)
    result = benchmark(emd_circular, a, b)
    assert result >= 0.0


def test_placement_matrix_speed(benchmark):
    profiles = _random_profiles(200, seed=1)
    references = _random_profiles(24, seed=2)
    matrix = benchmark(distance_matrix, profiles, references, "linear")
    assert matrix.shape == (200, 24)


def test_profile_build_speed(benchmark):
    rng = np.random.default_rng(3)
    trace = ActivityTrace("u", rng.uniform(0, 366 * 86400, size=2000))
    profile = benchmark(build_user_profile, trace)
    assert len(profile) == 24


def test_em_fit_speed(benchmark):
    offsets = np.asarray(ZONE_OFFSETS, dtype=float)
    components = [
        GaussianComponent(mean=-6.0, sigma=1.6, weight=0.5),
        GaussianComponent(mean=2.0, sigma=1.6, weight=0.5),
    ]
    density = np.asarray(mixture_pdf(components, offsets))
    placement = PlacementDistribution(
        tuple((density / density.sum()).tolist()), n_users=400
    )
    model = benchmark(fit_mixture, placement, 2)
    assert model.k == 2


@pytest.fixture(scope="module")
def crowd_5k():
    return synthetic_crowd(5_000, seed=11)


def test_profile_matrix_build_speed(benchmark, crowd_5k):
    matrix = benchmark(ProfileMatrix.from_trace_set, crowd_5k)
    assert len(matrix) == 5_000


def test_polish_trace_set_speed(benchmark, crowd_5k):
    references = ReferenceProfiles.canonical()
    result = benchmark(polish_trace_set, crowd_5k, references)
    assert result.n_removed > 0


def test_geolocate_end_to_end_speed(benchmark, crowd_5k):
    locator = CrowdGeolocator()
    report = benchmark(locator.geolocate, crowd_5k)
    assert report.n_users > 4_000


def test_tor_rpc_roundtrip_speed(benchmark):
    from repro.forum.engine import ForumServer
    from repro.tor.hidden_service import HiddenServiceHost, TorClient
    from repro.tor.network import build_network

    network = build_network(seed=7)
    forum = ForumServer("F", "x.onion")
    forum.import_crowd_posts({"u": [float(i) for i in range(50)]})
    host = HiddenServiceHost(
        network=network,
        application=forum,
        private_key="k",
        rng=np.random.default_rng(7),
    )
    descriptor = host.setup()
    client = TorClient(network, seed=8)
    remote = client.connect(descriptor.onion, {descriptor.onion: host})
    total = benchmark(remote.total_posts)
    assert total == 50
