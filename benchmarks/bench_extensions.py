"""Extensions beyond the paper: DST rule families, bootstrap CIs, sweeps."""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ascii_table
from repro.analysis.sweeps import run_activity_sweep, run_crowd_size_sweep
from repro.core.confidence import bootstrap_mixture
from repro.core.dst_family import DstFamily, classify_dst_family
from repro.synth.population import sample_user
from repro.synth.posting import generate_trace


def _family_accuracy(region_key: str, expected: DstFamily, n: int = 20) -> float:
    rng = np.random.default_rng(555)
    hits = 0
    for index in range(n):
        spec = sample_user(
            f"u{index}", region_key, rng, posts_per_day_mean=9.0, chronotype_std=0.8
        )
        trace = generate_trace(spec, rng, n_days=366)
        if classify_dst_family(trace).verdict is expected:
            hits += 1
    return hits / n


def test_extension_dst_family_accuracy(benchmark, artifact_writer):
    def run():
        return [
            ("germany", "eu", _family_accuracy("germany", DstFamily.EU)),
            ("united_kingdom", "eu", _family_accuracy("united_kingdom", DstFamily.EU)),
            ("new_york", "us", _family_accuracy("new_york", DstFamily.US)),
            ("california", "us", _family_accuracy("california", DstFamily.US)),
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    artifact_writer(
        "extension_dst_family",
        ascii_table(
            ["region", "true rule family", "accuracy (20 users)"],
            rows,
            title="Extension -- EU-rule vs US-rule classification "
            "(fine-grained origin within the northern hemisphere)",
        ),
    )
    for _, _, accuracy in rows:
        assert accuracy >= 0.6


def test_extension_bootstrap_confidence(benchmark, context, artifact_writer):
    from repro.analysis.experiments import run_forum_case_study

    def run():
        output = []
        for key in ("idc", "dream_market"):
            study = run_forum_case_study(key, context, via_tor=False)
            boot = bootstrap_mixture(
                study.report.user_zones,
                study.report.mixture,
                n_resamples=120,
                seed=1,
            )
            for interval in boot.intervals:
                output.append(
                    (
                        study.spec.name,
                        boot.n_users,
                        f"{interval.mean_estimate:+.2f}",
                        f"[{interval.mean_low:+.2f}, {interval.mean_high:+.2f}]",
                        f"{interval.weight_estimate:.2f}",
                        f"{boot.k_stability:.2f}",
                    )
                )
        return output

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    artifact_writer(
        "extension_bootstrap",
        ascii_table(
            ["forum", "users", "centre", "90% CI", "weight", "k stability"],
            rows,
            title="Extension -- bootstrap confidence for component centres",
        ),
    )
    # Small IDC crowd -> wider interval than the Dream Market components.
    widths = {}
    for forum, users, _, ci, _, _ in rows:
        low, high = ci.strip("[]").split(",")
        widths.setdefault(forum, []).append(float(high) - float(low))
    assert max(widths["Italian DarkNet Community"]) > min(
        widths["Dream Market forum"]
    )


def test_extension_crowd_size_sweep(benchmark, context, artifact_writer):
    rows = benchmark.pedantic(
        run_crowd_size_sweep,
        args=(context,),
        kwargs={"crowd_sizes": (10, 20, 40, 80, 160, 320)},
        rounds=1,
        iterations=1,
    )
    artifact_writer(
        "extension_crowd_size",
        ascii_table(
            ["users", "placed", "centre", "centre error", "90% CI width", "k"],
            [
                (
                    row.n_users_requested,
                    row.n_users_placed,
                    row.dominant_mean,
                    row.center_error,
                    row.ci_width,
                    row.k_recovered,
                )
                for row in rows
            ],
            title="Extension -- how many users does the method need?",
        ),
    )
    assert rows[-1].ci_width < rows[0].ci_width
    assert rows[-1].center_error <= 1.2


def test_extension_activity_sweep(benchmark, context, artifact_writer):
    rows = benchmark.pedantic(
        run_activity_sweep,
        args=(context,),
        kwargs={"rates": (0.1, 0.2, 0.5, 1.0, 3.0)},
        rounds=1,
        iterations=1,
    )
    artifact_writer(
        "extension_activity",
        ascii_table(
            ["posts/day", "median posts/user", "users placed", "max centre error", "k"],
            [
                (
                    row.posts_per_day,
                    row.median_posts_per_user,
                    row.n_users_placed,
                    row.max_center_error,
                    row.k_recovered,
                )
                for row in rows
            ],
            title="Extension -- recovery vs per-user activity "
            "(two-region mixture)",
        ),
    )
    assert rows[-1].k_recovered == 2
    assert rows[-1].max_center_error <= 1.5
