"""E-T2: Table II -- Gaussian fitting metrics for every placement.

Paper shape: every real fit's average/std point-by-point distance sits
around 0.007-0.014 / 0.006-0.016, an order of magnitude below the
baseline (the Malaysian fit shifted 12 hours: 0.081 / 0.070).
"""

from __future__ import annotations

from repro.analysis.experiments import run_table2
from repro.analysis.report import ascii_table

#: The paper's Table II values, for side-by-side printing.
_PAPER = {
    "Malaysian Twitter": (0.009, 0.013),
    "German Twitter": (0.009, 0.009),
    "French Twitter": (0.008, 0.010),
    "Synthetic dataset (a)": (0.011, 0.010),
    "Synthetic dataset (b)": (0.012, 0.010),
    "CRD Club": (0.007, 0.006),
    "Italian DarkNet Community": (0.014, 0.016),
    "Dream Market forum": (0.011, 0.008),
    "The Majestic Garden": (0.009, 0.011),
    "Pedo support community": (0.012, 0.010),
    "Baseline": (0.081, 0.070),
}


def test_table2_fitting_metrics(benchmark, context, artifact_writer):
    rows = benchmark.pedantic(
        run_table2,
        args=(context,),
        kwargs={"forum_scale": 1.0, "via_tor": False},
        rounds=1,
        iterations=1,
    )
    rendered = ascii_table(
        ["Dataset", "avg (ours)", "std (ours)", "avg (paper)", "std (paper)"],
        [
            (
                row.dataset,
                row.average,
                row.standard_deviation,
                _PAPER[row.dataset][0],
                _PAPER[row.dataset][1],
            )
            for row in rows
        ],
        title="Table II -- Gaussian fitting metrics (ours vs paper)",
    )
    artifact_writer("table2_fitting_metrics", rendered)

    by_label = {row.dataset: row for row in rows}
    baseline = by_label["Baseline"]
    fits = [row for row in rows if row.dataset != "Baseline"]
    # Shape claim 1: real fits are uniformly small.
    assert all(row.average < 0.03 for row in fits)
    # Shape claim 2: the baseline dwarfs every real fit.
    assert all(baseline.average > 3 * row.average for row in fits)
    # Shape claim 3: baseline magnitude matches the paper's ballpark.
    assert 0.03 < baseline.average < 0.15
