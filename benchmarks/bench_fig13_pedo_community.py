"""E-F13: Fig. 13 + Sec. V-F -- Pedo Support Community placement.

Paper shape: three components -- the highest between UTC-8 and UTC-7, a
second important one at UTC-3 and a smaller one at UTC+4 -- and, among
the five most active users, a southern-hemisphere majority (the paper
finds 3/5 southern, pointing at Southern Brazil / Paraguay).
"""

from __future__ import annotations

from _shared import component_zone_errors, render_forum_study

from repro.analysis.experiments import run_forum_case_study
from repro.core.hemisphere import HemisphereVerdict


def test_fig13_pedo_community(benchmark, context, artifact_writer):
    study = benchmark.pedantic(
        run_forum_case_study,
        args=("pedo_community", context),
        kwargs={"via_tor": True, "hemisphere_top_n": 5},
        rounds=1,
        iterations=1,
    )
    artifact_writer("fig13_pedo_community", render_forum_study(study, "Fig. 13"))
    report = study.report
    assert report.mixture.k == 3
    means = sorted(component.mean for component in report.mixture.components)
    assert -9.0 <= means[0] <= -6.0  # the US-Pacific component (UTC-8/-7)
    assert -4.2 <= means[1] <= -1.8  # the South-American component (UTC-3)
    assert 1.0 <= means[2] <= 5.5  # the small eastern component (UTC+4)
    assert max(component_zone_errors(study)) <= 2.5
    # Hemisphere test on the top-5: the southern component is visible.
    verdicts = [result.verdict for result in report.hemisphere]
    assert len(verdicts) == 5
    assert verdicts.count(HemisphereVerdict.SOUTHERN) >= 1
