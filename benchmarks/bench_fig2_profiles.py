"""E-F2: Fig. 2(a)/(b) -- German crowd profile vs the generic profile.

Paper claims reproduced in shape: the two profiles are nearly identical
once aligned (the paper reports ~0.9 average pairwise Pearson between any
two countries), the night trough falls at 4-5h local, the evening peak in
the 20-22h band.
"""

from __future__ import annotations

from repro.analysis.experiments import run_fig2_profiles
from repro.analysis.report import ascii_bars, series_csv


def test_fig2_regional_vs_generic(benchmark, context, artifact_writer):
    result = benchmark.pedantic(
        run_fig2_profiles, args=(context,), rounds=1, iterations=1
    )
    chart_a = ascii_bars(
        list(range(24)),
        list(result.regional.mass),
        title="Fig. 2(a) -- German crowd profile (civil local time)",
    )
    chart_b = ascii_bars(
        list(range(24)),
        list(result.generic.mass),
        title="Fig. 2(b) -- generic profile (all regions, aligned)",
    )
    csv = series_csv(
        ["hour", "german", "generic"],
        [
            (hour, result.regional[hour], result.generic[hour])
            for hour in range(24)
        ],
    )
    artifact_writer(
        "fig2_profiles",
        "\n\n".join(
            [
                chart_a,
                chart_b,
                f"Pearson regional vs generic: {result.pearson_regional_vs_generic:.3f}",
                f"Average pairwise Pearson:    {result.average_pairwise_pearson:.3f}"
                "  (paper: ~0.9)",
                csv,
            ]
        ),
    )
    assert result.pearson_regional_vs_generic > 0.8
    assert result.average_pairwise_pearson > 0.8
    assert 19 <= result.generic.peak_hour() <= 22
    assert 3 <= result.generic.trough_hour() <= 6
