"""E-F11: Fig. 11 -- Dream Market forum placement.

Paper shape: two components -- the larger in UTC+1 (Europe), the smaller
in UTC-6 (US central) -- with fit metrics avg 0.011 / std 0.008.
"""

from __future__ import annotations

from _shared import component_zone_errors, render_forum_study

from repro.analysis.experiments import run_forum_case_study


def test_fig11_dream_market(benchmark, context, artifact_writer):
    study = benchmark.pedantic(
        run_forum_case_study,
        args=("dream_market", context),
        kwargs={"via_tor": True},
        rounds=1,
        iterations=1,
    )
    artifact_writer("fig11_dream_market", render_forum_study(study, "Fig. 11"))
    report = study.report
    assert report.mixture.k == 2
    ranked = sorted(report.mixture.components, key=lambda c: -c.weight)
    # Who wins: Europe is the major component, US central the minor one.
    assert abs(ranked[0].mean - 1) <= 1.2
    assert abs(ranked[1].mean - (-6)) <= 1.2
    assert ranked[0].weight > ranked[1].weight
    assert max(component_zone_errors(study)) <= 1.2
    assert report.fit_metrics.average < 0.02
