"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class EmptyTraceError(ReproError):
    """An activity trace contained no events where at least one is required."""


class ProfileError(ReproError):
    """A profile is malformed (wrong length, negative mass, zero mass...)."""


class ZoneError(ReproError):
    """An unknown time zone or region was requested."""


class CalendarError(ReproError):
    """Invalid civil date arithmetic (bad month, day out of range...)."""


class FitError(ReproError):
    """A curve fit or EM run failed to produce a usable estimate."""


class DatasetError(ReproError):
    """A dataset is missing required fields or violates its invariants."""


class ForumError(ReproError):
    """A forum-engine operation was invalid (unknown user, bad thread...)."""


class TransientForumError(ForumError):
    """A forum call failed transiently (timeout, temporary unavailability).

    Retrying the same call may succeed; :class:`repro.reliability.RetryPolicy`
    treats this class (and only this class, by default) as retryable.
    """


class RetryExhaustedError(ReproError):
    """Every allowed attempt of a retried operation failed.

    Carries the number of *attempts* made and the *last_error* that caused
    the final failure, so callers can log an honest post-mortem.
    """

    def __init__(self, message: str, *, attempts: int = 0, last_error: BaseException | None = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class CircuitOpenError(ReproError):
    """A circuit breaker is open: the protected call was not even attempted."""


class CorruptTraceError(ReproError):
    """An activity trace violates basic sanity (non-finite or negative stamps)."""


class CheckpointError(ReproError):
    """A campaign checkpoint could not be written, read or applied."""


class TorError(ReproError):
    """A failure inside the simulated Tor substrate."""


class CircuitError(TorError):
    """A Tor circuit could not be built or used."""


class DescriptorError(TorError):
    """A hidden-service descriptor could not be published or fetched."""


class StorageError(ReproError):
    """The trace store rejected an operation (bad key, expired data...)."""
