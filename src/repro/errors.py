"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class EmptyTraceError(ReproError):
    """An activity trace contained no events where at least one is required."""


class ProfileError(ReproError):
    """A profile is malformed (wrong length, negative mass, zero mass...)."""


class ZoneError(ReproError):
    """An unknown time zone or region was requested."""


class CalendarError(ReproError):
    """Invalid civil date arithmetic (bad month, day out of range...)."""


class FitError(ReproError):
    """A curve fit or EM run failed to produce a usable estimate."""


class DatasetError(ReproError):
    """A dataset is missing required fields or violates its invariants."""


class ForumError(ReproError):
    """A forum-engine operation was invalid (unknown user, bad thread...)."""


class TorError(ReproError):
    """A failure inside the simulated Tor substrate."""


class CircuitError(TorError):
    """A Tor circuit could not be built or used."""


class DescriptorError(TorError):
    """A hidden-service descriptor could not be published or fetched."""


class StorageError(ReproError):
    """The trace store rejected an operation (bad key, expired data...)."""
