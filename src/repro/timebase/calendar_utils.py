"""Weekday and holiday calendars.

Sec. IV of the paper: *"we have filtered out periods of particularly low
activity, like holidays"*.  This module provides the holiday calendars the
dataset-polishing step uses, plus weekend helpers consumed by the synthetic
posting process (activity is modulated on weekends).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.timebase.clock import (
    CivilDate,
    civil_to_ordinal,
    ordinal_to_civil,
    weekday,
)

_SATURDAY = 5
_SUNDAY = 6


def is_weekend(ordinal: int) -> bool:
    """True when day *ordinal* is a Saturday or Sunday."""
    return weekday(ordinal) in (_SATURDAY, _SUNDAY)


@dataclass(frozen=True)
class HolidayCalendar:
    """A set of (month, day) fixed-date holidays, plus surrounding windows.

    ``window`` extends each holiday by that many days on each side, which
    models the low-activity periods around holidays the paper filters out.
    """

    name: str
    fixed_dates: frozenset[tuple[int, int]] = field(default_factory=frozenset)
    window: int = 0

    def is_holiday(self, ordinal: int) -> bool:
        """True when *ordinal* falls on (or within ``window`` days of) a holiday."""
        for delta in range(-self.window, self.window + 1):
            date = ordinal_to_civil(ordinal + delta)
            if (date.month, date.day) in self.fixed_dates:
                return True
        return False

    def holidays_in_year(self, year: int) -> list[int]:
        """Day ordinals of the holidays (excluding windows) in *year*."""
        ordinals: list[int] = []
        for month, day in sorted(self.fixed_dates):
            try:
                ordinals.append(civil_to_ordinal(CivilDate(year, month, day)))
            except Exception:  # pragma: no cover - (2, 30) style entries
                continue
        return ordinals


#: The generic western holiday calendar used to polish the datasets:
#: New Year (with a 1-day window) and the Christmas/New Year stretch.
_WESTERN_DATES = frozenset(
    {
        (1, 1),
        (12, 24),
        (12, 25),
        (12, 26),
        (12, 31),
        (5, 1),
    }
)


def standard_holidays(window: int = 1) -> HolidayCalendar:
    """The default holiday calendar used by the dataset polishing step."""
    return HolidayCalendar(name="western", fixed_dates=_WESTERN_DATES, window=window)
