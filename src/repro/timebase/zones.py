"""Time zones and the region registry.

The paper places crowds into the 24 integer time zones UTC-11 .. UTC+12 and
builds ground-truth profiles from 14 regions (countries or U.S. states /
Australian states) listed in its Table I.  This module defines:

* :class:`TimeZone` -- an integer-offset world time zone,
* :class:`Region` -- a named region with standard offset, hemisphere, DST
  rule and the Table I active-user count,
* the registry accessors :func:`get_zone`, :func:`get_region`,
  :func:`all_zones`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ZoneError
from repro.timebase.dst import (
    AU_RULE,
    BR_RULE,
    EU_RULE,
    NO_DST,
    US_RULE,
    DstRule,
)

#: The integer zone offsets used for placement, in plotting order.
ZONE_OFFSETS = tuple(range(-11, 13))


class Hemisphere(enum.Enum):
    """Hemisphere of a region (drives which DST convention applies)."""

    NORTHERN = "northern"
    SOUTHERN = "southern"


def normalize_offset(offset: int) -> int:
    """Map an arbitrary integer hour offset into the canonical -11..+12 range."""
    return (int(offset) + 11) % 24 - 11


@dataclass(frozen=True)
class TimeZone:
    """One of the 24 integer world time zones."""

    offset: int

    def __post_init__(self) -> None:
        if self.offset not in ZONE_OFFSETS:
            raise ZoneError(f"offset outside -11..+12: {self.offset}")

    @property
    def name(self) -> str:
        sign = "+" if self.offset >= 0 else "-"
        return f"UTC{sign}{abs(self.offset)}"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Region:
    """A geographic region with verified ground truth (paper Table I)."""

    name: str
    base_offset: int
    hemisphere: Hemisphere
    dst_rule: DstRule
    twitter_active_users: int
    language: str = "en"

    @property
    def uses_dst(self) -> bool:
        return self.dst_rule is not NO_DST

    def utc_offset_at(self, ordinal: int) -> int:
        """Effective UTC offset (standard + DST adjustment) on day *ordinal*."""
        return self.base_offset + self.dst_rule.offset_adjustment(ordinal)

    @property
    def zone(self) -> TimeZone:
        return TimeZone(normalize_offset(self.base_offset))


# Table I of the paper: active users by country/state, with each region's
# standard offset, hemisphere and DST rule family.  Turkey abolished DST in
# September 2016 by staying permanently on UTC+3; since the dataset year is
# 2016 we model it as a no-DST UTC+3 region.
_REGIONS = {
    "brazil": Region("Brazil", -3, Hemisphere.SOUTHERN, BR_RULE, 3763, "pt"),
    "california": Region("California", -8, Hemisphere.NORTHERN, US_RULE, 2868, "en"),
    "finland": Region("Finland", 2, Hemisphere.NORTHERN, EU_RULE, 73, "fi"),
    "france": Region("France", 1, Hemisphere.NORTHERN, EU_RULE, 2222, "fr"),
    "germany": Region("Germany", 1, Hemisphere.NORTHERN, EU_RULE, 470, "de"),
    "illinois": Region("Illinois", -6, Hemisphere.NORTHERN, US_RULE, 794, "en"),
    "italy": Region("Italy", 1, Hemisphere.NORTHERN, EU_RULE, 734, "it"),
    "japan": Region("Japan", 9, Hemisphere.NORTHERN, NO_DST, 3745, "ja"),
    "malaysia": Region("Malaysia", 8, Hemisphere.NORTHERN, NO_DST, 1714, "ms"),
    "new_south_wales": Region(
        "New South Wales", 10, Hemisphere.SOUTHERN, AU_RULE, 151, "en"
    ),
    "new_york": Region("New York", -5, Hemisphere.NORTHERN, US_RULE, 1417, "en"),
    "poland": Region("Poland", 1, Hemisphere.NORTHERN, EU_RULE, 375, "pl"),
    "turkey": Region("Turkey", 3, Hemisphere.NORTHERN, NO_DST, 1019, "tr"),
    "united_kingdom": Region(
        "United Kingdom", 0, Hemisphere.NORTHERN, EU_RULE, 3231, "en"
    ),
    # Extra regions used by the Dark Web forum case studies (not in Table I).
    "russia_moscow": Region("Russia (Moscow)", 3, Hemisphere.NORTHERN, NO_DST, 0, "ru"),
    "paraguay": Region("Paraguay", -4, Hemisphere.SOUTHERN, BR_RULE, 0, "es"),
    "us_pacific": Region("US Pacific", -8, Hemisphere.NORTHERN, US_RULE, 0, "en"),
    "caucasus": Region("Caucasus (UTC+4)", 4, Hemisphere.NORTHERN, NO_DST, 0, "ru"),
}

#: Region keys corresponding exactly to the paper's Table I rows.
TABLE1_KEYS = (
    "brazil",
    "california",
    "finland",
    "france",
    "germany",
    "illinois",
    "italy",
    "japan",
    "malaysia",
    "new_south_wales",
    "new_york",
    "poland",
    "turkey",
    "united_kingdom",
)


def get_region(key: str) -> Region:
    """Look up a region by its registry key (e.g. ``"germany"``)."""
    try:
        return _REGIONS[key.lower()]
    except KeyError:
        raise ZoneError(f"unknown region: {key!r}") from None


def region_keys() -> tuple[str, ...]:
    """All registered region keys (Table I plus case-study extras)."""
    return tuple(_REGIONS)


def get_zone(offset: int) -> TimeZone:
    """Return the canonical :class:`TimeZone` for an integer offset."""
    return TimeZone(normalize_offset(offset))


def all_zones() -> tuple[TimeZone, ...]:
    """The 24 integer time zones in plotting order (UTC-11 .. UTC+12)."""
    return tuple(TimeZone(offset) for offset in ZONE_OFFSETS)
