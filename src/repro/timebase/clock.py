"""Simulation clock and proleptic-Gregorian civil-date arithmetic.

All timestamps in the library are **seconds since the simulation epoch**,
which is 2016-01-01 00:00:00 UTC -- the year of the Twitter live-stream
grab the paper profiles were built from.  Timestamps are plain floats, so
they compose with numpy without any wrapper types.

The civil-date conversions are implemented from first principles (days
since epoch <-> (year, month, day)) rather than via :mod:`datetime`, so the
whole substrate is self-contained, deterministic and easily property-tested
against the standard library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import CalendarError

if TYPE_CHECKING:
    from numpy.typing import ArrayLike

    from repro.core.types import IntArray

#: Calendar year in which the simulation epoch (timestamp 0.0) falls.
EPOCH_YEAR = 2016

HOURS_PER_DAY = 24
SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 86400

#: Day of week of the epoch date 2016-01-01 (0=Monday ... 6=Sunday): Friday.
_EPOCH_WEEKDAY = 4

_DAYS_IN_MONTH = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)


def is_leap_year(year: int) -> bool:
    """Return True when *year* is a Gregorian leap year."""
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


def days_in_month(year: int, month: int) -> int:
    """Return the number of days in *month* of *year* (month is 1-based)."""
    if not 1 <= month <= 12:
        raise CalendarError(f"month out of range: {month}")
    if month == 2 and is_leap_year(year):
        return 29
    return _DAYS_IN_MONTH[month - 1]


def days_in_year(year: int) -> int:
    """Return 365 or 366 depending on leap status."""
    return 366 if is_leap_year(year) else 365


@dataclass(frozen=True, order=True)
class CivilDate:
    """A (year, month, day) triple on the proleptic Gregorian calendar."""

    year: int
    month: int
    day: int

    def __post_init__(self) -> None:
        if not 1 <= self.month <= 12:
            raise CalendarError(f"month out of range: {self.month}")
        if not 1 <= self.day <= days_in_month(self.year, self.month):
            raise CalendarError(
                f"day out of range for {self.year}-{self.month:02d}: {self.day}"
            )

    def __str__(self) -> str:
        return f"{self.year:04d}-{self.month:02d}-{self.day:02d}"


def civil_to_ordinal(date: CivilDate) -> int:
    """Convert a civil date to days since the epoch (2016-01-01 -> 0).

    Dates before the epoch yield negative ordinals.
    """
    ordinal = 0
    if date.year >= EPOCH_YEAR:
        for year in range(EPOCH_YEAR, date.year):
            ordinal += days_in_year(year)
    else:
        for year in range(date.year, EPOCH_YEAR):
            ordinal -= days_in_year(year)
    for month in range(1, date.month):
        ordinal += days_in_month(date.year, month)
    return ordinal + date.day - 1


def ordinal_to_civil(ordinal: int) -> CivilDate:
    """Convert days since the epoch back to a civil date."""
    year = EPOCH_YEAR
    remaining = int(ordinal)
    while remaining < 0:
        year -= 1
        remaining += days_in_year(year)
    while remaining >= days_in_year(year):
        remaining -= days_in_year(year)
        year += 1
    month = 1
    while remaining >= days_in_month(year, month):
        remaining -= days_in_month(year, month)
        month += 1
    return CivilDate(year, month, remaining + 1)


def weekday(ordinal: int) -> int:
    """Return the weekday of a day ordinal (0=Monday ... 6=Sunday)."""
    return (_EPOCH_WEEKDAY + int(ordinal)) % 7


def make_timestamp(
    year: int,
    month: int,
    day: int,
    hour: int = 0,
    minute: int = 0,
    second: float = 0.0,
) -> float:
    """Build a UTC timestamp (seconds since the simulation epoch).

    The time-of-day components follow the usual ranges; *hour* may be any
    integer, which allows convenient expressions like ``hour=25`` meaning
    01:00 on the following day (useful when applying zone offsets).
    """
    if not 0 <= minute < 60:
        raise CalendarError(f"minute out of range: {minute}")
    if not 0 <= second < 60:
        raise CalendarError(f"second out of range: {second}")
    ordinal = civil_to_ordinal(CivilDate(year, month, day))
    return (
        ordinal * SECONDS_PER_DAY
        + hour * SECONDS_PER_HOUR
        + minute * 60
        + second
    )


def day_ordinal(timestamp: float, offset_hours: float = 0.0) -> int:
    """Return the civil-day ordinal of *timestamp* in zone UTC+offset."""
    shifted = timestamp + offset_hours * SECONDS_PER_HOUR
    return int(shifted // SECONDS_PER_DAY)


def hour_of_day(timestamp: float, offset_hours: float = 0.0) -> int:
    """Return the hour-of-day (0..23) of *timestamp* in zone UTC+offset.

    This is the quantity the paper's Eq. 1 indicator ``a_d(h)`` is keyed on.
    """
    shifted = timestamp + offset_hours * SECONDS_PER_HOUR
    return int((shifted % SECONDS_PER_DAY) // SECONDS_PER_HOUR)


def split_day_hours(
    timestamps: "ArrayLike", offset_hours: float = 0.0
) -> "tuple[IntArray, IntArray]":
    """Vectorised :func:`day_ordinal` / :func:`hour_of_day` over an array.

    Returns ``(days, hours)`` int64 arrays; the element-wise results match
    the scalar functions.  This is the shared kernel of every Eq. 1
    profile builder (per-trace and batch).
    """
    stamps = np.asarray(timestamps, dtype=float)
    shifted = stamps + offset_hours * SECONDS_PER_HOUR
    days = np.floor_divide(shifted, SECONDS_PER_DAY).astype(np.int64)
    seconds = np.mod(shifted, SECONDS_PER_DAY)
    hours = np.floor_divide(seconds, SECONDS_PER_HOUR).astype(np.int64)
    # Guard the float artifact where a tiny negative remainder rounds the
    # modulo up to exactly SECONDS_PER_DAY, yielding hour 24.
    np.clip(hours, 0, HOURS_PER_DAY - 1, out=hours)
    return days, hours


def nth_weekday_of_month(year: int, month: int, target_weekday: int, n: int) -> int:
    """Day ordinal of the n-th *target_weekday* of *month* (n>=1).

    With ``n=-1`` returns the *last* such weekday of the month.  Used by the
    DST rule engine (e.g. "last Sunday of March").
    """
    if n == 0:
        raise CalendarError("n must be nonzero")
    first = civil_to_ordinal(CivilDate(year, month, 1))
    if n > 0:
        delta = (target_weekday - weekday(first)) % 7
        ordinal = first + delta + 7 * (n - 1)
        if ordinal_to_civil(ordinal).month != month:
            raise CalendarError(
                f"no {n}th weekday {target_weekday} in {year}-{month:02d}"
            )
        return ordinal
    last = first + days_in_month(year, month) - 1
    delta = (weekday(last) - target_weekday) % 7
    return last - delta + 7 * (n + 1)
