"""Daylight-saving-time rule engine.

The paper's hemisphere test (Sec. V-F) rests on one calendar fact: northern
regions advance their clocks roughly March..October while southern regions
advance them roughly October..February.  This module encodes the concrete
rule families used by the regions in Table I of the paper:

* ``EU_RULE``   -- last Sunday of March .. last Sunday of October, 01:00 UTC,
* ``US_RULE``   -- second Sunday of March .. first Sunday of November,
* ``AU_RULE``   -- first Sunday of October .. first Sunday of April (NSW),
* ``BR_RULE``   -- third Sunday of October .. third Sunday of February,
* ``NO_DST``    -- regions that do not observe DST (Japan, Malaysia...).

A rule answers one question: *is DST in effect on day ordinal d?* -- which
is all the posting simulator and hemisphere classifier need.  Transitions
are resolved at day granularity; the sub-day transition hour is irrelevant
to 24-bin activity profiles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.timebase.clock import (
    nth_weekday_of_month,
    ordinal_to_civil,
)

_SUNDAY = 6


class DstObservance(enum.Enum):
    """How a region relates to daylight saving time."""

    NONE = "none"
    NORTHERN = "northern"
    SOUTHERN = "southern"


@dataclass(frozen=True)
class DstRule:
    """A daylight-saving-time rule.

    ``start_month``/``start_n`` and ``end_month``/``end_n`` select the n-th
    Sunday of the respective months (n = -1 meaning the last Sunday).  For
    northern rules the DST interval is [start, end) within one year; for
    southern rules it wraps around the new year: [start, end-of-year] plus
    [new-year, end).
    """

    name: str
    observance: DstObservance
    start_month: int = 0
    start_n: int = 0
    end_month: int = 0
    end_n: int = 0
    shift_hours: int = 1

    def start_ordinal(self, year: int) -> int:
        """Day ordinal on which DST begins for *year*."""
        return nth_weekday_of_month(year, self.start_month, _SUNDAY, self.start_n)

    def end_ordinal(self, year: int) -> int:
        """Day ordinal on which DST ends for *year* (exclusive)."""
        return nth_weekday_of_month(year, self.end_month, _SUNDAY, self.end_n)

    def is_dst(self, ordinal: int) -> bool:
        """Return True when DST is in effect on day *ordinal*."""
        if self.observance is DstObservance.NONE:
            return False
        year = ordinal_to_civil(ordinal).year
        if self.observance is DstObservance.NORTHERN:
            return self.start_ordinal(year) <= ordinal < self.end_ordinal(year)
        # Southern rules wrap the new year: in effect from the spring start
        # (Oct-ish) through the end of the year, and from the start of the
        # year until the autumn end (Feb/Apr-ish).
        return ordinal >= self.start_ordinal(year) or ordinal < self.end_ordinal(year)

    def offset_adjustment(self, ordinal: int) -> int:
        """Hours to add to the standard offset on day *ordinal* (0 or shift)."""
        return self.shift_hours if self.is_dst(ordinal) else 0


NO_DST = DstRule(name="none", observance=DstObservance.NONE)

EU_RULE = DstRule(
    name="eu",
    observance=DstObservance.NORTHERN,
    start_month=3,
    start_n=-1,
    end_month=10,
    end_n=-1,
)

US_RULE = DstRule(
    name="us",
    observance=DstObservance.NORTHERN,
    start_month=3,
    start_n=2,
    end_month=11,
    end_n=1,
)

AU_RULE = DstRule(
    name="au",
    observance=DstObservance.SOUTHERN,
    start_month=10,
    start_n=1,
    end_month=4,
    end_n=1,
)

BR_RULE = DstRule(
    name="br",
    observance=DstObservance.SOUTHERN,
    start_month=10,
    start_n=3,
    end_month=2,
    end_n=3,
)

RULES = {rule.name: rule for rule in (NO_DST, EU_RULE, US_RULE, AU_RULE, BR_RULE)}
