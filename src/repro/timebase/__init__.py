"""Civil-time substrate: clocks, calendars, time zones and DST rules.

The geolocation method of the paper hinges entirely on civil-time
book-keeping: post timestamps are collected in UTC (after calibrating the
forum server offset) and interpreted against the 24 integer time zones of
the world, with daylight-saving-time corrections applied per region.  This
package implements that substrate from first principles:

* :mod:`repro.timebase.clock` -- the simulation epoch, timestamp arithmetic
  and proleptic-Gregorian civil date conversions,
* :mod:`repro.timebase.dst` -- rule-based daylight-saving-time engines for
  the northern and southern hemisphere conventions,
* :mod:`repro.timebase.zones` -- the time-zone/region registry,
* :mod:`repro.timebase.calendar_utils` -- weekday/holiday calendars used to
  filter low-activity periods out of the datasets (Sec. IV of the paper).
"""

from repro.timebase.clock import (
    EPOCH_YEAR,
    HOURS_PER_DAY,
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    CivilDate,
    civil_to_ordinal,
    day_ordinal,
    hour_of_day,
    is_leap_year,
    make_timestamp,
    ordinal_to_civil,
    weekday,
)
from repro.timebase.dst import (
    DstObservance,
    DstRule,
    EU_RULE,
    US_RULE,
    AU_RULE,
    BR_RULE,
    NO_DST,
)
from repro.timebase.zones import (
    Hemisphere,
    Region,
    TimeZone,
    ZONE_OFFSETS,
    all_zones,
    get_region,
    get_zone,
    normalize_offset,
)
from repro.timebase.calendar_utils import (
    HolidayCalendar,
    is_weekend,
    standard_holidays,
)

__all__ = [
    "EPOCH_YEAR",
    "HOURS_PER_DAY",
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "CivilDate",
    "civil_to_ordinal",
    "day_ordinal",
    "hour_of_day",
    "is_leap_year",
    "make_timestamp",
    "ordinal_to_civil",
    "weekday",
    "DstObservance",
    "DstRule",
    "EU_RULE",
    "US_RULE",
    "AU_RULE",
    "BR_RULE",
    "NO_DST",
    "Hemisphere",
    "Region",
    "TimeZone",
    "ZONE_OFFSETS",
    "all_zones",
    "get_region",
    "get_zone",
    "normalize_offset",
    "HolidayCalendar",
    "is_weekend",
    "standard_holidays",
]
