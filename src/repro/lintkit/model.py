"""Data model of the lint engine: findings and per-file context.

A :class:`Finding` is one rule violation at one source location; the
:class:`FileContext` is everything a rule may ask about the file being
checked -- the parsed tree, a parent map, the source lines, and an
import-alias table that resolves local names back to the fully dotted
origin (``np`` -> ``numpy``, ``from datetime import datetime`` makes
``datetime`` resolve to ``datetime.datetime``).  Rules stay purely
lexical: no imports are executed, no module objects are inspected.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import PurePosixPath

__all__ = ["Finding", "FileContext", "SUPPRESS_PATTERN"]

#: ``# darkcrowd: disable=DC001`` or ``disable=DC001,DC007`` or
#: ``disable=all`` -- suppresses matching findings on the same line.
SUPPRESS_PATTERN = re.compile(
    r"#\s*darkcrowd:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass
class FileContext:
    """Everything the rules can ask about the file under analysis."""

    path: str
    tree: ast.Module
    lines: list[str]
    #: local name -> fully dotted origin ("np" -> "numpy").
    aliases: dict[str, str] = field(default_factory=dict)
    #: child AST node -> parent AST node, for lifecycle/ancestry rules.
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    #: physical line -> rule ids suppressed there ("all" disables every rule).
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    findings: list[Finding] = field(default_factory=list)

    # -- path predicates (rules scope themselves with these) ---------------

    @property
    def parts(self) -> tuple[str, ...]:
        return PurePosixPath(self.path.replace("\\", "/")).parts

    @property
    def name(self) -> str:
        return self.parts[-1] if self.parts else self.path

    @property
    def is_test_code(self) -> bool:
        """Test modules and fixtures: under ``tests/`` or ``test_*.py``."""
        return (
            "tests" in self.parts
            or self.name.startswith("test_")
            or self.name == "conftest.py"
        )

    @property
    def is_library_code(self) -> bool:
        """Shipped package code (anything under the ``repro`` package)."""
        return "repro" in self.parts and not self.is_test_code

    def path_endswith(self, *suffixes: str) -> bool:
        """True when the posixised path ends with any of *suffixes*."""
        posix = "/".join(self.parts)
        return any(posix.endswith(suffix) for suffix in suffixes)

    # -- name resolution ---------------------------------------------------

    def resolve(self, node: ast.AST) -> str | None:
        """Fully dotted origin of a ``Name``/``Attribute`` chain, or None.

        ``np.random.rand`` resolves to ``numpy.random.rand`` when the file
        did ``import numpy as np``; a chain rooted in anything but an
        imported name (a local variable, a call result) resolves to None.
        """
        chain: list[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self.aliases.get(node.id)
        if origin is None:
            return None
        chain.append(origin)
        return ".".join(reversed(chain))

    # -- reporting ---------------------------------------------------------

    def report(self, rule_id: str, node: ast.AST, message: str) -> None:
        """Record a finding unless the line carries a suppression."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        suppressed = self.suppressions.get(line, set())
        if "all" in suppressed or rule_id in suppressed:
            return
        self.findings.append(
            Finding(
                path=self.path,
                line=line,
                col=col,
                rule_id=rule_id,
                message=message,
            )
        )
