"""Baseline suppression: adopt the linter without fixing history first.

A baseline file records currently-accepted findings; subsequent runs
drop exact matches and fail only on *new* findings.  Entries key on
``(path, rule, hash-of-stripped-source-line)`` rather than line
numbers, so unrelated edits that shift lines do not resurrect
baselined findings -- but editing the offending line itself (or fixing
it) invalidates the entry, which is the point.

The shipped repo carries **no** baseline: every real finding was fixed
(ISSUE 10 acceptance), and CI fails if a baseline file with entries
ever appears.  The mechanism exists for downstream forks and for
staged adoption of future rules.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.lintkit.model import Finding

__all__ = [
    "BASELINE_KIND",
    "BASELINE_VERSION",
    "BaselineEntry",
    "filter_findings",
    "load_baseline",
    "render_baseline",
]

BASELINE_KIND = "darkcrowd-lint-baseline"
BASELINE_VERSION = 1

#: Resolves a finding to its baseline key inputs: the normalized
#: (project-root-relative, posix) path and the source line text the
#: finding points at ("" when unavailable).
KeyResolver = Callable[[Finding], "tuple[str, str]"]


@dataclass(frozen=True, order=True)
class BaselineEntry:
    path: str
    rule: str
    line_hash: str


def _hash_line(line: str) -> str:
    return hashlib.sha256(line.strip().encode("utf-8")).hexdigest()[:16]


def entry_for(finding: Finding, resolver: KeyResolver) -> BaselineEntry:
    path, line_text = resolver(finding)
    return BaselineEntry(
        path=path, rule=finding.rule_id, line_hash=_hash_line(line_text)
    )


def load_baseline(path: "str | Path") -> set[BaselineEntry]:
    """Parse a baseline document; raises ValueError on malformed input."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ValueError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("kind") != BASELINE_KIND
        or not isinstance(payload.get("entries"), list)
    ):
        raise ValueError(
            f"baseline {path} is not a {BASELINE_KIND} document"
        )
    entries: set[BaselineEntry] = set()
    for item in payload["entries"]:
        if not isinstance(item, dict):
            raise ValueError(f"baseline {path} has a non-object entry")
        try:
            entries.add(
                BaselineEntry(
                    path=item["path"],
                    rule=item["rule"],
                    line_hash=item["line_hash"],
                )
            )
        except KeyError as exc:
            raise ValueError(
                f"baseline {path} entry is missing key {exc.args[0]!r}"
            ) from exc
    return entries


def render_baseline(
    findings: Sequence[Finding], resolver: KeyResolver
) -> str:
    """The baseline document accepting exactly *findings*."""
    entries = sorted({entry_for(finding, resolver) for finding in findings})
    payload = {
        "kind": BASELINE_KIND,
        "version": BASELINE_VERSION,
        "n_entries": len(entries),
        "entries": [
            {"path": e.path, "rule": e.rule, "line_hash": e.line_hash}
            for e in entries
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def filter_findings(
    findings: Sequence[Finding],
    baseline: set[BaselineEntry],
    resolver: KeyResolver,
) -> "tuple[list[Finding], int]":
    """Drop baselined findings; returns (kept, n_suppressed)."""
    kept: list[Finding] = []
    suppressed = 0
    for finding in findings:
        if entry_for(finding, resolver) in baseline:
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed
