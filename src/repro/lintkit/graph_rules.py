"""Whole-program rules DC012..DC016 over the project index.

Per-file rules (:mod:`repro.lintkit.rules`) see one AST at a time;
these rules see the whole program -- the call graph, the public API
surface, and cross-artifact state (DESIGN.md, ``api_surface.json``).
They consume the pre-extracted :class:`~repro.lintkit.index.ModuleFacts`
rather than re-walking trees, which is what lets the warm-cache path
skip parsing entirely.

Findings route through :class:`ProjectContext.report`, which applies
the same per-line ``# darkcrowd: disable=`` suppressions as the
per-file engine (the index carries each file's suppression table) and
restricts module-anchored findings to the files the user asked about,
so ``--changed`` scoping stays quiet about untouched code while the
graph itself is always whole-program.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar

from repro.lintkit.index import ModuleFacts, ProjectIndex
from repro.lintkit.model import Finding
from repro.lintkit.registry import GraphRule, register

__all__ = [
    "API_SURFACE_FILE",
    "API_SURFACE_KIND",
    "API_SURFACE_VERSION",
    "ProjectContext",
    "render_api_surface",
]

#: Committed baseline of the public API surface, at the project root.
API_SURFACE_FILE = "api_surface.json"
API_SURFACE_KIND = "darkcrowd-api-surface"
API_SURFACE_VERSION = 1


@dataclass
class ProjectContext:
    """Everything a :class:`GraphRule` can ask about the project."""

    root: Path
    index: ProjectIndex
    #: root-relative path -> the path string findings should display
    #: (how the file was named on the command line).  Keys define the
    #: report scope: module-anchored findings outside it are dropped.
    display: dict[str, str]
    findings: list[Finding] = field(default_factory=list)
    _artifact_cache: dict[str, "str | None"] = field(default_factory=dict)

    def report(
        self,
        rule_id: str,
        facts: ModuleFacts,
        lineno: int,
        col: int,
        message: str,
    ) -> None:
        """Record a module-anchored finding (scope + suppression aware)."""
        display = self.display.get(facts.path)
        if display is None:
            return  # real, but outside what this run was asked to report on
        suppressed = facts.suppressions.get(lineno, [])
        if "all" in suppressed or rule_id in suppressed:
            return
        self.findings.append(
            Finding(
                path=display, line=lineno, col=col, rule_id=rule_id, message=message
            )
        )

    def report_artifact(
        self, rule_id: str, artifact: str, message: str, lineno: int = 1
    ) -> None:
        """Record a finding against a non-Python artifact (always in scope)."""
        self.findings.append(
            Finding(path=artifact, line=lineno, col=0, rule_id=rule_id, message=message)
        )

    def artifact_text(self, name: str) -> "str | None":
        """Contents of ``<root>/<name>``, or None when absent/unreadable."""
        if name not in self._artifact_cache:
            try:
                text: "str | None" = (self.root / name).read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError):
                text = None
            self._artifact_cache[name] = text
        return self._artifact_cache[name]


def render_api_surface(index: ProjectIndex) -> str:
    """The committed ``api_surface.json`` document for *index*."""
    payload = {
        "kind": API_SURFACE_KIND,
        "version": API_SURFACE_VERSION,
        "api": index.public_api(),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


@register
class UnseededRngReachable(GraphRule):
    """DC012: unseeded RNG construction reachable from a public entry point.

    DC002 catches module-global draws lexically; this rule follows the
    call graph, so a ``default_rng()`` buried three private helpers deep
    under a public function is flagged too, while dead private code is
    not.  A ``field(default_factory=np.random.default_rng)`` dataclass
    default counts: it constructs a fresh unseeded generator at every
    instantiation, which is exactly how irreproducibility sneaks into
    per-host simulations.
    """

    rule_id: ClassVar[str] = "DC012"
    summary: ClassVar[str] = "no unseeded RNG reachable from public entry points"
    rationale: ClassVar[str] = (
        "Placement results must replay bit-identically from a manifest seed; "
        "an unseeded generator anywhere under the public API breaks replay "
        "even when every documented entry point takes a seed."
    )

    _HOW = {
        "no-seed": "with no seed",
        "none-seed": "with seed=None",
        "default-factory": "as an unseeded dataclass default_factory",
    }

    def check(self, project: ProjectContext) -> None:
        reached = project.index.reachable_from_entry_points()
        for facts in project.index.modules.values():
            if not facts.is_library or facts.is_test:
                continue
            for fn in facts.functions:
                if not fn.rng_sites:
                    continue
                node = f"{facts.module}.{fn.qualname}"
                entry = reached.get(node)
                if entry is None:
                    continue
                via = "" if entry == node else f" via {entry}"
                for site in fn.rng_sites:
                    project.report(
                        self.rule_id,
                        facts,
                        site.lineno,
                        site.col,
                        f"{site.factory}() constructed {self._HOW[site.how]} is "
                        f"reachable from the public API{via}; thread an "
                        "explicit seeded Generator instead",
                    )


@register
class UnorderedIterationIntoSink(GraphRule):
    """DC013: set-derived iteration order flowing into a serialization sink.

    Set iteration order depends on insertion history and hash
    randomization; letting it reach ``json.dump``/``pickle``/checkpoint
    writers makes artifacts differ between identical runs.  The
    sanctioned fix is ``sorted(...)``, which the dataflow layer treats
    as a terminal ordered origin.
    """

    rule_id: ClassVar[str] = "DC013"
    summary: ClassVar[str] = "no unordered set iteration into serialization sinks"
    rationale: ClassVar[str] = (
        "Checkpoints and reports are diffed and hashed across runs; "
        "set-ordered content makes equal states produce unequal bytes."
    )

    def check(self, project: ProjectContext) -> None:
        for facts in project.index.modules.values():
            if facts.is_test:
                continue
            for fn in facts.functions:
                for taint in fn.sink_taints:
                    project.report(
                        self.rule_id,
                        facts,
                        taint.lineno,
                        taint.col,
                        f"value derived from {taint.source} (line "
                        f"{taint.source_line}) flows into {taint.sink}; "
                        "serialize a sorted() view so byte output is "
                        "deterministic",
                    )


@register
class UnpicklablePoolDispatch(GraphRule):
    """DC014: ProcessPoolExecutor dispatch that cannot survive pickling.

    Lambdas and closures are not picklable, and locks/file handles/
    memmaps must never be shipped to workers; all of them fail at
    runtime (or worse, only on the spawn start method).  The sharded
    engine's convention is module-level worker functions taking plain
    data -- this rule makes that convention load-bearing.
    """

    rule_id: ClassVar[str] = "DC014"
    summary: ClassVar[str] = "process-pool workers must be picklable module functions"
    rationale: ClassVar[str] = (
        "Fan-out paths must behave identically under fork and spawn; "
        "closure workers and captured locks break spawn and hide "
        "platform-dependent bugs."
    )

    _MESSAGES = {
        "lambda-worker": (
            "lambda submitted to a process pool; lambdas cannot be pickled "
            "-- use a module-level worker function"
        ),
        "closure-worker": (
            "nested function {detail!r} submitted to a process pool; "
            "closures cannot be pickled -- hoist the worker to module level"
        ),
        "unpicklable-arg": (
            "argument constructed from {detail} crosses a process-pool "
            "boundary; pass plain picklable data instead"
        ),
    }

    def check(self, project: ProjectContext) -> None:
        for facts in project.index.modules.values():
            if facts.is_test:
                continue
            for fn in facts.functions:
                for hazard in fn.pool_hazards:
                    template = self._MESSAGES[hazard.hazard]
                    project.report(
                        self.rule_id,
                        facts,
                        hazard.lineno,
                        hazard.col,
                        template.format(detail=hazard.detail),
                    )


@register
class CheckpointVersionDrift(GraphRule):
    """DC015: checkpoint version literals drifting from the negotiated set.

    ``streaming.py`` declares the envelope contract
    (STREAM_CHECKPOINT_KIND / _VERSION / _COMPAT); every library call
    site touching that kind must route versions through those names.  A
    hard-coded literal matches today and silently diverges the day the
    format bumps -- exactly the drift version negotiation exists to
    prevent.  Inert when no module declares the contract.
    """

    rule_id: ClassVar[str] = "DC015"
    summary: ClassVar[str] = "checkpoint versions must come from the negotiated set"
    rationale: ClassVar[str] = (
        "Version negotiation (PR 7) only protects readers if writers and "
        "readers share one source of truth for kind and version."
    )

    def check(self, project: ProjectContext) -> None:
        streaming = self._contract_module(project.index)
        if streaming is None:
            return
        kind = streaming.constants.get("STREAM_CHECKPOINT_KIND")
        version = streaming.constants.get("STREAM_CHECKPOINT_VERSION")
        compat = streaming.constants.get("STREAM_CHECKPOINT_COMPAT")
        if (
            not isinstance(kind, str)
            or not isinstance(version, int)
            or not isinstance(compat, tuple)
        ):
            return
        if version not in compat:
            project.report(
                self.rule_id,
                streaming,
                1,
                0,
                f"STREAM_CHECKPOINT_VERSION={version} is not in the "
                f"negotiated reader set STREAM_CHECKPOINT_COMPAT={compat}; "
                "current writers would produce checkpoints no reader accepts",
            )
        for facts in project.index.modules.values():
            if facts.is_test or not facts.is_library:
                continue
            for fn in facts.functions:
                for call in fn.checkpoint_calls:
                    if not self._targets_contract(call.kind_desc, kind):
                        continue
                    self._check_version(project, facts, call, compat)

    @staticmethod
    def _contract_module(index: ProjectIndex) -> "ModuleFacts | None":
        for facts in index.modules.values():
            if not facts.is_library:
                continue
            if {
                "STREAM_CHECKPOINT_KIND",
                "STREAM_CHECKPOINT_VERSION",
                "STREAM_CHECKPOINT_COMPAT",
            } <= set(facts.constants):
                return facts
        return None

    @staticmethod
    def _targets_contract(kind_desc: "tuple[str, object]", kind: str) -> bool:
        desc_kind, desc_value = kind_desc
        if desc_kind == "const":
            return desc_value == kind
        if desc_kind == "name":
            return str(desc_value).endswith("STREAM_CHECKPOINT_KIND")
        return False

    def _check_version(self, project, facts, call, compat) -> None:
        desc_kind, desc_value = call.version_desc
        if desc_kind == "const" and isinstance(desc_value, int):
            if desc_value not in compat:
                message = (
                    f"{call.callee}() uses version literal {desc_value}, "
                    f"which drifted outside the negotiated reader set "
                    f"{compat}; use STREAM_CHECKPOINT_VERSION / "
                    "STREAM_CHECKPOINT_COMPAT"
                )
            else:
                message = (
                    f"{call.callee}() hard-codes version {desc_value} for the "
                    "streaming checkpoint kind; route it through "
                    "STREAM_CHECKPOINT_VERSION so format bumps cannot drift"
                )
            project.report(self.rule_id, facts, call.lineno, call.col, message)
        elif desc_kind == "tuple":
            project.report(
                self.rule_id,
                facts,
                call.lineno,
                call.col,
                f"{call.callee}() hard-codes accepted versions "
                f"{desc_value} for the streaming checkpoint kind; use "
                "STREAM_CHECKPOINT_COMPAT so reader negotiation cannot drift",
            )


@register
class ApiSurfaceDrift(GraphRule):
    """DC016: public API drift without updating the recorded surface.

    The committed ``api_surface.json`` is the acknowledged public
    surface; any added, removed, or re-signed public function must come
    with a regenerated baseline (``darkcrowd lint --write-api-baseline``)
    -- a deliberate speed bump that makes API changes reviewable events.
    The companion cross-artifact check keeps the DESIGN.md Sec. 9
    invariants table covering every registered rule.  Both halves are
    inert when their artifact is absent (incremental adoption).
    """

    rule_id: ClassVar[str] = "DC016"
    summary: ClassVar[str] = "public API changes must update the recorded surface"
    rationale: ClassVar[str] = (
        "Downstream notebooks and the paper pipeline pin against the "
        "documented surface; silent signature drift invalidates them "
        "without any test failing."
    )

    def check(self, project: ProjectContext) -> None:
        self._check_design_table(project)
        self._check_surface(project)

    def _check_design_table(self, project: ProjectContext) -> None:
        design = project.artifact_text("DESIGN.md")
        if design is None:
            return
        from repro.lintkit.registry import all_rules

        missing = sorted(
            rule_id for rule_id in all_rules() if rule_id not in design
        )
        if missing:
            project.report_artifact(
                self.rule_id,
                "DESIGN.md",
                "invariants table (Sec. 9) has no entry for: "
                + ", ".join(missing),
            )

    def _check_surface(self, project: ProjectContext) -> None:
        raw = project.artifact_text(API_SURFACE_FILE)
        if raw is None:
            return
        try:
            payload = json.loads(raw)
        except ValueError:
            project.report_artifact(
                self.rule_id,
                API_SURFACE_FILE,
                "file is not valid JSON; regenerate with "
                "darkcrowd lint --write-api-baseline",
            )
            return
        baseline = payload.get("api") if isinstance(payload, dict) else None
        if not isinstance(baseline, dict):
            project.report_artifact(
                self.rule_id,
                API_SURFACE_FILE,
                'file has no "api" table; regenerate with '
                "darkcrowd lint --write-api-baseline",
            )
            return
        current = project.index.public_api()
        for name, signature in current.items():
            recorded = baseline.get(name)
            located = project.index.symbols.get(name)
            if located is None:
                continue
            facts, fn = located
            if recorded is None:
                project.report(
                    self.rule_id,
                    facts,
                    fn.lineno,
                    0,
                    f"new public API {name}{signature} is not recorded in "
                    f"{API_SURFACE_FILE}; run darkcrowd lint "
                    "--write-api-baseline and document invariants in "
                    "DESIGN.md Sec. 9 if any changed",
                )
            elif recorded != signature:
                project.report(
                    self.rule_id,
                    facts,
                    fn.lineno,
                    0,
                    f"public API signature changed: {name}{signature} "
                    f"(recorded: {recorded}); update {API_SURFACE_FILE} via "
                    "--write-api-baseline and the DESIGN.md Sec. 9 entry "
                    "if the invariant moved",
                )
        for name in sorted(set(baseline) - set(current)):
            project.report_artifact(
                self.rule_id,
                API_SURFACE_FILE,
                f"recorded public API {name} no longer exists; regenerate "
                "with darkcrowd lint --write-api-baseline",
            )
