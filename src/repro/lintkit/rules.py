"""The project rules: every convention the pipeline's correctness leans on.

Each rule encodes one invariant that, when silently broken, destroys a
property the paper's methodology needs -- bit-reproducible Eq. 1
profiles, deterministic retries and checkpoints, resumable campaigns,
leak-free parallel kernels, or the streaming engine's incremental win.
The rule ids are stable (``DC001`` .. ``DC011``) and suppressible per
line with ``# darkcrowd: disable=DCnnn``.
"""

from __future__ import annotations

import ast
import re
from typing import ClassVar

from repro.lintkit.model import FileContext
from repro.lintkit.registry import Rule, register

__all__ = [
    "WallClockRule",
    "GlobalRngRule",
    "ObsNameRule",
    "PrintInLibraryRule",
    "FloatEqualityRule",
    "SharedMemoryLifecycleRule",
    "MutableDefaultRule",
    "SwallowedExceptionRule",
    "ColdSnapshotRule",
    "BatchObserveRule",
    "NakedTimingRule",
]

#: Wall-clock reads that make a run irreproducible when taken outside the
#: injectable clock seam.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Constructors of *seedable* RNG state; module-level draws are the hazard.
_SEEDED_RNG_FACTORIES = frozenset({"default_rng"})

_METRIC_FACTORIES = frozenset(
    {
        "repro.obs.metrics.counter",
        "repro.obs.metrics.gauge",
        "repro.obs.metrics.histogram",
    }
)
_SPAN_FACTORIES = frozenset({"repro.obs.tracing.trace_span"})

#: ``repro_<subsystem>_<name>_<unit>``: at least three lowercase segments
#: after the ``repro`` prefix, the last being a recognised unit.
_METRIC_NAME = re.compile(r"^repro(_[a-z][a-z0-9]*){3,}$")
_METRIC_UNITS = frozenset({"total", "seconds", "bytes", "users", "count", "ratio"})
_SPAN_NAME = re.compile(r"^[a-z][a-z0-9_]*$")


def _first_positional_string(node: ast.Call) -> "str | None":
    if not node.args:
        return None
    first = node.args[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return first.value
    return None


@register
class WallClockRule(Rule):
    """DC001: naked wall-clock reads outside the injectable clock seam."""

    rule_id: ClassVar[str] = "DC001"
    summary: ClassVar[str] = (
        "wall-clock call (time.time / datetime.now / datetime.utcnow) "
        "outside reliability/clocks.py"
    )
    rationale: ClassVar[str] = (
        "Retry backoff, checkpoint timestamps and manifests must read time "
        "through repro.reliability.clocks so tests inject a ManualClock and "
        "two runs of the same campaign are bit-identical."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.path_endswith("reliability/clocks.py")

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        resolved = ctx.resolve(node.func)
        if resolved in _WALL_CLOCK_CALLS:
            ctx.report(
                self.rule_id,
                node,
                f"naked wall-clock read {resolved}(); route it through the "
                "injectable seam in repro.reliability.clocks",
            )


@register
class GlobalRngRule(Rule):
    """DC002: draws from the unseeded process-global RNG state."""

    rule_id: ClassVar[str] = "DC002"
    summary: ClassVar[str] = (
        "unseeded global RNG (np.random.* module functions, bare random.*)"
    )
    rationale: ClassVar[str] = (
        "Synthetic crowds, fault schedules and EM reseeds must draw from an "
        "explicitly seeded Generator / random.Random instance, never the "
        "shared module-level state another import can perturb."
    )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        resolved = ctx.resolve(node.func)
        if resolved is None:
            return
        for prefix, label in (("numpy.random.", "numpy"), ("random.", "stdlib")):
            if not resolved.startswith(prefix):
                continue
            tail = resolved[len(prefix):]
            # Constructors of seedable state (default_rng, Random,
            # RandomState, PCG64, ...) are the sanctioned path; the
            # hazard is lowercase module-level draw functions.
            if "." in tail or not tail or not tail[0].islower():
                return
            if tail in _SEEDED_RNG_FACTORIES:
                return
            ctx.report(
                self.rule_id,
                node,
                f"{resolved}() draws from the {label} module-global RNG; "
                "use a seeded np.random.default_rng(seed) / random.Random(seed) "
                "instance instead",
            )
            return


@register
class ObsNameRule(Rule):
    """DC003: metric/span name literals violating the naming convention."""

    rule_id: ClassVar[str] = "DC003"
    summary: ClassVar[str] = (
        "metric name not repro_<subsystem>_<name>_<unit>, or span name not "
        "lower_snake_case"
    )
    rationale: ClassVar[str] = (
        "Dashboards and the perf-gate scripts key on stable metric names; a "
        "name outside the convention silently falls off every query."
    )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        resolved = ctx.resolve(node.func)
        if resolved in _METRIC_FACTORIES:
            name = _first_positional_string(node)
            if name is None:
                return
            if not _METRIC_NAME.match(name) or name.rsplit("_", 1)[-1] not in _METRIC_UNITS:
                units = "/".join(sorted(_METRIC_UNITS))
                ctx.report(
                    self.rule_id,
                    node,
                    f"metric name {name!r} must match "
                    f"repro_<subsystem>_<name>_<unit> with unit in {units}",
                )
        elif resolved in _SPAN_FACTORIES:
            name = _first_positional_string(node)
            if name is not None and not _SPAN_NAME.match(name):
                ctx.report(
                    self.rule_id,
                    node,
                    f"span name {name!r} must be lower_snake_case",
                )


@register
class PrintInLibraryRule(Rule):
    """DC004: ``print()`` in library code outside the CLI."""

    rule_id: ClassVar[str] = "DC004"
    summary: ClassVar[str] = "print() in library code outside cli.py"
    rationale: ClassVar[str] = (
        "Library output goes through repro.obs logging (rate-limited, "
        "machine-parseable, silenceable); stray prints corrupt piped CLI "
        "output and cannot be turned off by embedders."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.is_library_code and ctx.name != "cli.py"

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            ctx.report(
                self.rule_id,
                node,
                "print() in library code; use repro.obs.logs or return the "
                "text to the caller",
            )


@register
class FloatEqualityRule(Rule):
    """DC005: exact float equality in the numeric core."""

    rule_id: ClassVar[str] = "DC005"
    summary: ClassVar[str] = "float == / != literal comparison in core/ numerics"
    rationale: ClassVar[str] = (
        "Profile masses and EMD scores arrive through summation whose "
        "rounding differs across BLAS builds; exact equality makes placement "
        "decisions depend on the machine instead of the data.  Compare "
        "against tolerances, or use an explicit None/flag sentinel."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return "core" in ctx.parts

    def visit_Compare(self, node: ast.Compare, ctx: FileContext) -> None:
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            pair = (operands[index], operands[index + 1])
            if any(
                isinstance(operand, ast.Constant)
                and type(operand.value) is float
                for operand in pair
            ):
                ctx.report(
                    self.rule_id,
                    node,
                    "exact float equality; use math.isclose / a tolerance, "
                    "or a non-float sentinel",
                )
                return


@register
class SharedMemoryLifecycleRule(Rule):
    """DC006: SharedMemory blocks acquired without guaranteed release."""

    rule_id: ClassVar[str] = "DC006"
    summary: ClassVar[str] = (
        "SharedMemory(...) outside a with-block or try whose finally "
        "closes/unlinks"
    )
    rationale: ClassVar[str] = (
        "A leaked shared_memory block survives the process on /dev/shm; a "
        "long campaign that leaks one per batch starves the host.  Every "
        "acquisition must sit under a with-block or a try whose finally "
        "calls close()/unlink()."
    )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        func = node.func
        name = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else None
        )
        if name != "SharedMemory":
            return
        if self._released(node, ctx):
            return
        ctx.report(
            self.rule_id,
            node,
            "SharedMemory acquired without a with-block or a finally that "
            "close()s/unlink()s it; the block outlives the process on leak",
        )

    @staticmethod
    def _released(node: ast.AST, ctx: FileContext) -> bool:
        child: ast.AST = node
        parent = ctx.parents.get(child)
        while parent is not None:
            if isinstance(parent, ast.withitem):
                return True
            if isinstance(parent, ast.Try) and child in parent.body:
                for final_node in parent.finalbody:
                    for inner in ast.walk(final_node):
                        if (
                            isinstance(inner, ast.Call)
                            and isinstance(inner.func, ast.Attribute)
                            and inner.func.attr in ("close", "unlink")
                        ):
                            return True
            child = parent
            parent = ctx.parents.get(child)
        return False


@register
class MutableDefaultRule(Rule):
    """DC007: mutable default arguments."""

    rule_id: ClassVar[str] = "DC007"
    summary: ClassVar[str] = "mutable default argument ([], {}, set(), list()...)"
    rationale: ClassVar[str] = (
        "A mutable default is shared across every call; state bleeding "
        "between invocations is exactly the cross-run contamination the "
        "pipeline's determinism tests cannot detect."
    )

    def _check_arguments(self, node: ast.AST, args: ast.arguments, ctx: FileContext) -> None:
        defaults = list(args.defaults) + [d for d in args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set")
            )
            if mutable:
                ctx.report(
                    self.rule_id,
                    default,
                    "mutable default argument is shared across calls; default "
                    "to None (or a tuple/frozenset) and build inside the body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: FileContext) -> None:
        self._check_arguments(node, node.args, ctx)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef, ctx: FileContext) -> None:
        self._check_arguments(node, node.args, ctx)

    def visit_Lambda(self, node: ast.Lambda, ctx: FileContext) -> None:
        self._check_arguments(node, node.args, ctx)


@register
class SwallowedExceptionRule(Rule):
    """DC008: broad exception handlers that silently swallow."""

    rule_id: ClassVar[str] = "DC008"
    summary: ClassVar[str] = "except Exception / bare except with a pass-only body"
    rationale: ClassVar[str] = (
        "A swallowed broad exception turns a corrupt checkpoint or a dead "
        "worker into silently wrong placements.  Catch the narrow error, or "
        "at minimum log before continuing."
    )

    def visit_ExceptHandler(self, node: ast.ExceptHandler, ctx: FileContext) -> None:
        handler_type = node.type
        broad = handler_type is None or (
            isinstance(handler_type, ast.Name)
            and handler_type.id in ("Exception", "BaseException")
        )
        if not broad:
            return
        if all(self._is_noop(stmt) for stmt in node.body):
            ctx.report(
                self.rule_id,
                node,
                "broad exception handler silently swallows; catch the "
                "specific error or log it via repro.obs.logs",
            )

    @staticmethod
    def _is_noop(stmt: ast.stmt) -> bool:
        if isinstance(stmt, ast.Pass):
            return True
        return (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )


@register
class ColdSnapshotRule(Rule):
    """DC009: cold ``snapshot_reference()`` calls in library code."""

    rule_id: ClassVar[str] = "DC009"
    summary: ClassVar[str] = (
        "snapshot_reference() (the O(users) cold oracle) called in library code"
    )
    rationale: ClassVar[str] = (
        "snapshot_reference() exists to *verify* the incremental engine -- "
        "it re-places every user from scratch.  A library call site quietly "
        "turns a snapshot into a full cold re-place, erasing the dirty-set "
        "win the streaming engine is built around; production paths must "
        "use snapshot(), and oracle comparisons belong in tests and "
        "benchmarks."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        # streaming.py defines the oracle; everywhere else in the package
        # a call is a cold path hiding in a hot one.
        return ctx.is_library_code and not ctx.path_endswith("core/streaming.py")

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        else:
            return
        if name == "snapshot_reference":
            ctx.report(
                self.rule_id,
                node,
                "cold-path snapshot_reference(); use the incremental "
                "snapshot(), and keep oracle comparisons in tests/benchmarks",
            )


@register
class BatchObserveRule(Rule):
    """DC010: per-event ``observe()`` loops in library code."""

    rule_id: ClassVar[str] = "DC010"
    summary: ClassVar[str] = (
        "per-event engine.observe(user, ts) inside a loop; use "
        "observe_batch()/ingest_store()"
    )
    rationale: ClassVar[str] = (
        "observe() pays python-level dict/set/float work per post; the "
        "vectorised bulk path (observe_batch / ingest_store) is "
        "bit-identical for the same event order and an order of magnitude "
        "faster.  A per-event loop hiding in a library path quietly caps "
        "ingest at a fraction of the engine's throughput; the serial seam "
        "itself lives in core/streaming.py, and per-event feeding belongs "
        "in tests and benchmarks that score the bulk path against it."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        # streaming.py owns the serial fallback the bulk path is proven
        # against; everywhere else in the package a looped observe() is a
        # throughput cliff.
        return ctx.is_library_code and not ctx.path_endswith("core/streaming.py")

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        func = node.func
        # Two positional args (user_id, timestamp) distinguishes the
        # engine's observe() from histogram .observe(value) metrics.
        if not isinstance(func, ast.Attribute) or func.attr != "observe":
            return
        if len(node.args) != 2 or node.keywords:
            return
        if self._in_loop(node, ctx):
            ctx.report(
                self.rule_id,
                node,
                "per-event observe() in a loop; collect the events and make "
                "one observe_batch() / ingest_store() call (bit-identical, "
                "vectorised)",
            )

    @staticmethod
    def _in_loop(node: ast.AST, ctx: FileContext) -> bool:
        child: ast.AST = node
        parent = ctx.parents.get(child)
        while parent is not None:
            if isinstance(parent, (ast.For, ast.AsyncFor, ast.While)):
                return True
            if isinstance(
                parent,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                # A nested function/lambda body does not run per loop
                # iteration just because it is *defined* inside one.
                return False
            child = parent
            parent = ctx.parents.get(child)
        return False


@register
class NakedTimingRule(Rule):
    """DC011: ad-hoc ``time.perf_counter()`` timing outside ``repro/obs``."""

    rule_id: ClassVar[str] = "DC011"
    summary: ClassVar[str] = (
        "time.perf_counter() timing in library code outside repro/obs"
    )
    rationale: ClassVar[str] = (
        "An ad-hoc perf_counter() delta is invisible to the observability "
        "layer: the duration never reaches a histogram percentile, the "
        "series sampler or the dashboard.  Library code times itself with "
        "repro.obs.metrics.Stopwatch (when the elapsed value is consumed) "
        "or histogram(...).time() (when it is only recorded); the obs "
        "package itself is the one sanctioned home of the raw call."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        # repro/obs implements the timing primitives, so the raw call is
        # its plumbing; everywhere else it is a metrics-layer bypass.
        return ctx.is_library_code and "obs" not in ctx.parts

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if ctx.resolve(node.func) == "time.perf_counter":
            ctx.report(
                self.rule_id,
                node,
                "naked time.perf_counter(); time with obs metrics.Stopwatch "
                "or histogram(...).time() so the duration reaches the "
                "observability layer",
            )
