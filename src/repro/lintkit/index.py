"""Whole-program project index: symbols, imports, calls, cached facts.

The v1 engine saw one file at a time; the v2 rules (DC012..DC016) need
to see the *project* -- which functions a public entry point reaches,
which module defines the negotiated checkpoint reader set, what the
public API surface looks like.  This module parses every file once and
distils each into a :class:`ModuleFacts` record: the import-alias
table, the symbol table of functions/classes, per-function call sites,
and the pre-computed dataflow facts the graph rules consume (unseeded
RNG constructions, unordered-iteration-into-sink taints, process-pool
worker hazards, checkpoint version literals, public signatures).

Facts are plain JSON-serialisable data, which buys the on-disk cache:
``.darkcrowd_cache/lint-index.json`` keyed by content hash, so a warm
``darkcrowd lint`` re-parses only edited files and rebuilds the graphs
from cached facts in well under a second.  The cache also memoises
per-file rule findings (keyed by content hash *and* the active rule
signature); graph-rule findings are recomputed every run, because they
depend on the whole program, not one file.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import re
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.lintkit.dataflow import FunctionDataflow
from repro.lintkit.model import FileContext, Finding

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CallFact",
    "CheckpointCallFact",
    "FunctionFacts",
    "IndexCache",
    "ModuleFacts",
    "PoolHazardFact",
    "ProjectIndex",
    "RngFact",
    "SinkTaintFact",
    "detect_project_root",
    "extract_module_facts",
    "module_name_for",
]

#: Bump whenever the fact schema or extraction semantics change; a cache
#: written by another schema is discarded wholesale, never misread.
CACHE_SCHEMA_VERSION = 2

#: Markers that terminate the project-root walk-up.
_ROOT_MARKERS = ("pyproject.toml", ".git")

_UPPER_CONST = re.compile(r"^[A-Z][A-Z0-9_]*$")

#: Unseeded-RNG constructors DC012 tracks through the call graph.
_RNG_FACTORIES = frozenset({"numpy.random.default_rng", "random.Random"})

#: Serialization sinks DC013 guards (resolved origins).
_SINK_ORIGINS = frozenset(
    {
        "json.dump",
        "json.dumps",
        "pickle.dump",
        "pickle.dumps",
        "numpy.savez",
        "numpy.savez_compressed",
        "repro.reliability.checkpoint.write_checkpoint",
        "repro.reliability.checkpoint.write_binary_checkpoint",
    }
)

#: Serialization sinks by bare/attribute name (checkpoint writers reached
#: through any import path or as methods).
_SINK_NAMES = frozenset(
    {"write_checkpoint", "write_binary_checkpoint", "save_checkpoint"}
)

#: Checkpoint envelope readers/writers whose (kind, version) arguments
#: DC015 audits against the negotiated set.
_CHECKPOINT_CALLEES = frozenset(
    {
        "write_checkpoint",
        "read_checkpoint",
        "read_checkpoint_negotiated",
        "write_binary_checkpoint",
        "read_binary_checkpoint",
        "read_binary_checkpoint_negotiated",
    }
)

#: Constructors whose results must never cross a process-pool boundary.
_UNPICKLABLE_ORIGINS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Event",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
        "open",
        "builtins.open",
        "numpy.memmap",
        "multiprocessing.shared_memory.SharedMemory",
    }
)

_POOL_ORIGINS = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
    }
)


# ---------------------------------------------------------------------------
# fact records (all JSON round-trippable via asdict / from_dict)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CallFact:
    """One call site, with a best-effort encoded target.

    Encodings: a fully dotted import origin (``repro.core.batch.foo``),
    ``@local:name`` for same-module calls, ``@self:Class.meth`` for
    method self-calls, ``@recv:<ClassOrigin>:meth`` when the receiver's
    constructing class was recovered by dataflow, and ``@method:meth``
    for attribute calls on unresolved receivers.
    """

    lineno: int
    col: int
    target: str


@dataclass(frozen=True)
class RngFact:
    """An unseeded seedable-RNG construction site."""

    lineno: int
    col: int
    factory: str  # the resolved constructor, e.g. numpy.random.default_rng
    how: str  # "no-seed" | "none-seed" | "default-factory"


@dataclass(frozen=True)
class SinkTaintFact:
    """Unordered (set-derived) iteration flowing into a serialization sink."""

    lineno: int
    col: int
    sink: str
    source: str  # description of the unordered origin
    source_line: int


@dataclass(frozen=True)
class PoolHazardFact:
    """A process-pool dispatch that cannot survive pickling."""

    lineno: int
    col: int
    hazard: str  # "lambda-worker" | "closure-worker" | "unpicklable-arg"
    detail: str


@dataclass(frozen=True)
class CheckpointCallFact:
    """A checkpoint envelope read/write with its kind/version descriptors.

    Descriptors are ``("const", value)`` for literals, ``("name", dotted)``
    for named constants (import-resolved when possible), ``("tuple", (...))``
    for literal version tuples, and ``("other", "")`` for anything else.
    """

    lineno: int
    col: int
    callee: str
    kind_desc: tuple[str, Any]
    version_desc: tuple[str, Any]


@dataclass
class FunctionFacts:
    """Everything the graph rules ask about one function or method."""

    qualname: str  # "f", "Class.meth", or "<module>" for top-level code
    lineno: int
    is_public: bool
    signature: str
    calls: list[CallFact] = field(default_factory=list)
    rng_sites: list[RngFact] = field(default_factory=list)
    sink_taints: list[SinkTaintFact] = field(default_factory=list)
    pool_hazards: list[PoolHazardFact] = field(default_factory=list)
    checkpoint_calls: list[CheckpointCallFact] = field(default_factory=list)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FunctionFacts":
        return cls(
            qualname=payload["qualname"],
            lineno=payload["lineno"],
            is_public=payload["is_public"],
            signature=payload["signature"],
            calls=[CallFact(**entry) for entry in payload["calls"]],
            rng_sites=[RngFact(**entry) for entry in payload["rng_sites"]],
            sink_taints=[SinkTaintFact(**entry) for entry in payload["sink_taints"]],
            pool_hazards=[
                PoolHazardFact(**entry) for entry in payload["pool_hazards"]
            ],
            checkpoint_calls=[
                CheckpointCallFact(
                    lineno=entry["lineno"],
                    col=entry["col"],
                    callee=entry["callee"],
                    kind_desc=tuple(entry["kind_desc"]),
                    version_desc=_thaw_version_desc(entry["version_desc"]),
                )
                for entry in payload["checkpoint_calls"]
            ],
        )


def _thaw_version_desc(raw: Sequence[Any]) -> tuple[str, Any]:
    kind, value = raw[0], raw[1]
    if kind == "tuple" and isinstance(value, list):
        return (kind, tuple(value))
    return (kind, value)


@dataclass
class ModuleFacts:
    """The distilled whole-program-relevant view of one source file."""

    path: str  # project-root-relative posix path
    module: str  # dotted module name
    content_hash: str
    is_test: bool
    is_library: bool
    imports: dict[str, str] = field(default_factory=dict)
    imported_modules: list[str] = field(default_factory=list)
    constants: dict[str, Any] = field(default_factory=dict)
    classes: dict[str, list[str]] = field(default_factory=dict)
    functions: list[FunctionFacts] = field(default_factory=list)
    suppressions: dict[int, list[str]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        payload = asdict(self)
        # JSON object keys are strings; suppression linenos round-trip
        # through from_dict below.
        payload["suppressions"] = {
            str(line): ids for line, ids in self.suppressions.items()
        }
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ModuleFacts":
        return cls(
            path=payload["path"],
            module=payload["module"],
            content_hash=payload["content_hash"],
            is_test=payload["is_test"],
            is_library=payload["is_library"],
            imports=dict(payload["imports"]),
            imported_modules=list(payload["imported_modules"]),
            constants={
                name: tuple(value) if isinstance(value, list) else value
                for name, value in payload["constants"].items()
            },
            classes={name: list(ms) for name, ms in payload["classes"].items()},
            functions=[FunctionFacts.from_dict(f) for f in payload["functions"]],
            suppressions={
                int(line): list(ids)
                for line, ids in payload["suppressions"].items()
            },
        )


# ---------------------------------------------------------------------------
# project layout helpers
# ---------------------------------------------------------------------------


def detect_project_root(start: "str | Path") -> "Path | None":
    """Nearest ancestor of *start* carrying a project marker, or None."""
    current = Path(start).resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        if any((candidate / marker).exists() for marker in _ROOT_MARKERS):
            return candidate
    return None


def module_name_for(path: Path, root: Path) -> str:
    """Dotted module name of *path* within the project rooted at *root*.

    Files under ``<root>/src`` are named relative to ``src`` (the import
    path); everything else is named relative to the root, so tests and
    benchmarks get stable graph identities too.
    """
    resolved = path.resolve()
    src = root / "src"
    try:
        relative = resolved.relative_to(src)
    except ValueError:
        try:
            relative = resolved.relative_to(root)
        except ValueError:
            relative = Path(resolved.name)
    parts = list(relative.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else relative.stem


def content_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


# ---------------------------------------------------------------------------
# fact extraction
# ---------------------------------------------------------------------------


def _render_signature(args: ast.arguments) -> str:
    """Version-stable signature rendering: names, kinds and default slots.

    Default *values* render as ``_`` on purpose -- ``ast.unparse`` output
    varies across interpreter versions, and DC016 guards arity/name/kind
    drift, not default-value tweaks.
    """
    parts: list[str] = []
    positional = list(args.posonlyargs) + list(args.args)
    first_default = len(positional) - len(args.defaults)
    for index, arg in enumerate(positional):
        parts.append(arg.arg + ("=_" if index >= first_default else ""))
        if args.posonlyargs and index == len(args.posonlyargs) - 1:
            parts.append("/")
    if args.vararg is not None:
        parts.append("*" + args.vararg.arg)
    elif args.kwonlyargs:
        parts.append("*")
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        parts.append(arg.arg + ("=_" if default is not None else ""))
    if args.kwarg is not None:
        parts.append("**" + args.kwarg.arg)
    return "(" + ", ".join(parts) + ")"


def _qual_is_public(qualname: str) -> bool:
    segments = qualname.split(".")
    for index, segment in enumerate(segments):
        if segment == "__init__" and index == len(segments) - 1 and index > 0:
            continue
        if segment.startswith("_"):
            return False
    return True


def _call_name(func: ast.expr) -> "str | None":
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class _FactExtractor:
    """Single pass over one parsed file producing its :class:`ModuleFacts`."""

    def __init__(
        self, ctx: FileContext, module: str, *, rel_path: str, digest: str,
        is_test: bool, is_library: bool,
    ) -> None:
        self.ctx = ctx
        self.facts = ModuleFacts(
            path=rel_path,
            module=module,
            content_hash=digest,
            is_test=is_test,
            is_library=is_library,
            imports=dict(ctx.aliases),
            suppressions={
                line: sorted(ids) for line, ids in ctx.suppressions.items()
            },
        )
        self._module_facts_fn = FunctionFacts(
            qualname="<module>", lineno=1, is_public=True, signature="()"
        )

    def run(self) -> ModuleFacts:
        tree = self.ctx.tree
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.facts.imported_modules.append(alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                self.facts.imported_modules.append(node.module)
        self.facts.imported_modules = sorted(set(self.facts.imported_modules))
        self._collect_constants(tree)
        module_flow = FunctionDataflow(tree, self.ctx.resolve)
        self._walk_block(tree.body, class_name=None, owner=self._module_facts_fn)
        self._analyze_scope(tree, self._module_facts_fn, module_flow)
        self.facts.functions.append(self._module_facts_fn)
        return self.facts

    # -- structure ---------------------------------------------------------

    def _collect_constants(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            targets: list[ast.expr] = []
            value: "ast.expr | None" = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            literal = self._literal(value)
            if literal is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and _UPPER_CONST.match(target.id):
                    self.facts.constants[target.id] = literal

    @staticmethod
    def _literal(value: ast.expr) -> Any:
        if isinstance(value, ast.Constant) and isinstance(
            value.value, (int, str)
        ) and not isinstance(value.value, bool):
            return value.value
        if isinstance(value, ast.Tuple) and all(
            isinstance(el, ast.Constant)
            and isinstance(el.value, int)
            and not isinstance(el.value, bool)
            for el in value.elts
        ):
            return tuple(el.value for el in value.elts)  # type: ignore[union-attr]
        return None

    def _walk_block(
        self,
        stmts: Sequence[ast.stmt],
        class_name: "str | None",
        owner: FunctionFacts,
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = (
                    f"{class_name}.{stmt.name}" if class_name else stmt.name
                )
                fn = FunctionFacts(
                    qualname=qualname,
                    lineno=stmt.lineno,
                    is_public=_qual_is_public(qualname),
                    signature=_render_signature(stmt.args),
                )
                flow = FunctionDataflow(stmt, self.ctx.resolve)
                self._analyze_scope(stmt, fn, flow, class_name=class_name)
                self.facts.functions.append(fn)
            elif isinstance(stmt, ast.ClassDef):
                if class_name is None:
                    self.facts.classes[stmt.name] = sorted(
                        inner.name
                        for inner in stmt.body
                        if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef))
                    )
                    self._walk_block(stmt.body, stmt.name, owner)
                else:
                    # Nested classes are rare; treat their bodies as
                    # belonging to the enclosing class's owner scope.
                    self._walk_block(stmt.body, f"{class_name}.{stmt.name}", owner)
            else:
                # Module-level / class-body statements execute at import
                # time: their calls and RNG sites belong to "<module>".
                self._collect_lexical_facts(stmt, owner)

    # -- per-scope analysis -----------------------------------------------

    def _analyze_scope(
        self,
        scope: "ast.FunctionDef | ast.AsyncFunctionDef | ast.Module",
        fn: FunctionFacts,
        flow: FunctionDataflow,
        class_name: "str | None" = None,
    ) -> None:
        """Call/RNG facts over the whole (nested-def-inclusive) body, plus
        dataflow-backed sink/pool analysis for the scope's own statements.

        At module level the lexical facts were already collected by
        ``_walk_block`` (which also owns class-body statements); only the
        dataflow pass runs here.
        """
        if not isinstance(scope, ast.Module):
            for stmt in scope.body:
                self._collect_lexical_facts(stmt, fn, class_name=class_name)
        for stmt in scope.body:
            self._flow_stmt(stmt, fn, flow)

    def _collect_lexical_facts(
        self,
        stmt: ast.stmt,
        fn: FunctionFacts,
        class_name: "str | None" = None,
    ) -> None:
        # ``ast.walk`` descends into nested defs on purpose: a helper
        # defined inside a reachable function is treated as reachable
        # (its calls and RNG sites flatten into the enclosing function).
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                self._record_call(node, fn, class_name=class_name)
                self._record_rng(node, fn)
                self._record_checkpoint_call(node, fn)

    def _record_call(
        self, node: ast.Call, fn: FunctionFacts, class_name: "str | None"
    ) -> None:
        func = node.func
        resolved = self.ctx.resolve(func)
        target: "str | None" = None
        if resolved is not None:
            target = resolved
        elif isinstance(func, ast.Name):
            target = f"@local:{func.id}"
        elif isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and class_name is not None
            ):
                target = f"@self:{class_name}.{func.attr}"
            else:
                target = f"@method:{func.attr}"
        if target is not None:
            fn.calls.append(CallFact(node.lineno, node.col_offset, target))

    def _record_rng(self, node: ast.Call, fn: FunctionFacts) -> None:
        resolved = self.ctx.resolve(node.func)
        if resolved in _RNG_FACTORIES:
            if not node.args and not node.keywords:
                fn.rng_sites.append(
                    RngFact(node.lineno, node.col_offset, resolved, "no-seed")
                )
                return
            seed_expr: "ast.expr | None" = None
            if node.args:
                seed_expr = node.args[0]
            else:
                for keyword in node.keywords:
                    if keyword.arg == "seed":
                        seed_expr = keyword.value
            if (
                seed_expr is not None
                and isinstance(seed_expr, ast.Constant)
                and seed_expr.value is None
            ):
                fn.rng_sites.append(
                    RngFact(node.lineno, node.col_offset, resolved, "none-seed")
                )
            return
        # field(default_factory=np.random.default_rng) constructs an
        # unseeded generator at every instantiation.
        for keyword in node.keywords:
            if keyword.arg == "default_factory":
                factory = self.ctx.resolve(keyword.value)
                if factory in _RNG_FACTORIES:
                    fn.rng_sites.append(
                        RngFact(
                            node.lineno,
                            node.col_offset,
                            factory,
                            "default-factory",
                        )
                    )

    def _record_checkpoint_call(self, node: ast.Call, fn: FunctionFacts) -> None:
        name = _call_name(node.func)
        resolved = self.ctx.resolve(node.func)
        if resolved is not None:
            name = resolved.rsplit(".", 1)[-1]
        if name not in _CHECKPOINT_CALLEES:
            return
        kind_expr = self._argument(node, 1, ("kind",))
        version_expr = self._argument(node, 2, ("version", "versions"))
        fn.checkpoint_calls.append(
            CheckpointCallFact(
                node.lineno,
                node.col_offset,
                name,
                self._describe(kind_expr),
                self._describe(version_expr),
            )
        )

    @staticmethod
    def _argument(
        node: ast.Call, index: int, keywords: tuple[str, ...]
    ) -> "ast.expr | None":
        if len(node.args) > index:
            return node.args[index]
        for keyword in node.keywords:
            if keyword.arg in keywords:
                return keyword.value
        return None

    def _describe(self, expr: "ast.expr | None") -> tuple[str, Any]:
        if expr is None:
            return ("other", "")
        if isinstance(expr, ast.Constant) and isinstance(
            expr.value, (int, str)
        ) and not isinstance(expr.value, bool):
            return ("const", expr.value)
        if isinstance(expr, ast.Tuple) and all(
            isinstance(el, ast.Constant) and isinstance(el.value, int)
            for el in expr.elts
        ):
            return ("tuple", tuple(el.value for el in expr.elts))  # type: ignore[union-attr]
        if isinstance(expr, (ast.Name, ast.Attribute)):
            resolved = self.ctx.resolve(expr)
            if resolved is not None:
                return ("name", resolved)
            if isinstance(expr, ast.Name):
                return ("name", expr.id)
            return ("name", expr.attr)
        return ("other", "")

    # -- dataflow-backed facts (DC013 / DC014 inputs) ----------------------

    def _flow_stmt(
        self, stmt: ast.stmt, fn: FunctionFacts, flow: FunctionDataflow
    ) -> None:
        """Sink/pool checks for *stmt* and its block children, anchored to
        the statement whose entry map the dataflow recorded.

        Nested ``def``/``class`` subtrees are skipped -- their names bind
        in another scope, so querying them against this flow would answer
        with the wrong definitions.
        """
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._flow_stmt(child, fn, flow)
            elif isinstance(child, ast.excepthandler):
                for handler_stmt in child.body:
                    self._flow_stmt(handler_stmt, fn, flow)
            else:
                for node in ast.walk(child):
                    if isinstance(node, ast.Call):
                        self._check_sink(node, stmt, fn, flow)
                        self._check_pool(node, stmt, fn, flow)
                        self._refine_method_call(node, stmt, fn, flow)

    def _sink_name(self, node: ast.Call) -> "str | None":
        resolved = self.ctx.resolve(node.func)
        if resolved in _SINK_ORIGINS:
            return resolved
        name = _call_name(node.func)
        if name in _SINK_NAMES:
            return name
        return None

    def _check_sink(
        self,
        node: ast.Call,
        stmt: ast.stmt,
        fn: FunctionFacts,
        flow: FunctionDataflow,
    ) -> None:
        sink = self._sink_name(node)
        if sink is None:
            return
        arguments = list(node.args) + [kw.value for kw in node.keywords]
        for argument in arguments:
            for origin in flow.origins(argument, stmt):
                if origin.kind == "iter-of-set":
                    fn.sink_taints.append(
                        SinkTaintFact(
                            node.lineno,
                            node.col_offset,
                            sink,
                            "iteration over a set",
                            origin.lineno or node.lineno,
                        )
                    )
                    break

    def _check_pool(
        self,
        node: ast.Call,
        stmt: ast.stmt,
        fn: FunctionFacts,
        flow: FunctionDataflow,
    ) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in ("submit", "map"):
            return
        if not isinstance(func.value, ast.Name):
            return
        receiver_origins = flow.origins(func.value, stmt)
        if not any(
            origin.is_call_to(*_POOL_ORIGINS) for origin in receiver_origins
        ):
            return
        if not node.args:
            return
        worker, data_args = node.args[0], node.args[1:]
        self._check_worker(worker, node, stmt, fn, flow)
        for argument in list(data_args) + [kw.value for kw in node.keywords]:
            for origin in flow.origins(argument, stmt):
                if origin.kind == "call" and origin.detail in _UNPICKLABLE_ORIGINS:
                    fn.pool_hazards.append(
                        PoolHazardFact(
                            node.lineno,
                            node.col_offset,
                            "unpicklable-arg",
                            origin.detail,
                        )
                    )
                    break

    def _check_worker(
        self,
        worker: ast.expr,
        node: ast.Call,
        stmt: ast.stmt,
        fn: FunctionFacts,
        flow: FunctionDataflow,
    ) -> None:
        if isinstance(worker, ast.Call):
            resolved = self.ctx.resolve(worker.func) or ""
            if resolved in ("functools.partial",) and worker.args:
                self._check_worker(worker.args[0], node, stmt, fn, flow)
            return
        for origin in flow.origins(worker, stmt):
            if origin.kind == "lambda":
                fn.pool_hazards.append(
                    PoolHazardFact(
                        node.lineno, node.col_offset, "lambda-worker", ""
                    )
                )
                return
            if origin.kind == "nested-function":
                fn.pool_hazards.append(
                    PoolHazardFact(
                        node.lineno,
                        node.col_offset,
                        "closure-worker",
                        origin.detail,
                    )
                )
                return

    def _refine_method_call(
        self,
        node: ast.Call,
        stmt: ast.stmt,
        fn: FunctionFacts,
        flow: FunctionDataflow,
    ) -> None:
        """Upgrade ``@method:attr`` call facts to ``@recv:Class:attr`` when
        dataflow pins the receiver to a single constructing class."""
        func = node.func
        if not isinstance(func, ast.Attribute) or not isinstance(
            func.value, ast.Name
        ):
            return
        if func.value.id == "self":
            return
        constructors = {
            origin.detail
            for origin in flow.origins(func.value, stmt)
            if origin.kind == "call" and origin.detail
            and not origin.detail.startswith("@")
        }
        if len(constructors) != 1:
            return
        (constructed,) = constructors
        for index, call in enumerate(fn.calls):
            if (
                call.lineno == node.lineno
                and call.col == node.col_offset
                and call.target == f"@method:{func.attr}"
            ):
                fn.calls[index] = CallFact(
                    call.lineno, call.col, f"@recv:{constructed}:{func.attr}"
                )
                break


def extract_module_facts(
    ctx: FileContext,
    *,
    module: str,
    rel_path: str,
    digest: str,
    is_test: bool,
    is_library: bool,
) -> ModuleFacts:
    """Distil one parsed file into its whole-program facts."""
    extractor = _FactExtractor(
        ctx,
        module,
        rel_path=rel_path,
        digest=digest,
        is_test=is_test,
        is_library=is_library,
    )
    return extractor.run()


# ---------------------------------------------------------------------------
# the whole-program index
# ---------------------------------------------------------------------------


class ProjectIndex:
    """Symbol table + import graph + call graph over a set of ModuleFacts."""

    def __init__(self, root: Path, modules: Iterable[ModuleFacts]) -> None:
        self.root = root
        self.modules: dict[str, ModuleFacts] = {}
        for facts in modules:
            self.modules[facts.path] = facts
        #: dotted function name -> (ModuleFacts, FunctionFacts)
        self.symbols: dict[str, tuple[ModuleFacts, FunctionFacts]] = {}
        #: dotted class name -> method-name list
        self.classes: dict[str, list[str]] = {}
        for facts in self.modules.values():
            for fn in facts.functions:
                if fn.qualname == "<module>":
                    self.symbols[f"{facts.module}.<module>"] = (facts, fn)
                else:
                    self.symbols[f"{facts.module}.{fn.qualname}"] = (facts, fn)
            for class_name, methods in facts.classes.items():
                self.classes[f"{facts.module}.{class_name}"] = methods
        self._edges: "dict[str, set[str]] | None" = None

    # -- module-level views ------------------------------------------------

    def by_module(self, module: str) -> "ModuleFacts | None":
        for facts in self.modules.values():
            if facts.module == module:
                return facts
        return None

    def import_graph(self) -> dict[str, list[str]]:
        return {
            facts.module: sorted(set(facts.imported_modules))
            for facts in sorted(self.modules.values(), key=lambda m: m.module)
        }

    # -- call graph --------------------------------------------------------

    def _resolve_target(self, facts: ModuleFacts, target: str) -> "str | None":
        if target.startswith("@local:"):
            name = target[len("@local:"):]
            dotted = f"{facts.module}.{name}"
            if dotted in self.symbols:
                return dotted
            if dotted in self.classes:
                init = f"{dotted}.__init__"
                return init if init in self.symbols else None
            return None
        if target.startswith("@self:"):
            dotted = f"{facts.module}.{target[len('@self:'):]}"
            return dotted if dotted in self.symbols else None
        if target.startswith("@recv:"):
            _, constructed, method = target.split(":", 2)
            if constructed in self.classes:
                dotted = f"{constructed}.{method}"
                return dotted if dotted in self.symbols else None
            return None
        if target.startswith("@method:"):
            return None
        if target in self.symbols:
            return target
        if target in self.classes:
            init = f"{target}.__init__"
            return init if init in self.symbols else None
        return None

    def call_graph(self) -> dict[str, set[str]]:
        """Resolved edges: caller dotted name -> callee dotted names."""
        if self._edges is not None:
            return self._edges
        edges: dict[str, set[str]] = {}
        for facts in self.modules.values():
            for fn in facts.functions:
                caller = (
                    f"{facts.module}.<module>"
                    if fn.qualname == "<module>"
                    else f"{facts.module}.{fn.qualname}"
                )
                out = edges.setdefault(caller, set())
                for call in fn.calls:
                    callee = self._resolve_target(facts, call.target)
                    if callee is not None and callee != caller:
                        out.add(callee)
        self._edges = edges
        return edges

    def entry_points(self) -> list[str]:
        """Public library surface: where outside callers can start."""
        roots: list[str] = []
        for facts in self.modules.values():
            if not facts.is_library or facts.is_test:
                continue
            if any(part.startswith("_") for part in facts.module.split(".")):
                continue
            for fn in facts.functions:
                if fn.qualname == "<module>":
                    roots.append(f"{facts.module}.<module>")
                elif fn.is_public:
                    roots.append(f"{facts.module}.{fn.qualname}")
        return sorted(set(roots))

    def reachable_from_entry_points(self) -> dict[str, str]:
        """Node -> the entry point that first reached it (BFS forest)."""
        edges = self.call_graph()
        reached: dict[str, str] = {}
        frontier: list[str] = []
        for root in self.entry_points():
            if root not in reached:
                reached[root] = root
                frontier.append(root)
        while frontier:
            next_frontier: list[str] = []
            for node in frontier:
                for callee in sorted(edges.get(node, ())):
                    if callee not in reached:
                        reached[callee] = reached[node]
                        next_frontier.append(callee)
            frontier = next_frontier
        return reached

    # -- public API surface ------------------------------------------------

    def public_api(self) -> dict[str, str]:
        """Dotted public name -> rendered signature, library modules only."""
        surface: dict[str, str] = {}
        for facts in self.modules.values():
            if not facts.is_library or facts.is_test:
                continue
            if any(part.startswith("_") for part in facts.module.split(".")):
                continue
            for fn in facts.functions:
                if fn.qualname == "<module>" or not fn.is_public:
                    continue
                surface[f"{facts.module}.{fn.qualname}"] = fn.signature
        return dict(sorted(surface.items()))

    # -- graph export ------------------------------------------------------

    def graph_payload(self) -> dict[str, Any]:
        edges = self.call_graph()
        return {
            "kind": "darkcrowd-lint-graph",
            "version": 1,
            "modules": {
                facts.module: {
                    "path": facts.path,
                    "imports": sorted(
                        module
                        for module in facts.imported_modules
                        if module.split(".")[0]
                        in {m.module.split(".")[0] for m in self.modules.values()}
                    ),
                    "is_test": facts.is_test,
                }
                for facts in sorted(self.modules.values(), key=lambda m: m.module)
            },
            "calls": {
                caller: sorted(callees)
                for caller, callees in sorted(edges.items())
                if callees
            },
            "entry_points": self.entry_points(),
            "stats": {
                "n_modules": len(self.modules),
                "n_functions": len(self.symbols),
                "n_call_edges": sum(len(c) for c in edges.values()),
            },
        }


# ---------------------------------------------------------------------------
# the on-disk cache
# ---------------------------------------------------------------------------


class IndexCache:
    """Content-hash-keyed cache of per-file facts and per-file findings.

    One JSON document per project: ``{schema, files: {rel_path: {hash,
    facts, findings: {rule_signature: [...]}}}}``.  A schema mismatch or
    unreadable document is treated as a cold cache, never an error.
    """

    FILENAME = "lint-index.json"

    def __init__(self, directory: "Path | None") -> None:
        self.directory = directory
        self.path = None if directory is None else directory / self.FILENAME
        self._files: dict[str, dict[str, Any]] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        if self.path is None or not self.path.exists():
            return
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != CACHE_SCHEMA_VERSION
            or not isinstance(payload.get("files"), dict)
        ):
            return
        self._files = payload["files"]

    def get_facts(self, rel_path: str, digest: str) -> "ModuleFacts | None":
        entry = self._files.get(rel_path)
        if entry is None or entry.get("hash") != digest or not entry.get("facts"):
            self.misses += 1
            return None
        try:
            facts = ModuleFacts.from_dict(entry["facts"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return facts

    def get_findings(
        self, rel_path: str, digest: str, signature: str
    ) -> "list[Finding] | None":
        entry = self._files.get(rel_path)
        if entry is None or entry.get("hash") != digest:
            return None
        stored = entry.get("findings", {}).get(signature)
        if stored is None:
            return None
        try:
            return [
                Finding(
                    path=item["path"],
                    line=item["line"],
                    col=item["col"],
                    rule_id=item["rule"],
                    message=item["message"],
                )
                for item in stored
            ]
        except (KeyError, TypeError):
            return None

    def put(
        self,
        rel_path: str,
        digest: str,
        facts: "ModuleFacts | None" = None,
        signature: "str | None" = None,
        findings: "Sequence[Finding] | None" = None,
    ) -> None:
        entry = self._files.get(rel_path)
        if entry is None or entry.get("hash") != digest:
            entry = {"hash": digest, "facts": None, "findings": {}}
            self._files[rel_path] = entry
        if facts is not None:
            entry["facts"] = facts.to_dict()
        if signature is not None and findings is not None:
            entry["findings"][signature] = [
                {
                    "path": finding.path,
                    "line": finding.line,
                    "col": finding.col,
                    "rule": finding.rule_id,
                    "message": finding.message,
                }
                for finding in findings
            ]
        self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        payload = {"schema": CACHE_SCHEMA_VERSION, "files": self._files}
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, temp_name = tempfile.mkstemp(
                dir=str(self.path.parent), suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(temp_name, self.path)
        except OSError:
            return  # a cache that cannot persist is a warm-start miss, not a failure
        self._dirty = False
