"""Intraprocedural dataflow: reaching definitions rules can query.

The whole-program rules (DC013, DC014) need more than "what does this
name resolve to" -- they ask *where a value came from*: does the
argument of a serialization sink originate in set iteration, is the
callable handed to a process pool a closure, was this receiver
constructed from ``ProcessPoolExecutor``.  :class:`FunctionDataflow`
answers those questions with a classic reaching-definitions analysis
over one function body (or a module's top-level statements).

The analysis is deliberately conservative in the lint direction:

* merges are unions and nothing is ever killed at a join, so a
  definition that *may* reach a use always does;
* loops are resolved by a two-pass fixpoint (union-only transfer
  functions are monotone, and one extra pass propagates every
  definition generated inside the body back to its head);
* nested function bodies are opaque -- a nested ``def`` defines its
  *name* (kind ``nested-function``, which DC014 uses to spot closure
  workers) but its body belongs to another scope.

Queries run through :meth:`FunctionDataflow.origins`, which chases a
use back through the definitions reaching it and returns a set of
:class:`Origin` descriptors -- ``call:numpy.random.default_rng``,
``set-display``, ``param``, ... -- bounded by a small depth so cyclic
reassignment cannot loop.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

__all__ = [
    "Definition",
    "Origin",
    "FunctionDataflow",
]

#: name -> the definitions of it that may reach a program point.
_DefMap = dict[str, frozenset["Definition"]]

#: How many assignment hops :meth:`origins` follows before giving up.
_MAX_TRACE_DEPTH = 6


@dataclass(frozen=True)
class Definition:
    """One binding of *name*, with the expression that produced it.

    ``value`` is ``None`` when the binding has no single traceable
    expression (tuple unpacking, ``for`` targets bind the element of the
    iterable instead -- see ``iter_source``).
    """

    name: str
    kind: str  # "assign" | "param" | "for-target" | "with-target" | "nested-function" | "import" | "unknown"
    lineno: int
    value: ast.expr | None = None
    #: for ``for x in S`` targets: the iterable S whose elements bind x.
    iter_source: ast.expr | None = None

    def __hash__(self) -> int:  # identity of the binding site, not the AST
        return hash((self.name, self.kind, self.lineno, id(self.value), id(self.iter_source)))


@dataclass(frozen=True)
class Origin:
    """Where a value may have come from, as a comparable descriptor."""

    kind: str  # "call" | "set-display" | "set-comp" | "iter-of-set" | "lambda" | "nested-function" | "param" | "const" | "unknown"
    detail: str = ""
    lineno: int = 0

    def is_call_to(self, *targets: str) -> bool:
        return self.kind == "call" and self.detail in targets


def _assigned_names(target: ast.expr) -> Iterable[tuple[str, bool]]:
    """Names bound by an assignment target; ``simple`` is False under unpacking."""
    if isinstance(target, ast.Name):
        yield target.id, True
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            for name, _ in _assigned_names(element):
                yield name, False
    elif isinstance(target, ast.Starred):
        for name, _ in _assigned_names(target.value):
            yield name, False


def _merge(left: _DefMap, right: _DefMap) -> _DefMap:
    merged = dict(left)
    for name, defs in right.items():
        existing = merged.get(name)
        merged[name] = defs if existing is None else existing | defs
    return merged


class FunctionDataflow:
    """Reaching definitions over one function body (or module top level).

    *resolve* maps a ``Name``/``Attribute`` chain to its fully dotted
    import origin (the per-file alias table) so origins of calls come
    back project-resolved (``np.random.default_rng`` ->
    ``numpy.random.default_rng``).
    """

    def __init__(
        self,
        node: "ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda | ast.Module",
        resolve: Callable[[ast.AST], "str | None"],
    ) -> None:
        self._resolve = resolve
        #: statement -> definitions reaching its entry.
        self._entry: dict[ast.stmt, _DefMap] = {}
        seed: _DefMap = {}
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            args = node.args
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                definition = Definition(arg.arg, "param", getattr(arg, "lineno", 0))
                seed[arg.arg] = frozenset({definition})
        body: Sequence[ast.stmt]
        if isinstance(node, ast.Lambda):
            body = []
        else:
            body = node.body
        self._exit = self._flow(body, seed)

    # -- analysis ----------------------------------------------------------

    def _flow(self, stmts: Sequence[ast.stmt], incoming: _DefMap) -> _DefMap:
        current = incoming
        for stmt in stmts:
            self._entry[stmt] = current
            current = self._transfer(stmt, current)
        return current

    def _bind(
        self, current: _DefMap, name: str, definition: Definition
    ) -> _DefMap:
        updated = dict(current)
        updated[name] = frozenset({definition})
        return updated

    def _transfer(self, stmt: ast.stmt, current: _DefMap) -> _DefMap:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for name, simple in _assigned_names(target):
                    value = stmt.value if simple else None
                    current = self._bind(
                        current,
                        name,
                        Definition(name, "assign", stmt.lineno, value=value),
                    )
            return current
        if isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                name = stmt.target.id
                current = self._bind(
                    current,
                    name,
                    Definition(name, "assign", stmt.lineno, value=stmt.value),
                )
            return current
        if isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                current = self._bind(
                    current, name, Definition(name, "unknown", stmt.lineno)
                )
            return current
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return self._bind(
                current,
                stmt.name,
                Definition(stmt.name, "nested-function", stmt.lineno),
            )
        if isinstance(stmt, ast.ClassDef):
            return self._bind(
                current, stmt.name, Definition(stmt.name, "unknown", stmt.lineno)
            )
        if isinstance(stmt, ast.If):
            then_out = self._flow(stmt.body, current)
            else_out = self._flow(stmt.orelse, current)
            return _merge(then_out, else_out)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            bound = current
            for name, simple in _assigned_names(stmt.target):
                bound = self._bind(
                    bound,
                    name,
                    Definition(
                        name,
                        "for-target",
                        stmt.lineno,
                        iter_source=stmt.iter if simple else None,
                    ),
                )
            first = self._flow(stmt.body, bound)
            second = self._flow(stmt.body, _merge(bound, first))
            after_else = self._flow(stmt.orelse, _merge(current, second))
            return _merge(_merge(current, second), after_else)
        if isinstance(stmt, ast.While):
            first = self._flow(stmt.body, current)
            second = self._flow(stmt.body, _merge(current, first))
            after_else = self._flow(stmt.orelse, _merge(current, second))
            return _merge(_merge(current, second), after_else)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            bound = current
            for item in stmt.items:
                if item.optional_vars is not None:
                    for name, simple in _assigned_names(item.optional_vars):
                        bound = self._bind(
                            bound,
                            name,
                            Definition(
                                name,
                                "with-target",
                                stmt.lineno,
                                value=item.context_expr if simple else None,
                            ),
                        )
            return self._flow(stmt.body, bound)
        if isinstance(stmt, ast.Try):
            body_out = self._flow(stmt.body, current)
            merged = _merge(current, body_out)
            for handler in stmt.handlers:
                bound = merged
                if handler.name:
                    bound = self._bind(
                        bound,
                        handler.name,
                        Definition(handler.name, "unknown", handler.lineno),
                    )
                merged = _merge(merged, self._flow(handler.body, bound))
            merged = _merge(merged, self._flow(stmt.orelse, _merge(current, body_out)))
            return self._flow(stmt.finalbody, merged)
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                current = self._bind(
                    current, local, Definition(local, "import", stmt.lineno)
                )
            return current
        # Return / Expr / Raise / Assert / Delete / Pass / Global / Nonlocal:
        # no bindings the analysis tracks.
        return current

    # -- queries -----------------------------------------------------------

    def reaching(self, stmt: ast.stmt) -> _DefMap:
        """Definitions reaching the entry of *stmt* (empty if unknown)."""
        return self._entry.get(stmt, {})

    def has(self, stmt: ast.stmt) -> bool:
        """Whether *stmt* belongs to this scope's analyzed statements."""
        return stmt in self._entry

    def definitions_at(self, name: str, stmt: ast.stmt) -> frozenset[Definition]:
        return self.reaching(stmt).get(name, frozenset())

    def origins(
        self, expr: "ast.expr | None", stmt: ast.stmt, depth: int = _MAX_TRACE_DEPTH
    ) -> set[Origin]:
        """Descriptors of the value sources *expr* may take at *stmt*.

        ``sorted(...)`` is treated as a terminal ordered origin -- the
        sanctioned way to serialise set contents -- so taint queries stop
        there instead of looking through it.
        """
        if expr is None or depth <= 0:
            return {Origin("unknown")}
        lineno = getattr(expr, "lineno", 0)
        if isinstance(expr, ast.Name):
            defs = self.definitions_at(expr.id, stmt)
            if not defs:
                return {Origin("unknown", expr.id, lineno)}
            found: set[Origin] = set()
            for definition in defs:
                if definition.kind == "param":
                    found.add(Origin("param", definition.name, definition.lineno))
                elif definition.kind == "nested-function":
                    found.add(
                        Origin("nested-function", definition.name, definition.lineno)
                    )
                elif definition.kind == "for-target":
                    found |= self._iter_origins(definition.iter_source, stmt, depth - 1)
                elif definition.value is not None:
                    found |= self.origins(definition.value, stmt, depth - 1)
                else:
                    found.add(Origin("unknown", definition.name, definition.lineno))
            return found
        if isinstance(expr, ast.Lambda):
            return {Origin("lambda", "", lineno)}
        if isinstance(expr, (ast.Set,)):
            return {Origin("set-display", "", lineno)}
        if isinstance(expr, ast.SetComp):
            return {Origin("set-comp", "", lineno)}
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
            sources: set[Origin] = set()
            for comp in expr.generators[:1]:
                sources |= self._iter_origins(comp.iter, stmt, depth - 1)
            return sources or {Origin("unknown", "", lineno)}
        if isinstance(expr, ast.Call):
            target = self._resolve(expr.func) or ""
            if not target and isinstance(expr.func, ast.Name):
                # Could be a local binding (nested def, alias of a class).
                defs = self.definitions_at(expr.func.id, stmt)
                if any(d.kind == "nested-function" for d in defs):
                    return {Origin("nested-function", expr.func.id, lineno)}
                target = expr.func.id
            elif not target and isinstance(expr.func, ast.Attribute):
                target = f"@method:{expr.func.attr}"
            if target in ("sorted", "builtins.sorted"):
                return {Origin("call", "sorted", lineno)}
            if target in ("set", "frozenset", "builtins.set", "builtins.frozenset"):
                return {Origin("call", "set", lineno)}
            if target in ("list", "tuple", "iter", "builtins.list", "builtins.tuple"):
                # Ordered containers preserve their source's (dis)order.
                passthrough: set[Origin] = set()
                for arg in expr.args[:1]:
                    passthrough |= self._iter_origins(arg, stmt, depth - 1)
                return passthrough or {Origin("call", "list", lineno)}
            return {Origin("call", target, lineno)}
        if isinstance(expr, ast.Constant):
            return {Origin("const", repr(expr.value), lineno)}
        if isinstance(expr, (ast.Dict, ast.DictComp, ast.List, ast.Tuple)):
            return {Origin("const", type(expr).__name__.lower(), lineno)}
        if isinstance(expr, ast.Attribute):
            resolved = self._resolve(expr)
            if resolved is not None:
                return {Origin("call", resolved, lineno)}
            return {Origin("unknown", expr.attr, lineno)}
        return {Origin("unknown", "", lineno)}

    def _iter_origins(
        self, iterable: "ast.expr | None", stmt: ast.stmt, depth: int
    ) -> set[Origin]:
        """Origins of *elements drawn from* an iterable expression.

        Set-typed iterables surface as ``iter-of-set`` -- the taint DC013
        keys on; everything else degrades to the iterable's own origins.
        """
        if iterable is None or depth <= 0:
            return {Origin("unknown")}
        base = self.origins(iterable, stmt, depth)
        lifted: set[Origin] = set()
        for origin in base:
            if origin.kind in ("set-display", "set-comp") or origin.is_call_to("set"):
                lifted.add(Origin("iter-of-set", origin.detail, origin.lineno))
            else:
                lifted.add(origin)
        return lifted
