"""Project-aware static analysis for the darkcrowd codebase.

``darkcrowd lint`` runs an AST-based engine over the source tree and
enforces the conventions the pipeline's *reproducibility* leans on:
injectable clocks, seeded RNG, observability naming, shared-memory
hygiene, and a handful of classic Python footguns.  See
:mod:`repro.lintkit.rules` for the rule catalogue (DC001..DC009) and the
README "Static analysis" section for the rationale table.

Programmatic use::

    from repro.lintkit import lint_paths, render_text

    findings = lint_paths(["src", "tests"])
    report = render_text(findings)

Per-line suppression (documents an intentional exception)::

    started = time.time()  # darkcrowd: disable=DC001
"""

from repro.lintkit.engine import (
    DEFAULT_EXCLUDED_DIRS,
    PARSE_ERROR_ID,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lintkit.model import FileContext, Finding
from repro.lintkit.registry import Rule, all_rules, get_rule, register, resolve_selection
from repro.lintkit.reporters import (
    REPORT_KIND,
    REPORT_VERSION,
    render_json,
    render_text,
)

__all__ = [
    "DEFAULT_EXCLUDED_DIRS",
    "PARSE_ERROR_ID",
    "REPORT_KIND",
    "REPORT_VERSION",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
    "render_json",
    "render_text",
    "resolve_selection",
]
