"""Project-aware static analysis for the darkcrowd codebase.

``darkcrowd lint`` runs an AST-based engine over the source tree and
enforces the conventions the pipeline's *reproducibility* leans on:
injectable clocks, seeded RNG, observability naming, shared-memory
hygiene, and a handful of classic Python footguns.  Since v2 the engine
is *whole-program*: a cached project index (symbols, imports, call
graph) feeds graph rules that reason across files -- unseeded RNG
reachable from public entry points, set-order taint flowing into
serialisation sinks, unpicklable pool dispatch, checkpoint version
drift, and API-surface drift.  See :mod:`repro.lintkit.rules` for the
per-file catalogue (DC001..DC011), :mod:`repro.lintkit.graph_rules` for
the whole-program catalogue (DC012..DC016) and the README "Static
analysis" section for the rationale table.

Programmatic use::

    from repro.lintkit import lint_paths, render_text, run_project_lint

    findings = lint_paths(["src", "tests"])
    report = render_text(findings)

    result = run_project_lint(["src"], use_cache=True)
    graph = result.index.graph_payload()

Per-line suppression (documents an intentional exception)::

    started = time.time()  # darkcrowd: disable=DC001
"""

from repro.lintkit.engine import (
    DEFAULT_EXCLUDED_DIRS,
    PARSE_ERROR_ID,
    ProjectLintResult,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    run_project_lint,
)
from repro.lintkit.graph_rules import (
    API_SURFACE_FILE,
    ProjectContext,
    render_api_surface,
)
from repro.lintkit.index import (
    IndexCache,
    ModuleFacts,
    ProjectIndex,
    detect_project_root,
)
from repro.lintkit.model import FileContext, Finding
from repro.lintkit.registry import (
    GraphRule,
    Rule,
    all_rules,
    get_rule,
    register,
    resolve_selection,
)
from repro.lintkit.reporters import (
    REPORT_KIND,
    REPORT_VERSION,
    render_json,
    render_text,
)

__all__ = [
    "API_SURFACE_FILE",
    "DEFAULT_EXCLUDED_DIRS",
    "PARSE_ERROR_ID",
    "REPORT_KIND",
    "REPORT_VERSION",
    "FileContext",
    "Finding",
    "GraphRule",
    "IndexCache",
    "ModuleFacts",
    "ProjectContext",
    "ProjectIndex",
    "ProjectLintResult",
    "Rule",
    "all_rules",
    "detect_project_root",
    "get_rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
    "render_api_surface",
    "render_json",
    "render_text",
    "resolve_selection",
    "run_project_lint",
]
