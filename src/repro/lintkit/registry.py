"""Rule registry: every rule class registers itself under its id.

Rules subclass :class:`Rule` and call :func:`register`; the CLI and the
engine look them up here.  ``--select`` / ``--ignore`` resolve through
:func:`resolve_selection`, which rejects unknown ids loudly rather than
silently checking nothing.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Callable, ClassVar, TypeVar

if TYPE_CHECKING:
    from repro.lintkit.graph_rules import ProjectContext
    from repro.lintkit.model import FileContext

__all__ = [
    "GraphRule",
    "Rule",
    "register",
    "all_rules",
    "get_rule",
    "resolve_selection",
]


class Rule:
    """Base class: one invariant, one id, a handful of ``visit_*`` hooks.

    The engine walks each file's AST exactly once and dispatches node
    ``N`` to every active rule that defines ``visit_<type(N).__name__>``.
    Rules report through :meth:`FileContext.report`, which applies the
    per-line suppressions.
    """

    rule_id: ClassVar[str] = ""
    #: One-line summary for ``--list-rules`` and the README table.
    summary: ClassVar[str] = ""
    #: Why the invariant matters for reproducibility (docs + JSON report).
    rationale: ClassVar[str] = ""

    def applies_to(self, ctx: "FileContext") -> bool:
        """Whether this rule runs at all on *ctx* (path-based scoping)."""
        return True

    def visitor_for(self, node: ast.AST) -> Callable[[ast.AST, "FileContext"], None] | None:
        return getattr(self, f"visit_{type(node).__name__}", None)


class GraphRule(Rule):
    """Whole-program rule: runs once per project, not once per file.

    Graph rules see the :class:`~repro.lintkit.graph_rules.ProjectContext`
    -- symbol table, call graph, reachability, public API surface --
    instead of a single file's AST.  They never receive ``visit_*``
    dispatch (``applies_to`` is False for every file) and only run when
    the engine detects a project root and the lint scope includes
    library code.
    """

    def applies_to(self, ctx: "FileContext") -> bool:
        return False

    def check(self, project: "ProjectContext") -> None:
        raise NotImplementedError


_REGISTRY: dict[str, type[Rule]] = {}

R = TypeVar("R", bound=type[Rule])


def _ensure_builtin_rules() -> None:
    """Import the rule modules so their ``@register`` decorators have run."""
    import repro.lintkit.graph_rules  # noqa: F401  (import for side effect)
    import repro.lintkit.rules  # noqa: F401  (import for side effect)


def register(rule_class: R) -> R:
    """Class decorator: add *rule_class* to the registry under its id."""
    rule_id = rule_class.rule_id
    if not rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    existing = _REGISTRY.get(rule_id)
    if existing is not None and existing is not rule_class:
        raise ValueError(
            f"rule id {rule_id} already registered by {existing.__name__}"
        )
    _REGISTRY[rule_id] = rule_class
    return rule_class


def all_rules() -> dict[str, type[Rule]]:
    """Registered rules keyed by id, in id order."""
    _ensure_builtin_rules()
    return dict(sorted(_REGISTRY.items()))


def get_rule(rule_id: str) -> type[Rule]:
    _ensure_builtin_rules()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown rule id {rule_id!r} (known: {known})") from None


def resolve_selection(
    select: "list[str] | None" = None,
    ignore: "list[str] | None" = None,
) -> list[Rule]:
    """Instantiate the active rule set for a run.

    *select* keeps only the listed ids (default: all); *ignore* then
    drops ids from that set.  Unknown ids raise ``KeyError``.
    """
    _ensure_builtin_rules()
    chosen = list(select) if select else sorted(_REGISTRY)
    for rule_id in list(chosen) + list(ignore or []):
        get_rule(rule_id)  # raise on unknown ids, even in ignore
    dropped = set(ignore or [])
    return [_REGISTRY[rule_id]() for rule_id in chosen if rule_id not in dropped]
