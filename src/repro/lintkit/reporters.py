"""Finding reporters: render a lint run for humans or for machines.

Both reporters return strings; the CLI owns the actual printing (which
also keeps the lint engine itself clean under its own DC004 rule).
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.lintkit.model import Finding
from repro.lintkit.registry import all_rules

__all__ = ["REPORT_KIND", "REPORT_VERSION", "render_text", "render_json"]

REPORT_KIND = "darkcrowd-lint-report"
#: v2: optional "meta" block (cache hit/miss counts, baselined tally,
#: whether the whole-program pass ran).  Everything in v1 is unchanged.
REPORT_VERSION = 2


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: DCnnn message`` line per finding, plus a tally."""
    lines = [finding.render() for finding in sorted(findings)]
    count = len(findings)
    lines.append(
        "all clean" if count == 0 else f"{count} finding{'s' if count != 1 else ''}"
    )
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    indent: "int | None" = 2,
    *,
    meta: "dict[str, object] | None" = None,
) -> str:
    """Stable machine-readable report (schema asserted by the test suite)."""
    rules = {
        rule_id: {"summary": rule.summary, "rationale": rule.rationale}
        for rule_id, rule in all_rules().items()
    }
    payload = {
        "kind": REPORT_KIND,
        "version": REPORT_VERSION,
        "n_findings": len(findings),
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "rule": finding.rule_id,
                "message": finding.message,
            }
            for finding in sorted(findings)
        ],
        "rules": rules,
    }
    if meta is not None:
        payload["meta"] = meta
    return json.dumps(payload, indent=indent, sort_keys=True)
