"""The analysis driver: parse once, walk once, dispatch to every rule.

The per-file half is deliberately small: it parses each file with
:mod:`ast`, builds the per-file context (import-alias table, parent
map, suppression lines), then performs a single depth-first walk
dispatching each node to the rules that declared a ``visit_<NodeType>``
hook.

The whole-program half (:func:`run_project_lint`) layers project
orchestration on top: it detects the project root, extracts
:class:`~repro.lintkit.index.ModuleFacts` from every file (served from
the content-hash cache when warm), assembles the
:class:`~repro.lintkit.index.ProjectIndex`, and runs the registered
:class:`~repro.lintkit.registry.GraphRule` passes (DC012..DC016) over
it.  Graph rules only engage when the lint scope contains library code
-- linting a lone fixture file stays as cheap as v1.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.lintkit.model import SUPPRESS_PATTERN, FileContext, Finding
from repro.lintkit.registry import GraphRule, Rule, resolve_selection

__all__ = [
    "DEFAULT_EXCLUDED_DIRS",
    "PARSE_ERROR_ID",
    "ProjectLintResult",
    "iter_python_files",
    "lint_source",
    "lint_file",
    "lint_paths",
    "run_project_lint",
]

#: Directory names never descended into.  ``fixtures`` keeps the known-bad
#: lint corpus under ``tests/fixtures/`` out of the self-lint gate; the
#: exclusion is computed against *project-root-relative* components, so it
#: holds however the tree is named on the command line (absolute,
#: relative, or dotted paths).  Naming a file explicitly still bypasses it.
DEFAULT_EXCLUDED_DIRS = frozenset(
    {
        "__pycache__",
        ".git",
        ".mypy_cache",
        ".ruff_cache",
        ".venv",
        "venv",
        "build",
        "dist",
        "fixtures",
    }
)

#: Pseudo-rule id attached to files the parser rejects outright.
PARSE_ERROR_ID = "DC000"


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> fully dotted origin, from every import statement.

    Late or conditional imports are included too: resolution is lexical,
    and a file that rebinds an imported name to something else is rare
    enough not to engineer for (the rules only use resolution to *match*
    known-dangerous origins, so a stale alias can at worst over-report,
    and a suppression comment documents the exception).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                origin = name.name if name.asname else name.name.split(".")[0]
                aliases[local] = origin
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports resolve within the package
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    # ``from datetime import datetime`` must resolve chained attributes
    # (``datetime.now``) through the *class*, which the dict already does:
    # the local "datetime" maps to "datetime.datetime".
    return aliases


def _collect_parents(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def _collect_suppressions(lines: Sequence[str]) -> dict[int, set[str]]:
    suppressions: dict[int, set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = SUPPRESS_PATTERN.search(line)
        if match is None:
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        if ids:
            suppressions[lineno] = ids
    return suppressions


def _build_context(source: str, path: str) -> FileContext:
    """Parse *source* and assemble the per-file context (may raise
    ``SyntaxError``)."""
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    return FileContext(
        path=path,
        tree=tree,
        lines=lines,
        aliases=_collect_aliases(tree),
        parents=_collect_parents(tree),
        suppressions=_collect_suppressions(lines),
    )


def _run_file_rules(ctx: FileContext, rules: Sequence[Rule]) -> list[Finding]:
    """Single AST walk dispatching to every applicable per-file rule."""
    scoped = [rule for rule in rules if rule.applies_to(ctx)]
    if scoped:
        for node in ast.walk(ctx.tree):
            for rule in scoped:
                visitor = rule.visitor_for(node)
                if visitor is not None:
                    visitor(node, ctx)
    return sorted(ctx.findings)


def _parse_error(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        path=path,
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        rule_id=PARSE_ERROR_ID,
        message=f"cannot parse file: {exc.msg}",
    )


def lint_source(
    source: str,
    path: str = "<string>",
    rules: "Sequence[Rule] | None" = None,
) -> list[Finding]:
    """Lint Python *source* as if it lived at *path* (per-file rules only).

    The *path* drives rule scoping (e.g. DC005 only checks ``core/``), so
    tests can exercise scoped rules on fixture text by spoofing the path.
    Graph rules need a project; they run through :func:`run_project_lint`.
    """
    active = list(rules) if rules is not None else resolve_selection()
    try:
        ctx = _build_context(source, path)
    except SyntaxError as exc:
        return [_parse_error(path, exc)]
    return _run_file_rules(ctx, active)


def lint_file(path: "str | Path", rules: "Sequence[Rule] | None" = None) -> list[Finding]:
    """Lint one file on disk (per-file rules only)."""
    file_path = Path(path)
    try:
        source = file_path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Finding(
                path=str(file_path),
                line=1,
                col=0,
                rule_id=PARSE_ERROR_ID,
                message=f"cannot read file: {exc}",
            )
        ]
    return lint_source(source, path=str(file_path), rules=rules)


def _exclusion_base(entry_path: Path) -> Path:
    """The directory exclusion components are computed against.

    The project root when the entry lives inside one (making
    ``tests/fixtures`` excluded no matter how the tree was named), the
    entry itself otherwise.
    """
    from repro.lintkit.index import detect_project_root

    resolved = entry_path.resolve()
    root = detect_project_root(resolved)
    if root is not None and resolved.is_relative_to(root):
        return root
    return resolved


def iter_python_files(
    paths: Iterable["str | Path"],
    excluded_dirs: frozenset[str] = DEFAULT_EXCLUDED_DIRS,
) -> Iterator[Path]:
    """Expand files and directories into a sorted, deduplicated file list.

    Exclusion looks at each candidate's *root-relative* directory parts,
    so the fixture corpus stays out of the lint scope for absolute,
    relative, and dot-riddled invocations alike.  Explicitly named files
    bypass exclusion entirely (deliberate: ``darkcrowd lint
    tests/fixtures/dc001_bad.py`` is how the corpus itself is inspected).
    """
    seen: set[Path] = set()
    for entry in paths:
        entry_path = Path(entry)
        if entry_path.is_dir():
            base = _exclusion_base(entry_path)
            candidates = sorted(
                candidate
                for candidate in entry_path.rglob("*.py")
                if not _is_excluded(candidate, base, excluded_dirs)
            )
        else:
            candidates = [entry_path]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def _is_excluded(
    candidate: Path, base: Path, excluded_dirs: frozenset[str]
) -> bool:
    resolved = candidate.resolve()
    if resolved.is_relative_to(base):
        parts = resolved.relative_to(base).parts
    else:
        parts = resolved.parts
    return any(
        part in excluded_dirs or part.startswith(".") for part in parts[:-1]
    )


# ---------------------------------------------------------------------------
# whole-program orchestration
# ---------------------------------------------------------------------------


@dataclass
class ProjectLintResult:
    """Everything a project lint run produced, beyond the finding list."""

    findings: list[Finding]
    root: "Path | None"
    files: list[Path]
    index: "object | None" = None  # ProjectIndex when graph rules ran
    cache_hits: int = 0
    cache_misses: int = 0
    baselined: int = 0


def _classify(parts: "tuple[str, ...]") -> "tuple[bool, bool]":
    """(is_test, is_library) from root-relative path components."""
    name = parts[-1] if parts else ""
    is_test = (
        "tests" in parts[:-1]
        or name.startswith("test_")
        or name == "conftest.py"
    )
    is_library = "repro" in parts[:-1] and not is_test
    return is_test, is_library


def _rel_key(path: Path, root: "Path | None") -> str:
    resolved = path.resolve()
    if root is not None and resolved.is_relative_to(root):
        return resolved.relative_to(root).as_posix()
    return resolved.as_posix()


def _baseline_resolver(root: "Path | None"):
    """Finding -> (normalized path, source line text) for baseline keys."""

    def resolver(finding: Finding) -> "tuple[str, str]":
        candidate = Path(finding.path)
        try:
            resolved = candidate.resolve()
        except OSError:
            return finding.path, ""
        if root is not None and resolved.is_relative_to(root):
            normalized = resolved.relative_to(root).as_posix()
        else:
            normalized = finding.path.replace("\\", "/")
        try:
            line_text = resolved.read_text(encoding="utf-8").splitlines()[
                finding.line - 1
            ]
        except (OSError, UnicodeDecodeError, IndexError):
            line_text = ""
        return normalized, line_text

    return resolver


def run_project_lint(
    paths: Iterable["str | Path"],
    select: "list[str] | None" = None,
    ignore: "list[str] | None" = None,
    *,
    use_cache: bool = False,
    cache_dir: "str | Path | None" = None,
    baseline: "str | Path | None" = None,
) -> ProjectLintResult:
    """Lint *paths* with per-file and whole-program rules.

    Graph rules (DC012..DC016) run when a project root is detected and
    the scope includes library code; the index then covers the whole
    ``<root>/src`` tree (plus everything in scope) so reachability and
    API checks stay sound even when only a subset is being reported on
    (``--changed``).  Module-anchored graph findings outside the
    requested scope are dropped; artifact-level findings (DESIGN.md,
    api_surface.json) are always reported.
    """
    from repro.lintkit import index as index_mod
    from repro.lintkit.baseline import filter_findings, load_baseline
    from repro.lintkit.graph_rules import ProjectContext

    rules = resolve_selection(select=select, ignore=ignore)
    file_rules = [rule for rule in rules if not isinstance(rule, GraphRule)]
    graph_rules = [rule for rule in rules if isinstance(rule, GraphRule)]

    scope_files = list(iter_python_files(paths))
    root: "Path | None" = None
    for entry in paths:
        root = index_mod.detect_project_root(Path(entry))
        if root is not None:
            break
    if root is None and scope_files:
        root = index_mod.detect_project_root(scope_files[0])

    display: dict[str, str] = {}
    for file_path in scope_files:
        display.setdefault(_rel_key(file_path, root), str(file_path))

    graph_active = bool(graph_rules) and root is not None
    if graph_active:
        graph_active = any(
            _classify(tuple(rel.split("/")))[1] for rel in display
        )

    index_files: dict[str, Path] = {}
    for file_path in scope_files:
        index_files.setdefault(_rel_key(file_path, root), file_path)
    if graph_active and root is not None:
        src_dir = root / "src"
        if src_dir.is_dir():
            for file_path in iter_python_files([src_dir]):
                index_files.setdefault(_rel_key(file_path, root), file_path)

    cache = index_mod.IndexCache(None)
    if use_cache and root is not None:
        directory = Path(cache_dir) if cache_dir else root / ".darkcrowd_cache"
        cache = index_mod.IndexCache(directory)
    signature = "files-v2:" + ",".join(
        sorted(rule.rule_id for rule in file_rules)
    )

    findings: list[Finding] = []
    all_facts: list = []
    for rel in sorted(index_files):
        file_path = index_files[rel]
        in_scope = rel in display
        shown_path = display.get(rel, str(file_path))
        try:
            data = file_path.read_bytes()
        except OSError as exc:
            if in_scope:
                findings.append(
                    Finding(
                        path=shown_path,
                        line=1,
                        col=0,
                        rule_id=PARSE_ERROR_ID,
                        message=f"cannot read file: {exc}",
                    )
                )
            continue
        digest = index_mod.content_digest(data)
        parts = tuple(rel.split("/"))
        is_test, is_library = _classify(parts)

        cached_findings = (
            cache.get_findings(rel, digest, signature) if in_scope else None
        )
        facts = cache.get_facts(rel, digest) if graph_active else None
        file_findings: "list[Finding] | None" = None
        if cached_findings is not None:
            # Cached findings store root-relative paths; re-display them
            # the way this invocation named the file.
            file_findings = [
                replace(finding, path=shown_path) for finding in cached_findings
            ]

        needs_parse = (graph_active and facts is None) or (
            in_scope and file_findings is None
        )
        if needs_parse:
            ctx: "FileContext | None" = None
            try:
                source = data.decode("utf-8")
                ctx = _build_context(source, shown_path)
            except UnicodeDecodeError as exc:
                if in_scope and file_findings is None:
                    file_findings = [
                        Finding(
                            path=shown_path,
                            line=1,
                            col=0,
                            rule_id=PARSE_ERROR_ID,
                            message=f"cannot read file: {exc}",
                        )
                    ]
            except SyntaxError as exc:
                if in_scope and file_findings is None:
                    file_findings = [_parse_error(shown_path, exc)]
            if ctx is not None:
                if in_scope and file_findings is None:
                    file_findings = _run_file_rules(ctx, file_rules)
                if graph_active and facts is None:
                    facts = index_mod.extract_module_facts(
                        ctx,
                        module=index_mod.module_name_for(
                            file_path, root if root is not None else file_path.parent
                        ),
                        rel_path=rel,
                        digest=digest,
                        is_test=is_test,
                        is_library=is_library,
                    )
            elif graph_active and facts is None:
                # Unreadable/unparsable: an empty fact record keeps the
                # cache warm and the index consistent.
                facts = index_mod.ModuleFacts(
                    path=rel,
                    module=index_mod.module_name_for(
                        file_path, root if root is not None else file_path.parent
                    ),
                    content_hash=digest,
                    is_test=is_test,
                    is_library=is_library,
                )
            cache.put(
                rel,
                digest,
                facts=facts,
                signature=signature if in_scope and file_findings is not None else None,
                findings=(
                    [replace(f, path=rel) for f in file_findings]
                    if in_scope and file_findings is not None
                    else None
                ),
            )

        if in_scope and file_findings:
            findings.extend(file_findings)
        if facts is not None:
            all_facts.append(facts)

    project_index = None
    if graph_active and root is not None:
        project_index = index_mod.ProjectIndex(root, all_facts)
        project_ctx = ProjectContext(
            root=root, index=project_index, display=display
        )
        for rule in graph_rules:
            rule.check(project_ctx)
        findings.extend(project_ctx.findings)

    baselined = 0
    if baseline is not None:
        entries = load_baseline(baseline)
        findings, baselined = filter_findings(
            findings, entries, _baseline_resolver(root)
        )

    cache.save()
    return ProjectLintResult(
        findings=sorted(findings),
        root=root,
        files=scope_files,
        index=project_index,
        cache_hits=cache.hits,
        cache_misses=cache.misses,
        baselined=baselined,
    )


def lint_paths(
    paths: Iterable["str | Path"],
    select: "list[str] | None" = None,
    ignore: "list[str] | None" = None,
    *,
    use_cache: bool = False,
    cache_dir: "str | Path | None" = None,
    baseline: "str | Path | None" = None,
) -> list[Finding]:
    """Lint files and directory trees; the main library entry point."""
    return run_project_lint(
        paths,
        select=select,
        ignore=ignore,
        use_cache=use_cache,
        cache_dir=cache_dir,
        baseline=baseline,
    ).findings
