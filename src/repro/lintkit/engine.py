"""The analysis driver: parse once, walk once, dispatch to every rule.

The engine is deliberately small: it parses each file with :mod:`ast`,
builds the per-file context (import-alias table, parent map, suppression
lines), then performs a single depth-first walk dispatching each node to
the rules that declared a ``visit_<NodeType>`` hook.  All project
knowledge lives in the rules (:mod:`repro.lintkit.rules`); all location
and resolution machinery lives here and in the model.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.lintkit.model import SUPPRESS_PATTERN, FileContext, Finding
from repro.lintkit.registry import Rule, resolve_selection

__all__ = [
    "DEFAULT_EXCLUDED_DIRS",
    "PARSE_ERROR_ID",
    "iter_python_files",
    "lint_source",
    "lint_file",
    "lint_paths",
]

#: Directory names never descended into.  ``fixtures`` keeps the known-bad
#: lint corpus under ``tests/fixtures/`` out of the self-lint gate.
DEFAULT_EXCLUDED_DIRS = frozenset(
    {
        "__pycache__",
        ".git",
        ".mypy_cache",
        ".ruff_cache",
        ".venv",
        "venv",
        "build",
        "dist",
        "fixtures",
    }
)

#: Pseudo-rule id attached to files the parser rejects outright.
PARSE_ERROR_ID = "DC000"


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> fully dotted origin, from every import statement.

    Late or conditional imports are included too: resolution is lexical,
    and a file that rebinds an imported name to something else is rare
    enough not to engineer for (the rules only use resolution to *match*
    known-dangerous origins, so a stale alias can at worst over-report,
    and a suppression comment documents the exception).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                origin = name.name if name.asname else name.name.split(".")[0]
                aliases[local] = origin
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports resolve within the package
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    # ``from datetime import datetime`` must resolve chained attributes
    # (``datetime.now``) through the *class*, which the dict already does:
    # the local "datetime" maps to "datetime.datetime".
    return aliases


def _collect_parents(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def _collect_suppressions(lines: Sequence[str]) -> dict[int, set[str]]:
    suppressions: dict[int, set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = SUPPRESS_PATTERN.search(line)
        if match is None:
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        if ids:
            suppressions[lineno] = ids
    return suppressions


def lint_source(
    source: str,
    path: str = "<string>",
    rules: "Sequence[Rule] | None" = None,
) -> list[Finding]:
    """Lint Python *source* as if it lived at *path*.

    The *path* drives rule scoping (e.g. DC005 only checks ``core/``), so
    tests can exercise scoped rules on fixture text by spoofing the path.
    """
    active = list(rules) if rules is not None else resolve_selection()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule_id=PARSE_ERROR_ID,
                message=f"cannot parse file: {exc.msg}",
            )
        ]
    lines = source.splitlines()
    ctx = FileContext(
        path=path,
        tree=tree,
        lines=lines,
        aliases=_collect_aliases(tree),
        parents=_collect_parents(tree),
        suppressions=_collect_suppressions(lines),
    )
    scoped = [rule for rule in active if rule.applies_to(ctx)]
    if scoped:
        for node in ast.walk(tree):
            for rule in scoped:
                visitor = rule.visitor_for(node)
                if visitor is not None:
                    visitor(node, ctx)
    return sorted(ctx.findings)


def lint_file(path: "str | Path", rules: "Sequence[Rule] | None" = None) -> list[Finding]:
    """Lint one file on disk."""
    file_path = Path(path)
    try:
        source = file_path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Finding(
                path=str(file_path),
                line=1,
                col=0,
                rule_id=PARSE_ERROR_ID,
                message=f"cannot read file: {exc}",
            )
        ]
    return lint_source(source, path=str(file_path), rules=rules)


def iter_python_files(
    paths: Iterable["str | Path"],
    excluded_dirs: frozenset[str] = DEFAULT_EXCLUDED_DIRS,
) -> Iterator[Path]:
    """Expand files and directories into a sorted, deduplicated file list."""
    seen: set[Path] = set()
    for entry in paths:
        entry_path = Path(entry)
        if entry_path.is_dir():
            candidates = sorted(
                candidate
                for candidate in entry_path.rglob("*.py")
                if not any(
                    part in excluded_dirs or part.startswith(".")
                    for part in candidate.relative_to(entry_path).parts[:-1]
                )
            )
        else:
            candidates = [entry_path]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_paths(
    paths: Iterable["str | Path"],
    select: "list[str] | None" = None,
    ignore: "list[str] | None" = None,
) -> list[Finding]:
    """Lint files and directory trees; the main library entry point."""
    rules = resolve_selection(select=select, ignore=ignore)
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path, rules=rules))
    return sorted(findings)
