"""EMD-based placement of anonymous users into time zones (Sec. IV-A).

Every member of an anonymous crowd is compared, via the Earth Mover's
Distance, against the 24 time-zone reference profiles and assigned to the
nearest one.  The fractions of the crowd landing in each zone form the
*placement distribution* -- the histogram the paper plots in Figs. 3-5 and
9-13 and then fits with Gaussian (mixtures).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.batch import ProfileMatrix
from repro.core.emd import distance_matrix
from repro.core.events import TraceSet
from repro.core.profiles import Profile
from repro.core.reference import ReferenceProfiles
from repro.errors import EmptyTraceError
from repro.timebase.zones import ZONE_OFFSETS, normalize_offset

if TYPE_CHECKING:
    from repro.core.types import FloatArray, IntArray, ProfileLike


@dataclass(frozen=True)
class PlacementDistribution:
    """Fraction of an anonymous crowd placed in each of the 24 zones."""

    fractions: tuple[float, ...]
    n_users: int

    def __post_init__(self) -> None:
        if len(self.fractions) != len(ZONE_OFFSETS):
            raise ValueError(
                f"expected {len(ZONE_OFFSETS)} fractions, got {len(self.fractions)}"
            )

    @property
    def offsets(self) -> tuple[int, ...]:
        return ZONE_OFFSETS

    def as_array(self) -> FloatArray:
        return np.asarray(self.fractions, dtype=float)

    def fraction_at(self, offset: int) -> float:
        return self.fractions[ZONE_OFFSETS.index(normalize_offset(offset))]

    def mode_offset(self) -> int:
        """Zone offset receiving the largest crowd fraction."""
        return ZONE_OFFSETS[int(np.argmax(self.fractions))]

    def mean_offset(self) -> float:
        """Crowd-weighted mean zone offset (linear, as the paper fits)."""
        array = self.as_array()
        return float(np.dot(array, np.asarray(ZONE_OFFSETS)) / array.sum())

    def counts(self) -> IntArray:
        """Approximate per-zone user counts (fractions * n_users)."""
        return np.rint(self.as_array() * self.n_users).astype(int)

    def top_zones(self, n: int = 3) -> list[tuple[int, float]]:
        """The *n* (offset, fraction) pairs with the largest fractions."""
        order = np.argsort(self.fractions)[::-1][:n]
        return [(ZONE_OFFSETS[i], self.fractions[i]) for i in order]


def _nearest_zone_indices(
    profiles: "ProfileLike", references: ReferenceProfiles, metric: str
) -> "IntArray":
    """Index (0..23, in ZONE_OFFSETS order) of each profile's nearest zone."""
    matrix = distance_matrix(profiles, references, metric=metric)
    # argmin takes the first minimum: ties resolve to the smaller offset,
    # matching ReferenceProfiles.nearest_zone.
    return np.argmin(matrix, axis=1)


def place_users(
    profiles: "Mapping[str, Profile] | ProfileMatrix",
    references: ReferenceProfiles,
    metric: str = "linear",
) -> dict[str, int]:
    """Assign each user profile to its EMD-nearest time zone.

    Returns a mapping user id -> zone offset.  Ties (rare with real-valued
    distances) resolve to the smaller offset, matching
    :meth:`ReferenceProfiles.nearest_zone`.  *profiles* may be a plain
    mapping of :class:`Profile` or a whole :class:`ProfileMatrix`.
    """
    if isinstance(profiles, ProfileMatrix):
        user_ids: list[str] | tuple[str, ...] = profiles.user_ids
        stack = profiles
    else:
        user_ids = list(profiles)
        stack = [profiles[user_id] for user_id in user_ids]
    if not user_ids:
        return {}
    nearest = _nearest_zone_indices(stack, references, metric)
    return {
        user_id: ZONE_OFFSETS[int(index)]
        for user_id, index in zip(user_ids, nearest)
    }


def placement_distribution(assignments: Iterable[int]) -> PlacementDistribution:
    """Aggregate per-user zone assignments into a placement distribution."""
    offsets = np.fromiter(
        (int(offset) for offset in assignments), dtype=np.int64
    )
    if offsets.size == 0:
        raise EmptyTraceError("cannot build a placement from zero users")
    # normalize_offset(o) == ((o + 11) % 24) - 11, and ZONE_OFFSETS.index of
    # a normalised offset is offset + 11 -- so one bincount does both.
    counts = np.bincount(
        (offsets + 11) % 24, minlength=len(ZONE_OFFSETS)
    ).astype(float)
    fractions = counts / counts.sum()
    return PlacementDistribution(
        tuple(fractions.tolist()), n_users=int(offsets.size)
    )


def place_profile_matrix(
    matrix: ProfileMatrix,
    references: ReferenceProfiles,
    metric: str = "linear",
) -> tuple[dict[str, int], PlacementDistribution]:
    """Batch placement: per-user assignments plus the aggregate, one pass.

    The placement histogram is bincounted straight from the argmin indices,
    so the crowd is placed with exactly one distance-matrix evaluation.
    """
    if len(matrix) == 0:
        raise EmptyTraceError("cannot build a placement from zero users")
    nearest = _nearest_zone_indices(matrix, references, metric)
    assignments = {
        user_id: ZONE_OFFSETS[int(index)]
        for user_id, index in zip(matrix.user_ids, nearest)
    }
    counts = np.bincount(nearest, minlength=len(ZONE_OFFSETS)).astype(float)
    distribution = PlacementDistribution(
        tuple((counts / counts.sum()).tolist()), n_users=len(matrix)
    )
    return assignments, distribution


def place_trace_set(
    traces: TraceSet,
    references: ReferenceProfiles,
    metric: str = "linear",
) -> PlacementDistribution:
    """Profile every trace (on UTC clocks) and place the crowd.

    This is the one-call version used by the figure benches; the richer
    pipeline (polishing, fitting, reporting) lives in
    :class:`repro.core.geolocate.CrowdGeolocator`.
    """
    matrix = ProfileMatrix.from_trace_set(traces)
    if len(matrix) == 0:
        raise EmptyTraceError("cannot build a placement from zero users")
    _, distribution = place_profile_matrix(matrix, references, metric=metric)
    return distribution
