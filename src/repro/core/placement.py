"""EMD-based placement of anonymous users into time zones (Sec. IV-A).

Every member of an anonymous crowd is compared, via the Earth Mover's
Distance, against the 24 time-zone reference profiles and assigned to the
nearest one.  The fractions of the crowd landing in each zone form the
*placement distribution* -- the histogram the paper plots in Figs. 3-5 and
9-13 and then fits with Gaussian (mixtures).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

import numpy as np

from repro.core.emd import distance_matrix
from repro.core.events import TraceSet
from repro.core.profiles import Profile, build_user_profile
from repro.core.reference import ReferenceProfiles
from repro.errors import EmptyTraceError
from repro.timebase.zones import ZONE_OFFSETS, normalize_offset


@dataclass(frozen=True)
class PlacementDistribution:
    """Fraction of an anonymous crowd placed in each of the 24 zones."""

    fractions: tuple[float, ...]
    n_users: int

    def __post_init__(self) -> None:
        if len(self.fractions) != len(ZONE_OFFSETS):
            raise ValueError(
                f"expected {len(ZONE_OFFSETS)} fractions, got {len(self.fractions)}"
            )

    @property
    def offsets(self) -> tuple[int, ...]:
        return ZONE_OFFSETS

    def as_array(self) -> np.ndarray:
        return np.asarray(self.fractions, dtype=float)

    def fraction_at(self, offset: int) -> float:
        return self.fractions[ZONE_OFFSETS.index(normalize_offset(offset))]

    def mode_offset(self) -> int:
        """Zone offset receiving the largest crowd fraction."""
        return ZONE_OFFSETS[int(np.argmax(self.fractions))]

    def mean_offset(self) -> float:
        """Crowd-weighted mean zone offset (linear, as the paper fits)."""
        array = self.as_array()
        return float(np.dot(array, np.asarray(ZONE_OFFSETS)) / array.sum())

    def counts(self) -> np.ndarray:
        """Approximate per-zone user counts (fractions * n_users)."""
        return np.rint(self.as_array() * self.n_users).astype(int)

    def top_zones(self, n: int = 3) -> list[tuple[int, float]]:
        """The *n* (offset, fraction) pairs with the largest fractions."""
        order = np.argsort(self.fractions)[::-1][:n]
        return [(ZONE_OFFSETS[i], self.fractions[i]) for i in order]


def place_users(
    profiles: Mapping[str, Profile],
    references: ReferenceProfiles,
    metric: str = "linear",
) -> dict[str, int]:
    """Assign each user profile to its EMD-nearest time zone.

    Returns a mapping user id -> zone offset.  Ties (rare with real-valued
    distances) resolve to the smaller offset, matching
    :meth:`ReferenceProfiles.nearest_zone`.
    """
    if not profiles:
        return {}
    user_ids = list(profiles)
    matrix = distance_matrix(
        [profiles[user_id] for user_id in user_ids],
        references.as_list(),
        metric=metric,
    )
    nearest = np.argmin(matrix, axis=1)
    return {
        user_id: ZONE_OFFSETS[int(index)]
        for user_id, index in zip(user_ids, nearest)
    }


def placement_distribution(assignments: Iterable[int]) -> PlacementDistribution:
    """Aggregate per-user zone assignments into a placement distribution."""
    offsets = [normalize_offset(offset) for offset in assignments]
    if not offsets:
        raise EmptyTraceError("cannot build a placement from zero users")
    counts = np.zeros(len(ZONE_OFFSETS), dtype=float)
    for offset in offsets:
        counts[ZONE_OFFSETS.index(offset)] += 1.0
    fractions = counts / counts.sum()
    return PlacementDistribution(tuple(fractions.tolist()), n_users=len(offsets))


def place_trace_set(
    traces: TraceSet,
    references: ReferenceProfiles,
    metric: str = "linear",
) -> PlacementDistribution:
    """Profile every trace (on UTC clocks) and place the crowd.

    This is the one-call version used by the figure benches; the richer
    pipeline (polishing, fitting, reporting) lives in
    :class:`repro.core.geolocate.CrowdGeolocator`.
    """
    profiles = {
        trace.user_id: build_user_profile(trace)
        for trace in traces
        if not trace.is_empty()
    }
    assignments = place_users(profiles, references, metric=metric)
    return placement_distribution(assignments.values())
