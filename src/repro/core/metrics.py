"""Fit-quality and similarity metrics (Table II, Pearson checks).

Table II of the paper reports, for every placement figure, the *average*
and *standard deviation* of the point-by-point distance between the fitted
Gaussian mixture and the crowd placement distribution, plus a baseline
obtained by shifting the Malaysian fit 12 hours away from its crowd.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.gaussian import GaussianComponent, mixture_pdf
from repro.core.placement import PlacementDistribution
from repro.core.profiles import Profile
from repro.timebase.zones import ZONE_OFFSETS

if TYPE_CHECKING:
    from repro.core.types import FloatArray


def pearson(a: "Profile | FloatArray", b: "Profile | FloatArray") -> float:
    """Pearson correlation between two profiles / 24-vectors.

    The paper uses this to show crowd profiles from different countries are
    nearly identical once aligned (~0.9), and that the CRD Club profile
    correlates 0.93 with the generic Twitter profile.
    """
    x = a.mass if isinstance(a, Profile) else np.asarray(a, dtype=float)
    y = b.mass if isinstance(b, Profile) else np.asarray(b, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    return float(np.corrcoef(x, y)[0, 1])


@dataclass(frozen=True)
class FitDistanceMetrics:
    """Table II row: mean/std of |fit - placement| across the 24 zones."""

    average: float
    standard_deviation: float

    def as_row(self, label: str) -> tuple[str, float, float]:
        return (label, self.average, self.standard_deviation)


def fit_distance_metrics(
    placement: PlacementDistribution,
    components: Sequence[GaussianComponent],
    *,
    shift_hours: float = 0.0,
) -> FitDistanceMetrics:
    """Point-by-point distance stats between a mixture fit and a placement.

    *shift_hours* displaces the fitted curve along the zone axis before
    comparing; the paper's Table II baseline is the Malaysian fit shifted
    by 12 hours against the unshifted Malaysian placement.
    """
    offsets = np.asarray(ZONE_OFFSETS, dtype=float)
    fitted = np.asarray(mixture_pdf(components, offsets - shift_hours))
    residual = np.abs(fitted - placement.as_array())
    return FitDistanceMetrics(
        average=float(residual.mean()),
        standard_deviation=float(residual.std()),
    )


def baseline_metrics(
    placement: PlacementDistribution,
    components: Sequence[GaussianComponent],
) -> FitDistanceMetrics:
    """The paper's Table II baseline: the fit shifted 12 hours."""
    return fit_distance_metrics(placement, components, shift_hours=12.0)
