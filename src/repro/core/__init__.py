"""The paper's contribution: timestamp-based crowd geolocation.

Pipeline (Secs. IV and V of the paper):

1. :mod:`repro.core.events`    -- activity traces of (user, timestamp) posts,
2. :mod:`repro.core.profiles`  -- Eq. 1 user profiles and Eq. 2 crowd profiles,
3. :mod:`repro.core.emd`       -- Earth Mover's Distance between profiles,
4. :mod:`repro.core.reference` -- generic profile and 24 zone references,
5. :mod:`repro.core.placement` -- EMD placement of users into time zones,
6. :mod:`repro.core.gaussian`  -- Gaussian curve fitting of placements,
7. :mod:`repro.core.em`        -- EM / Gaussian-mixture decomposition,
8. :mod:`repro.core.flatness`  -- flat-profile (bot) polishing,
9. :mod:`repro.core.hemisphere`-- DST-based hemisphere classification,
10. :mod:`repro.core.geolocate`-- the end-to-end facade.
"""

from repro.core.events import ActivityTrace, PostEvent, TraceSet
from repro.core.profiles import (
    Profile,
    active_hour_counts,
    build_crowd_profile,
    build_user_profile,
    uniform_profile,
)
from repro.core.batch import ProfileMatrix, build_profile_matrix
from repro.core.emd import distance_matrix, emd_circular, emd_linear
from repro.core.reference import ReferenceProfiles, parametric_generic_profile
from repro.core.placement import (
    PlacementDistribution,
    place_profile_matrix,
    place_trace_set,
    place_users,
)
from repro.core.gaussian import GaussianComponent, fit_gaussian, mixture_pdf
from repro.core.em import GaussianMixtureModel, fit_mixture, select_mixture
from repro.core.flatness import (
    flat_profile_mask,
    is_flat_profile,
    polish_profile_matrix,
    polish_trace_set,
    polish_trace_set_reference,
)
from repro.core.hemisphere import HemisphereVerdict, classify_hemisphere
from repro.core.dst_family import DstFamily, classify_dst_family
from repro.core.confidence import BootstrapResult, bootstrap_mixture
from repro.core.streaming import StreamingGeolocator, StreamSnapshot
from repro.core.metrics import fit_distance_metrics, pearson
from repro.core.kernels import (
    HAVE_NUMBA,
    available_backends,
    kernel_backend,
    segment_counts,
    set_kernel_backend,
)
from repro.core.shard import (
    ShardPartial,
    compute_partials,
    compute_shard_partial,
    merge_partials,
)
from repro.core.geolocate import CrowdGeolocator, GeolocationReport

__all__ = [
    "ActivityTrace",
    "PostEvent",
    "TraceSet",
    "Profile",
    "ProfileMatrix",
    "active_hour_counts",
    "build_crowd_profile",
    "build_profile_matrix",
    "build_user_profile",
    "uniform_profile",
    "distance_matrix",
    "emd_circular",
    "emd_linear",
    "ReferenceProfiles",
    "parametric_generic_profile",
    "PlacementDistribution",
    "place_profile_matrix",
    "place_trace_set",
    "place_users",
    "GaussianComponent",
    "fit_gaussian",
    "mixture_pdf",
    "GaussianMixtureModel",
    "fit_mixture",
    "select_mixture",
    "flat_profile_mask",
    "is_flat_profile",
    "polish_profile_matrix",
    "polish_trace_set",
    "polish_trace_set_reference",
    "HemisphereVerdict",
    "classify_hemisphere",
    "DstFamily",
    "classify_dst_family",
    "BootstrapResult",
    "bootstrap_mixture",
    "StreamingGeolocator",
    "StreamSnapshot",
    "fit_distance_metrics",
    "pearson",
    "HAVE_NUMBA",
    "available_backends",
    "kernel_backend",
    "segment_counts",
    "set_kernel_backend",
    "ShardPartial",
    "compute_partials",
    "compute_shard_partial",
    "merge_partials",
    "CrowdGeolocator",
    "GeolocationReport",
]
