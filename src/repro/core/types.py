"""Shared type aliases of the numeric core.

The core kernels pass ``(N, 24)`` float matrices, int64 day/hour columns
and boolean masks between modules; these aliases give those shapes one
spelling so ``mypy --strict`` can check the handoffs without every
signature re-deriving ``NDArray[np.float64]``.

``ProfileLike`` names the duck-typed "any profile collection" accepted by
:func:`repro.core.emd.distance_matrix` and friends: a sequence of
:class:`~repro.core.profiles.Profile`, a raw ``(N, 24)`` array, a
:class:`~repro.core.batch.ProfileMatrix` or a
:class:`~repro.core.reference.ReferenceProfiles`.  It is importable only
under ``TYPE_CHECKING`` (the member classes live in modules that import
this one's consumers), which is all the string-annotation world of
``from __future__ import annotations`` needs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Union

import numpy as np
from numpy.typing import NDArray

__all__ = ["FloatArray", "IntArray", "BoolArray", "AnyArray", "ProfileLike"]

FloatArray = NDArray[np.float64]
IntArray = NDArray[np.int64]
BoolArray = NDArray[np.bool_]
AnyArray = NDArray[Any]

if TYPE_CHECKING:
    from collections.abc import Sequence

    from repro.core.batch import ProfileMatrix
    from repro.core.profiles import Profile
    from repro.core.reference import ReferenceProfiles

    ProfileLike = Union[
        "Sequence[Profile]", FloatArray, "ProfileMatrix", "ReferenceProfiles"
    ]
