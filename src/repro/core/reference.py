"""The generic diurnal profile and the 24 time-zone reference profiles.

Sec. IV of the paper: after shifting every country's crowd profile to a
common time zone the shapes are nearly identical (mean pairwise Pearson
~0.9), so a single *generic* profile shifted by ``k`` hours serves as the
reference for time zone UTC+k -- "we can easily build the profile for
every region, even those not present in Table I, by just shifting the
generic profile".

Two ways to obtain the generic profile are provided:

* :func:`parametric_generic_profile` -- the canonical diurnal shape
  reported by the Facebook/YouTube/Twitter measurement studies the paper
  builds on (refs [5], [6]): activity grows from early morning, dips
  slightly at lunch, peaks in the evening (~21h local) and collapses
  during the night (trough ~4-5h local);
* :meth:`ReferenceProfiles.from_regional_crowds` -- the paper's data-driven
  construction, averaging region crowd profiles after shifting to UTC.

Shift convention: a crowd living in UTC+k, profiled on UTC clocks, looks
like the generic curve shifted by ``-k`` (local hour L happens at UTC hour
L-k).  :meth:`ReferenceProfiles.for_zone` encapsulates this so callers
never deal with the sign.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import TYPE_CHECKING

import numpy as np

from repro.core.emd import ALL_DISTANCES, distance_matrix
from repro.core.profiles import HOURS, Profile, build_crowd_profile
from repro.errors import ProfileError
from repro.timebase.zones import ZONE_OFFSETS, normalize_offset

if TYPE_CHECKING:
    from repro.core.types import FloatArray

#: The canonical local-time diurnal activity curve (unnormalised weights,
#: one per hour 0..23).  Hand-calibrated against the shapes in the paper's
#: Figs. 1, 2 and 8 and the access-pattern studies it cites: night trough
#: between 4h and 5h, growth through the morning, slight lunch plateau,
#: evening peak at 21h, decay after 22h.
_CANONICAL_WEIGHTS = (
    0.040,  # 00
    0.025,  # 01
    0.017,  # 02
    0.012,  # 03
    0.010,  # 04
    0.011,  # 05
    0.014,  # 06
    0.020,  # 07
    0.028,  # 08
    0.036,  # 09
    0.042,  # 10
    0.046,  # 11
    0.048,  # 12
    0.046,  # 13  (lunch dip)
    0.048,  # 14
    0.051,  # 15
    0.055,  # 16
    0.059,  # 17
    0.063,  # 18
    0.068,  # 19
    0.074,  # 20
    0.078,  # 21  (evening peak)
    0.072,  # 22
    0.055,  # 23
)


def parametric_generic_profile() -> Profile:
    """The canonical local-time diurnal profile (normalised)."""
    return Profile(np.asarray(_CANONICAL_WEIGHTS))


def canonical_rate(hour: float) -> float:
    """Periodic linear interpolation of the canonical curve at a real hour.

    Used by the synthetic posting process to evaluate a user's activity
    rate at fractional local hours (e.g. after a chronotype shift).
    """
    wrapped = float(hour) % HOURS
    # Python's modulo of a tiny negative float can round up to exactly 24.0.
    if wrapped >= HOURS:
        wrapped = 0.0
    low = int(wrapped)
    high = (low + 1) % HOURS
    frac = wrapped - low
    return (1.0 - frac) * _CANONICAL_WEIGHTS[low] + frac * _CANONICAL_WEIGHTS[high]


class ReferenceProfiles:
    """The per-zone reference profiles anonymous users are matched against."""

    def __init__(self, generic: Profile) -> None:
        self._generic = generic
        self._by_offset = {
            offset: generic.shifted(-offset) for offset in ZONE_OFFSETS
        }
        # Lazily-built caches: the (24, 24) stacked reference matrix and its
        # row-wise cumulative sums (the EMD CDFs).  References are immutable
        # after construction, so every distance_matrix call can reuse them
        # instead of re-stacking and re-cumsum-ing the same 24 rows.
        self._stacked: FloatArray | None = None
        self._cumulative: FloatArray | None = None

    @classmethod
    def canonical(cls) -> "ReferenceProfiles":
        """References derived from the parametric generic profile."""
        return cls(parametric_generic_profile())

    @classmethod
    def from_regional_crowds(
        cls, crowd_profiles: Mapping[int, Profile]
    ) -> "ReferenceProfiles":
        """The paper's construction: average region crowds shifted to UTC.

        *crowd_profiles* maps each region's UTC offset to its crowd profile
        **as built on UTC clocks**.  Each is rotated by ``+offset`` back to
        the canonical local-time frame, then averaged.
        """
        if not crowd_profiles:
            raise ProfileError("need at least one regional crowd profile")
        aligned = [
            profile.shifted(offset) for offset, profile in crowd_profiles.items()
        ]
        return cls(build_crowd_profile(aligned))

    @property
    def generic(self) -> Profile:
        """The generic (UTC-resident / local-time) profile."""
        return self._generic

    def for_zone(self, offset: int) -> Profile:
        """Reference profile of zone UTC+offset, expressed on UTC clocks."""
        return self._by_offset[normalize_offset(offset)]

    def offsets(self) -> tuple[int, ...]:
        return ZONE_OFFSETS

    def as_list(self) -> list[Profile]:
        """References in plotting order (UTC-11 .. UTC+12)."""
        return [self._by_offset[offset] for offset in ZONE_OFFSETS]

    def stacked(self) -> FloatArray:
        """The 24 references as a (24, 24) array in plotting order (cached)."""
        if self._stacked is None:
            self._stacked = np.vstack(
                [self._by_offset[offset].mass for offset in ZONE_OFFSETS]
            )
            self._stacked.flags.writeable = False
        return self._stacked

    def cumulative(self) -> FloatArray:
        """Row-wise cumulative sums of :meth:`stacked` (cached EMD CDFs)."""
        if self._cumulative is None:
            self._cumulative = np.cumsum(self.stacked(), axis=1)
            self._cumulative.flags.writeable = False
        return self._cumulative

    def nearest_zone(self, profile: Profile, metric: str = "linear") -> int:
        """Offset of the zone whose reference is closest to *profile*."""
        row = distance_matrix([profile], self, metric=metric)[0]
        # argmin takes the first minimum, i.e. the smallest offset on ties.
        return ZONE_OFFSETS[int(np.argmin(row))]

    def distance_to_zone(
        self, profile: Profile, offset: int, metric: str = "linear"
    ) -> float:
        """Distance from *profile* to the reference of zone UTC+offset."""
        distance = ALL_DISTANCES[metric]
        return distance(profile, self._by_offset[normalize_offset(offset)])
