"""Activity traces: the raw material of the geolocation method.

The paper's method consumes nothing but (author id, post timestamp) pairs
-- "information that is available to every member of the forum with no
particular privilege" (Sec. I).  This module provides the containers:

* :class:`PostEvent`     -- one post by one user at one UTC instant,
* :class:`ActivityTrace` -- the ordered posting history of a single user,
* :class:`TraceSet`      -- the traces of a whole crowd.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import EmptyTraceError
from repro.timebase.clock import day_ordinal, hour_of_day, split_day_hours

if TYPE_CHECKING:
    from repro.core.types import FloatArray


@dataclass(frozen=True, order=True)
class PostEvent:
    """One post: *timestamp* is UTC seconds since the simulation epoch."""

    timestamp: float
    user_id: str = field(compare=False)

    def day(self, offset_hours: float = 0.0) -> int:
        """Civil day ordinal of the post in zone UTC+offset."""
        return day_ordinal(self.timestamp, offset_hours)

    def hour(self, offset_hours: float = 0.0) -> int:
        """Hour of day (0..23) of the post in zone UTC+offset."""
        return hour_of_day(self.timestamp, offset_hours)


class ActivityTrace:
    """The posting history of a single user, kept sorted by time."""

    __slots__ = ("user_id", "_timestamps")

    def __init__(self, user_id: str, timestamps: Iterable[float] = ()) -> None:
        self.user_id = user_id
        if isinstance(timestamps, np.ndarray):
            values = np.asarray(timestamps, dtype=float)
        else:
            values = np.asarray(list(timestamps), dtype=float)
        self._timestamps = np.sort(values)

    @classmethod
    def from_events(cls, user_id: str, events: Iterable[PostEvent]) -> "ActivityTrace":
        return cls(user_id, (event.timestamp for event in events))

    @property
    def timestamps(self) -> FloatArray:
        """Sorted UTC timestamps (read-only view)."""
        view = self._timestamps.view()
        view.flags.writeable = False
        return view

    def __len__(self) -> int:
        return int(self._timestamps.size)

    def __iter__(self) -> Iterator[PostEvent]:
        for timestamp in self._timestamps:
            yield PostEvent(float(timestamp), self.user_id)

    def __repr__(self) -> str:
        return f"ActivityTrace({self.user_id!r}, n={len(self)})"

    def is_empty(self) -> bool:
        return len(self) == 0

    def span_days(self) -> int:
        """Number of civil days (UTC) covered from first to last post."""
        if self.is_empty():
            return 0
        first = day_ordinal(float(self._timestamps[0]))
        last = day_ordinal(float(self._timestamps[-1]))
        return last - first + 1

    def shifted(self, hours: float) -> "ActivityTrace":
        """A copy with every timestamp moved by *hours* (server-offset fix)."""
        return ActivityTrace(self.user_id, self._timestamps + hours * 3600.0)

    def restricted_to_days(self, predicate: Callable[[int], bool]) -> "ActivityTrace":
        """Keep only posts whose UTC day ordinal satisfies *predicate*."""
        if self.is_empty():
            return ActivityTrace(self.user_id)
        days = (self._timestamps // 86400.0).astype(int)
        keep = np.fromiter(
            (predicate(int(day)) for day in days), dtype=bool, count=days.size
        )
        return ActivityTrace(self.user_id, self._timestamps[keep])

    def merged_with(self, other: "ActivityTrace") -> "ActivityTrace":
        """Union of two traces for the same user."""
        if other.user_id != self.user_id:
            raise ValueError(
                f"cannot merge traces of {self.user_id!r} and {other.user_id!r}"
            )
        return ActivityTrace(
            self.user_id, np.concatenate([self._timestamps, other._timestamps])
        )

    def active_day_hours(self, offset_hours: float = 0.0) -> set[tuple[int, int]]:
        """The set of (day ordinal, hour) cells with at least one post.

        This is the support of the paper's indicator ``a_d(h)`` (Eq. 1).
        """
        days, hours = split_day_hours(self._timestamps, offset_hours)
        return set(zip(days.tolist(), hours.tolist()))


class TraceSet:
    """A crowd: a mapping from user id to :class:`ActivityTrace`."""

    def __init__(self, traces: Iterable[ActivityTrace] = ()) -> None:
        self._traces: dict[str, ActivityTrace] = {}
        for trace in traces:
            self.add(trace)

    def add(self, trace: ActivityTrace) -> None:
        existing = self._traces.get(trace.user_id)
        if existing is not None:
            trace = existing.merged_with(trace)
        self._traces[trace.user_id] = trace

    @classmethod
    def from_events(cls, events: Iterable[PostEvent]) -> "TraceSet":
        buckets: dict[str, list[float]] = {}
        for event in events:
            buckets.setdefault(event.user_id, []).append(event.timestamp)
        return cls(
            ActivityTrace(user_id, stamps) for user_id, stamps in buckets.items()
        )

    def __len__(self) -> int:
        return len(self._traces)

    def __iter__(self) -> Iterator[ActivityTrace]:
        return iter(self._traces.values())

    def __contains__(self, user_id: str) -> bool:
        return user_id in self._traces

    def __getitem__(self, user_id: str) -> ActivityTrace:
        try:
            return self._traces[user_id]
        except KeyError:
            raise EmptyTraceError(f"no trace for user {user_id!r}") from None

    def user_ids(self) -> list[str]:
        return list(self._traces)

    def total_posts(self) -> int:
        return sum(len(trace) for trace in self._traces.values())

    def filter_users(self, predicate: Callable[["ActivityTrace"], bool]) -> "TraceSet":
        """Keep traces for which ``predicate(trace)`` is true."""
        return TraceSet(trace for trace in self if predicate(trace))

    def with_min_posts(self, threshold: int = 30) -> "TraceSet":
        """Apply the paper's active-user rule (>= *threshold* posts, Sec. IV)."""
        return self.filter_users(lambda trace: len(trace) >= threshold)

    def without_users(self, user_ids: Iterable[str]) -> "TraceSet":
        excluded = set(user_ids)
        return self.filter_users(lambda trace: trace.user_id not in excluded)

    def shifted(self, hours: float) -> "TraceSet":
        """Shift every trace by *hours* (e.g. server-offset correction)."""
        return TraceSet(trace.shifted(hours) for trace in self)

    def most_active(self, n: int) -> list[ActivityTrace]:
        """The *n* users with the most posts (Sec. V-F uses the top 5)."""
        ranked = sorted(self, key=lambda trace: (-len(trace), trace.user_id))
        return ranked[:n]

    def as_mapping(self) -> Mapping[str, ActivityTrace]:
        return dict(self._traces)
