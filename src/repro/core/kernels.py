"""Compiled hot kernels for the per-shard inner loops (numba optional).

The sharded engine (:mod:`repro.core.shard`) spends essentially all of its
per-shard time in two places: the segmented Eq. 1 counts kernel and the
EMD :func:`~repro.core.emd.distance_matrix`.  The EMD kernel is pure
cache-blocked numpy and lives in :mod:`repro.core.emd`; this module owns
the counts kernel and its backend dispatch.

Two interchangeable backends compute the same ``(n_users, 24)`` integer
count matrix from a concatenated, per-user-segmented timestamp column:

* ``"numpy"``  -- the vectorised encode/dedupe/bincount pass that shipped
  with the batch engine (always available; the reference implementation);
* ``"numba"``  -- a JIT-compiled per-user loop that skips the global
  encode and allocates nothing beyond one per-user cell buffer.  Used
  automatically when :mod:`numba` is importable; its availability is
  detected once at import and the fallback is silent and exact (the two
  backends are property-tested bit-identical, counts are integers).

Backend selection: the ``DARKCROWD_KERNEL`` environment variable
(``numpy`` or ``numba``) pins the process-wide default at import;
:func:`set_kernel_backend` overrides it at runtime (workers spawned by
the ``fork`` start method inherit the override, freshly ``spawn``-ed ones
re-read the environment).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.timebase.clock import split_day_hours

if TYPE_CHECKING:
    from repro.core.types import FloatArray, IntArray

#: Hours per day -- duplicated from :mod:`repro.core.profiles` to keep this
#: module import-light (profiles imports events; kernels must not).
HOURS = 24

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the CI matrix covers both legs
    _njit = None
    HAVE_NUMBA = False


def _sorted_unique(values: "IntArray") -> "IntArray":
    """Unique values via an explicit sort + diff.

    Equivalent to ``np.unique`` for 1-D int arrays but avoids its
    hash-table machinery, which is an order of magnitude slower than a
    plain sort for the hundreds of thousands of encoded cells a large
    crowd produces.
    """
    if values.size == 0:
        return values
    ordered = np.sort(values)
    keep = np.empty(ordered.shape, dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


def segment_counts_numpy(
    stamps: "FloatArray", lengths: "IntArray", offset_hours: float = 0.0
) -> "FloatArray":
    """Vectorised Eq. 1 counts over a pre-concatenated timestamp column.

    *stamps* holds every user's timestamps back to back; *lengths* gives
    the per-user segment sizes.  Returns ``(len(lengths), 24)`` counts of
    unique active (day, hour) cells per hour -- always float64 so the rows
    feed :class:`~repro.core.batch.ProfileMatrix` without a cast.
    """
    n_users = int(lengths.size)
    if stamps.size == 0:
        return np.zeros((n_users, HOURS), dtype=float)
    user_index = np.repeat(np.arange(n_users, dtype=np.int64), lengths)
    days, hours = split_day_hours(stamps, offset_hours)
    cells = days * HOURS + hours
    cell_min = int(cells.min())
    span = int(cells.max()) - cell_min + 1
    encoded = user_index * span + (cells - cell_min)
    deltas = np.diff(encoded)
    if np.all(deltas >= 0):
        # Traces and store segments keep timestamps sorted per user, and
        # the cell encoding is monotone in the timestamp, so the encoded
        # column is usually already sorted -- dedupe by consecutive
        # compare, skipping the O(n log n) sort entirely.
        keep = np.empty(encoded.shape, dtype=bool)
        keep[0] = True
        np.not_equal(deltas, 0, out=keep[1:])
        unique = encoded[keep]
    else:
        unique = _sorted_unique(encoded)
    owners = unique // span
    unique_hours = (unique % span + cell_min) % HOURS
    flat = np.bincount(owners * HOURS + unique_hours, minlength=n_users * HOURS)
    return flat.reshape(n_users, HOURS).astype(float)


def segment_unique_cells_numpy(
    stamps: "FloatArray", lengths: "IntArray", offset_hours: float = 0.0
) -> "tuple[IntArray, IntArray]":
    """Per-user sorted unique ``day * 24 + hour`` cells of a segmented column.

    The deduplication half of :func:`segment_counts_numpy`, factored out
    for the streaming bulk-ingest path, which needs the distinct cells
    themselves (to diff against each user's incremental record) rather
    than their per-hour histogram.  Returns ``(cells, cell_lengths)``:
    one concatenated int64 cell column, ascending within each user's
    segment, plus the per-user segment sizes (``cell_lengths.sum() ==
    cells.size``).  Shares the encode / monotone-fast-path machinery with
    the counts kernel, so the two agree cell for cell.
    """
    n_users = int(lengths.size)
    if stamps.size == 0:
        return (
            np.zeros(0, dtype=np.int64),
            np.zeros(n_users, dtype=np.int64),
        )
    user_index = np.repeat(np.arange(n_users, dtype=np.int64), lengths)
    days, hours = split_day_hours(stamps, offset_hours)
    cells = days * HOURS + hours
    cell_min = int(cells.min())
    span = int(cells.max()) - cell_min + 1
    encoded = user_index * span + (cells - cell_min)
    deltas = np.diff(encoded)
    if np.all(deltas >= 0):
        keep = np.empty(encoded.shape, dtype=bool)
        keep[0] = True
        np.not_equal(deltas, 0, out=keep[1:])
        unique = encoded[keep]
    else:
        unique = _sorted_unique(encoded)
    owners = unique // span
    out_cells = unique - owners * span + cell_min
    cell_lengths = np.bincount(owners, minlength=n_users).astype(np.int64)
    return out_cells, cell_lengths


def _build_numba_kernel() -> "Callable[[FloatArray, IntArray, float], FloatArray]":
    """Compile the per-user counts loop (called once, at import)."""
    assert _njit is not None

    @_njit(cache=True)  # type: ignore[misc]
    def _segment_counts_jit(
        stamps: "FloatArray", lengths: "IntArray", offset_seconds: float
    ) -> "FloatArray":
        n_users = lengths.shape[0]
        out = np.zeros((n_users, HOURS), dtype=np.float64)
        pos = 0
        for user in range(n_users):
            n = int(lengths[user])
            if n == 0:
                continue
            cells = np.empty(n, dtype=np.int64)
            for k in range(n):
                # Python float // and % (which numba reproduces) match
                # np.floor_divide / np.mod elementwise, so the integer
                # cells agree bit for bit with the numpy backend.
                shifted = stamps[pos + k] + offset_seconds
                day = np.int64(shifted // 86400.0)
                second = shifted % 86400.0
                hour = np.int64(second // 3600.0)
                if hour > HOURS - 1:  # the tiny-negative-modulo artifact
                    hour = HOURS - 1
                if hour < 0:
                    hour = 0
                cells[k] = day * HOURS + hour
            is_sorted = True
            for k in range(1, n):
                if cells[k] < cells[k - 1]:
                    is_sorted = False
                    break
            if not is_sorted:
                cells = np.sort(cells)
            previous = cells[0]
            out[user, previous % HOURS] += 1.0
            for k in range(1, n):
                cell = cells[k]
                if cell != previous:
                    out[user, cell % HOURS] += 1.0
                    previous = cell
            pos += n
        return out

    return _segment_counts_jit


def _build_numba_unique_kernel() -> "Callable[..., tuple[IntArray, IntArray]]":
    """Compile the per-user unique-cells loop (called once, at import)."""
    assert _njit is not None

    @_njit(cache=True)  # type: ignore[misc]
    def _segment_unique_jit(
        stamps: "FloatArray", lengths: "IntArray", offset_seconds: float
    ) -> "tuple[IntArray, IntArray]":
        n_users = lengths.shape[0]
        out_cells = np.empty(stamps.shape[0], dtype=np.int64)
        cell_lengths = np.zeros(n_users, dtype=np.int64)
        pos = 0
        write = 0
        for user in range(n_users):
            n = int(lengths[user])
            if n == 0:
                continue
            cells = np.empty(n, dtype=np.int64)
            for k in range(n):
                shifted = stamps[pos + k] + offset_seconds
                day = np.int64(shifted // 86400.0)
                second = shifted % 86400.0
                hour = np.int64(second // 3600.0)
                if hour > HOURS - 1:  # the tiny-negative-modulo artifact
                    hour = HOURS - 1
                if hour < 0:
                    hour = 0
                cells[k] = day * HOURS + hour
            is_sorted = True
            for k in range(1, n):
                if cells[k] < cells[k - 1]:
                    is_sorted = False
                    break
            if not is_sorted:
                cells = np.sort(cells)
            previous = cells[0]
            out_cells[write] = previous
            write += 1
            count = 1
            for k in range(1, n):
                cell = cells[k]
                if cell != previous:
                    out_cells[write] = cell
                    write += 1
                    count += 1
                    previous = cell
            cell_lengths[user] = count
            pos += n
        return out_cells[:write], cell_lengths

    return _segment_unique_jit


_NUMBA_KERNEL: "Callable[[FloatArray, IntArray, float], FloatArray] | None" = (
    _build_numba_kernel() if HAVE_NUMBA else None
)
_NUMBA_UNIQUE_KERNEL: "Callable[..., tuple[IntArray, IntArray]] | None" = (
    _build_numba_unique_kernel() if HAVE_NUMBA else None
)


def segment_unique_cells_numba(
    stamps: "FloatArray", lengths: "IntArray", offset_hours: float = 0.0
) -> "tuple[IntArray, IntArray]":
    """JIT-compiled per-user unique-cells kernel (requires :mod:`numba`)."""
    if _NUMBA_UNIQUE_KERNEL is None:
        raise RuntimeError(
            "numba is not installed; use segment_unique_cells_numpy or the "
            "segment_unique_cells dispatcher"
        )
    stamps = np.ascontiguousarray(stamps, dtype=np.float64)
    lengths = np.ascontiguousarray(lengths, dtype=np.int64)
    if stamps.size == 0:
        return (
            np.zeros(0, dtype=np.int64),
            np.zeros(int(lengths.size), dtype=np.int64),
        )
    return _NUMBA_UNIQUE_KERNEL(stamps, lengths, float(offset_hours) * 3600.0)


def segment_counts_numba(
    stamps: "FloatArray", lengths: "IntArray", offset_hours: float = 0.0
) -> "FloatArray":
    """JIT-compiled Eq. 1 counts kernel (requires :mod:`numba`)."""
    if _NUMBA_KERNEL is None:
        raise RuntimeError(
            "numba is not installed; use segment_counts_numpy or the "
            "segment_counts dispatcher"
        )
    stamps = np.ascontiguousarray(stamps, dtype=np.float64)
    lengths = np.ascontiguousarray(lengths, dtype=np.int64)
    if stamps.size == 0:
        return np.zeros((int(lengths.size), HOURS), dtype=float)
    return _NUMBA_KERNEL(stamps, lengths, float(offset_hours) * 3600.0)


_BACKENDS: "dict[str, Callable[[FloatArray, IntArray, float], FloatArray]]" = {
    "numpy": segment_counts_numpy,
}
_UNIQUE_BACKENDS: "dict[str, Callable[..., tuple[IntArray, IntArray]]]" = {
    "numpy": segment_unique_cells_numpy,
}
if HAVE_NUMBA:
    _BACKENDS["numba"] = segment_counts_numba
    _UNIQUE_BACKENDS["numba"] = segment_unique_cells_numba


def _default_backend() -> str:
    requested = os.environ.get("DARKCROWD_KERNEL", "").strip().lower()
    if requested in _BACKENDS:
        return requested
    return "numba" if HAVE_NUMBA else "numpy"


_ACTIVE_BACKEND: str = _default_backend()


def available_backends() -> tuple[str, ...]:
    """Backends usable in this process, fallback-first."""
    return tuple(sorted(_BACKENDS))


def kernel_backend() -> str:
    """Name of the backend :func:`segment_counts` currently dispatches to."""
    return _ACTIVE_BACKEND


def set_kernel_backend(name: str) -> str:
    """Pin the counts backend; returns the previous one (for restoring).

    Raises :class:`ValueError` for unknown names and for ``"numba"`` when
    numba is not importable -- the caller asked for a speed guarantee the
    process cannot honour, which should fail loudly, unlike the silent
    auto-fallback of the default selection.
    """
    global _ACTIVE_BACKEND
    if name not in _BACKENDS:
        if name == "numba":
            raise ValueError("numba backend requested but numba is not installed")
        raise ValueError(
            f"unknown kernel backend {name!r}; options: {available_backends()}"
        )
    previous = _ACTIVE_BACKEND
    _ACTIVE_BACKEND = name
    return previous


def segment_counts(
    stamps: "FloatArray", lengths: "IntArray", offset_hours: float = 0.0
) -> "FloatArray":
    """Eq. 1 counts via the active backend (numba when available).

    The two backends are bit-identical (counts are integers and the cell
    arithmetic matches elementwise), so callers never need to know which
    one ran; the ``repro_kernels_builds_total`` counter records it.
    """
    obs_metrics.counter(
        "repro_kernels_builds_total",
        "segmented counts kernel invocations by backend",
        backend=_ACTIVE_BACKEND,
    ).inc()
    return _BACKENDS[_ACTIVE_BACKEND](stamps, lengths, offset_hours)


def segment_unique_cells(
    stamps: "FloatArray", lengths: "IntArray", offset_hours: float = 0.0
) -> "tuple[IntArray, IntArray]":
    """Per-user sorted unique cells via the active backend.

    Same dispatch contract as :func:`segment_counts`: backends are
    bit-identical (the cell arithmetic is shared), callers never need to
    know which one ran.  This is the front half of the streaming bulk
    ingest (:meth:`repro.core.streaming.StreamingGeolocator.observe_batch`).
    """
    obs_metrics.counter(
        "repro_kernels_unique_cells_total",
        "segmented unique-cells kernel invocations by backend",
        backend=_ACTIVE_BACKEND,
    ).inc()
    return _UNIQUE_BACKENDS[_ACTIVE_BACKEND](stamps, lengths, offset_hours)
