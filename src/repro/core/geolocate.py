"""The end-to-end crowd geolocation pipeline (the paper's methodology).

:class:`CrowdGeolocator` wires together every step of Secs. IV-V:

1. polish the crowd (active-user threshold + flat-profile removal),
2. build per-user profiles on UTC clocks (Eq. 1),
3. place each user into the EMD-nearest time zone (Sec. IV-A),
4. decompose the placement distribution with an EM Gaussian mixture
   (Sec. IV-B),
5. compute the Table II fit metrics and the Pearson correlation of the
   crowd profile against the generic profile,
6. optionally run the hemisphere test on the most active users (Sec. V-F).

The result is a :class:`GeolocationReport`, a plain data object holding
everything the paper reports per forum.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.core.batch import ProfileMatrix
from repro.core.em import GaussianMixtureModel, select_mixture
from repro.core.events import TraceSet
from repro.core.flatness import (
    PolishResult,
    polish_profile_matrix,
    polish_trace_set,
    polish_trace_set_reference,
)
from repro.core.gaussian import PAPER_SIGMA
from repro.core.hemisphere import HemisphereResult, classify_most_active
from repro.core.metrics import FitDistanceMetrics, fit_distance_metrics, pearson
from repro.core.placement import (
    PlacementDistribution,
    place_profile_matrix,
    place_users,
    placement_distribution,
)
from repro.core.profiles import Profile, build_crowd_profile, build_user_profile
from repro.core.reference import ReferenceProfiles
from repro.errors import EmptyTraceError
from repro.obs import metrics as obs_metrics
from repro.obs.logs import get_logger, log_event
from repro.obs.tracing import trace_span
from repro.reliability.quality import (
    DataQualityReport,
    assert_traces_clean,
    partition_trace_set,
)
from repro.timebase.zones import ZONE_OFFSETS

if TYPE_CHECKING:
    from repro.datasets.store import TraceStore

_log = get_logger("core")


def _record_run(report: GeolocationReport, pipeline: str, wall_s: float) -> None:
    """Per-run accounting shared by the in-memory and out-of-core paths."""
    obs_metrics.counter(
        "repro_core_geolocate_runs_total",
        "completed geolocation pipeline runs",
        pipeline=pipeline,
    ).inc()
    obs_metrics.counter(
        "repro_core_users_placed_total", "users placed into a zone"
    ).inc(report.n_users)
    obs_metrics.counter(
        "repro_core_flat_users_removed_total", "users removed by polishing"
    ).inc(report.n_removed_flat)
    obs_metrics.histogram(
        "repro_core_geolocate_seconds", "wall time of one geolocation run"
    ).observe(wall_s)
    log_event(
        _log,
        logging.INFO,
        "geolocate_done",
        pipeline=pipeline,
        crowd=report.crowd_name,
        n_users=report.n_users,
        n_posts=report.n_posts,
        n_removed_flat=report.n_removed_flat,
        k=report.mixture.k,
        zones=report.zone_offsets(),
        wall_s=round(wall_s, 4),
    )


@dataclass(frozen=True)
class GeolocationReport:
    """Everything the paper reports about one crowd."""

    crowd_name: str
    n_users: int
    n_posts: int
    n_removed_flat: int
    crowd_profile: Profile
    pearson_vs_generic: float
    placement: PlacementDistribution
    mixture: GaussianMixtureModel
    fit_metrics: FitDistanceMetrics
    user_zones: dict[str, int] = field(repr=False, default_factory=dict)
    hemisphere: tuple[HemisphereResult, ...] = ()
    #: Populated by ``geolocate(..., quarantine=True)``: which users were
    #: set aside as corrupt and what fraction of the crowd the verdict
    #: actually rests on.  ``None`` on the strict (non-quarantine) path.
    data_quality: DataQualityReport | None = field(repr=False, default=None)

    def zone_offsets(self) -> list[int]:
        """Component zones, largest crowd share first."""
        return self.mixture.zone_offsets()

    def summary(self) -> str:
        """One-paragraph human-readable verdict."""
        zones = ", ".join(
            f"UTC{offset:+d} (weight {component.weight:.2f})"
            for offset, component in zip(
                self.zone_offsets(),
                sorted(self.mixture.components, key=lambda c: -c.weight),
            )
        )
        verdict = (
            f"{self.crowd_name}: {self.n_users} users / {self.n_posts} posts "
            f"-> {self.mixture.k} component(s): {zones}; "
            f"fit avg {self.fit_metrics.average:.3f} "
            f"std {self.fit_metrics.standard_deviation:.3f}; "
            f"Pearson vs generic {self.pearson_vs_generic:.2f}"
        )
        if self.data_quality is not None and not self.data_quality.is_clean():
            verdict += f" [{self.data_quality.summary()}]"
        return verdict


class CrowdGeolocator:
    """Configured geolocation pipeline.

    Parameters mirror the paper's choices: EMD metric (``linear``),
    activity threshold (30 posts), EM sigma initialisation (2.5) and the
    maximum number of mixture components considered.  The component-count
    *criterion* defaults to ``"aic"``: the paper picks the count by visual
    inspection of the placement humps, and AIC matches that willingness to
    split overlapping crowds where BIC is more conservative (both are
    available; the choice is ablated in the benchmarks).
    """

    def __init__(
        self,
        references: ReferenceProfiles | None = None,
        *,
        metric: str = "linear",
        min_posts: int = 30,
        sigma_init: float = PAPER_SIGMA,
        max_components: int = 4,
        min_component_weight: float = 0.05,
        criterion: str = "aic",
    ) -> None:
        self.references = references or ReferenceProfiles.canonical()
        self.metric = metric
        self.min_posts = min_posts
        self.sigma_init = sigma_init
        self.max_components = max_components
        self.min_component_weight = min_component_weight
        self.criterion = criterion

    def polish(self, traces: TraceSet) -> PolishResult:
        """Active-user threshold plus iterative flat-profile removal."""
        return polish_trace_set(
            traces,
            self.references,
            metric=self.metric,
            min_posts=self.min_posts,
        )

    def place(self, traces: TraceSet) -> tuple[dict[str, int], PlacementDistribution]:
        """Per-user zone assignments and the aggregate placement."""
        matrix = ProfileMatrix.from_trace_set(traces, skip_empty=False)
        if len(matrix) == 0:
            raise EmptyTraceError("no users left to place")
        return place_profile_matrix(matrix, self.references, metric=self.metric)

    def geolocate(
        self,
        traces: TraceSet,
        *,
        crowd_name: str = "crowd",
        polish: bool = True,
        hemisphere_top_n: int = 0,
        engine: str = "batch",
        quarantine: bool = False,
    ) -> GeolocationReport:
        """Run the full pipeline on an anonymous crowd's traces.

        *engine* selects the implementation: ``"batch"`` (default) builds
        the crowd's :class:`ProfileMatrix` exactly once and shares it
        across the polish, placement, crowd-profile and Pearson stages;
        ``"reference"`` runs the original per-:class:`Profile` pipeline
        (used as the correctness oracle and the benchmark baseline).

        With ``quarantine=True`` corrupt traces (empty, or with NaN/inf
        timestamps) are set aside instead of poisoning the analysis: the
        healthy remainder is geolocated and the report's ``data_quality``
        field names every quarantined user and reason -- partial results
        with an honest accounting.  With ``quarantine=False`` (the
        default) corrupt traces raise
        :class:`~repro.errors.CorruptTraceError`, never a silently wrong
        placement.
        """
        watch = obs_metrics.Stopwatch()
        quality: DataQualityReport | None = None
        with trace_span("quarantine" if quarantine else "validate"):
            if quarantine:
                traces, quality = partition_trace_set(traces)
            else:
                assert_traces_clean(traces)
        if engine == "reference":
            report = self._geolocate_reference(
                traces,
                crowd_name=crowd_name,
                polish=polish,
                hemisphere_top_n=hemisphere_top_n,
            )
            if quarantine:
                report = replace(report, data_quality=quality)
            _record_run(report, "reference", watch.elapsed_s())
            return report
        if engine != "batch":
            raise ValueError(f"unknown engine {engine!r}; options: batch, reference")

        with trace_span("profile_build", crowd=crowd_name):
            active = traces.with_min_posts(self.min_posts)
            matrix = ProfileMatrix.from_trace_set(active)
        with trace_span("polish", n_users=len(matrix)):
            if polish:
                matrix, removed_ids, _ = polish_profile_matrix(
                    matrix, self.references, metric=self.metric
                )
                crowd = active.without_users(removed_ids) if removed_ids else active
                n_removed = len(removed_ids)
            else:
                crowd = active
                n_removed = 0
        if len(matrix) == 0:
            raise EmptyTraceError(
                f"{crowd_name}: no active users after polishing "
                f"(threshold {self.min_posts} posts)"
            )

        with trace_span("placement", n_users=len(matrix)):
            assignments, placement = place_profile_matrix(
                matrix, self.references, metric=self.metric
            )
        with trace_span("mixture"):
            mixture = select_mixture(
                placement,
                max_components=self.max_components,
                sigma_init=self.sigma_init,
                min_weight=self.min_component_weight,
                criterion=self.criterion,
            )
        crowd_profile = matrix.crowd_profile()
        hemisphere = (
            tuple(classify_most_active(crowd, hemisphere_top_n, metric=self.metric))
            if hemisphere_top_n > 0
            else ()
        )
        report = GeolocationReport(
            crowd_name=crowd_name,
            n_users=len(crowd),
            n_posts=crowd.total_posts(),
            n_removed_flat=n_removed,
            crowd_profile=crowd_profile,
            pearson_vs_generic=pearson(
                crowd_profile,
                self.references.for_zone(placement.mode_offset()),
            ),
            placement=placement,
            mixture=mixture,
            fit_metrics=fit_distance_metrics(placement, mixture.components),
            user_zones=assignments,
            hemisphere=hemisphere,
            data_quality=quality,
        )
        _record_run(report, "batch", watch.elapsed_s())
        return report

    def geolocate_store(
        self,
        store: "TraceStore",
        *,
        crowd_name: str = "crowd",
        polish: bool = True,
        max_users_per_shard: int | None = None,
    ) -> GeolocationReport:
        """Out-of-core pipeline entry: geolocate a columnar trace store.

        Per-user profiles are built shard by shard straight from the
        store's memmapped timestamp column
        (:meth:`ProfileMatrix.from_store`), so the crowd never
        materialises as per-trace Python objects; from the profile matrix
        on the pipeline is the batch engine unchanged and the verdict is
        identical to ``geolocate(store.to_trace_set())``.  The hemisphere
        test and quarantine partitioning need trace-level access and are
        not offered on this path (the store format already rejects
        corrupt traces at ``convert`` time).
        """
        watch = obs_metrics.Stopwatch()
        with trace_span("profile_build", crowd=crowd_name, source="store"):
            matrix = ProfileMatrix.from_store(
                store,
                min_posts=self.min_posts,
                max_users_per_shard=max_users_per_shard,
            )
        with trace_span("polish", n_users=len(matrix)):
            if polish:
                matrix, removed_ids, _ = polish_profile_matrix(
                    matrix, self.references, metric=self.metric
                )
                n_removed = len(removed_ids)
            else:
                n_removed = 0
        if len(matrix) == 0:
            raise EmptyTraceError(
                f"{crowd_name}: no active users after polishing "
                f"(threshold {self.min_posts} posts)"
            )
        with trace_span("placement", n_users=len(matrix)):
            assignments, placement = place_profile_matrix(
                matrix, self.references, metric=self.metric
            )
        with trace_span("mixture"):
            mixture = select_mixture(
                placement,
                max_components=self.max_components,
                sigma_init=self.sigma_init,
                min_weight=self.min_component_weight,
                criterion=self.criterion,
            )
        crowd_profile = matrix.crowd_profile()
        survivors = set(matrix.user_ids)
        n_posts = int(
            sum(
                int(length)
                for user_id, length in zip(store.user_ids(), store.lengths())
                if user_id in survivors
            )
        )
        report = GeolocationReport(
            crowd_name=crowd_name,
            n_users=len(matrix),
            n_posts=n_posts,
            n_removed_flat=n_removed,
            crowd_profile=crowd_profile,
            pearson_vs_generic=pearson(
                crowd_profile,
                self.references.for_zone(placement.mode_offset()),
            ),
            placement=placement,
            mixture=mixture,
            fit_metrics=fit_distance_metrics(placement, mixture.components),
            user_zones=assignments,
        )
        _record_run(report, "store", watch.elapsed_s())
        return report

    def geolocate_store_sharded(
        self,
        store: "TraceStore",
        *,
        crowd_name: str = "crowd",
        polish: bool = True,
        n_shards: int = 1,
        max_workers: int = 1,
    ) -> GeolocationReport:
        """Sharded out-of-core pipeline: partials fan-out + exact merge.

        The store is partitioned into *n_shards* contiguous user ranges
        and each range is reduced independently to a
        :class:`~repro.core.shard.ShardPartial` (optionally across a
        process pool of *max_workers*; workers open the memmapped columns
        themselves).  Partials are merged with the associative
        :meth:`~repro.core.shard.ShardPartial.merge` and the report is
        assembled from the merged value.  Every per-user quantity in the
        pipeline is independent of its matrix neighbours (see
        :mod:`repro.core.shard`), so the verdict is **bit-identical** to
        :meth:`geolocate_store` for any shard count and worker count --
        enforced by the merge-equivalence tests and the perf_smoke gate.
        """
        from repro.core.shard import compute_partials, merge_partials

        watch = obs_metrics.Stopwatch()
        partials = compute_partials(
            store,
            self.references,
            metric=self.metric,
            min_posts=self.min_posts,
            n_shards=n_shards,
            max_workers=max_workers,
        )
        merged = merge_partials(partials)
        matrix = ProfileMatrix.from_counts(merged.user_ids, merged.counts)
        if polish:
            keep = ~merged.flat_mask
            n_removed = int(merged.flat_mask.sum())
        else:
            keep = np.ones(len(matrix), dtype=bool)
            n_removed = 0
        if not bool(keep.any()):
            raise EmptyTraceError(
                f"{crowd_name}: no active users after polishing "
                f"(threshold {self.min_posts} posts)"
            )
        survivors = matrix.select(keep)
        zone_indices = merged.zone_indices[keep]
        with trace_span("placement", n_users=len(survivors), source="sharded"):
            assignments = {
                user_id: ZONE_OFFSETS[int(index)]
                for user_id, index in zip(survivors.user_ids, zone_indices)
            }
            zone_counts = np.bincount(
                zone_indices, minlength=len(ZONE_OFFSETS)
            ).astype(float)
            placement = PlacementDistribution(
                tuple((zone_counts / zone_counts.sum()).tolist()),
                n_users=len(survivors),
            )
        with trace_span("mixture"):
            mixture = select_mixture(
                placement,
                max_components=self.max_components,
                sigma_init=self.sigma_init,
                min_weight=self.min_component_weight,
                criterion=self.criterion,
            )
        crowd_profile = survivors.crowd_profile()
        report = GeolocationReport(
            crowd_name=crowd_name,
            n_users=len(survivors),
            n_posts=int(merged.lengths[keep].sum()),
            n_removed_flat=n_removed,
            crowd_profile=crowd_profile,
            pearson_vs_generic=pearson(
                crowd_profile,
                self.references.for_zone(placement.mode_offset()),
            ),
            placement=placement,
            mixture=mixture,
            fit_metrics=fit_distance_metrics(placement, mixture.components),
            user_zones=assignments,
        )
        _record_run(report, "store-sharded", watch.elapsed_s())
        return report

    def _geolocate_reference(
        self,
        traces: TraceSet,
        *,
        crowd_name: str = "crowd",
        polish: bool = True,
        hemisphere_top_n: int = 0,
    ) -> GeolocationReport:
        """The pre-batch per-``Profile`` pipeline, preserved verbatim."""
        if polish:
            polish_result = polish_trace_set_reference(
                traces,
                self.references,
                metric=self.metric,
                min_posts=self.min_posts,
            )
            crowd = polish_result.polished
            n_removed = polish_result.n_removed
        else:
            crowd = traces.with_min_posts(self.min_posts)
            n_removed = 0
        if len(crowd) == 0:
            raise EmptyTraceError(
                f"{crowd_name}: no active users after polishing "
                f"(threshold {self.min_posts} posts)"
            )

        profiles = {
            trace.user_id: build_user_profile(trace) for trace in crowd
        }
        assignments = place_users(profiles, self.references, metric=self.metric)
        placement = placement_distribution(assignments.values())
        mixture = select_mixture(
            placement,
            max_components=self.max_components,
            sigma_init=self.sigma_init,
            min_weight=self.min_component_weight,
            criterion=self.criterion,
        )
        crowd_profile = build_crowd_profile(
            build_user_profile(trace) for trace in crowd
        )
        hemisphere = (
            tuple(classify_most_active(crowd, hemisphere_top_n, metric=self.metric))
            if hemisphere_top_n > 0
            else ()
        )
        return GeolocationReport(
            crowd_name=crowd_name,
            n_users=len(crowd),
            n_posts=crowd.total_posts(),
            n_removed_flat=n_removed,
            crowd_profile=crowd_profile,
            pearson_vs_generic=pearson(
                crowd_profile,
                self.references.for_zone(placement.mode_offset()),
            ),
            placement=placement,
            mixture=mixture,
            fit_metrics=fit_distance_metrics(placement, mixture.components),
            user_zones=assignments,
            hemisphere=hemisphere,
        )
