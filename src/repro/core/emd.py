"""Earth Mover's Distance (1-D Wasserstein metric) between profiles.

The paper (Sec. IV-A) matches user profiles to time-zone references with
the Wasserstein metric / EMD [Hitchcock 1941]: "the least amount of work to
move earth around so that the first distribution matches the second".

For distributions on the line with unit-width bins the EMD has the closed
form ``sum_i |CDF_p(i) - CDF_q(i)|``.  Hours of the day, however, live on a
circle; for circular distributions the optimal transport distance equals
``min_mu sum_i |D_i - mu|`` where ``D`` is the cumulative difference -- the
minimiser being the median of ``D`` (Werman et al.).  Both variants are
implemented; the paper's experiments use the linear form, and the circular
form is evaluated in our ablations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.profiles import HOURS, Profile
from repro.core.types import FloatArray

if TYPE_CHECKING:
    from repro.core.types import ProfileLike

#: Byte budget for any per-block temporary of :func:`distance_matrix`.
#: The circular metric still materialises a ``(rows, n_q, 24)`` broadcast
#: (it needs a per-pair median); the other metrics reuse one ``(rows, 24)``
#: scratch buffer.  The block row count adapts to ``n_q`` so the temporary
#: never exceeds this budget regardless of how many references are passed.
_BLOCK_BYTES = 16 * 1024 * 1024

#: Clamp bounds for the adaptive block row count: small enough blocks cost
#: loop overhead, huge ones spill the cache even under the byte budget.
_MIN_BLOCK_ROWS = 128
_MAX_BLOCK_ROWS = 16_384


def _block_rows(n_q: int) -> int:
    """Rows per block so the block temporary stays within the byte budget."""
    per_row_bytes = max(1, n_q) * HOURS * np.dtype(np.float64).itemsize
    return int(
        min(_MAX_BLOCK_ROWS, max(_MIN_BLOCK_ROWS, _BLOCK_BYTES // per_row_bytes))
    )


def _as_mass(dist: "Profile | FloatArray") -> FloatArray:
    if isinstance(dist, Profile):
        return dist.mass
    values = np.asarray(dist, dtype=float)
    total = values.sum()
    if total <= 0:
        raise ValueError("distribution has zero mass")
    return values / total


def emd_linear(p: "Profile | FloatArray", q: "Profile | FloatArray") -> float:
    """1-D EMD treating the 24 hours as points on a line (paper's choice)."""
    diff = _as_mass(p) - _as_mass(q)
    return float(np.abs(np.cumsum(diff)).sum())


def emd_circular(p: "Profile | FloatArray", q: "Profile | FloatArray") -> float:
    """1-D EMD on the circle of hours (mass may wrap midnight)."""
    cumulative = np.cumsum(_as_mass(p) - _as_mass(q))
    return float(np.abs(cumulative - np.median(cumulative)).sum())


METRICS = {
    "linear": emd_linear,
    "circular": emd_circular,
}


def l1_distance(p: "Profile | FloatArray", q: "Profile | FloatArray") -> float:
    """Total L1 distance between the two mass vectors (ablation baseline)."""
    return float(np.abs(_as_mass(p) - _as_mass(q)).sum())


def l2_distance(p: "Profile | FloatArray", q: "Profile | FloatArray") -> float:
    """Euclidean distance between the two mass vectors (ablation baseline)."""
    return float(np.linalg.norm(_as_mass(p) - _as_mass(q)))


ALL_DISTANCES = {
    "linear": emd_linear,
    "circular": emd_circular,
    "l1": l1_distance,
    "l2": l2_distance,
}


def as_profile_matrix(profiles: ProfileLike) -> FloatArray:
    """Coerce any profile collection to a normalised ``(N, 24)`` array.

    Accepts a list of :class:`Profile`, a raw array (rows are normalised),
    a :class:`repro.core.batch.ProfileMatrix` (``.matrix`` attribute) or a
    :class:`repro.core.reference.ReferenceProfiles` (``.stacked()``).
    """
    if isinstance(profiles, np.ndarray):
        values = np.asarray(profiles, dtype=float)
        if values.ndim == 1:
            values = values[None, :]
        if values.ndim != 2 or values.shape[1] != HOURS:
            raise ValueError(f"expected (N, {HOURS}) profiles, got {values.shape}")
        totals = values.sum(axis=1, keepdims=True)
        if np.any(totals <= 0):
            raise ValueError("distribution has zero mass")
        return values / totals
    matrix = getattr(profiles, "matrix", None)
    if isinstance(matrix, np.ndarray):
        return matrix
    stacked = getattr(profiles, "stacked", None)
    if callable(stacked):
        return stacked()
    rows = [_as_mass(profile) for profile in profiles]
    if not rows:
        return np.zeros((0, HOURS), dtype=float)
    return np.vstack(rows)


def _cumulative_of(profiles: ProfileLike, stack: FloatArray) -> FloatArray:
    """Cumulative sums of a profile collection, reusing caches when offered.

    ``ProfileMatrix`` and ``ReferenceProfiles`` both precompute their CDFs
    (``.cumulative()``); anything else is cumsum-ed on the spot.
    """
    cumulative = getattr(profiles, "cumulative", None)
    if callable(cumulative):
        return cumulative()
    return np.cumsum(stack, axis=1)


def _abs_sum_blocked(p: FloatArray, q: FloatArray, out: FloatArray) -> None:
    """``out[i, j] = |p[i] - q[j]|.sum()``, cache-blocked and allocation-free.

    Serves both the linear EMD (inputs are CDFs) and the L1 metric (inputs
    are masses) -- the two branches were duplicates differing only in what
    the caller feeds in.  One ``(rows, 24)`` scratch buffer is reused for
    every block and reference row, so no ``(rows, n_q, 24)`` broadcast
    temporary is ever materialised.
    """
    n_p, n_q = out.shape
    rows = min(_block_rows(1), n_p)
    scratch = np.empty((rows, HOURS), dtype=np.float64)
    for start in range(0, n_p, rows):
        stop = min(start + rows, n_p)
        block = p[start:stop]
        view = scratch[: stop - start]
        for j in range(n_q):
            np.subtract(block, q[j], out=view)
            np.abs(view, out=view)
            np.sum(view, axis=1, out=out[start:stop, j])


def _l2_blocked(p: FloatArray, q: FloatArray, out: FloatArray) -> None:
    """Euclidean distances with the same scratch-reuse scheme."""
    n_p, n_q = out.shape
    rows = min(_block_rows(1), n_p)
    scratch = np.empty((rows, HOURS), dtype=np.float64)
    for start in range(0, n_p, rows):
        stop = min(start + rows, n_p)
        block = p[start:stop]
        view = scratch[: stop - start]
        for j in range(n_q):
            np.subtract(block, q[j], out=view)
            np.multiply(view, view, out=view)
            column = out[start:stop, j]
            np.sum(view, axis=1, out=column)
            np.sqrt(column, out=column)


def _circular_blocked(p: FloatArray, q: FloatArray, out: FloatArray) -> None:
    """Circular EMD: needs a per-pair median, so it keeps the broadcast.

    The ``(rows, n_q, 24)`` temporary is unavoidable here (the median is a
    selection over the full 24-vector); the adaptive row count keeps it
    under :data:`_BLOCK_BYTES`.
    """
    n_p, n_q = out.shape
    rows = _block_rows(n_q)
    q_right = q[None, :, :]
    for start in range(0, n_p, rows):
        stop = min(start + rows, n_p)
        block = p[start:stop, None, :] - q_right
        median = np.median(block, axis=2, keepdims=True)
        out[start:stop] = np.abs(block - median).sum(axis=2)


def distance_matrix(
    profiles: ProfileLike,
    references: ProfileLike,
    metric: str = "linear",
) -> FloatArray:
    """Pairwise distances, shape (len(profiles), len(references)).

    Fully vectorised for all four metrics; *profiles* and *references* may
    each be a list of :class:`Profile`, an ``(N, 24)`` array, a
    ``ProfileMatrix`` or ``ReferenceProfiles`` (whose cached CDFs are
    reused for the EMD variants).  Rows are processed in adaptive blocks
    (see :func:`_block_rows`) so peak memory stays bounded for very large
    crowds; linear/l1/l2 run through allocation-free scratch kernels that
    never materialise the pairwise broadcast.  Results are independent of
    the block size, bit for bit -- each output element is a reduction over
    one profile/reference pair only, which is what makes the sharded
    engine (:mod:`repro.core.shard`) exactly mergeable.
    """
    if metric not in ALL_DISTANCES:
        raise ValueError(
            f"unknown metric {metric!r}; options: {sorted(ALL_DISTANCES)}"
        )
    p_stack = as_profile_matrix(profiles)
    q_stack = as_profile_matrix(references)
    n_p, n_q = p_stack.shape[0], q_stack.shape[0]
    out = np.empty((n_p, n_q), dtype=float)
    if n_p == 0 or n_q == 0:
        return out
    if metric in ("linear", "circular"):
        p_work = _cumulative_of(profiles, p_stack)
        q_work = _cumulative_of(references, q_stack)
    else:
        p_work = p_stack
        q_work = q_stack
    # Metric dispatch hoisted out of the block loop: pick the kernel once.
    if metric == "circular":
        _circular_blocked(p_work, q_work, out)
    elif metric == "l2":
        _l2_blocked(p_work, q_work, out)
    else:  # linear and l1 share the |diff|-sum kernel; only inputs differ
        _abs_sum_blocked(p_work, q_work, out)
    return out
