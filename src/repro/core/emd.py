"""Earth Mover's Distance (1-D Wasserstein metric) between profiles.

The paper (Sec. IV-A) matches user profiles to time-zone references with
the Wasserstein metric / EMD [Hitchcock 1941]: "the least amount of work to
move earth around so that the first distribution matches the second".

For distributions on the line with unit-width bins the EMD has the closed
form ``sum_i |CDF_p(i) - CDF_q(i)|``.  Hours of the day, however, live on a
circle; for circular distributions the optimal transport distance equals
``min_mu sum_i |D_i - mu|`` where ``D`` is the cumulative difference -- the
minimiser being the median of ``D`` (Werman et al.).  Both variants are
implemented; the paper's experiments use the linear form, and the circular
form is evaluated in our ablations.
"""

from __future__ import annotations

import numpy as np

from repro.core.profiles import Profile


def _as_mass(dist: "Profile | np.ndarray") -> np.ndarray:
    if isinstance(dist, Profile):
        return dist.mass
    values = np.asarray(dist, dtype=float)
    total = values.sum()
    if total <= 0:
        raise ValueError("distribution has zero mass")
    return values / total


def emd_linear(p: "Profile | np.ndarray", q: "Profile | np.ndarray") -> float:
    """1-D EMD treating the 24 hours as points on a line (paper's choice)."""
    diff = _as_mass(p) - _as_mass(q)
    return float(np.abs(np.cumsum(diff)).sum())


def emd_circular(p: "Profile | np.ndarray", q: "Profile | np.ndarray") -> float:
    """1-D EMD on the circle of hours (mass may wrap midnight)."""
    cumulative = np.cumsum(_as_mass(p) - _as_mass(q))
    return float(np.abs(cumulative - np.median(cumulative)).sum())


METRICS = {
    "linear": emd_linear,
    "circular": emd_circular,
}


def l1_distance(p: "Profile | np.ndarray", q: "Profile | np.ndarray") -> float:
    """Total L1 distance between the two mass vectors (ablation baseline)."""
    return float(np.abs(_as_mass(p) - _as_mass(q)).sum())


def l2_distance(p: "Profile | np.ndarray", q: "Profile | np.ndarray") -> float:
    """Euclidean distance between the two mass vectors (ablation baseline)."""
    return float(np.linalg.norm(_as_mass(p) - _as_mass(q)))


ALL_DISTANCES = {
    "linear": emd_linear,
    "circular": emd_circular,
    "l1": l1_distance,
    "l2": l2_distance,
}


def distance_matrix(
    profiles: list[Profile],
    references: list[Profile],
    metric: str = "linear",
) -> np.ndarray:
    """Pairwise distances, shape (len(profiles), len(references)).

    Vectorised implementations of the two EMD variants; used by the
    placement step which compares every user to all 24 zone references.
    """
    p_stack = np.vstack([profile.mass for profile in profiles])
    q_stack = np.vstack([reference.mass for reference in references])
    # cumulative differences for every (p, q) pair: shape (P, Q, 24)
    p_cum = np.cumsum(p_stack, axis=1)[:, None, :]
    q_cum = np.cumsum(q_stack, axis=1)[None, :, :]
    cumdiff = p_cum - q_cum
    if metric == "linear":
        return np.abs(cumdiff).sum(axis=2)
    if metric == "circular":
        med = np.median(cumdiff, axis=2, keepdims=True)
        return np.abs(cumdiff - med).sum(axis=2)
    if metric in ALL_DISTANCES:
        func = ALL_DISTANCES[metric]
        return np.array(
            [[func(p, q) for q in references] for p in profiles], dtype=float
        )
    raise ValueError(f"unknown metric {metric!r}; options: {sorted(ALL_DISTANCES)}")
