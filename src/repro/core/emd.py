"""Earth Mover's Distance (1-D Wasserstein metric) between profiles.

The paper (Sec. IV-A) matches user profiles to time-zone references with
the Wasserstein metric / EMD [Hitchcock 1941]: "the least amount of work to
move earth around so that the first distribution matches the second".

For distributions on the line with unit-width bins the EMD has the closed
form ``sum_i |CDF_p(i) - CDF_q(i)|``.  Hours of the day, however, live on a
circle; for circular distributions the optimal transport distance equals
``min_mu sum_i |D_i - mu|`` where ``D`` is the cumulative difference -- the
minimiser being the median of ``D`` (Werman et al.).  Both variants are
implemented; the paper's experiments use the linear form, and the circular
form is evaluated in our ablations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.profiles import HOURS, Profile
from repro.core.types import FloatArray

if TYPE_CHECKING:
    from repro.core.types import ProfileLike

#: Row-block size for the pairwise (P, Q, 24) broadcasts: bounds peak memory
#: to ~blocksize*Q*24 floats so million-user crowds stream through.
_BLOCK_ROWS = 8192


def _as_mass(dist: "Profile | FloatArray") -> FloatArray:
    if isinstance(dist, Profile):
        return dist.mass
    values = np.asarray(dist, dtype=float)
    total = values.sum()
    if total <= 0:
        raise ValueError("distribution has zero mass")
    return values / total


def emd_linear(p: "Profile | FloatArray", q: "Profile | FloatArray") -> float:
    """1-D EMD treating the 24 hours as points on a line (paper's choice)."""
    diff = _as_mass(p) - _as_mass(q)
    return float(np.abs(np.cumsum(diff)).sum())


def emd_circular(p: "Profile | FloatArray", q: "Profile | FloatArray") -> float:
    """1-D EMD on the circle of hours (mass may wrap midnight)."""
    cumulative = np.cumsum(_as_mass(p) - _as_mass(q))
    return float(np.abs(cumulative - np.median(cumulative)).sum())


METRICS = {
    "linear": emd_linear,
    "circular": emd_circular,
}


def l1_distance(p: "Profile | FloatArray", q: "Profile | FloatArray") -> float:
    """Total L1 distance between the two mass vectors (ablation baseline)."""
    return float(np.abs(_as_mass(p) - _as_mass(q)).sum())


def l2_distance(p: "Profile | FloatArray", q: "Profile | FloatArray") -> float:
    """Euclidean distance between the two mass vectors (ablation baseline)."""
    return float(np.linalg.norm(_as_mass(p) - _as_mass(q)))


ALL_DISTANCES = {
    "linear": emd_linear,
    "circular": emd_circular,
    "l1": l1_distance,
    "l2": l2_distance,
}


def as_profile_matrix(profiles: ProfileLike) -> FloatArray:
    """Coerce any profile collection to a normalised ``(N, 24)`` array.

    Accepts a list of :class:`Profile`, a raw array (rows are normalised),
    a :class:`repro.core.batch.ProfileMatrix` (``.matrix`` attribute) or a
    :class:`repro.core.reference.ReferenceProfiles` (``.stacked()``).
    """
    if isinstance(profiles, np.ndarray):
        values = np.asarray(profiles, dtype=float)
        if values.ndim == 1:
            values = values[None, :]
        if values.ndim != 2 or values.shape[1] != HOURS:
            raise ValueError(f"expected (N, {HOURS}) profiles, got {values.shape}")
        totals = values.sum(axis=1, keepdims=True)
        if np.any(totals <= 0):
            raise ValueError("distribution has zero mass")
        return values / totals
    matrix = getattr(profiles, "matrix", None)
    if isinstance(matrix, np.ndarray):
        return matrix
    stacked = getattr(profiles, "stacked", None)
    if callable(stacked):
        return stacked()
    rows = [_as_mass(profile) for profile in profiles]
    if not rows:
        return np.zeros((0, HOURS), dtype=float)
    return np.vstack(rows)


def _cumulative_of(profiles: ProfileLike, stack: FloatArray) -> FloatArray:
    """Cumulative sums of a profile collection, reusing caches when offered.

    ``ProfileMatrix`` and ``ReferenceProfiles`` both precompute their CDFs
    (``.cumulative()``); anything else is cumsum-ed on the spot.
    """
    cumulative = getattr(profiles, "cumulative", None)
    if callable(cumulative):
        return cumulative()
    return np.cumsum(stack, axis=1)


def distance_matrix(
    profiles: ProfileLike,
    references: ProfileLike,
    metric: str = "linear",
) -> FloatArray:
    """Pairwise distances, shape (len(profiles), len(references)).

    Fully vectorised for all four metrics; *profiles* and *references* may
    each be a list of :class:`Profile`, an ``(N, 24)`` array, a
    ``ProfileMatrix`` or ``ReferenceProfiles`` (whose cached CDFs are
    reused for the EMD variants).  Rows are processed in blocks of
    :data:`_BLOCK_ROWS` so memory stays bounded for very large crowds.
    """
    if metric not in ALL_DISTANCES:
        raise ValueError(
            f"unknown metric {metric!r}; options: {sorted(ALL_DISTANCES)}"
        )
    p_stack = as_profile_matrix(profiles)
    q_stack = as_profile_matrix(references)
    n_p, n_q = p_stack.shape[0], q_stack.shape[0]
    out = np.empty((n_p, n_q), dtype=float)
    if metric in ("linear", "circular"):
        p_left = _cumulative_of(profiles, p_stack)
        q_right = _cumulative_of(references, q_stack)[None, :, :]
    else:
        p_left = p_stack
        q_right = q_stack[None, :, :]
    for start in range(0, n_p, _BLOCK_ROWS):
        stop = min(start + _BLOCK_ROWS, n_p)
        block = p_left[start:stop, None, :] - q_right
        if metric == "linear":
            out[start:stop] = np.abs(block).sum(axis=2)
        elif metric == "circular":
            median = np.median(block, axis=2, keepdims=True)
            out[start:stop] = np.abs(block - median).sum(axis=2)
        elif metric == "l1":
            out[start:stop] = np.abs(block).sum(axis=2)
        else:  # l2
            out[start:stop] = np.sqrt(np.square(block).sum(axis=2))
    return out
