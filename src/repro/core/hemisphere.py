"""DST-based hemisphere classification (Sec. V-F of the paper).

Daylight saving time runs roughly March..October in the northern
hemisphere and October..February in the southern one.  A user's activity,
profiled on UTC clocks, therefore shifts by one hour between the two
seasons -- in opposite directions depending on the hemisphere:

* northern user: the summer(-period) profile appears one hour *earlier* in
  UTC, so the winter-period profile matches the summer-period profile
  *adjusted forward* one hour;
* southern user: the October..March period is the one on DST, so the match
  requires adjusting *backward*;
* no-DST region: the two seasonal profiles coincide unshifted.

Season windows: the paper compares "October to March" against "March to
October".  Those boundary months contain the DST transitions themselves
(which differ across rule families), so we compare the conservative cores
of the two periods -- November..January vs May..August -- which have a
uniform DST state under all four rule families we model (EU, US, AU, BR).
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.core.emd import ALL_DISTANCES
from repro.core.events import ActivityTrace, TraceSet
from repro.core.profiles import build_user_profile
from repro.timebase.clock import ordinal_to_civil

#: Months (1..12) of the winter-period core (northern standard time,
#: southern DST) and the summer-period core (the reverse).  April carries
#: up to one week of southern DST under the AU rule; the extra month of
#: data outweighs that contamination empirically.
WINTER_CORE_MONTHS = frozenset({11, 12, 1})
SUMMER_CORE_MONTHS = frozenset({4, 5, 6, 7, 8, 9})

#: Minimum active day-hour cells per seasonal profile for a verdict.
MIN_ACTIVE_CELLS = 8


class HemisphereVerdict(enum.Enum):
    """Outcome of the seasonal-shift test."""

    NORTHERN = "northern"
    SOUTHERN = "southern"
    NO_DST = "no_dst"
    INSUFFICIENT_DATA = "insufficient_data"


@dataclass(frozen=True)
class HemisphereResult:
    """Verdict plus the three seasonal EMDs that produced it."""

    user_id: str
    verdict: HemisphereVerdict
    distance_forward: float
    distance_backward: float
    distance_unshifted: float

    def margin(self) -> float:
        """The forward/backward asymmetry driving the verdict.

        Defined as ``|d_backward - d_forward|`` relative to their mean; a
        genuinely DST-shifted user scores ~1, a no-DST user ~0.
        """
        mean = (self.distance_forward + self.distance_backward) / 2.0
        if not mean > 0:
            return 0.0
        return abs(self.distance_backward - self.distance_forward) / mean


def _in_months(months: frozenset[int]) -> Callable[[int], bool]:
    def predicate(ordinal: int) -> bool:
        return ordinal_to_civil(ordinal).month in months

    return predicate


def classify_hemisphere(
    trace: ActivityTrace,
    *,
    metric: str = "linear",
    asymmetry_threshold: float = 0.25,
    winter_months: frozenset[int] = WINTER_CORE_MONTHS,
    summer_months: frozenset[int] = SUMMER_CORE_MONTHS,
) -> HemisphereResult:
    """Classify one user as northern / southern / no-DST (Sec. V-F).

    Two conditions must hold for a shifted (northern/southern) verdict,
    otherwise the user is assigned to the no-DST countries ("if we do not
    see any particular difference in the two periods..."):

    1. the best one-hour shift must actually beat the unshifted match, and
    2. the forward and backward distances must be asymmetric by more than
       *asymmetry_threshold* relative to their mean -- for a genuine DST
       resident one shift direction aligns the seasons and the other
       doubles the misalignment, so the asymmetry is large, while for a
       no-DST user both shifts misalign equally and it hovers near zero.

    Calibrated on synthetic residents of all four DST rule families, the
    combined rule classifies ~90% of high-activity users correctly,
    including true no-DST residents.
    """
    winter_trace = trace.restricted_to_days(_in_months(winter_months))
    summer_trace = trace.restricted_to_days(_in_months(summer_months))
    if (
        len(winter_trace.active_day_hours()) < MIN_ACTIVE_CELLS
        or len(summer_trace.active_day_hours()) < MIN_ACTIVE_CELLS
    ):
        return HemisphereResult(
            user_id=trace.user_id,
            verdict=HemisphereVerdict.INSUFFICIENT_DATA,
            distance_forward=float("nan"),
            distance_backward=float("nan"),
            distance_unshifted=float("nan"),
        )

    winter_profile = build_user_profile(winter_trace)
    summer_profile = build_user_profile(summer_trace)
    distance = ALL_DISTANCES[metric]

    d_forward = distance(winter_profile, summer_profile.shifted(+1))
    d_backward = distance(winter_profile, summer_profile.shifted(-1))
    d_none = distance(winter_profile, summer_profile)

    best = min(d_forward, d_backward)
    mean_shifted = (d_forward + d_backward) / 2.0
    asymmetry = (
        abs(d_backward - d_forward) / mean_shifted if mean_shifted > 0 else 0.0
    )
    if best >= d_none or asymmetry <= asymmetry_threshold:
        verdict = HemisphereVerdict.NO_DST
    elif d_forward <= d_backward:
        verdict = HemisphereVerdict.NORTHERN
    else:
        verdict = HemisphereVerdict.SOUTHERN
    return HemisphereResult(
        user_id=trace.user_id,
        verdict=verdict,
        distance_forward=d_forward,
        distance_backward=d_backward,
        distance_unshifted=d_none,
    )


def classify_most_active(
    traces: TraceSet,
    n: int = 5,
    **kwargs: Any,
) -> list[HemisphereResult]:
    """Run the hemisphere test on the *n* most active users of a crowd.

    The paper applies the test to the five most active users of each
    validation country and of the Pedo Support Community.
    """
    return [
        classify_hemisphere(trace, **kwargs) for trace in traces.most_active(n)
    ]
