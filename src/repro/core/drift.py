"""Temporal-drift robustness: confidence lifecycle and change-point detection.

The paper treats every user's time zone as static, but real crowds drift:
users relocate mid-campaign, forums silently change their server clock,
and DST shifts whole profiles by an hour overnight.  A geolocator that
keeps reporting the placement it computed months ago is not wrong loudly
-- it is wrong *silently*, which at service scale is a correctness
failure.  This module makes staleness detected, quantified and
self-healing; :class:`repro.core.streaming.StreamingGeolocator` threads
it through the incremental engine.

Three mechanisms, following the ADR-003 confidence-lifecycle design
(decay + signal-driven reset + re-verification):

* :class:`UserConfidence` -- every placed user carries a confidence score
  in [0, 1] that decays passively with stream time
  (``decay_per_day``) and is reset to full whenever fresh evidence
  re-confirms the current placement.
* :class:`ChangePointDetector` -- the active signal: the user's
  rolling-window profile (last ``window_days`` of Eq. 1 cells) is
  compared against their historical profile with the same EMD the
  placement pipeline uses; a score above ``emd_threshold`` means the
  recent behaviour no longer looks like the record.
* Re-estimation -- when a change-point fires, or confidence decays below
  ``confidence_threshold`` while the recent window disagrees with the
  cached placement, the user is re-estimated *from the recent window
  only* (the record is truncated to the window, its version bumped) and
  a :class:`ZoneMigrationEvent` is emitted through the subscriber hook,
  followed by ``reason="refine"`` corrections while the truncated record
  is still too thin to place precisely.

:class:`CompositionTimeline` records the crowd-level consequence: the
placement histogram sampled once per stream day, i.e. "composition over
time" -- the service-scale analogue of what "Reddit's Globalization over
Twenty Years" measures over two decades of subreddits.

Timestamps: detection runs on *stream* time (the event timestamps), so
replaying a checkpointed campaign is bit-reproducible; the wall-clock
stamp on emitted events is read through the injectable seam in
:mod:`repro.reliability.clocks` (never ``time.time()`` -- lint rule
DC001).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.emd import ALL_DISTANCES
from repro.core.profiles import HOURS
from repro.core.types import FloatArray, IntArray
from repro.timebase.zones import ZONE_OFFSETS

__all__ = [
    "DriftConfig",
    "UserConfidence",
    "ChangePointDetector",
    "ZoneMigrationEvent",
    "CompositionSample",
    "CompositionTimeline",
    "ConfidenceSummary",
]


@dataclass(frozen=True)
class DriftConfig:
    """Knobs of the drift-robustness layer (disabled when not supplied).

    Defaults are calibrated on the synthetic relocation scenarios of
    :mod:`repro.synth.drift`.  Detection is two-stage: the *windowed*
    score (recent window vs rest of record) is a cheap per-check screen,
    and the *localised* split score (record prefix vs suffix at the best
    split day) makes the decision.  A +6 h relocation's localised score
    sits around 6 while a stationary record's best split stays below ~3
    (windowed noise on a 12-to-40-cell window reaches ~3.2, which is why
    the windowed score only screens).  A 1 h DST shift scores ~1 and
    deliberately does *not* fire -- zone placement is hour-quantised and
    a DST slide rarely moves the verdict.
    """

    #: Length, in stream days, of the rolling recent-behaviour window.
    window_days: int = 30
    #: A user is checked at most once per this many stream days (checks
    #: cost O(window) per user; the interval amortises them away).
    check_interval_days: int = 7
    #: Window-vs-history EMD above which the change-point *localisation*
    #: scan runs.  The windowed score is a cheap screen: it dilutes as
    #: post-change data accumulates into the history, so it gates the
    #: scan rather than the decision.
    screen_threshold: float = 2.0
    #: Localised split EMD (pre-change prefix vs post-change suffix of
    #: the record) above which a change-point fires.  Undiluted by
    #: mixing, so it separates cleanly: a +6 h relocation scores ~6 (a
    #: casual poster's thin record, 3.4+ after the size discount) while
    #: a stationary record's best discounted split stays below ~2.6.
    emd_threshold: float = 3.25
    #: Re-estimate when effective confidence falls below this.
    confidence_threshold: float = 0.5
    #: Passive confidence decay per stream day without re-confirmation.
    decay_per_day: float = 0.01
    #: Minimum Eq. 1 cells the window must hold before it is trusted
    #: (half a cell per window day -- casual posters must still be able
    #: to re-confirm, or their confidence decays with no path back up).
    min_window_cells: int = 12
    #: Minimum post-change cells required before a re-estimate commits; a
    #: firing signal with a thinner suffix is deferred to the next check.
    #: Higher than ``min_window_cells``: the re-placed zone is frozen
    #: into the emitted event, so it is worth waiting for more evidence.
    min_reestimate_cells: int = 24
    #: Minimum cells the pre-window history must hold before the EMD
    #: comparison is meaningful; younger records just re-confirm.
    min_history_cells: int = 48
    #: Distance used for the window-vs-history comparison.
    metric: str = "linear"

    def __post_init__(self) -> None:
        if self.window_days < 1:
            raise ValueError(f"window_days must be >= 1, got {self.window_days}")
        if self.check_interval_days < 1:
            raise ValueError(
                f"check_interval_days must be >= 1, got {self.check_interval_days}"
            )
        if self.emd_threshold < 0.0:
            raise ValueError(f"emd_threshold must be >= 0, got {self.emd_threshold}")
        if not 0.0 <= self.screen_threshold <= self.emd_threshold:
            raise ValueError(
                "screen_threshold must be in [0, emd_threshold], got "
                f"{self.screen_threshold}"
            )
        if not 0.0 <= self.confidence_threshold <= 1.0:
            raise ValueError(
                "confidence_threshold must be in [0, 1], got "
                f"{self.confidence_threshold}"
            )
        if self.decay_per_day < 0.0:
            raise ValueError(f"decay_per_day must be >= 0, got {self.decay_per_day}")
        if self.min_window_cells < 1 or self.min_history_cells < 1:
            raise ValueError("min_window_cells / min_history_cells must be >= 1")
        if self.min_reestimate_cells < self.min_window_cells:
            raise ValueError(
                "min_reestimate_cells must be >= min_window_cells, got "
                f"{self.min_reestimate_cells} < {self.min_window_cells}"
            )
        if self.metric not in ALL_DISTANCES:
            raise ValueError(
                f"unknown drift metric {self.metric!r}; options: "
                f"{sorted(ALL_DISTANCES)}"
            )

    def check_due(self, now_day: int, last_check_day: int) -> bool:
        """Whether a lifecycle check is due at *now_day* for this config.

        The single throttle predicate of the new-cell hook: a user whose
        last check ran at *last_check_day* is checked again only once
        ``check_interval_days`` stream days have elapsed.  The streaming
        engine's per-event path evaluates it per opened cell; the bulk
        ingest evaluates it **once per (user, chunk)** against the
        chunk's newest possible day -- when even that day is not due, no
        event inside the chunk can fire a check, so the whole chunk is
        applied with vectorised bookkeeping and zero per-event calls.
        """
        return now_day - last_check_day >= self.check_interval_days

    def as_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (checkpoint envelope)."""
        return {
            "window_days": self.window_days,
            "check_interval_days": self.check_interval_days,
            "screen_threshold": self.screen_threshold,
            "emd_threshold": self.emd_threshold,
            "confidence_threshold": self.confidence_threshold,
            "decay_per_day": self.decay_per_day,
            "min_window_cells": self.min_window_cells,
            "min_reestimate_cells": self.min_reestimate_cells,
            "min_history_cells": self.min_history_cells,
            "metric": self.metric,
        }

    @classmethod
    def from_dict(cls, state: dict[str, Any]) -> "DriftConfig":
        return cls(
            window_days=int(state["window_days"]),
            check_interval_days=int(state["check_interval_days"]),
            screen_threshold=float(state["screen_threshold"]),
            emd_threshold=float(state["emd_threshold"]),
            confidence_threshold=float(state["confidence_threshold"]),
            decay_per_day=float(state["decay_per_day"]),
            min_window_cells=int(state["min_window_cells"]),
            min_reestimate_cells=int(state["min_reestimate_cells"]),
            min_history_cells=int(state["min_history_cells"]),
            metric=str(state["metric"]),
        )


@dataclass
class UserConfidence:
    """One user's confidence record: a value in [0, 1] anchored at a day.

    The *effective* confidence at any later stream day is the anchored
    value minus ``decay_per_day`` per elapsed day, clamped to [0, 1] --
    a pure function, so nothing has to tick: decay is evaluated lazily
    whenever somebody asks.
    """

    value: float = 1.0
    as_of_day: int = 0

    def effective(self, now_day: int, decay_per_day: float) -> float:
        """Confidence at *now_day* after passive decay."""
        elapsed = max(0, now_day - self.as_of_day)
        return float(min(1.0, max(0.0, self.value - decay_per_day * elapsed)))

    def reset(self, day: int, value: float = 1.0) -> None:
        """Anchor the confidence at *value* (fresh evidence / re-verified)."""
        self.value = float(min(1.0, max(0.0, value)))
        self.as_of_day = int(day)


class ChangePointDetector:
    """Scores a user's recent window against their historical profile.

    Both inputs are raw Eq. 1 hour-count 24-vectors; they are normalised
    and compared with the configured EMD variant -- the same ground
    metric the placement pipeline uses, so a score of *k* reads roughly
    as "the window looks shifted by ~k hours from the record".
    """

    def __init__(self, config: DriftConfig) -> None:
        self.config = config
        self._distance = ALL_DISTANCES[config.metric]

    def score(self, window_counts: FloatArray, history_counts: FloatArray) -> float:
        """EMD between the normalised window and history profiles."""
        return float(self._distance(window_counts, history_counts))

    def split_score(self, prefix_counts: FloatArray, suffix_counts: FloatArray) -> float:
        """Size-discounted EMD for scanning candidate change-point splits.

        EMD sampling noise scales like ``1/sqrt(cells)``, and an argmax
        over a record's worth of candidate splits happily picks the
        noisiest thin side; discounting by ``sqrt(min_side / full)``
        (capped at 1) flattens the noise floor across split positions so
        one ``emd_threshold`` works for young and old records alike.  A
        genuine shift keeps its full score once both sides carry
        ``~2.5 * min_reestimate_cells`` cells.
        """
        thin_side = float(min(prefix_counts.sum(), suffix_counts.sum()))
        if thin_side <= 0.0:
            return 0.0
        full_evidence = 2.5 * self.config.min_reestimate_cells
        discount = min(1.0, float(np.sqrt(thin_side / full_evidence)))
        return self.score(prefix_counts, suffix_counts) * discount

    def fires(self, score: float) -> bool:
        return score > self.config.emd_threshold

    def has_evidence(
        self, window_counts: FloatArray, history_counts: FloatArray
    ) -> tuple[bool, bool]:
        """(window trustworthy, history comparable) under the cell floors."""
        window_ok = float(window_counts.sum()) >= self.config.min_window_cells
        history_ok = float(history_counts.sum()) >= self.config.min_history_cells
        return window_ok, history_ok


@dataclass(frozen=True)
class ZoneMigrationEvent:
    """One detected placement change for one user.

    ``old_offset`` / ``new_offset`` are UTC offsets in hours (``None``
    when the user was, or became, unplaced -- below the activity
    threshold or flat-filtered).  ``day`` is the stream day the change
    was detected; ``wall_time`` is the wall-clock stamp taken through the
    injectable seam at emission.  ``emd_score`` and ``window_cells`` are
    the evidence behind the decision.

    ``reason`` is ``"change-point"`` (the localised split score fired),
    ``"confidence"`` (decayed confidence plus a disagreeing window), or
    ``"refine"`` -- a correction to an earlier migration's zone, emitted
    as the truncated record accumulates evidence.  Consumers tracking a
    user's current zone should apply events in order; the last event's
    ``new_offset`` converges to what a from-scratch re-fit would say.
    """

    user_id: str
    old_offset: "int | None"
    new_offset: "int | None"
    day: int
    emd_score: float
    confidence: float
    window_cells: int
    reason: str
    record_version: int
    wall_time: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (one line of the migrations JSONL)."""
        return {
            "user_id": self.user_id,
            "old_offset": self.old_offset,
            "new_offset": self.new_offset,
            "day": self.day,
            "emd_score": self.emd_score,
            "confidence": self.confidence,
            "window_cells": self.window_cells,
            "reason": self.reason,
            "record_version": self.record_version,
            "wall_time": self.wall_time,
        }


@dataclass(frozen=True)
class ConfidenceSummary:
    """Crowd-level confidence digest carried by every drift-aware snapshot."""

    #: Users past the activity threshold (the ones with a placement).
    n_tracked: int
    #: Mean / minimum effective confidence across tracked users (NaN when
    #: nobody is tracked yet).
    mean: float
    minimum: float
    #: Tracked users whose effective confidence is below the threshold.
    n_stale: int
    #: The threshold the staleness count was taken against.
    threshold: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "n_tracked": self.n_tracked,
            "mean": self.mean,
            "minimum": self.minimum,
            "n_stale": self.n_stale,
            "threshold": self.threshold,
        }


@dataclass(frozen=True)
class CompositionSample:
    """The placement histogram at one stream day."""

    day: int
    n_active: int
    #: Per-zone crowd fractions (sums to 1; all zeros while nobody is placed).
    fractions: tuple[float, ...]

    def top_zones(self, n: int = 3) -> list[tuple[int, float]]:
        order = np.argsort(self.fractions)[::-1][:n]
        return [(ZONE_OFFSETS[i], self.fractions[i]) for i in order]


class CompositionTimeline:
    """Crowd composition over time: one histogram sample per stream day.

    Samples are recorded by the streaming engine at snapshot time; a
    second snapshot on the same stream day replaces that day's sample, so
    the timeline length is bounded by campaign days, not snapshot calls.
    Round-trips through checkpoints (:meth:`as_state` /
    :meth:`from_state` for JSON, :meth:`arrays` / :meth:`from_arrays`
    for the binary ``.npz`` columns).
    """

    def __init__(self) -> None:
        self._days: list[int] = []
        self._hists: list[IntArray] = []

    def __len__(self) -> int:
        return len(self._days)

    def record(self, day: int, hist: IntArray) -> None:
        """Record (or replace) the sample for stream day *day*."""
        snapshot = np.array(hist, dtype=np.int64, copy=True)
        if self._days and self._days[-1] == day:
            self._hists[-1] = snapshot
            return
        self._days.append(int(day))
        self._hists.append(snapshot)

    def _sample(self, index: int) -> CompositionSample:
        hist = self._hists[index]
        total = int(hist.sum())
        if total > 0:
            fractions = tuple((hist / total).tolist())
        else:
            fractions = tuple(0.0 for _ in ZONE_OFFSETS)
        return CompositionSample(
            day=self._days[index], n_active=total, fractions=fractions
        )

    def samples(self) -> list[CompositionSample]:
        return [self._sample(i) for i in range(len(self._days))]

    def final(self) -> "CompositionSample | None":
        """The most recent sample, or None while nothing was recorded."""
        if not self._days:
            return None
        return self._sample(len(self._days) - 1)

    # -- checkpoint round-trip --------------------------------------------

    def as_state(self) -> dict[str, Any]:
        return {
            "days": list(self._days),
            "hists": [hist.tolist() for hist in self._hists],
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "CompositionTimeline":
        timeline = cls()
        for day, hist in zip(state["days"], state["hists"]):
            if len(hist) != len(ZONE_OFFSETS):
                raise ValueError(
                    f"timeline sample has {len(hist)} bins, "
                    f"expected {len(ZONE_OFFSETS)}"
                )
            timeline._days.append(int(day))
            timeline._hists.append(np.asarray(hist, dtype=np.int64))
        return timeline

    def arrays(self) -> tuple[IntArray, IntArray]:
        """(days, hists) integer columns for the binary checkpoint."""
        days = np.asarray(self._days, dtype=np.int64)
        if self._hists:
            hists = np.vstack(self._hists).astype(np.int64)
        else:
            hists = np.zeros((0, len(ZONE_OFFSETS)), dtype=np.int64)
        return days, hists

    @classmethod
    def from_arrays(cls, days: IntArray, hists: IntArray) -> "CompositionTimeline":
        timeline = cls()
        days = np.asarray(days, dtype=np.int64)
        hists = np.asarray(hists, dtype=np.int64)
        if hists.ndim != 2 or hists.shape[1] != len(ZONE_OFFSETS):
            raise ValueError(
                f"timeline hists must be (n, {len(ZONE_OFFSETS)}), "
                f"got {hists.shape}"
            )
        if days.size != hists.shape[0]:
            raise ValueError("timeline days and hists disagree on length")
        for index in range(int(days.size)):
            timeline._days.append(int(days[index]))
            timeline._hists.append(hists[index].copy())
        return timeline
