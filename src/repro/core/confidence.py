"""Bootstrap confidence intervals for crowd-geolocation estimates.

The paper reports point estimates (component means/weights).  For a
production tool an investigator needs to know how much those estimates
move under resampling of the crowd -- 52 IDC users support a much wider
interval than 638 Majestic Garden users.  This module bootstraps over
*users*: the per-user zone assignments are resampled with replacement,
the placement histogram rebuilt and the mixture refit with the selected
component count, and each bootstrap component is matched to the original
one with the nearest mean.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.em import GaussianMixtureModel, fit_mixture
from repro.core.gaussian import PAPER_SIGMA
from repro.core.placement import placement_distribution
from repro.errors import FitError


@dataclass(frozen=True)
class ComponentInterval:
    """Bootstrap interval for one mixture component."""

    mean_estimate: float
    mean_low: float
    mean_high: float
    weight_estimate: float
    weight_low: float
    weight_high: float

    def mean_width(self) -> float:
        return self.mean_high - self.mean_low


@dataclass(frozen=True)
class BootstrapResult:
    """Intervals for every component plus diagnostic counters."""

    intervals: tuple[ComponentInterval, ...]
    n_resamples: int
    n_users: int
    k_stability: float  # fraction of resamples whose refit k matched

    def widest_mean_interval(self) -> float:
        return max(interval.mean_width() for interval in self.intervals)


def bootstrap_mixture(
    assignments: "dict[str, int] | list[int]",
    mixture: GaussianMixtureModel,
    *,
    n_resamples: int = 200,
    confidence: float = 0.9,
    sigma_init: float = PAPER_SIGMA,
    seed: int = 0,
) -> BootstrapResult:
    """Bootstrap CIs for the component means and weights.

    *assignments* are the per-user zone offsets produced by the placement
    step (:meth:`CrowdGeolocator.place` /
    :attr:`GeolocationReport.user_zones`); *mixture* is the model fitted
    on the full crowd.
    """
    offsets = list(assignments.values()) if isinstance(assignments, dict) else list(
        assignments
    )
    if not offsets:
        raise FitError("cannot bootstrap an empty crowd")
    if not 0.0 < confidence < 1.0:
        raise FitError(f"confidence outside (0, 1): {confidence}")
    rng = np.random.default_rng(seed)
    k = mixture.k
    original_means = np.asarray([c.mean for c in mixture.components])

    means_samples: list[list[float]] = [[] for _ in range(k)]
    weights_samples: list[list[float]] = [[] for _ in range(k)]
    matched_k = 0
    offsets_array = np.asarray(offsets)
    for _ in range(n_resamples):
        resampled = offsets_array[
            rng.integers(0, len(offsets), size=len(offsets))
        ]
        placement = placement_distribution(resampled.tolist())
        try:
            refit = fit_mixture(placement, k, sigma_init=sigma_init)
        except FitError:
            continue
        refit_means = np.asarray([c.mean for c in refit.components])
        refit_weights = np.asarray([c.weight for c in refit.components])
        # Greedy nearest-mean matching of refit components to originals.
        available = list(range(k))
        matched_all = True
        for index, target in enumerate(original_means):
            if not available:
                matched_all = False
                break
            best = min(available, key=lambda j: abs(refit_means[j] - target))
            if abs(refit_means[best] - target) > 4.0:
                matched_all = False
            means_samples[index].append(float(refit_means[best]))
            weights_samples[index].append(float(refit_weights[best]))
            available.remove(best)
        if matched_all:
            matched_k += 1

    low_q = (1.0 - confidence) / 2.0
    high_q = 1.0 - low_q
    intervals: list[ComponentInterval] = []
    for index, component in enumerate(mixture.components):
        mean_draws = np.asarray(means_samples[index])
        weight_draws = np.asarray(weights_samples[index])
        if mean_draws.size == 0:
            raise FitError("bootstrap produced no usable resamples")
        intervals.append(
            ComponentInterval(
                mean_estimate=component.mean,
                mean_low=float(np.quantile(mean_draws, low_q)),
                mean_high=float(np.quantile(mean_draws, high_q)),
                weight_estimate=component.weight,
                weight_low=float(np.quantile(weight_draws, low_q)),
                weight_high=float(np.quantile(weight_draws, high_q)),
            )
        )
    return BootstrapResult(
        intervals=tuple(intervals),
        n_resamples=n_resamples,
        n_users=len(offsets),
        k_stability=matched_k / max(n_resamples, 1),
    )
