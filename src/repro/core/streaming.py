"""Streaming crowd geolocation: verdicts that update as posts arrive.

Sec. VII of the paper: when a forum hides timestamps, "one might need to
monitor a sufficiently large number of days, depending on the frequency
of the posts, in order to collect 30 posts per user or more necessary to
build meaningful profiles".  :class:`StreamingGeolocator` makes that
operational: feed it (author, timestamp) events as they are observed and
ask for the current verdict at any point -- the convergence experiment
(:func:`repro.analysis.streaming_experiments.run_convergence_experiment`)
then answers *how many days of monitoring a given forum needs*.

Incremental state is kept per user as a **versioned record**: the (day,
hour) active-cell counts of Eq. 1, a record version, and -- when the
temporal-drift layer is enabled -- a confidence score in [0, 1] with
passive time decay (:mod:`repro.core.drift`).  An update is O(1), and so
is most of a snapshot: the geolocator caches every user's zone
assignment and flat/active status, together with the 25-bin placement
histogram, and a *dirty set* records exactly which users changed (a post
landing in a new Eq. 1 cell, or a user crossing the activity threshold)
since the last snapshot.  ``snapshot()`` re-places only the dirty users
and patches the histogram by count deltas, making its cost O(dirty +
bins) instead of O(all users); the always-cold pipeline is preserved as
:meth:`StreamingGeolocator.snapshot_reference`, the oracle the
incremental path is property-tested against.

**Temporal drift** (ROADMAP item 4): pass a
:class:`~repro.core.drift.DriftConfig` and the engine watches every
user's rolling window against their historical profile with the same EMD
the placement uses.  When a change-point fires -- or confidence decays
below threshold while the window disagrees with the cached placement --
the user's record is truncated to the window, re-placed, and a
:class:`~repro.core.drift.ZoneMigrationEvent` is emitted through
:meth:`StreamingGeolocator.on_migration` subscribers; the placement
histogram absorbs the change through the ordinary dirty-set delta
machinery, so drift-adjusted snapshots remain bit-identical to
``snapshot_reference()`` over the same records.  With drift disabled
(the default) the engine is bit-identical to, and within noise as fast
as, the pre-drift release -- ``perf_smoke.py`` gates both.

A monitoring campaign runs for months, so the geolocator's full state
(configuration, reference profiles, every user's versioned record, the
drift configuration and composition timeline) round-trips through
:meth:`StreamingGeolocator.save_checkpoint` /
:meth:`StreamingGeolocator.load_checkpoint` -- kill the process at any
point and the reloaded instance produces the same snapshots.  Two payload
formats are supported: the JSON document of earlier releases (still
written by default, still loadable) and a binary ``.npz`` payload whose
cell sets travel as integer columns, so a million-user checkpoint
round-trips in seconds.  ``load_checkpoint`` negotiates both the payload
format and the schema version from the file itself: version-1
checkpoints written before the drift layer existed load with
full-confidence defaults, while a version-2 checkpoint handed to a
version-1 reader fails loudly with a :class:`CheckpointError`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence, Sized
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.batch import ProfileMatrix
from repro.core.drift import (
    ChangePointDetector,
    CompositionTimeline,
    ConfidenceSummary,
    DriftConfig,
    UserConfidence,
    ZoneMigrationEvent,
)
from repro.core.em import GaussianMixtureModel, select_mixture
from repro.core.emd import distance_matrix
from repro.core.events import PostEvent
from repro.core.flatness import flat_profile_mask
from repro.core.gaussian import PAPER_SIGMA
from repro.core.kernels import segment_unique_cells
from repro.core.placement import PlacementDistribution, place_profile_matrix
from repro.core.profiles import HOURS, Profile
from repro.core.reference import ReferenceProfiles
from repro.errors import CheckpointError, EmptyTraceError
from repro.obs import metrics as obs_metrics
from repro.obs.tracing import trace_span
from repro.reliability.checkpoint import (
    checkpoint_format,
    read_binary_checkpoint_negotiated,
    read_checkpoint_negotiated,
    write_binary_checkpoint,
    write_checkpoint,
)
from repro.reliability.clocks import WallClockFn, wall_now

if TYPE_CHECKING:
    from repro.core.types import AnyArray, FloatArray, IntArray
    from repro.datasets.store import TraceStore
from repro.timebase.clock import split_day_hours
from repro.timebase.zones import ZONE_OFFSETS

#: Checkpoint envelope identifiers for :class:`StreamingGeolocator` state.
STREAM_CHECKPOINT_KIND = "streaming-geolocator"
#: Version written by this release (2: versioned per-user records with
#: confidence lifecycle fields, drift config and composition timeline).
STREAM_CHECKPOINT_VERSION = 2
#: Every version this release can still read; version 1 (pre-drift) loads
#: with full-confidence defaults.
STREAM_CHECKPOINT_COMPAT: tuple[int, ...] = (1, 2)

#: :meth:`StreamSnapshot.verdict_state` sentinels.  ``EMPTY_STREAM`` is the
#: explicit "snapshot taken before any observe()" state -- previously
#: indistinguishable from an under-evidenced crowd.
EMPTY_STREAM = "empty-stream"
UNDER_EVIDENCED = "under-evidenced"
VERDICT = "verdict"

#: Column sentinel for "no anchor / no day yet" in binary checkpoints
#: (chosen far outside any reachable day ordinal).
_NO_DAY = -(2**62)

#: Shared empty record for users the bulk path has not yet given cells.
_EMPTY_CELLS: "IntArray" = np.zeros(0, dtype=np.int64)

#: A freshly truncated record keeps getting its zone re-checked (and
#: corrected via ``reason="refine"`` events) until it holds this many
#: times ``min_reestimate_cells`` -- at which point one more cell cannot
#: move the placement and the estimate is considered settled.
_REFINE_SETTLED_FACTOR = 4.0

#: :meth:`StreamingGeolocator.observe_events` routes sized inputs holding at
#: least this many events through the vectorised bulk path; below it the
#: array setup costs more than the per-event loop it replaces.
BATCH_OBSERVE_THRESHOLD = 256


@dataclass(frozen=True)
class StreamSnapshot:
    """The state of the verdict at one point in the monitoring campaign."""

    n_events_seen: int
    n_users_seen: int
    n_users_active: int
    mixture: GaussianMixtureModel | None
    #: The placement histogram behind the verdict (None while
    #: under-evidenced).  Maintained incrementally by count deltas.
    placement: PlacementDistribution | None = None
    #: Crowd confidence digest; None unless the drift layer is enabled.
    confidence: ConfidenceSummary | None = None

    def is_empty_stream(self) -> bool:
        """True when the snapshot was taken before any ``observe()``."""
        return self.n_events_seen == 0

    def verdict_state(self) -> str:
        """Explicit tri-state: ``empty-stream``/``under-evidenced``/``verdict``.

        An empty stream used to be silently indistinguishable from an
        under-evidenced crowd; this is the explicit sentinel callers
        should branch on before asking for a verdict.
        """
        if self.is_empty_stream():
            return EMPTY_STREAM
        return VERDICT if self.mixture is not None else UNDER_EVIDENCED

    def dominant_mean(self) -> float:
        if self.mixture is None:
            if self.is_empty_stream():
                raise EmptyTraceError(
                    "empty stream: snapshot taken before any observe(); "
                    "check verdict_state() before asking for a verdict"
                )
            return float("nan")
        return self.mixture.dominant().mean

    def has_verdict(self) -> bool:
        return self.mixture is not None


class _UserState:
    """One user's versioned incremental Eq. 1 record.

    Active cells are kept as encoded ``day * 24 + hour`` integers (cheaper
    to hash and to checkpoint than tuples).  The normalised profile row is
    cached and invalidated only when a new active cell appears, so
    snapshots reuse the row of every user whose activity pattern did not
    change since the previous snapshot.

    The record is *versioned*: ``record_version`` starts at 1 and is
    bumped by :meth:`truncate_to` when the drift layer re-estimates the
    user from their recent window -- ``counts`` then covers only cells
    with ``day >= anchor_day`` while the cell set keeps the full history
    for deduplication.  ``confidence`` (a
    :class:`~repro.core.drift.UserConfidence`) and the lazily built
    per-day hour bitmasks exist only when the drift layer asks for them;
    with drift disabled every new field is inert.
    """

    __slots__ = (
        "_cells",
        "_frozen",
        "counts",
        "n_posts",
        "_mass",
        "record_version",
        "confidence",
        "anchor_day",
        "last_check_day",
        "max_day",
        "_day_bits",
    )

    def __init__(self) -> None:
        self._cells: set[int] | None = set()
        # Checkpoint restore leaves the cells as a sorted int64 slice and
        # defers building the python set until this user is observed
        # again -- most restored users never are, so a million-user
        # checkpoint loads in seconds instead of materialising a million
        # sets up front.
        self._frozen: FloatArray | None = None
        self.counts = np.zeros(HOURS, dtype=float)
        self.n_posts = 0
        self._mass: FloatArray | None = None
        # -- versioned-record / drift-lifecycle fields -------------------
        self.record_version = 1
        self.confidence: UserConfidence | None = None
        self.anchor_day: int | None = None
        self.last_check_day: int = _NO_DAY
        self.max_day: int = _NO_DAY
        self._day_bits: dict[int, int] | None = None

    @property
    def cells(self) -> set[int]:
        if self._cells is None:
            self._cells = set(self._frozen.tolist())
        return self._cells

    def n_cells(self) -> int:
        if self._cells is None:
            return int(self._frozen.size)
        return len(self._cells)

    def sorted_cells(self) -> list[int]:
        if self._cells is None:
            return self._frozen.tolist()
        return sorted(self._cells)

    def add(self, timestamp: float) -> bool:
        """Record one post; True when it opened a new in-record cell."""
        self.n_posts += 1
        day = int(timestamp // 86400.0)
        hour = int((timestamp % 86400.0) // 3600.0)
        if day > self.max_day:
            self.max_day = day
        cell = day * HOURS + hour
        if cell in self.cells:
            return False
        self._cells.add(cell)
        if self.anchor_day is not None and day < self.anchor_day:
            # A straggler from before the current record's anchor: keep it
            # for deduplication, but a truncated record never re-absorbs
            # pre-migration history.
            return False
        self.counts[hour] += 1.0
        if self._day_bits is not None:
            self._day_bits[day] = self._day_bits.get(day, 0) | (1 << hour)
        self._mass = None
        return True

    def mass(self) -> FloatArray:
        """Cached normalised 24-vector of the current record's cells."""
        if self._mass is None:
            total = self.counts.sum()
            if total <= 0.0:
                raise EmptyTraceError("no activity accumulated")
            self._mass = self.counts / total
        return self._mass

    def profile(self) -> Profile:
        if self.counts.sum() <= 0.0:
            raise EmptyTraceError("no activity accumulated")
        return Profile(self.counts)

    # -- drift-lifecycle helpers ------------------------------------------

    def ensure_confidence(self, day: int) -> UserConfidence:
        """This user's confidence record, created at full on first use."""
        if self.confidence is None:
            self.confidence = UserConfidence(1.0, day)
        return self.confidence

    def day_bits(self) -> dict[int, int]:
        """``day -> 24-bit hour mask`` of the current record (lazy).

        Built once from the cell set (or the frozen checkpoint slice) and
        maintained incrementally by :meth:`add` afterwards, so window
        queries cost O(window days), not O(record cells).
        """
        if self._day_bits is None:
            bits: dict[int, int] = {}
            anchor = self.anchor_day
            source: Iterable[int]
            if self._cells is None:
                source = self._frozen.tolist()
            else:
                source = self._cells
            for encoded in source:
                day, hour = divmod(int(encoded), HOURS)
                if anchor is None or day >= anchor:
                    bits[day] = bits.get(day, 0) | (1 << hour)
            self._day_bits = bits
        return self._day_bits

    @staticmethod
    def _counts_of_bits(bits_by_day: Iterable[int]) -> FloatArray:
        counts = np.zeros(HOURS, dtype=float)
        for bits in bits_by_day:
            while bits:
                low = bits & -bits
                counts[low.bit_length() - 1] += 1.0
                bits &= bits - 1
        return counts

    def window_counts(self, start_day: int, end_day: int) -> FloatArray:
        """Hour counts of record cells with day in [start_day, end_day]."""
        bits_by_day = self.day_bits()
        selected: Iterable[int]
        if len(bits_by_day) <= end_day - start_day + 1:
            selected = (
                bits for day, bits in bits_by_day.items()
                if start_day <= day <= end_day
            )
        else:
            selected = (
                bits_by_day.get(day, 0) for day in range(start_day, end_day + 1)
            )
        return self._counts_of_bits(selected)

    def truncate_to(self, anchor_day: int) -> None:
        """Open a new record version holding only days >= *anchor_day*."""
        kept = {
            day: bits for day, bits in self.day_bits().items() if day >= anchor_day
        }
        self._day_bits = kept
        self.counts = self._counts_of_bits(kept.values())
        self.anchor_day = anchor_day
        self.record_version += 1
        self._mass = None


class StreamingGeolocator:
    """Online version of the pipeline: O(1) per event, O(dirty) per snapshot.

    Invariant maintained between snapshots: for every user, either the
    user is in the dirty set, or their cached zone assignment / flat flag
    / histogram contribution equals what a cold full re-place would
    compute.  ``observe`` only dirties a user when their Eq. 1 profile can
    actually have changed (new active cell, or a drift re-estimation
    truncating their record) or their activity status can have flipped
    (post count reaching ``min_posts``), so a quiet crowd costs nothing
    to snapshot.

    With *drift* supplied, every new Eq. 1 cell also advances the user's
    confidence lifecycle (at most one check per
    ``drift.check_interval_days`` stream days per user); re-estimations
    go through the same dirty set, which is what keeps ``snapshot()``
    equal to ``snapshot_reference()`` whether or not migrations fired.
    The wall-clock stamps on emitted migration events are read through
    the injectable seam of :mod:`repro.reliability.clocks` (``wall_clock``
    parameter), never ``time.time()`` directly.
    """

    def __init__(
        self,
        references: ReferenceProfiles | None = None,
        *,
        metric: str = "linear",
        min_posts: int = 30,
        sigma_init: float = PAPER_SIGMA,
        max_components: int = 4,
        min_users_for_verdict: int = 10,
        drift: DriftConfig | None = None,
        wall_clock: WallClockFn | None = None,
    ) -> None:
        self.references = references or ReferenceProfiles.canonical()
        self.metric = metric
        self.min_posts = min_posts
        self.sigma_init = sigma_init
        self.max_components = max_components
        self.min_users_for_verdict = min_users_for_verdict
        self._users: dict[str, _UserState] = {}
        self._n_events = 0
        # Incremental placement state (see class docstring invariant).
        self._dirty: set[str] = set()
        self._zone_of: dict[str, int] = {}
        self._flat_ids: set[str] = set()
        self._hist = np.zeros(len(ZONE_OFFSETS), dtype=np.int64)
        self._matrix_cache: ProfileMatrix | None = None
        # -- temporal-drift layer (inert when drift is None) --------------
        self.drift = drift
        self._wall_now: WallClockFn = wall_clock if wall_clock is not None else wall_now
        self._detector = ChangePointDetector(drift) if drift is not None else None
        self._stream_day: int | None = None
        self.timeline: CompositionTimeline | None = (
            CompositionTimeline() if drift is not None else None
        )
        self.migrations: list[ZoneMigrationEvent] = []
        self._migration_subscribers: list[Callable[[ZoneMigrationEvent], None]] = []
        # Users whose post-migration record is still thin get their zone
        # re-checked at each lifecycle check until it settles; the value
        # is the latest estimate a correction would be issued against.
        self._pending_refine: dict[str, ZoneMigrationEvent] = {}
        # Observatory bookkeeping: event counts at the last snapshot /
        # checkpoint.  Plain attributes outside state_dict(), so engine
        # state and checkpoint bytes are untouched (bit-identity gate).
        self._snapshot_events: int = 0
        self._checkpoint_events: int | None = None
        self._checkpoint_wall: float | None = None

    def observe(self, user_id: str, timestamp: float) -> None:
        """Feed one (author, UTC timestamp) observation."""
        state = self._users.get(user_id)
        if state is None:
            state = self._users[user_id] = _UserState()
        # No float() coercion: the binning arithmetic in _UserState.add is
        # bit-identical for python floats, ints and numpy float64 scalars.
        opened_cell = state.add(timestamp)
        if opened_cell or state.n_posts == self.min_posts:
            self._dirty.add(user_id)
        self._n_events += 1
        if self.drift is not None and opened_cell:
            self._drift_on_new_cell(user_id, state)

    def observe_events(self, events: Iterable[PostEvent]) -> None:
        """Feed many events; large sized inputs take the vectorised path.

        Anything with a ``len()`` of at least
        :data:`BATCH_OBSERVE_THRESHOLD` is routed through
        :meth:`observe_batch` (bit-identical to the serial loop, an order
        of magnitude faster); generators and small inputs keep the
        per-event loop.
        """
        if isinstance(events, Sized) and len(events) >= BATCH_OBSERVE_THRESHOLD:
            size = len(events)
            user_ids = [event.user_id for event in events]
            stamps = np.fromiter(
                (event.timestamp for event in events),
                dtype=np.float64,
                count=size,
            )
            self.observe_batch(user_ids, stamps)
            return
        for event in events:
            self.observe(event.user_id, event.timestamp)

    def observe_batch(
        self,
        user_ids: "Sequence[str]",
        timestamps: "FloatArray | Sequence[float]",
    ) -> int:
        """Vectorised bulk intake of one chunk of (author, timestamp) events.

        Bit-identical to calling :meth:`observe` once per event in the
        given order -- snapshots, confidence lifecycle, migration events
        and checkpoints all match the per-event loop exactly (the property
        tests in ``tests/test_streaming_batch.py`` interleave the two
        freely) -- while the heavy lifting (cell binning, per-user
        grouping, deduplication) runs as array operations through the
        :mod:`repro.core.kernels` segmented dispatcher.  Returns the
        number of events ingested.
        """
        stamps = np.ascontiguousarray(timestamps, dtype=np.float64)
        if stamps.ndim != 1:
            raise ValueError(f"timestamps must be 1-D, got shape {stamps.shape}")
        n = int(stamps.size)
        if len(user_ids) != n:
            raise ValueError(
                f"user_ids ({len(user_ids)}) and timestamps ({n}) disagree"
            )
        if n == 0:
            return 0
        # Factorise author ids to dense codes numbered in first-appearance
        # order -- state creation order must match the per-event loop (the
        # checkpoint columns follow ``self._users`` insertion order).
        codes = np.empty(n, dtype=np.int64)
        if isinstance(user_ids, np.ndarray):
            uniq_arr, first_seen, inverse = np.unique(
                user_ids, return_index=True, return_inverse=True
            )
            appearance = np.argsort(first_seen, kind="stable")
            remap = np.empty(appearance.size, dtype=np.int64)
            remap[appearance] = np.arange(appearance.size, dtype=np.int64)
            codes[:] = remap[inverse]
            uniq = [str(u) for u in uniq_arr[appearance]]
        else:
            index: dict[str, int] = {}
            uniq = []
            for j, user_id in enumerate(user_ids):
                code = index.get(user_id)
                if code is None:
                    code = len(uniq)
                    index[user_id] = code
                    uniq.append(user_id)
                codes[j] = code
        lengths = np.bincount(codes, minlength=len(uniq)).astype(np.int64)
        order = np.argsort(codes, kind="stable").astype(np.int64)
        with trace_span("streaming_observe_batch", n_events=n, n_users=len(uniq)):
            self._ingest_grouped(uniq, lengths, stamps[order], order)
        obs_metrics.counter(
            "repro_streaming_batch_events_total",
            "events ingested through the vectorised bulk path",
        ).inc(n)
        return n

    def ingest_store(
        self,
        store: "TraceStore",
        *,
        max_posts: int = 262144,
        on_chunk: "Callable[[int, float], None] | None" = None,
    ) -> int:
        """Replay every (user, timestamp) of a :class:`TraceStore` in bulk.

        Equivalent to observing each user's full trace in store order --
        the natural replay/backfill order -- through :meth:`observe`.
        Chunking at *max_posts* events bounds peak memory without changing
        any result: chunk boundaries never split a user, and the store
        columns arrive pre-grouped, so the per-chunk regrouping of
        :meth:`observe_batch` is skipped entirely.  Returns the number of
        events ingested.

        *on_chunk*, when given, is called after each ingested chunk with
        ``(events_so_far, max_chunk_timestamp)`` -- the observatory hook
        the CLI uses to tick its sampler on stream time.  It never
        changes what is ingested, and the default ``None`` keeps the loop
        byte-for-byte on the pre-observatory path.
        """
        total = 0
        with trace_span("streaming_ingest_store", max_posts=max_posts):
            for ids, lengths, stamps in store.iter_column_chunks(
                max_posts=max_posts
            ):
                self._ingest_grouped(ids, lengths, stamps, None)
                total += int(stamps.size)
                if on_chunk is not None and stamps.size:
                    on_chunk(total, float(stamps.max()))
        obs_metrics.counter(
            "repro_streaming_batch_events_total",
            "events ingested through the vectorised bulk path",
        ).inc(total)
        return total

    def _ingest_grouped(
        self,
        user_ids: "Sequence[str]",
        lengths: "IntArray",
        stamps: "FloatArray",
        positions: "IntArray | None",
    ) -> None:
        """Core of the bulk path: ingest a chunk already grouped by user.

        *stamps* holds each user's chunk events back to back, preserving
        their original relative order within the user; *positions* maps
        each grouped event back to its index in the original interleaved
        chunk (``None`` when the grouped order *is* the original order,
        as for store replay).  Bit-identity with the per-event loop rests
        on three facts the property tests pin down: counts, day bitmaps
        and ``max_day`` change only at events that open a new in-record
        cell; a user's ``n_posts`` at any event equals its pre-chunk value
        plus the event's within-user ordinal plus one; and the
        ``min_posts`` promotion fires exactly when the chunk crosses the
        threshold.  Everything else per-event work does is a no-op.
        """
        n_users = len(user_ids)
        lengths = np.ascontiguousarray(lengths, dtype=np.int64)
        if lengths.size != n_users:
            raise ValueError(
                f"user_ids ({n_users}) and lengths ({lengths.size}) disagree"
            )
        if int(lengths.sum()) != stamps.size:
            raise ValueError("lengths do not cover the stamp column")
        if n_users and bool((lengths == 0).any()):
            # A zero-length user never reaches observe() in the per-event
            # loop, so it must not acquire state here either.
            keep = lengths > 0
            user_ids = [u for u, k in zip(user_ids, keep) if k]
            lengths = lengths[keep]
            n_users = len(user_ids)
        if stamps.size == 0:
            return
        seg_starts = np.zeros(n_users + 1, dtype=np.int64)
        np.cumsum(lengths, out=seg_starts[1:])
        states: list[_UserState] = []
        for user_id in user_ids:
            state = self._users.get(user_id)
            if state is None:
                state = self._users[user_id] = _UserState()
            states.append(state)
        before = [state.n_posts for state in states]
        if self.drift is None:
            self._bulk_apply(user_ids, states, lengths, stamps)
        else:
            self._bulk_apply_drift(
                user_ids, states, before, lengths, seg_starts, stamps, positions
            )
        for i, state in enumerate(states):
            state.n_posts = before[i] + int(lengths[i])
            if before[i] < self.min_posts <= state.n_posts:
                # The chunk crossed the activity threshold: exactly one of
                # its events had n_posts == min_posts in the per-event
                # loop, which dirties the user even with no new cell.
                self._dirty.add(user_ids[i])
        self._n_events += int(stamps.size)

    def _apply_unique_cells(self, state: _UserState, seg: "IntArray") -> bool:
        """Apply one chunk's sorted unique cells to *state*'s record.

        Returns True when at least one *in-record* cell opened -- exactly
        the chunks for which the per-event loop would have dirtied the
        user.  ``n_posts`` bookkeeping is left to the caller.
        """
        if (
            state.n_posts == 0
            and state.n_cells() == 0
            and state.anchor_day is None
            and state._day_bits is None
        ):
            # Fresh user: the chunk is the whole record.  Adopt the sorted
            # unique slice wholesale with deferred set materialisation
            # (exactly how checkpoint restore leaves users) -- no
            # membership tests, no per-cell python.
            state._cells = None
            state._frozen = seg.copy()
            state.counts = np.bincount(seg % HOURS, minlength=HOURS).astype(float)
            state.max_day = int(seg[-1]) // HOURS
            state._mass = None
            return True
        cells = state.cells
        counts = state.counts
        bits = state._day_bits
        anchor = state.anchor_day
        max_day = state.max_day
        opened = False
        for cell in seg.tolist():
            if cell in cells:
                continue
            cells.add(cell)
            day = cell // HOURS
            if day > max_day:
                max_day = day
            if anchor is not None and day < anchor:
                # Pre-anchor straggler: deduplicated, never re-counted.
                continue
            counts[cell % HOURS] += 1.0
            if bits is not None:
                bits[day] = bits.get(day, 0) | (1 << (cell % HOURS))
            opened = True
        state.max_day = max_day
        if opened:
            state._mass = None
        return opened

    @staticmethod
    def _frozen_record(state: _UserState) -> "IntArray | None":
        """*state*'s record as a sorted cell array, or None if set-backed.

        Records touched only by the bulk path stay as sorted int64 arrays
        (the checkpoint-restore representation), which is what lets one
        chunk be diffed against *all* its users' records in a single
        vectorised pass.  Records with per-event history (a materialised
        set, or drift day-bitmaps) fall back to the per-user loop.
        """
        if state._day_bits is not None:
            return None
        if state._cells is None:
            return state._frozen
        if state.n_posts == 0 and not state._cells and state.anchor_day is None:
            return _EMPTY_CELLS
        return None

    def _bulk_apply(
        self,
        user_ids: "Sequence[str]",
        states: "list[_UserState]",
        lengths: "IntArray",
        stamps: "FloatArray",
    ) -> None:
        """Drift-off bulk path: one kernel call bins the whole chunk.

        Users whose records are array-backed (fresh, restored, or built by
        earlier bulk chunks) are diffed and merged in one vectorised pass
        over the whole chunk; set-backed records take the per-user loop.
        """
        unique_cells, cell_lengths = segment_unique_cells(stamps, lengths)
        cell_starts = np.zeros(len(states) + 1, dtype=np.int64)
        np.cumsum(cell_lengths, out=cell_starts[1:])
        records: list[IntArray] = []
        vectorised: list[int] = []
        for i, state in enumerate(states):
            record = self._frozen_record(state)
            if record is None:
                seg = unique_cells[cell_starts[i] : cell_starts[i + 1]]
                if self._apply_unique_cells(state, seg):
                    self._dirty.add(user_ids[i])
            else:
                records.append(record)
                vectorised.append(i)
        if vectorised:
            self._vector_apply(
                user_ids,
                states,
                vectorised,
                records,
                unique_cells,
                cell_lengths,
                cell_starts,
            )

    def _vector_apply(
        self,
        user_ids: "Sequence[str]",
        states: "list[_UserState]",
        vectorised: "list[int]",
        records: "list[IntArray]",
        unique_cells: "IntArray",
        cell_lengths: "IntArray",
        cell_starts: "IntArray",
    ) -> None:
        """Diff + merge one chunk against many records in one numpy pass.

        Records and chunk candidates are encoded as ``user * span + cell``
        keys (both sorted user-major, so membership is one searchsorted),
        new cells are spliced into one merged key column, and every user's
        record is re-pointed at its slice of the decoded result.  The
        per-user outcome -- cells, counts (anchor-masked), ``max_day``,
        dirty membership -- is identical to running
        :meth:`_apply_unique_cells` per user, which is the fallback when
        the key encoding would overflow int64.
        """
        n_vec = len(vectorised)
        selector = np.asarray(vectorised, dtype=np.int64)
        if n_vec == len(states):
            cand = unique_cells
            cand_lengths = cell_lengths
        else:
            cand = np.concatenate(
                [
                    unique_cells[cell_starts[i] : cell_starts[i + 1]]
                    for i in vectorised
                ]
            )
            cand_lengths = cell_lengths[selector]
        record_lengths = np.fromiter(
            (record.size for record in records), dtype=np.int64, count=n_vec
        )
        record_cells = (
            np.concatenate(records) if record_lengths.any() else _EMPTY_CELLS
        )
        cell_min = int(cand.min())
        cell_max = int(cand.max())
        if record_cells.size:
            cell_min = min(cell_min, int(record_cells.min()))
            cell_max = max(cell_max, int(record_cells.max()))
        span = cell_max - cell_min + 1
        if n_vec * span >= 2**62:
            # Pathological cell range: the encoded keys would overflow.
            for i, record in zip(vectorised, records):
                seg = unique_cells[cell_starts[i] : cell_starts[i + 1]]
                if self._apply_unique_cells(states[i], seg):
                    self._dirty.add(user_ids[i])
            return
        record_owner = np.repeat(
            np.arange(n_vec, dtype=np.int64), record_lengths
        )
        cand_owner = np.repeat(np.arange(n_vec, dtype=np.int64), cand_lengths)
        record_keys = record_owner * span + (record_cells - cell_min)
        cand_keys = cand_owner * span + (cand - cell_min)
        if record_keys.size:
            at = np.minimum(
                np.searchsorted(record_keys, cand_keys), record_keys.size - 1
            )
            new_mask = record_keys[at] != cand_keys
        else:
            new_mask = np.ones(cand_keys.size, dtype=bool)
        new_keys = cand_keys[new_mask]
        new_cells = cand[new_mask]
        new_owner = cand_owner[new_mask]
        merged_keys = np.insert(
            record_keys, np.searchsorted(record_keys, new_keys), new_keys
        )
        merged_owner = merged_keys // span
        merged_cells = merged_keys - merged_owner * span + cell_min
        merged_starts = np.zeros(n_vec + 1, dtype=np.int64)
        np.cumsum(
            record_lengths + np.bincount(new_owner, minlength=n_vec),
            out=merged_starts[1:],
        )
        # In-record (counted) new cells: at or after the record anchor.
        anchors = np.fromiter(
            (
                _NO_DAY if states[i].anchor_day is None else states[i].anchor_day
                for i in vectorised
            ),
            dtype=np.int64,
            count=n_vec,
        )
        counted_mask = (new_cells // HOURS) >= anchors[new_owner]
        counted_owner = new_owner[counted_mask]
        counted_cells = new_cells[counted_mask]
        deltas = (
            np.bincount(
                counted_owner * HOURS + counted_cells % HOURS,
                minlength=n_vec * HOURS,
            )
            .reshape(n_vec, HOURS)
            .astype(float)
        )
        opened = np.bincount(counted_owner, minlength=n_vec) > 0
        for j, i in enumerate(vectorised):
            state = states[i]
            state._cells = None
            state._frozen = merged_cells[merged_starts[j] : merged_starts[j + 1]]
            # max_day equals the record's newest cell day: duplicates and
            # stragglers can never raise it past their first occurrence.
            state.max_day = int(merged_cells[merged_starts[j + 1] - 1]) // HOURS
            if opened[j]:
                state.counts = state.counts + deltas[j]
                state._mass = None
                self._dirty.add(user_ids[i])

    def _bulk_apply_drift(
        self,
        user_ids: "Sequence[str]",
        states: "list[_UserState]",
        before: "list[int]",
        lengths: "IntArray",
        seg_starts: "IntArray",
        stamps: "FloatArray",
        positions: "IntArray | None",
    ) -> None:
        """Drift-on bulk path: amortised lifecycle checks, exact replay.

        Users whose chunk cannot fire a lifecycle check -- the newest day
        they could reach is still inside the :meth:`DriftConfig.check_due`
        throttle -- take the vectorised path with **one** drift
        bookkeeping step per (user, chunk).  The rest (due for a check, or
        with no confidence record yet) replay their first-occurrence cells
        through :meth:`observe`'s exact machinery in original chunk order,
        because cross-user event interleaving decides the migration-log
        order.  Duplicate events can never fire a check (they open no
        cell), so skipping them is exact.
        """
        config = self.drift
        assert config is not None
        n = int(stamps.size)
        n_users = len(states)
        days, hours = split_day_hours(stamps)
        cells = days * np.int64(HOURS) + hours
        owner = np.repeat(np.arange(n_users, dtype=np.int64), lengths)
        if positions is None:
            positions = np.arange(n, dtype=np.int64)
        # One candidate per distinct (user, cell): its earliest event in
        # original order.  Later duplicates are no-ops in the per-event
        # loop (no cell opens, max_day cannot rise past its first
        # occurrence, n_posts is finalised separately).
        order = np.lexsort((positions, cells, owner))
        ordered_cells = cells[order]
        ordered_owner = owner[order]
        first = np.empty(n, dtype=bool)
        first[0] = True
        first[1:] = (ordered_cells[1:] != ordered_cells[:-1]) | (
            ordered_owner[1:] != ordered_owner[:-1]
        )
        candidates = order[first]
        candidate_owner = ordered_owner[first]
        candidate_cells = ordered_cells[first]
        candidate_starts = np.searchsorted(
            candidate_owner, np.arange(n_users + 1), side="left"
        )
        ranks = np.arange(n, dtype=np.int64) - np.repeat(seg_starts[:-1], lengths)
        replay = np.zeros(n_users, dtype=bool)
        for i, state in enumerate(states):
            # Candidate cells are sorted per user, so the segment's last
            # entry carries the newest day this chunk can reach.
            newest = int(candidate_cells[candidate_starts[i + 1] - 1]) // HOURS
            if state.max_day > newest:
                newest = state.max_day
            if state.confidence is not None and not config.check_due(
                newest, state.last_check_day
            ):
                seg = candidate_cells[
                    candidate_starts[i] : candidate_starts[i + 1]
                ]
                if self._apply_unique_cells(state, seg):
                    self._dirty.add(user_ids[i])
                    # The stream clock advances at every opened event; its
                    # chunk-wide maximum is the user's final max_day.
                    if self._stream_day is None or state.max_day > self._stream_day:
                        self._stream_day = state.max_day
            else:
                replay[i] = True
        if not bool(replay.any()):
            return
        fire = candidates[replay[candidate_owner]]
        # Original chunk order across users: migration-log order depends
        # on how users interleave, so the replay must preserve it.
        fire = fire[np.argsort(positions[fire], kind="stable")]
        fire_owner = owner[fire].tolist()
        fire_ranks = ranks[fire].tolist()
        for g, i, rank in zip(fire.tolist(), fire_owner, fire_ranks):
            state = states[i]
            # Patch n_posts to what the per-event loop would hold at this
            # event; skipped (duplicate) events are settled by the caller.
            state.n_posts = before[i] + rank
            opened = state.add(stamps[g])
            if opened or state.n_posts == self.min_posts:
                self._dirty.add(user_ids[i])
            if opened:
                self._drift_on_new_cell(user_ids[i], state)

    @property
    def n_events(self) -> int:
        return self._n_events

    def n_users(self) -> int:
        return len(self._users)

    def n_dirty(self) -> int:
        """Users whose cached placement must be refreshed at next snapshot."""
        return len(self._dirty)

    def heartbeat(self) -> dict[str, float]:
        """Cheap liveness gauges for the health observatory.

        O(users) only when drift is enabled (the confidence digest);
        otherwise O(zone bins).  The sampler
        (:meth:`repro.obs.timeseries.SeriesSampler.bind_streaming_engine`)
        reads this at its own cadence, so nothing here runs unless an
        observatory is attached -- the hot ingest path never calls it.

        ``snapshot_lag_events`` / ``checkpoint_lag_events`` count events
        ingested since the last :meth:`snapshot` / :meth:`save_checkpoint`
        (all events so far when neither has happened yet): deterministic
        staleness measures that need no wall clock.
        """
        checkpointed = self._checkpoint_events or 0
        beat: dict[str, float] = {
            "events_total": float(self._n_events),
            "users_seen": float(len(self._users)),
            # Placements standing in the histogram as of the last refresh
            # (0 until the first snapshot; never recomputed here -- a
            # heartbeat must not trigger the O(dirty) refresh).
            "users_placed": float(self._hist.sum()),
            "dirty_users": float(len(self._dirty)),
            "migrations_total": float(len(self.migrations)),
            "snapshot_lag_events": float(self._n_events - self._snapshot_events),
            "checkpoint_lag_events": float(self._n_events - checkpointed),
        }
        if self._checkpoint_wall is not None:
            beat["checkpoint_age_s"] = float(self._wall_now() - self._checkpoint_wall)
        if self.drift is not None:
            if self._stream_day is not None:
                beat["stream_day"] = float(self._stream_day)
            summary = self._confidence_summary()
            if summary.n_tracked:
                beat["confidence_mean"] = summary.mean
                beat["confidence_min"] = summary.minimum
                beat["stale_ratio"] = summary.n_stale / summary.n_tracked
        return beat

    def invalidate_all(self) -> None:
        """Force the next snapshot to re-place every user (cold path).

        Exists for benchmarking the incremental win and for callers that
        mutate shared state behind the geolocator's back (e.g. swapping
        reference profiles in place).
        """
        self._dirty.update(self._users)
        self._matrix_cache = None

    # -- temporal-drift lifecycle -----------------------------------------

    def on_migration(
        self, callback: Callable[[ZoneMigrationEvent], None]
    ) -> Callable[[ZoneMigrationEvent], None]:
        """Subscribe *callback* to every emitted zone-migration event.

        Returns the callback so the method works as a decorator.  Events
        are also retained on :attr:`migrations` for post-hoc inspection.
        """
        self._migration_subscribers.append(callback)
        return callback

    def _drift_on_new_cell(self, user_id: str, state: _UserState) -> None:
        """Advance the stream clock and run the throttled lifecycle check."""
        config = self.drift
        if config is None:
            return
        day = state.max_day
        if self._stream_day is None or day > self._stream_day:
            self._stream_day = day
        confidence = state.ensure_confidence(day)
        if day - state.last_check_day < config.check_interval_days:
            return
        self._drift_check(user_id, state, confidence, day)

    def _drift_check(
        self,
        user_id: str,
        state: _UserState,
        confidence: UserConfidence,
        now_day: int,
    ) -> None:
        """One confidence-lifecycle step: decay, compare, maybe re-estimate.

        The recent window (last ``window_days`` of the record) is compared
        against the record's pre-window history with the configured EMD.
        Window agreeing with history re-verifies the placement (confidence
        back to full); a change-point score or a below-threshold decayed
        confidence triggers re-estimation from the window.
        """
        config = self.drift
        detector = self._detector
        if config is None or detector is None:
            return
        state.last_check_day = now_day
        obs_metrics.counter(
            "repro_stream_drift_checks_total",
            "per-user confidence-lifecycle checks run",
        ).inc()
        if user_id in self._pending_refine:
            self._refine(user_id, state, confidence, now_day)
            if user_id in self._pending_refine:
                # Still settling: the record is too young for the
                # change-point machinery to say anything new.
                return
        window_start = now_day - config.window_days + 1
        window = state.window_counts(window_start, now_day)
        if window.sum() < config.min_window_cells:
            # Casual posters: "recent behaviour" just spans more days for
            # them.  Stretch the window back (up to 4x) until it holds
            # enough cells, instead of leaving them forever uncheckable.
            limit = now_day - 4 * config.window_days + 1
            bits = state.day_bits()
            for day in sorted(
                (d for d in bits if limit <= d < window_start), reverse=True
            ):
                window = window + _UserState._counts_of_bits((bits[day],))
                window_start = day
                if window.sum() >= config.min_window_cells:
                    break
        history = state.counts - window
        window_ok, history_ok = detector.has_evidence(window, history)
        if not window_ok:
            # Too little recent evidence to judge; confidence keeps
            # decaying until the window fills back up.
            return
        if not history_ok:
            # Young record: the window *is* the record, nothing to drift
            # from -- fresh consistent evidence re-verifies.
            confidence.reset(now_day)
            return
        score = detector.score(window, history)
        effective = confidence.effective(now_day, config.decay_per_day)
        if score > config.screen_threshold:
            # The windowed score dilutes as post-change data bleeds into
            # the history, so it only screens; the localised split score
            # (undiluted, pure prefix vs pure suffix) makes the call.
            anchor, split_score = self._split_change_day(state, now_day)
            if detector.fires(split_score):
                self._reestimate(
                    user_id,
                    state,
                    now_day,
                    anchor,
                    split_score,
                    effective,
                    "change-point",
                )
                return
        if effective >= config.confidence_threshold:
            confidence.reset(now_day)
            return
        # Confidence has decayed below threshold without a change-point.
        # Re-verify from the window first (ADR-003): a window placing
        # within one zone of the full record (placement itself has ~1 h
        # of chronotype noise) restores confidence without touching the
        # record; only a clearly disagreeing window migrates.
        window_index, window_flat = self._place_from_counts(window, state)
        record_index, record_flat = self._place_single(state)
        agrees = window_flat == record_flat and (
            (window_index is None and record_index is None)
            or (
                window_index is not None
                and record_index is not None
                and abs(window_index - record_index) <= 1
            )
        )
        if agrees:
            confidence.reset(now_day)
            return
        anchor, split_score = self._split_change_day(state, now_day)
        self._reestimate(
            user_id,
            state,
            now_day,
            anchor,
            split_score if split_score >= 0.0 else score,
            effective,
            "confidence",
        )

    def _place_from_counts(
        self, counts: FloatArray, state: _UserState
    ) -> "tuple[int | None, bool]":
        """(zone index, flat flag) a record with *counts* would be assigned."""
        if state.n_posts < self.min_posts:
            return None, False
        total = counts.sum()
        if total <= 0.0:
            return None, False
        matrix = ProfileMatrix(["_"], (counts / total)[None, :])
        if bool(flat_profile_mask(matrix, self.references, metric=self.metric)[0]):
            return None, True
        nearest = int(
            np.argmin(
                distance_matrix(matrix, self.references, metric=self.metric), axis=1
            )[0]
        )
        return nearest, False

    def _place_single(self, state: _UserState) -> "tuple[int | None, bool]":
        """(zone index, flat flag) the next refresh will assign this record."""
        return self._place_from_counts(state.counts, state)

    def zone_index_of(self, user_id: str) -> "int | None":
        """Index into ``ZONE_OFFSETS`` of *user_id*'s current placement.

        ``None`` for unknown, under-evidenced, or flat-filtered users.
        Clean users are read from the incremental cache; dirty ones are
        placed fresh, so the answer never depends on snapshot cadence.
        """
        if user_id not in self._dirty:
            return self._zone_of.get(user_id)
        state = self._users.get(user_id)
        if state is None:
            return None
        index, flat = self._place_single(state)
        return None if flat else index

    def _split_change_day(
        self, state: _UserState, now_day: int
    ) -> "tuple[int, float]":
        """(most likely change day, localised split score) for the record.

        The rolling window usually *straddles* the actual change (checks
        run every ``check_interval_days``), so re-estimating from the
        whole window would mix pre- and post-change behaviour and place
        the user somewhere in between.  Scanning every split of the
        record for the one maximising the EMD between its two sides pins
        the change day; only the suffix from there on feeds the
        re-estimate, and for changes older than the window that suffix is
        *longer* than the window -- casual posters still accumulate
        enough post-change cells to re-place reliably.  The returned
        score is ``-1.0`` when no split leaves both sides enough cells.
        """
        config = self.drift
        detector = self._detector
        if config is None or detector is None:
            return now_day, -1.0
        bits = state.day_bits()
        if not bits:
            return now_day, -1.0
        active_days = sorted(bits)
        total = state.counts.astype(float)
        # Tiny split sides have huge EMD sampling noise, and the argmax
        # over a record's worth of candidate splits would happily pick a
        # six-cell tail and call it a migration -- the size discount in
        # :meth:`ChangePointDetector.split_score` flattens that noise
        # floor, so the hard floor here only prunes hopeless splits (the
        # commit floor on the post-change suffix is separate, in
        # :meth:`_reestimate`).
        min_side = float(max(8, config.min_reestimate_cells // 2))
        prefix = np.zeros(HOURS, dtype=float)
        best_day = active_days[0]
        best_score = -1.0
        for day in active_days[:-1]:
            prefix = prefix + _UserState._counts_of_bits((bits[day],))
            suffix = total - prefix
            if prefix.sum() < min_side or suffix.sum() < min_side:
                continue
            score = detector.split_score(prefix, suffix)
            if score > best_score:
                best_score = score
                best_day = day + 1
        return best_day, best_score

    def _reestimate(
        self,
        user_id: str,
        state: _UserState,
        now_day: int,
        anchor: int,
        score: float,
        effective: float,
        reason: str,
    ) -> None:
        """Truncate the record at the estimated change day and re-place.

        When the post-change suffix is still too thin to place reliably,
        the re-estimate is deferred -- the signal will fire again at the
        next check, by which time more post-change evidence has arrived.
        Otherwise the user joins the dirty set, so the placement histogram
        absorbs the change through the ordinary delta machinery at the
        next snapshot.  A :class:`ZoneMigrationEvent` is emitted only when
        the placement outcome actually changed; old and new placements are
        both computed fresh (pre- and post-truncation), so event emission
        does not depend on how often the caller snapshots.
        """
        config = self.drift
        if config is None:
            return
        recent = state.window_counts(anchor, now_day)
        if float(recent.sum()) < config.min_reestimate_cells:
            obs_metrics.counter(
                "repro_stream_drift_deferrals_total",
                "re-estimates deferred for thin post-change evidence",
            ).inc()
            return
        with trace_span("drift_reestimate", user_id=user_id, reason=reason):
            # The pre-change placement comes from the record *prefix*: by
            # detection time the full record already mixes in post-change
            # cells, which would drag the reported old zone toward the
            # new one.
            old_index, was_flat = self._place_from_counts(
                state.counts - recent, state
            )
            state.truncate_to(anchor)
            new_index, new_flat = self._place_single(state)
            state.ensure_confidence(now_day).reset(now_day)
            self._dirty.add(user_id)
            self._matrix_cache = None
        obs_metrics.counter(
            "repro_stream_drift_reestimates_total",
            "record truncations after a drift signal",
        ).inc()
        event = ZoneMigrationEvent(
            user_id=user_id,
            old_offset=None if old_index is None else ZONE_OFFSETS[old_index],
            new_offset=None if new_index is None else ZONE_OFFSETS[new_index],
            day=now_day,
            emd_score=score,
            confidence=effective,
            window_cells=int(recent.sum()),
            reason=reason,
            record_version=state.record_version,
            wall_time=self._wall_now(),
        )
        # The zone is re-checked at later lifecycle checks until the
        # truncated record settles, whether or not an event fires now.
        self._pending_refine[user_id] = event
        if new_index == old_index and new_flat == was_flat:
            return
        self._emit_migration(event)

    def _refine(
        self,
        user_id: str,
        state: _UserState,
        confidence: UserConfidence,
        now_day: int,
    ) -> None:
        """Correct a recent migration's zone as its thin record fills in.

        A migration is announced from whatever post-change evidence has
        accrued by detection time (roughly ``min_reestimate_cells``), and
        a placement from that little data carries an extra zone or two of
        sampling noise on top of the user's chronotype bias.  Until the
        truncated record reaches ``_REFINE_SETTLED_FACTOR`` times the
        commit floor, each lifecycle check re-places it and emits a
        ``reason="refine"`` correction event whenever the zone moved --
        so the *last* event per user converges to what a from-scratch
        re-fit of the post-change data would say.  Tracking is in-memory
        only: a checkpoint round-trip drops pending refinements (the
        truncated record itself persists, so the placement stays right).
        """
        config = self.drift
        prior = self._pending_refine[user_id]
        if config is None:
            del self._pending_refine[user_id]
            return
        cells = float(state.counts.sum())
        settled = cells >= _REFINE_SETTLED_FACTOR * config.min_reestimate_cells
        if settled:
            del self._pending_refine[user_id]
        new_index, new_flat = self._place_single(state)
        if new_flat:
            return
        confidence.reset(now_day)
        new_offset = None if new_index is None else int(ZONE_OFFSETS[new_index])
        if new_offset is None or new_offset == prior.new_offset:
            return
        event = ZoneMigrationEvent(
            user_id=user_id,
            old_offset=prior.new_offset,
            new_offset=new_offset,
            day=now_day,
            emd_score=prior.emd_score,
            confidence=confidence.value,
            window_cells=int(cells),
            reason="refine",
            record_version=state.record_version,
            wall_time=self._wall_now(),
        )
        if not settled:
            self._pending_refine[user_id] = event
        self._emit_migration(event)

    def _emit_migration(self, event: ZoneMigrationEvent) -> None:
        """Log *event* and fan it out to subscribers."""
        self.migrations.append(event)
        obs_metrics.counter(
            "repro_stream_drift_migrations_total",
            "zone-migration events emitted",
            reason=event.reason,
        ).inc()
        for subscriber in self._migration_subscribers:
            subscriber(event)

    def _confidence_summary(self) -> ConfidenceSummary:
        """Crowd-level effective-confidence digest (drift enabled only)."""
        config = self.drift
        if config is None:
            raise ValueError("confidence summary requires the drift layer")
        now_day = self._stream_day if self._stream_day is not None else 0
        values = [
            state.confidence.effective(now_day, config.decay_per_day)
            for state in self._users.values()
            if state.n_posts >= self.min_posts and state.confidence is not None
        ]
        if not values:
            return ConfidenceSummary(
                n_tracked=0,
                mean=float("nan"),
                minimum=float("nan"),
                n_stale=0,
                threshold=config.confidence_threshold,
            )
        array = np.asarray(values, dtype=float)
        n_stale = int((array < config.confidence_threshold).sum())
        obs_metrics.gauge(
            "repro_stream_drift_stale_users",
            "placed users below the confidence threshold",
        ).set(n_stale)
        return ConfidenceSummary(
            n_tracked=len(values),
            mean=float(array.mean()),
            minimum=float(array.min()),
            n_stale=n_stale,
            threshold=config.confidence_threshold,
        )

    # -- incremental placement --------------------------------------------

    def _refresh(self) -> None:
        """Re-place exactly the dirty users and patch the histogram.

        Each dirty user's stale contribution is first subtracted, then --
        if they pass the activity threshold -- flatness and the nearest
        zone are recomputed in one distance call over ``[uniform] +
        references`` for all dirty users at once.  Distances are per-row
        independent, so the result is bit-identical to a cold full
        re-place no matter how the work was batched across snapshots.
        """
        if not self._dirty:
            return
        pending: list[str] = []
        for user_id in self._dirty:
            old_zone = self._zone_of.pop(user_id, None)
            if old_zone is not None:
                self._hist[old_zone] -= 1
            self._flat_ids.discard(user_id)
            if self._users[user_id].n_posts >= self.min_posts:
                pending.append(user_id)
        self._dirty.clear()
        self._matrix_cache = None
        if not pending:
            return
        rows = np.vstack([self._users[user_id].mass() for user_id in pending])
        matrix = ProfileMatrix(pending, rows)
        # Same two calls as the cold pipeline (flat_profile_mask, then the
        # nearest-zone argmin of place_profile_matrix); distances are
        # per-row independent, so batching users differently across
        # snapshots cannot change any individual verdict.
        flat = flat_profile_mask(matrix, self.references, metric=self.metric)
        nearest = np.argmin(
            distance_matrix(matrix, self.references, metric=self.metric), axis=1
        )
        for user_id, is_flat, zone in zip(pending, flat, nearest):
            if is_flat:
                self._flat_ids.add(user_id)
            else:
                self._zone_of[user_id] = int(zone)
                self._hist[int(zone)] += 1

    def _active_matrix(self) -> ProfileMatrix:
        """One matrix of all threshold-passing, non-flat users.

        Cached between snapshots and invalidated through the same dirty
        set as the placement histogram, so repeated snapshots of a quiet
        crowd rebuild nothing.  Row order follows first-observation order
        (``self._users`` insertion order), matching the cold pipeline.
        """
        self._refresh()
        if self._matrix_cache is None:
            ids = [user_id for user_id in self._users if user_id in self._zone_of]
            if not ids:
                self._matrix_cache = ProfileMatrix.empty()
            else:
                self._matrix_cache = ProfileMatrix(
                    ids, np.vstack([self._users[u].mass() for u in ids])
                )
        return self._matrix_cache

    def active_profiles(self) -> dict[str, Profile]:
        """Profiles of users past the activity threshold, bots filtered."""
        return self._active_matrix().profiles()

    def _snapshot_from_hist(self) -> StreamSnapshot:
        n_active = int(self._hist.sum())
        placement = None
        mixture = None
        if n_active > 0 and n_active >= self.min_users_for_verdict:
            fractions = self._hist / n_active
            placement = PlacementDistribution(
                tuple(fractions.tolist()), n_users=n_active
            )
            mixture = select_mixture(
                placement,
                max_components=self.max_components,
                sigma_init=self.sigma_init,
            )
        confidence_summary: ConfidenceSummary | None = None
        if self.drift is not None:
            confidence_summary = self._confidence_summary()
            if self.timeline is not None and self._stream_day is not None:
                self.timeline.record(self._stream_day, self._hist)
        return StreamSnapshot(
            n_events_seen=self._n_events,
            n_users_seen=len(self._users),
            n_users_active=n_active,
            mixture=mixture,
            placement=placement,
            confidence=confidence_summary,
        )

    def snapshot(self) -> StreamSnapshot:
        """The current verdict (or None while under-evidenced).

        Costs O(dirty users + histogram bins): only users invalidated
        since the previous snapshot are re-placed, and the placement
        histogram is patched by count deltas rather than recounted.  With
        drift enabled the snapshot additionally carries the crowd
        confidence summary and records one composition-timeline sample
        per stream day (both O(users), amortised by the snapshot cadence).
        """
        n_dirty = len(self._dirty)
        with obs_metrics.histogram(
            "repro_streaming_snapshot_seconds",
            "wall time of one incremental snapshot",
        ).time():
            with trace_span("streaming_snapshot", n_dirty=n_dirty):
                self._refresh()
                snapshot = self._snapshot_from_hist()
        obs_metrics.counter(
            "repro_streaming_snapshots_total", "incremental snapshots taken"
        ).inc()
        obs_metrics.gauge(
            "repro_streaming_dirty_users",
            "users re-placed by the last incremental snapshot",
        ).set(n_dirty)
        self._snapshot_events = self._n_events
        return snapshot

    def snapshot_reference(self) -> StreamSnapshot:
        """Always-cold oracle: rebuild and re-place every user from scratch.

        This is the pre-incremental pipeline kept verbatim; the property
        tests assert ``snapshot()`` equals it after any interleaving of
        observes, snapshots, drift re-estimations and checkpoint
        round-trips.  It is an O(all users) oracle for tests and benches,
        not a production path -- lint rule DC009 flags calls from library
        code.
        """
        with obs_metrics.histogram(
            "repro_streaming_snapshot_cold_seconds",
            "wall time of one cold (full re-place) snapshot",
        ).time():
            return self._snapshot_reference_impl()

    def _snapshot_reference_impl(self) -> StreamSnapshot:
        ids: list[str] = []
        rows: list[FloatArray] = []
        for user_id, state in self._users.items():
            if state.n_posts < self.min_posts:
                continue
            ids.append(user_id)
            rows.append(state.mass())
        if ids:
            full = ProfileMatrix(ids, np.vstack(rows))
            matrix = full.select(
                ~flat_profile_mask(full, self.references, metric=self.metric)
            )
        else:
            matrix = ProfileMatrix.empty()
        if len(matrix) == 0 or len(matrix) < self.min_users_for_verdict:
            return StreamSnapshot(
                n_events_seen=self._n_events,
                n_users_seen=len(self._users),
                n_users_active=len(matrix),
                mixture=None,
                placement=None,
            )
        _, placement = place_profile_matrix(
            matrix, self.references, metric=self.metric
        )
        mixture = select_mixture(
            placement,
            max_components=self.max_components,
            sigma_init=self.sigma_init,
        )
        return StreamSnapshot(
            n_events_seen=self._n_events,
            n_users_seen=len(self._users),
            n_users_active=len(matrix),
            mixture=mixture,
            placement=placement,
        )

    # -- checkpoint / resume ----------------------------------------------

    def _config_dict(self) -> dict[str, Any]:
        return {
            "metric": self.metric,
            "min_posts": self.min_posts,
            "sigma_init": self.sigma_init,
            "max_components": self.max_components,
            "min_users_for_verdict": self.min_users_for_verdict,
        }

    def state_dict(self) -> dict[str, Any]:
        """The full resumable state as plain JSON-serialisable python.

        Per-user counts are not stored: they are a pure function of the
        active-cell sets and the record anchor, and are rebuilt on load,
        which keeps the checkpoint minimal and impossible to
        desynchronise.  The cached placements are likewise omitted -- a
        restored instance re-places everyone on its first snapshot.
        Version 2 adds the versioned-record fields (record version,
        anchor, confidence value and anchor day), the drift configuration
        and the composition timeline.
        """
        users: dict[str, Any] = {}
        for user_id, state in self._users.items():
            confidence = state.confidence
            users[user_id] = {
                # Encoded cells sort like (day, hour) pairs, so the
                # decoded list is already in the documented order.
                "cells": [
                    [cell // HOURS, cell % HOURS]
                    for cell in state.sorted_cells()
                ],
                "n_posts": state.n_posts,
                "record_version": state.record_version,
                "anchor_day": state.anchor_day,
                "confidence": 1.0 if confidence is None else confidence.value,
                "confidence_day": (
                    self._default_confidence_day(state)
                    if confidence is None
                    else confidence.as_of_day
                ),
            }
        return {
            "config": self._config_dict(),
            "generic_profile": [float(x) for x in self.references.generic.mass],
            "n_events": self._n_events,
            "stream_day": self._stream_day,
            "drift": None if self.drift is None else self.drift.as_dict(),
            "timeline": None if self.timeline is None else self.timeline.as_state(),
            "users": users,
        }

    @staticmethod
    def _default_confidence_day(state: _UserState) -> int:
        return state.max_day if state.max_day != _NO_DAY else 0

    def binary_state(self) -> "tuple[dict[str, Any], dict[str, AnyArray]]":
        """The resumable state as (JSON metadata, numpy columns).

        The cell sets of all users are flattened into one encoded
        ``day * 24 + hour`` int64 column plus a per-user offset table --
        the same columnar idea as the trace store -- so writing and
        reading scale with ``numpy`` throughput, not Python object count.
        Version 2 adds one column per versioned-record field and two
        timeline columns; the anchor column uses a far-out-of-range
        sentinel for "no anchor".
        """
        user_ids = list(self._users)
        n = len(user_ids)
        cell_counts = np.fromiter(
            (self._users[u].n_cells() for u in user_ids),
            dtype=np.int64,
            count=n,
        )
        offsets = np.concatenate([[0], np.cumsum(cell_counts)]).astype(np.int64)
        cells = np.empty(int(offsets[-1]), dtype=np.int64)
        for i, user_id in enumerate(user_ids):
            # Sorted per user so checkpoint bytes are deterministic.
            cells[offsets[i] : offsets[i + 1]] = self._users[user_id].sorted_cells()
        meta = {
            "config": self._config_dict(),
            "n_events": self._n_events,
            "stream_day": self._stream_day,
            "drift": None if self.drift is None else self.drift.as_dict(),
        }
        timeline = self.timeline if self.timeline is not None else CompositionTimeline()
        timeline_days, timeline_hists = timeline.arrays()
        arrays = {
            "user_ids": np.asarray(user_ids, dtype=np.str_),
            "n_posts": np.fromiter(
                (self._users[u].n_posts for u in user_ids),
                dtype=np.int64,
                count=n,
            ),
            "cell_offsets": offsets,
            "cells": cells,
            "generic_profile": np.asarray(
                self.references.generic.mass, dtype=np.float64
            ),
            "record_version": np.fromiter(
                (self._users[u].record_version for u in user_ids),
                dtype=np.int64,
                count=n,
            ),
            "anchor_day": np.fromiter(
                (
                    _NO_DAY
                    if self._users[u].anchor_day is None
                    else self._users[u].anchor_day
                    for u in user_ids
                ),
                dtype=np.int64,
                count=n,
            ),
            "confidence": np.fromiter(
                (
                    1.0
                    if self._users[u].confidence is None
                    else self._users[u].confidence.value
                    for u in user_ids
                ),
                dtype=np.float64,
                count=n,
            ),
            "confidence_day": np.fromiter(
                (
                    self._default_confidence_day(self._users[u])
                    if self._users[u].confidence is None
                    else self._users[u].confidence.as_of_day
                    for u in user_ids
                ),
                dtype=np.int64,
                count=n,
            ),
            "timeline_days": timeline_days,
            "timeline_hists": timeline_hists,
        }
        return meta, arrays

    def save_checkpoint(
        self, path: "str | Path", *, format: str | None = None
    ) -> None:
        """Atomically persist the state; *format* is ``"json"``, ``"binary"``
        or ``None`` to infer from the path suffix (``.npz`` -> binary).

        JSON stays the default for non-``.npz`` paths, so checkpoints
        written by earlier releases and by unchanged callers keep their
        format; the binary payload is the fast path for big crowds.  Both
        formats are written at :data:`STREAM_CHECKPOINT_VERSION` (2): an
        old reader refuses them loudly instead of silently dropping the
        drift state.
        """
        if format is None:
            format = "binary" if str(path).endswith(".npz") else "json"
        if format == "json":
            write_checkpoint(
                path,
                STREAM_CHECKPOINT_KIND,
                STREAM_CHECKPOINT_VERSION,
                self.state_dict(),
            )
        elif format == "binary":
            meta, arrays = self.binary_state()
            write_binary_checkpoint(
                path, STREAM_CHECKPOINT_KIND, STREAM_CHECKPOINT_VERSION, meta, arrays
            )
        else:
            raise CheckpointError(
                f"unknown checkpoint format {format!r}; options: json, binary"
            )
        self._checkpoint_events = self._n_events
        self._checkpoint_wall = self._wall_now()

    @classmethod
    def _from_config(
        cls,
        config: "dict[str, Any]",
        generic_mass: "Sequence[float] | FloatArray",
        references: ReferenceProfiles | None,
        *,
        drift: DriftConfig | None = None,
    ) -> "StreamingGeolocator":
        if references is None:
            references = ReferenceProfiles(
                Profile(np.asarray(generic_mass, dtype=float))
            )
        return cls(
            references,
            metric=str(config["metric"]),
            min_posts=int(config["min_posts"]),
            sigma_init=float(config["sigma_init"]),
            max_components=int(config["max_components"]),
            min_users_for_verdict=int(config["min_users_for_verdict"]),
            drift=drift,
        )

    @classmethod
    def _negotiate_drift(
        cls,
        stored: "dict[str, Any] | None",
        override: DriftConfig | None,
        version: int,
    ) -> DriftConfig | None:
        """The drift config a restored instance should run with.

        An explicit *override* wins; otherwise the checkpointed config is
        restored (version 2), and version-1 checkpoints -- written before
        the drift layer existed -- come back with drift disabled.
        """
        if override is not None:
            return override
        if version >= 2 and stored is not None:
            return DriftConfig.from_dict(stored)
        return None

    @classmethod
    def from_state_dict(
        cls,
        state: dict[str, Any],
        *,
        references: ReferenceProfiles | None = None,
        version: int = STREAM_CHECKPOINT_VERSION,
        drift: DriftConfig | None = None,
    ) -> "StreamingGeolocator":
        """Inverse of :meth:`state_dict`.

        The reference profiles are rebuilt from the checkpointed generic
        profile unless an explicit *references* object is supplied.
        *version* selects the schema (1 = pre-drift: users restore with
        full-confidence defaults); *drift* overrides the checkpointed
        drift configuration -- pass one to enable the drift layer on a
        version-1 checkpoint.
        """
        try:
            drift_config = cls._negotiate_drift(
                state.get("drift") if version >= 2 else None, drift, version
            )
            geolocator = cls._from_config(
                state["config"],
                state["generic_profile"],
                references,
                drift=drift_config,
            )
            geolocator._n_events = int(state["n_events"])
            if version >= 2:
                stream_day = state.get("stream_day")
                geolocator._stream_day = (
                    None if stream_day is None else int(stream_day)
                )
                timeline_state = state.get("timeline")
                if geolocator.timeline is not None and timeline_state is not None:
                    geolocator.timeline = CompositionTimeline.from_state(
                        timeline_state
                    )
            for user_id, user_state in state["users"].items():
                restored = _UserState()
                restored.n_posts = int(user_state["n_posts"])
                if version >= 2:
                    anchor = user_state.get("anchor_day")
                    restored.anchor_day = None if anchor is None else int(anchor)
                    restored.record_version = int(
                        user_state.get("record_version", 1)
                    )
                for day, hour in user_state["cells"]:
                    cell = int(day) * HOURS + int(hour)
                    if cell not in restored.cells:
                        restored.cells.add(cell)
                        if int(day) > restored.max_day:
                            restored.max_day = int(day)
                        if (
                            restored.anchor_day is None
                            or int(day) >= restored.anchor_day
                        ):
                            restored.counts[int(hour)] += 1.0
                if drift_config is not None:
                    if version >= 2:
                        restored.confidence = UserConfidence(
                            float(user_state.get("confidence", 1.0)),
                            int(
                                user_state.get(
                                    "confidence_day",
                                    cls._default_confidence_day(restored),
                                )
                            ),
                        )
                    else:
                        restored.confidence = UserConfidence(
                            1.0, cls._default_confidence_day(restored)
                        )
                geolocator._users[user_id] = restored
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed streaming-geolocator state: {exc!r}"
            ) from exc
        geolocator._dirty.update(geolocator._users)
        geolocator._seed_stream_day()
        return geolocator

    def _seed_stream_day(self) -> None:
        """Derive the stream day from restored records when absent.

        Version-1 checkpoints never stored it; confidence decay needs a
        "now" to measure from, so the newest observed day stands in.
        """
        if self.drift is None or self._stream_day is not None:
            return
        days = [
            state.max_day
            for state in self._users.values()
            if state.max_day != _NO_DAY
        ]
        self._stream_day = max(days) if days else None

    @classmethod
    def from_binary_state(
        cls,
        meta: dict[str, Any],
        arrays: "dict[str, AnyArray]",
        *,
        references: ReferenceProfiles | None = None,
        version: int = STREAM_CHECKPOINT_VERSION,
        drift: DriftConfig | None = None,
    ) -> "StreamingGeolocator":
        """Inverse of :meth:`binary_state`; per-user counts are rebuilt
        with one vectorised bincount over the whole cell column (masked by
        each user's record anchor)."""
        try:
            drift_config = cls._negotiate_drift(
                meta.get("drift") if version >= 2 else None, drift, version
            )
            geolocator = cls._from_config(
                meta["config"],
                arrays["generic_profile"],
                references,
                drift=drift_config,
            )
            geolocator._n_events = int(meta["n_events"])
            user_ids = arrays["user_ids"]
            n_posts = np.asarray(arrays["n_posts"], dtype=np.int64)
            offsets = np.asarray(arrays["cell_offsets"], dtype=np.int64)
            cells = np.asarray(arrays["cells"], dtype=np.int64)
            n_users = int(user_ids.size)
            if offsets.size != n_users + 1 or n_posts.size != n_users:
                raise CheckpointError(
                    "binary checkpoint columns disagree on the user count"
                )
            if int(offsets[-1]) != cells.size or int(offsets[0]) != 0:
                raise CheckpointError(
                    "binary checkpoint offset table does not cover the cells"
                )
            if version >= 2:
                stream_day = meta.get("stream_day")
                geolocator._stream_day = (
                    None if stream_day is None else int(stream_day)
                )
                anchor_col = np.asarray(arrays["anchor_day"], dtype=np.int64)
                version_col = np.asarray(arrays["record_version"], dtype=np.int64)
                confidence_col = np.asarray(arrays["confidence"], dtype=np.float64)
                confidence_day_col = np.asarray(
                    arrays["confidence_day"], dtype=np.int64
                )
                for name, column in (
                    ("anchor_day", anchor_col),
                    ("record_version", version_col),
                    ("confidence", confidence_col),
                    ("confidence_day", confidence_day_col),
                ):
                    if column.size != n_users:
                        raise CheckpointError(
                            f"binary checkpoint column {name!r} disagrees "
                            "on the user count"
                        )
                if geolocator.timeline is not None:
                    geolocator.timeline = CompositionTimeline.from_arrays(
                        np.asarray(arrays["timeline_days"], dtype=np.int64),
                        np.asarray(arrays["timeline_hists"], dtype=np.int64),
                    )
            else:
                anchor_col = np.full(n_users, _NO_DAY, dtype=np.int64)
                version_col = np.ones(n_users, dtype=np.int64)
                confidence_col = np.ones(n_users, dtype=np.float64)
                confidence_day_col = np.full(n_users, _NO_DAY, dtype=np.int64)
            if cells.size:
                # Each user's segment must be strictly increasing (the
                # writer sorts and de-duplicates); one vectorised pass
                # checks every segment at once.
                deltas = np.diff(cells)
                starts = offsets[1:-1]
                crossings = np.zeros(max(cells.size - 1, 0), dtype=bool)
                inner = starts[(starts >= 1) & (starts <= cells.size - 1)]
                crossings[inner - 1] = True
                if not np.all((deltas > 0) | crossings):
                    raise CheckpointError(
                        "binary checkpoint has unsorted or duplicate cells"
                    )
            counts = np.zeros((n_users, HOURS), dtype=float)
            max_days = np.full(n_users, _NO_DAY, dtype=np.int64)
            if cells.size:
                owners = np.repeat(
                    np.arange(n_users, dtype=np.int64), np.diff(offsets)
                )
                days = cells // HOURS
                hours = np.mod(cells, HOURS)
                # Cells before a truncated record's anchor stay out of the
                # counts (they exist only for deduplication).
                in_record = days >= anchor_col[owners]
                keyed = (owners * HOURS + hours)[in_record]
                counts = (
                    np.bincount(keyed, minlength=n_users * HOURS)
                    .reshape(n_users, HOURS)
                    .astype(float)
                )
                nonempty = np.flatnonzero(np.diff(offsets) > 0)
                max_days[nonempty] = days[offsets[nonempty + 1] - 1]
            for i in range(n_users):
                restored = _UserState()
                restored.n_posts = int(n_posts[i])
                restored._cells = None
                restored._frozen = cells[offsets[i] : offsets[i + 1]]
                restored.counts = counts[i]
                restored.max_day = int(max_days[i])
                anchor = int(anchor_col[i])
                restored.anchor_day = None if anchor == _NO_DAY else anchor
                restored.record_version = int(version_col[i])
                if drift_config is not None:
                    day_anchor = int(confidence_day_col[i])
                    if day_anchor == _NO_DAY:
                        day_anchor = cls._default_confidence_day(restored)
                    restored.confidence = UserConfidence(
                        float(confidence_col[i]), day_anchor
                    )
                geolocator._users[str(user_ids[i])] = restored
        except CheckpointError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed streaming-geolocator state: {exc!r}"
            ) from exc
        geolocator._dirty.update(geolocator._users)
        geolocator._seed_stream_day()
        return geolocator

    @classmethod
    def load_checkpoint(
        cls,
        path: "str | Path",
        *,
        references: ReferenceProfiles | None = None,
        drift: DriftConfig | None = None,
    ) -> "StreamingGeolocator":
        """Rebuild a geolocator from :meth:`save_checkpoint` output.

        Both the payload format (JSON of earlier releases, or binary
        ``.npz``) and the schema version are negotiated from the file
        itself: version-1 checkpoints load with full-confidence defaults
        and drift disabled (pass *drift* to enable it), version-2
        checkpoints restore their drift configuration and composition
        timeline, and anything newer fails loudly.
        """
        if checkpoint_format(path) == "binary":
            version, meta, arrays = read_binary_checkpoint_negotiated(
                path, STREAM_CHECKPOINT_KIND, STREAM_CHECKPOINT_COMPAT
            )
            return cls.from_binary_state(
                meta, arrays, references=references, version=version, drift=drift
            )
        version, state = read_checkpoint_negotiated(
            path, STREAM_CHECKPOINT_KIND, STREAM_CHECKPOINT_COMPAT
        )
        return cls.from_state_dict(
            state, references=references, version=version, drift=drift
        )
