"""Streaming crowd geolocation: verdicts that update as posts arrive.

Sec. VII of the paper: when a forum hides timestamps, "one might need to
monitor a sufficiently large number of days, depending on the frequency
of the posts, in order to collect 30 posts per user or more necessary to
build meaningful profiles".  :class:`StreamingGeolocator` makes that
operational: feed it (author, timestamp) events as they are observed and
ask for the current verdict at any point -- the convergence experiment
(:func:`repro.analysis.streaming_experiments.run_convergence_experiment`)
then answers *how many days of monitoring a given forum needs*.

Incremental state is kept per user as the (day, hour) active-cell counts
of Eq. 1, so an update is O(1) -- and so is most of a snapshot: the
geolocator caches every user's zone assignment and flat/active status,
together with the 25-bin placement histogram, and a *dirty set* records
exactly which users changed (a post landing in a new Eq. 1 cell, or a
user crossing the activity threshold) since the last snapshot.
``snapshot()`` re-places only the dirty users and patches the histogram
by count deltas, making its cost O(dirty + bins) instead of O(all
users); the always-cold pipeline is preserved as
:meth:`StreamingGeolocator.snapshot_reference`, the oracle the
incremental path is property-tested against.

A monitoring campaign runs for months, so the geolocator's full state
(configuration, reference profiles, every user's active cells) round-trips
through :meth:`StreamingGeolocator.save_checkpoint` /
:meth:`StreamingGeolocator.load_checkpoint` -- kill the process at any
point and the reloaded instance produces the same snapshots.  Two payload
formats are supported: the JSON document of earlier releases (still
written by default, still loadable) and a binary ``.npz`` payload whose
cell sets travel as integer columns, so a million-user checkpoint
round-trips in seconds.  ``load_checkpoint`` negotiates the format from
the file itself.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.batch import ProfileMatrix
from repro.core.em import GaussianMixtureModel, select_mixture
from repro.core.emd import distance_matrix
from repro.core.events import PostEvent
from repro.core.flatness import flat_profile_mask
from repro.core.gaussian import PAPER_SIGMA
from repro.core.placement import PlacementDistribution, place_profile_matrix
from repro.core.profiles import HOURS, Profile
from repro.core.reference import ReferenceProfiles
from repro.errors import CheckpointError, EmptyTraceError
from repro.obs import metrics as obs_metrics
from repro.obs.tracing import trace_span
from repro.reliability.checkpoint import (
    checkpoint_format,
    read_binary_checkpoint,
    read_checkpoint,
    write_binary_checkpoint,
    write_checkpoint,
)

if TYPE_CHECKING:
    from repro.core.types import AnyArray, FloatArray
from repro.timebase.zones import ZONE_OFFSETS

#: Checkpoint envelope identifiers for :class:`StreamingGeolocator` state.
STREAM_CHECKPOINT_KIND = "streaming-geolocator"
STREAM_CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class StreamSnapshot:
    """The state of the verdict at one point in the monitoring campaign."""

    n_events_seen: int
    n_users_seen: int
    n_users_active: int
    mixture: GaussianMixtureModel | None
    #: The placement histogram behind the verdict (None while
    #: under-evidenced).  Maintained incrementally by count deltas.
    placement: PlacementDistribution | None = None

    def dominant_mean(self) -> float:
        if self.mixture is None:
            return float("nan")
        return self.mixture.dominant().mean

    def has_verdict(self) -> bool:
        return self.mixture is not None


class _UserState:
    """Incremental Eq. 1 accumulator for one user.

    Active cells are kept as encoded ``day * 24 + hour`` integers (cheaper
    to hash and to checkpoint than tuples).  The normalised profile row is
    cached and invalidated only when a new active cell appears, so
    snapshots reuse the row of every user whose activity pattern did not
    change since the previous snapshot.
    """

    __slots__ = ("_cells", "_frozen", "counts", "n_posts", "_mass")

    def __init__(self) -> None:
        self._cells: set[int] | None = set()
        # Checkpoint restore leaves the cells as a sorted int64 slice and
        # defers building the python set until this user is observed
        # again -- most restored users never are, so a million-user
        # checkpoint loads in seconds instead of materialising a million
        # sets up front.
        self._frozen: FloatArray | None = None
        self.counts = np.zeros(HOURS, dtype=float)
        self.n_posts = 0
        self._mass: FloatArray | None = None

    @property
    def cells(self) -> set[int]:
        if self._cells is None:
            self._cells = set(self._frozen.tolist())
        return self._cells

    def n_cells(self) -> int:
        if self._cells is None:
            return int(self._frozen.size)
        return len(self._cells)

    def sorted_cells(self) -> list[int]:
        if self._cells is None:
            return self._frozen.tolist()
        return sorted(self._cells)

    def add(self, timestamp: float) -> bool:
        """Record one post; True when it opened a new (day, hour) cell."""
        self.n_posts += 1
        day = int(timestamp // 86400.0)
        hour = int((timestamp % 86400.0) // 3600.0)
        cell = day * HOURS + hour
        if cell in self.cells:
            return False
        self._cells.add(cell)
        self.counts[hour] += 1.0
        self._mass = None
        return True

    def mass(self) -> FloatArray:
        """Cached normalised 24-vector of the accumulated cells."""
        if self._mass is None:
            if self.n_cells() == 0:
                raise EmptyTraceError("no activity accumulated")
            self._mass = self.counts / self.counts.sum()
        return self._mass

    def profile(self) -> Profile:
        if self.n_cells() == 0:
            raise EmptyTraceError("no activity accumulated")
        return Profile(self.counts)


class StreamingGeolocator:
    """Online version of the pipeline: O(1) per event, O(dirty) per snapshot.

    Invariant maintained between snapshots: for every user, either the
    user is in the dirty set, or their cached zone assignment / flat flag
    / histogram contribution equals what a cold full re-place would
    compute.  ``observe`` only dirties a user when their Eq. 1 profile can
    actually have changed (new active cell) or their activity status can
    have flipped (post count reaching ``min_posts``), so a quiet crowd
    costs nothing to snapshot.
    """

    def __init__(
        self,
        references: ReferenceProfiles | None = None,
        *,
        metric: str = "linear",
        min_posts: int = 30,
        sigma_init: float = PAPER_SIGMA,
        max_components: int = 4,
        min_users_for_verdict: int = 10,
    ) -> None:
        self.references = references or ReferenceProfiles.canonical()
        self.metric = metric
        self.min_posts = min_posts
        self.sigma_init = sigma_init
        self.max_components = max_components
        self.min_users_for_verdict = min_users_for_verdict
        self._users: dict[str, _UserState] = {}
        self._n_events = 0
        # Incremental placement state (see class docstring invariant).
        self._dirty: set[str] = set()
        self._zone_of: dict[str, int] = {}
        self._flat_ids: set[str] = set()
        self._hist = np.zeros(len(ZONE_OFFSETS), dtype=np.int64)
        self._matrix_cache: ProfileMatrix | None = None

    def observe(self, user_id: str, timestamp: float) -> None:
        """Feed one (author, UTC timestamp) observation."""
        state = self._users.get(user_id)
        if state is None:
            state = self._users[user_id] = _UserState()
        opened_cell = state.add(float(timestamp))
        if opened_cell or state.n_posts == self.min_posts:
            self._dirty.add(user_id)
        self._n_events += 1

    def observe_events(self, events: Iterable[PostEvent]) -> None:
        for event in events:
            self.observe(event.user_id, event.timestamp)

    @property
    def n_events(self) -> int:
        return self._n_events

    def n_users(self) -> int:
        return len(self._users)

    def n_dirty(self) -> int:
        """Users whose cached placement must be refreshed at next snapshot."""
        return len(self._dirty)

    def invalidate_all(self) -> None:
        """Force the next snapshot to re-place every user (cold path).

        Exists for benchmarking the incremental win and for callers that
        mutate shared state behind the geolocator's back (e.g. swapping
        reference profiles in place).
        """
        self._dirty.update(self._users)
        self._matrix_cache = None

    # -- incremental placement --------------------------------------------

    def _refresh(self) -> None:
        """Re-place exactly the dirty users and patch the histogram.

        Each dirty user's stale contribution is first subtracted, then --
        if they pass the activity threshold -- flatness and the nearest
        zone are recomputed in one distance call over ``[uniform] +
        references`` for all dirty users at once.  Distances are per-row
        independent, so the result is bit-identical to a cold full
        re-place no matter how the work was batched across snapshots.
        """
        if not self._dirty:
            return
        pending: list[str] = []
        for user_id in self._dirty:
            old_zone = self._zone_of.pop(user_id, None)
            if old_zone is not None:
                self._hist[old_zone] -= 1
            self._flat_ids.discard(user_id)
            if self._users[user_id].n_posts >= self.min_posts:
                pending.append(user_id)
        self._dirty.clear()
        self._matrix_cache = None
        if not pending:
            return
        rows = np.vstack([self._users[user_id].mass() for user_id in pending])
        matrix = ProfileMatrix(pending, rows)
        # Same two calls as the cold pipeline (flat_profile_mask, then the
        # nearest-zone argmin of place_profile_matrix); distances are
        # per-row independent, so batching users differently across
        # snapshots cannot change any individual verdict.
        flat = flat_profile_mask(matrix, self.references, metric=self.metric)
        nearest = np.argmin(
            distance_matrix(matrix, self.references, metric=self.metric), axis=1
        )
        for user_id, is_flat, zone in zip(pending, flat, nearest):
            if is_flat:
                self._flat_ids.add(user_id)
            else:
                self._zone_of[user_id] = int(zone)
                self._hist[int(zone)] += 1

    def _active_matrix(self) -> ProfileMatrix:
        """One matrix of all threshold-passing, non-flat users.

        Cached between snapshots and invalidated through the same dirty
        set as the placement histogram, so repeated snapshots of a quiet
        crowd rebuild nothing.  Row order follows first-observation order
        (``self._users`` insertion order), matching the cold pipeline.
        """
        self._refresh()
        if self._matrix_cache is None:
            ids = [user_id for user_id in self._users if user_id in self._zone_of]
            if not ids:
                self._matrix_cache = ProfileMatrix.empty()
            else:
                self._matrix_cache = ProfileMatrix(
                    ids, np.vstack([self._users[u].mass() for u in ids])
                )
        return self._matrix_cache

    def active_profiles(self) -> dict[str, Profile]:
        """Profiles of users past the activity threshold, bots filtered."""
        return self._active_matrix().profiles()

    def _snapshot_from_hist(self) -> StreamSnapshot:
        n_active = int(self._hist.sum())
        placement = None
        mixture = None
        if n_active > 0 and n_active >= self.min_users_for_verdict:
            fractions = self._hist / n_active
            placement = PlacementDistribution(
                tuple(fractions.tolist()), n_users=n_active
            )
            mixture = select_mixture(
                placement,
                max_components=self.max_components,
                sigma_init=self.sigma_init,
            )
        return StreamSnapshot(
            n_events_seen=self._n_events,
            n_users_seen=len(self._users),
            n_users_active=n_active,
            mixture=mixture,
            placement=placement,
        )

    def snapshot(self) -> StreamSnapshot:
        """The current verdict (or None while under-evidenced).

        Costs O(dirty users + histogram bins): only users invalidated
        since the previous snapshot are re-placed, and the placement
        histogram is patched by count deltas rather than recounted.
        """
        n_dirty = len(self._dirty)
        started = time.perf_counter()
        with trace_span("streaming_snapshot", n_dirty=n_dirty):
            self._refresh()
            snapshot = self._snapshot_from_hist()
        obs_metrics.counter(
            "repro_streaming_snapshots_total", "incremental snapshots taken"
        ).inc()
        obs_metrics.gauge(
            "repro_streaming_dirty_users",
            "users re-placed by the last incremental snapshot",
        ).set(n_dirty)
        obs_metrics.histogram(
            "repro_streaming_snapshot_seconds",
            "wall time of one incremental snapshot",
        ).observe(time.perf_counter() - started)
        return snapshot

    def snapshot_reference(self) -> StreamSnapshot:
        """Always-cold oracle: rebuild and re-place every user from scratch.

        This is the pre-incremental pipeline kept verbatim; the property
        tests assert ``snapshot()`` equals it after any interleaving of
        observes, snapshots and checkpoint round-trips.
        """
        started = time.perf_counter()
        try:
            return self._snapshot_reference_impl()
        finally:
            obs_metrics.histogram(
                "repro_streaming_snapshot_cold_seconds",
                "wall time of one cold (full re-place) snapshot",
            ).observe(time.perf_counter() - started)

    def _snapshot_reference_impl(self) -> StreamSnapshot:
        ids: list[str] = []
        rows: list[FloatArray] = []
        for user_id, state in self._users.items():
            if state.n_posts < self.min_posts:
                continue
            ids.append(user_id)
            rows.append(state.mass())
        if ids:
            full = ProfileMatrix(ids, np.vstack(rows))
            matrix = full.select(
                ~flat_profile_mask(full, self.references, metric=self.metric)
            )
        else:
            matrix = ProfileMatrix.empty()
        if len(matrix) == 0 or len(matrix) < self.min_users_for_verdict:
            return StreamSnapshot(
                n_events_seen=self._n_events,
                n_users_seen=len(self._users),
                n_users_active=len(matrix),
                mixture=None,
                placement=None,
            )
        _, placement = place_profile_matrix(
            matrix, self.references, metric=self.metric
        )
        mixture = select_mixture(
            placement,
            max_components=self.max_components,
            sigma_init=self.sigma_init,
        )
        return StreamSnapshot(
            n_events_seen=self._n_events,
            n_users_seen=len(self._users),
            n_users_active=len(matrix),
            mixture=mixture,
            placement=placement,
        )

    # -- checkpoint / resume ----------------------------------------------

    def _config_dict(self) -> dict[str, Any]:
        return {
            "metric": self.metric,
            "min_posts": self.min_posts,
            "sigma_init": self.sigma_init,
            "max_components": self.max_components,
            "min_users_for_verdict": self.min_users_for_verdict,
        }

    def state_dict(self) -> dict[str, Any]:
        """The full resumable state as plain JSON-serialisable python.

        Per-user counts are not stored: they are a pure function of the
        active-cell sets and are rebuilt on load, which keeps the
        checkpoint minimal and impossible to desynchronise.  The cached
        placements are likewise omitted -- a restored instance re-places
        everyone on its first snapshot.
        """
        return {
            "config": self._config_dict(),
            "generic_profile": [float(x) for x in self.references.generic.mass],
            "n_events": self._n_events,
            "users": {
                user_id: {
                    # Encoded cells sort like (day, hour) pairs, so the
                    # decoded list is already in the documented order.
                    "cells": [
                        [cell // HOURS, cell % HOURS]
                        for cell in state.sorted_cells()
                    ],
                    "n_posts": state.n_posts,
                }
                for user_id, state in self._users.items()
            },
        }

    def binary_state(self) -> "tuple[dict[str, Any], dict[str, AnyArray]]":
        """The resumable state as (JSON metadata, numpy columns).

        The cell sets of all users are flattened into one encoded
        ``day * 24 + hour`` int64 column plus a per-user offset table --
        the same columnar idea as the trace store -- so writing and
        reading scale with ``numpy`` throughput, not Python object count.
        """
        user_ids = list(self._users)
        cell_counts = np.fromiter(
            (self._users[u].n_cells() for u in user_ids),
            dtype=np.int64,
            count=len(user_ids),
        )
        offsets = np.concatenate([[0], np.cumsum(cell_counts)]).astype(np.int64)
        cells = np.empty(int(offsets[-1]), dtype=np.int64)
        for i, user_id in enumerate(user_ids):
            # Sorted per user so checkpoint bytes are deterministic.
            cells[offsets[i] : offsets[i + 1]] = self._users[user_id].sorted_cells()
        meta = {"config": self._config_dict(), "n_events": self._n_events}
        arrays = {
            "user_ids": np.asarray(user_ids, dtype=np.str_),
            "n_posts": np.fromiter(
                (self._users[u].n_posts for u in user_ids),
                dtype=np.int64,
                count=len(user_ids),
            ),
            "cell_offsets": offsets,
            "cells": cells,
            "generic_profile": np.asarray(
                self.references.generic.mass, dtype=np.float64
            ),
        }
        return meta, arrays

    def save_checkpoint(
        self, path: "str | Path", *, format: str | None = None
    ) -> None:
        """Atomically persist the state; *format* is ``"json"``, ``"binary"``
        or ``None`` to infer from the path suffix (``.npz`` -> binary).

        JSON stays the default for non-``.npz`` paths, so checkpoints
        written by earlier releases and by unchanged callers keep their
        format; the binary payload is the fast path for big crowds.
        """
        if format is None:
            format = "binary" if str(path).endswith(".npz") else "json"
        if format == "json":
            write_checkpoint(
                path,
                STREAM_CHECKPOINT_KIND,
                STREAM_CHECKPOINT_VERSION,
                self.state_dict(),
            )
        elif format == "binary":
            meta, arrays = self.binary_state()
            write_binary_checkpoint(
                path, STREAM_CHECKPOINT_KIND, STREAM_CHECKPOINT_VERSION, meta, arrays
            )
        else:
            raise CheckpointError(
                f"unknown checkpoint format {format!r}; options: json, binary"
            )

    @classmethod
    def _from_config(
        cls,
        config: "dict[str, Any]",
        generic_mass: "Sequence[float] | FloatArray",
        references: ReferenceProfiles | None,
    ) -> "StreamingGeolocator":
        if references is None:
            references = ReferenceProfiles(
                Profile(np.asarray(generic_mass, dtype=float))
            )
        return cls(
            references,
            metric=str(config["metric"]),
            min_posts=int(config["min_posts"]),
            sigma_init=float(config["sigma_init"]),
            max_components=int(config["max_components"]),
            min_users_for_verdict=int(config["min_users_for_verdict"]),
        )

    @classmethod
    def from_state_dict(
        cls, state: dict[str, Any], *, references: ReferenceProfiles | None = None
    ) -> "StreamingGeolocator":
        """Inverse of :meth:`state_dict`.

        The reference profiles are rebuilt from the checkpointed generic
        profile unless an explicit *references* object is supplied.
        """
        try:
            geolocator = cls._from_config(
                state["config"], state["generic_profile"], references
            )
            geolocator._n_events = int(state["n_events"])
            for user_id, user_state in state["users"].items():
                restored = _UserState()
                restored.n_posts = int(user_state["n_posts"])
                for day, hour in user_state["cells"]:
                    cell = int(day) * HOURS + int(hour)
                    if cell not in restored.cells:
                        restored.cells.add(cell)
                        restored.counts[int(hour)] += 1.0
                geolocator._users[user_id] = restored
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed streaming-geolocator state: {exc!r}"
            ) from exc
        geolocator._dirty.update(geolocator._users)
        return geolocator

    @classmethod
    def from_binary_state(
        cls,
        meta: dict[str, Any],
        arrays: "dict[str, AnyArray]",
        *,
        references: ReferenceProfiles | None = None,
    ) -> "StreamingGeolocator":
        """Inverse of :meth:`binary_state`; per-user counts are rebuilt
        with one vectorised bincount over the whole cell column."""
        try:
            geolocator = cls._from_config(
                meta["config"], arrays["generic_profile"], references
            )
            geolocator._n_events = int(meta["n_events"])
            user_ids = arrays["user_ids"]
            n_posts = np.asarray(arrays["n_posts"], dtype=np.int64)
            offsets = np.asarray(arrays["cell_offsets"], dtype=np.int64)
            cells = np.asarray(arrays["cells"], dtype=np.int64)
            n_users = int(user_ids.size)
            if offsets.size != n_users + 1 or n_posts.size != n_users:
                raise CheckpointError(
                    "binary checkpoint columns disagree on the user count"
                )
            if int(offsets[-1]) != cells.size or int(offsets[0]) != 0:
                raise CheckpointError(
                    "binary checkpoint offset table does not cover the cells"
                )
            if cells.size:
                # Each user's segment must be strictly increasing (the
                # writer sorts and de-duplicates); one vectorised pass
                # checks every segment at once.
                deltas = np.diff(cells)
                starts = offsets[1:-1]
                crossings = np.zeros(max(cells.size - 1, 0), dtype=bool)
                inner = starts[(starts >= 1) & (starts <= cells.size - 1)]
                crossings[inner - 1] = True
                if not np.all((deltas > 0) | crossings):
                    raise CheckpointError(
                        "binary checkpoint has unsorted or duplicate cells"
                    )
            counts = np.zeros((n_users, HOURS), dtype=float)
            if cells.size:
                owners = np.repeat(
                    np.arange(n_users, dtype=np.int64), np.diff(offsets)
                )
                hours = np.mod(cells, HOURS)
                counts = (
                    np.bincount(
                        owners * HOURS + hours, minlength=n_users * HOURS
                    )
                    .reshape(n_users, HOURS)
                    .astype(float)
                )
            for i in range(n_users):
                restored = _UserState()
                restored.n_posts = int(n_posts[i])
                restored._cells = None
                restored._frozen = cells[offsets[i] : offsets[i + 1]]
                restored.counts = counts[i]
                geolocator._users[str(user_ids[i])] = restored
        except CheckpointError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed streaming-geolocator state: {exc!r}"
            ) from exc
        geolocator._dirty.update(geolocator._users)
        return geolocator

    @classmethod
    def load_checkpoint(
        cls, path: "str | Path", *, references: ReferenceProfiles | None = None
    ) -> "StreamingGeolocator":
        """Rebuild a geolocator from :meth:`save_checkpoint` output.

        The payload format (JSON of earlier releases, or binary ``.npz``)
        is negotiated from the file's magic bytes, so old checkpoints keep
        loading without callers changing anything.
        """
        if checkpoint_format(path) == "binary":
            meta, arrays = read_binary_checkpoint(
                path, STREAM_CHECKPOINT_KIND, STREAM_CHECKPOINT_VERSION
            )
            return cls.from_binary_state(meta, arrays, references=references)
        state = read_checkpoint(
            path, STREAM_CHECKPOINT_KIND, STREAM_CHECKPOINT_VERSION
        )
        return cls.from_state_dict(state, references=references)
