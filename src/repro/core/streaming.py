"""Streaming crowd geolocation: verdicts that update as posts arrive.

Sec. VII of the paper: when a forum hides timestamps, "one might need to
monitor a sufficiently large number of days, depending on the frequency
of the posts, in order to collect 30 posts per user or more necessary to
build meaningful profiles".  :class:`StreamingGeolocator` makes that
operational: feed it (author, timestamp) events as they are observed and
ask for the current verdict at any point -- the convergence experiment
(:func:`repro.analysis.streaming_experiments.run_convergence_experiment`)
then answers *how many days of monitoring a given forum needs*.

Incremental state is kept per user as the (day, hour) active-cell counts
of Eq. 1, so an update is O(1) and a snapshot costs one placement over
the currently-active users.

A monitoring campaign runs for months, so the geolocator's full state
(configuration, reference profiles, every user's active cells) round-trips
through :meth:`StreamingGeolocator.save_checkpoint` /
:meth:`StreamingGeolocator.load_checkpoint` -- kill the process at any
point and the reloaded instance produces the same snapshots.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.core.batch import ProfileMatrix
from repro.core.em import GaussianMixtureModel, select_mixture
from repro.core.events import PostEvent
from repro.core.flatness import flat_profile_mask
from repro.core.gaussian import PAPER_SIGMA
from repro.core.placement import place_profile_matrix
from repro.core.profiles import HOURS, Profile
from repro.core.reference import ReferenceProfiles
from repro.errors import CheckpointError, EmptyTraceError
from repro.reliability.checkpoint import read_checkpoint, write_checkpoint

#: Checkpoint envelope identifiers for :class:`StreamingGeolocator` state.
STREAM_CHECKPOINT_KIND = "streaming-geolocator"
STREAM_CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class StreamSnapshot:
    """The state of the verdict at one point in the monitoring campaign."""

    n_events_seen: int
    n_users_seen: int
    n_users_active: int
    mixture: GaussianMixtureModel | None

    def dominant_mean(self) -> float:
        if self.mixture is None:
            return float("nan")
        return self.mixture.dominant().mean

    def has_verdict(self) -> bool:
        return self.mixture is not None


class _UserState:
    """Incremental Eq. 1 accumulator for one user.

    The normalised profile row is cached and invalidated only when a new
    active cell appears, so snapshots reuse the row of every user whose
    activity pattern did not change since the previous snapshot.
    """

    __slots__ = ("cells", "counts", "n_posts", "_mass")

    def __init__(self) -> None:
        self.cells: set[tuple[int, int]] = set()
        self.counts = np.zeros(HOURS, dtype=float)
        self.n_posts = 0
        self._mass: np.ndarray | None = None

    def add(self, timestamp: float) -> None:
        self.n_posts += 1
        day = int(timestamp // 86400.0)
        hour = int((timestamp % 86400.0) // 3600.0)
        if (day, hour) not in self.cells:
            self.cells.add((day, hour))
            self.counts[hour] += 1.0
            self._mass = None

    def mass(self) -> np.ndarray:
        """Cached normalised 24-vector of the accumulated cells."""
        if self._mass is None:
            if not self.cells:
                raise EmptyTraceError("no activity accumulated")
            self._mass = self.counts / self.counts.sum()
        return self._mass

    def profile(self) -> Profile:
        if not self.cells:
            raise EmptyTraceError("no activity accumulated")
        return Profile(self.counts)


class StreamingGeolocator:
    """Online version of the pipeline: O(1) per event, snapshot on demand."""

    def __init__(
        self,
        references: ReferenceProfiles | None = None,
        *,
        metric: str = "linear",
        min_posts: int = 30,
        sigma_init: float = PAPER_SIGMA,
        max_components: int = 4,
        min_users_for_verdict: int = 10,
    ) -> None:
        self.references = references or ReferenceProfiles.canonical()
        self.metric = metric
        self.min_posts = min_posts
        self.sigma_init = sigma_init
        self.max_components = max_components
        self.min_users_for_verdict = min_users_for_verdict
        self._users: dict[str, _UserState] = {}
        self._n_events = 0

    def observe(self, user_id: str, timestamp: float) -> None:
        """Feed one (author, UTC timestamp) observation."""
        state = self._users.get(user_id)
        if state is None:
            state = self._users[user_id] = _UserState()
        state.add(float(timestamp))
        self._n_events += 1

    def observe_events(self, events: Iterable[PostEvent]) -> None:
        for event in events:
            self.observe(event.user_id, event.timestamp)

    @property
    def n_events(self) -> int:
        return self._n_events

    def n_users(self) -> int:
        return len(self._users)

    def _active_matrix(self) -> ProfileMatrix:
        """One matrix of all threshold-passing, non-flat users.

        Rows come straight from the per-user cached masses (no profile is
        rebuilt unless the user posted into a new cell since the last
        snapshot); the flat-profile filter is one vectorised distance call.
        """
        ids = []
        rows = []
        for user_id, state in self._users.items():
            if state.n_posts < self.min_posts:
                continue
            ids.append(user_id)
            rows.append(state.mass())
        if not ids:
            return ProfileMatrix.empty()
        matrix = ProfileMatrix(ids, np.vstack(rows))
        flat = flat_profile_mask(matrix, self.references, metric=self.metric)
        return matrix.select(~flat)

    def active_profiles(self) -> dict[str, Profile]:
        """Profiles of users past the activity threshold, bots filtered."""
        return self._active_matrix().profiles()

    def snapshot(self) -> StreamSnapshot:
        """The current verdict (or None while under-evidenced)."""
        matrix = self._active_matrix()
        if len(matrix) < self.min_users_for_verdict:
            return StreamSnapshot(
                n_events_seen=self._n_events,
                n_users_seen=len(self._users),
                n_users_active=len(matrix),
                mixture=None,
            )
        _, placement = place_profile_matrix(
            matrix, self.references, metric=self.metric
        )
        mixture = select_mixture(
            placement,
            max_components=self.max_components,
            sigma_init=self.sigma_init,
        )
        return StreamSnapshot(
            n_events_seen=self._n_events,
            n_users_seen=len(self._users),
            n_users_active=len(matrix),
            mixture=mixture,
        )

    # -- checkpoint / resume ----------------------------------------------

    def state_dict(self) -> dict:
        """The full resumable state as plain JSON-serialisable python.

        Per-user counts are not stored: they are a pure function of the
        active-cell sets and are rebuilt on load, which keeps the
        checkpoint minimal and impossible to desynchronise.
        """
        return {
            "config": {
                "metric": self.metric,
                "min_posts": self.min_posts,
                "sigma_init": self.sigma_init,
                "max_components": self.max_components,
                "min_users_for_verdict": self.min_users_for_verdict,
            },
            "generic_profile": [float(x) for x in self.references.generic.mass],
            "n_events": self._n_events,
            "users": {
                user_id: {
                    "cells": sorted([day, hour] for day, hour in state.cells),
                    "n_posts": state.n_posts,
                }
                for user_id, state in self._users.items()
            },
        }

    def save_checkpoint(self, path) -> None:
        """Atomically persist :meth:`state_dict` as a JSON checkpoint."""
        write_checkpoint(
            path, STREAM_CHECKPOINT_KIND, STREAM_CHECKPOINT_VERSION, self.state_dict()
        )

    @classmethod
    def from_state_dict(
        cls, state: dict, *, references: ReferenceProfiles | None = None
    ) -> "StreamingGeolocator":
        """Inverse of :meth:`state_dict`.

        The reference profiles are rebuilt from the checkpointed generic
        profile unless an explicit *references* object is supplied.
        """
        try:
            config = state["config"]
            if references is None:
                references = ReferenceProfiles(
                    Profile(np.asarray(state["generic_profile"], dtype=float))
                )
            geolocator = cls(
                references,
                metric=str(config["metric"]),
                min_posts=int(config["min_posts"]),
                sigma_init=float(config["sigma_init"]),
                max_components=int(config["max_components"]),
                min_users_for_verdict=int(config["min_users_for_verdict"]),
            )
            geolocator._n_events = int(state["n_events"])
            for user_id, user_state in state["users"].items():
                restored = _UserState()
                restored.n_posts = int(user_state["n_posts"])
                for day, hour in user_state["cells"]:
                    restored.cells.add((int(day), int(hour)))
                    restored.counts[int(hour)] += 1.0
                geolocator._users[user_id] = restored
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed streaming-geolocator state: {exc!r}"
            ) from exc
        return geolocator

    @classmethod
    def load_checkpoint(
        cls, path, *, references: ReferenceProfiles | None = None
    ) -> "StreamingGeolocator":
        """Rebuild a geolocator from :meth:`save_checkpoint` output."""
        state = read_checkpoint(
            path, STREAM_CHECKPOINT_KIND, STREAM_CHECKPOINT_VERSION
        )
        return cls.from_state_dict(state, references=references)
