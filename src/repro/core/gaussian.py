"""Gaussian curves and least-squares fits of placement distributions.

Sec. IV-A of the paper: single-country placement distributions follow a
Gaussian centred on the crowd's time zone, with a typical standard
deviation of sigma ~ 2.5 zones.  The fit is a plain least-squares fit of
an (amplitude, mean, sigma) curve to the 24 placement fractions, done with
our own Nelder-Mead minimiser.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.optimize import nelder_mead
from repro.core.placement import PlacementDistribution
from repro.errors import FitError
from repro.timebase.zones import ZONE_OFFSETS

if TYPE_CHECKING:
    from repro.core.types import FloatArray

#: The sigma the paper observes empirically on single-country placements
#: ("half of the typical hour with lowest activity, between 4am and 5am").
PAPER_SIGMA = 2.5

_MIN_SIGMA = 0.2
_MAX_SIGMA = 12.0


@dataclass(frozen=True)
class GaussianComponent:
    """One Gaussian component: ``weight * N(mean, sigma)`` evaluated per zone."""

    mean: float
    sigma: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise FitError(f"sigma must be positive: {self.sigma}")
        if self.weight < 0:
            raise FitError(f"weight must be nonnegative: {self.weight}")

    def pdf(self, x: "float | FloatArray") -> "float | FloatArray":
        """Weighted normal density at *x*."""
        values = np.asarray(x, dtype=float)
        norm = self.weight / (self.sigma * np.sqrt(2.0 * np.pi))
        result = norm * np.exp(-0.5 * ((values - self.mean) / self.sigma) ** 2)
        return float(result) if np.isscalar(x) else result

    def nearest_zone(self) -> int:
        """The integer zone offset closest to the component mean."""
        offsets = np.asarray(ZONE_OFFSETS)
        return int(offsets[np.argmin(np.abs(offsets - self.mean))])


def mixture_pdf(
    components: Sequence[GaussianComponent], x: "float | FloatArray"
) -> "float | FloatArray":
    """Sum of the weighted component densities at *x*."""
    values = np.asarray(x, dtype=float)
    total = np.zeros_like(values)
    for component in components:
        total = total + component.pdf(values)
    return float(total) if np.isscalar(x) else total


def evaluate_on_zones(components: Sequence[GaussianComponent]) -> FloatArray:
    """Mixture density sampled at the 24 integer zone offsets."""
    return np.asarray(mixture_pdf(components, np.asarray(ZONE_OFFSETS, dtype=float)))


def fit_gaussian(
    placement: "PlacementDistribution | FloatArray",
    *,
    sigma_init: float = PAPER_SIGMA,
) -> GaussianComponent:
    """Least-squares fit of a single Gaussian to a placement distribution.

    Mirrors the paper's curve-fitting step: the returned mean is the
    estimated time-zone of the crowd ("the x axis value corresponding to
    the peak of the placement matches the mean of the Gaussian").
    """
    fractions = (
        placement.as_array()
        if isinstance(placement, PlacementDistribution)
        else np.asarray(placement, dtype=float)
    )
    if fractions.shape != (len(ZONE_OFFSETS),):
        raise FitError(
            f"expected {len(ZONE_OFFSETS)} placement fractions, got {fractions.shape}"
        )
    offsets = np.asarray(ZONE_OFFSETS, dtype=float)
    mean_init = float(offsets[int(np.argmax(fractions))])
    weight_init = max(float(fractions.sum()), 1e-6)

    def objective(params: FloatArray) -> float:
        weight, mean, sigma = params
        if not (_MIN_SIGMA <= sigma <= _MAX_SIGMA) or weight <= 0:
            return 1e6
        if not (offsets[0] - 3 <= mean <= offsets[-1] + 3):
            return 1e6
        component = GaussianComponent(mean=mean, sigma=sigma, weight=weight)
        residual = component.pdf(offsets) - fractions
        return float(np.dot(residual, residual))

    result = nelder_mead(
        objective, [weight_init, mean_init, sigma_init], initial_step=0.4
    )
    weight, mean, sigma = result.x
    if not np.isfinite([weight, mean, sigma]).all() or objective(result.x) >= 1e6:
        raise FitError("gaussian fit diverged")
    return GaussianComponent(mean=float(mean), sigma=float(sigma), weight=float(weight))


def gaussian_residual_stats(
    placement: "PlacementDistribution | FloatArray",
    components: Sequence[GaussianComponent],
) -> tuple[float, float]:
    """Mean and std of |fit - placement| over the 24 zones (Table II metrics)."""
    fractions = (
        placement.as_array()
        if isinstance(placement, PlacementDistribution)
        else np.asarray(placement, dtype=float)
    )
    residual = np.abs(evaluate_on_zones(components) - fractions)
    return float(residual.mean()), float(residual.std())
